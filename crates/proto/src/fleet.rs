//! Deterministic adversarial fleet harness.
//!
//! Runs a whole overlay — bootstrap service, honest [`crate::node`]
//! agents, optional [`crate::adversary`] swarm — on one simulated
//! network under a [`FaultPlan`] schedule, inside the vendored
//! virtual-time runtime. Everything observable lands in a
//! [`RobustnessReport`] whose JSON encoding is byte-identical for the
//! same seed and config: the report is derived *only* from per-run
//! state (node views, `SimNet` counters), never from the global obs
//! registry, and every iteration that could leak map order is sorted.
//!
//! This is the §4.4 churn/resilience experiment generalized: instead of
//! replaying a PlanetLab churn trace, the plan scripts partitions,
//! storms, loss/jitter bursts and Sybil/eclipse swarms, and the report
//! records how routing reachability degrades and reconverges.

use crate::adversary::{spawn_swarm, AdversaryConfig, AdversaryStats};
use crate::bootstrap::{BootstrapServer, Registry};
use crate::message::MessageClass;
use crate::node::{EgoistNode, NodeConfig, NodeView};
use crate::transport::{FaultStats, SimNet};
use egoist_graph::{DistanceMatrix, NodeId};
use egoist_netsim::{FaultConfig, FaultPlan};
use std::time::Duration;

/// One fleet scenario.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Scenario name (lands in the report).
    pub scenario: String,
    /// Honest nodes (ids `0..n`).
    pub n: usize,
    /// Links per node.
    pub k: usize,
    /// Sybil identities (ids `n..n+sybils`).
    pub sybils: usize,
    pub seed: u64,
    /// Virtual run length.
    pub horizon: Duration,
    /// Reachability sampling period.
    pub sample_every: Duration,
    /// Always-on fault floor (plan windows boost it).
    pub fault: FaultConfig,
    pub plan: FaultPlan,
    /// Swarm script; `None` = no adversary.
    pub adversary: Option<AdversaryConfig>,
    pub epoch: Duration,
    pub announce_interval: Duration,
    pub ping_interval: Duration,
    pub liveness_timeout: Duration,
    /// Reachability fraction that counts as "reconverged" after a
    /// fault window heals.
    pub recovered_threshold: f64,
}

impl FleetConfig {
    /// Test-scale defaults: short timers, clean network, no plan.
    pub fn new(scenario: &str, n: usize, k: usize, seed: u64) -> Self {
        FleetConfig {
            scenario: scenario.to_string(),
            n,
            k,
            sybils: 0,
            seed,
            horizon: Duration::from_secs(300),
            sample_every: Duration::from_secs(10),
            fault: FaultConfig::default(),
            plan: FaultPlan::new(),
            adversary: None,
            epoch: Duration::from_secs(10),
            announce_interval: Duration::from_secs(3),
            ping_interval: Duration::from_secs(5),
            liveness_timeout: Duration::from_secs(12),
            recovered_threshold: 0.95,
        }
    }

    fn total_ids(&self) -> usize {
        self.n + self.sybils
    }
}

/// The acceptance scenario: 30% frame loss throughout, a churn storm
/// flapping a third of the fleet, then a two-way partition that heals.
/// The fleet must reconverge to ≥95% route reachability before the
/// horizon.
pub fn storm_partition_profile(quick: bool) -> FleetConfig {
    let (n, horizon) = if quick { (10, 360) } else { (18, 480) };
    let mut cfg = FleetConfig::new("storm_partition", n, 3, 808);
    cfg.horizon = Duration::from_secs(horizon);
    cfg.fault = FaultConfig {
        drop_chance: 0.3,
        ..FaultConfig::default()
    };
    let storm: Vec<NodeId> = (0..n / 3).map(NodeId::from_index).collect();
    let minority: Vec<NodeId> = (n - n / 4..n).map(NodeId::from_index).collect();
    let h = horizon as f64;
    cfg.plan = FaultPlan::new()
        .churn_storm(0.25 * h, 0.5 * h, storm, 30.0, 0.4)
        .partition(0.55 * h, 0.7 * h, vec![vec![], minority]);
    cfg
}

/// The adversarial scenario: a Sybil swarm on one endpoint budget runs
/// an eclipse lure against every honest node. Peer scoring must leave
/// no attacker identity in any honest active view by the horizon.
pub fn sybil_eclipse_profile(quick: bool) -> FleetConfig {
    let (n, sybils, horizon) = if quick { (10, 5, 240) } else { (14, 7, 300) };
    let mut cfg = FleetConfig::new("sybil_eclipse", n, 3, 4242);
    cfg.sybils = sybils;
    cfg.horizon = Duration::from_secs(horizon);
    cfg.fault = FaultConfig {
        drop_chance: 0.05,
        ..FaultConfig::default()
    };
    cfg.adversary = Some(AdversaryConfig::swarm(
        n,
        sybils,
        (0..n).map(NodeId::from_index).collect(),
    ));
    cfg
}

/// Recovery record for one scheduled fault window.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowRecovery {
    pub kind: String,
    pub from: f64,
    pub to: f64,
    /// First sample time ≥ heal with reachability over the threshold.
    pub reconverged_at: Option<f64>,
    /// `reconverged_at - to`.
    pub recovery_secs: Option<f64>,
}

/// Everything a chaos run measures. Same seed + config ⇒ identical
/// report, byte-for-byte through [`RobustnessReport::to_json`].
#[derive(Clone, Debug, PartialEq)]
pub struct RobustnessReport {
    pub schema: String,
    pub scenario: String,
    pub seed: u64,
    pub n: usize,
    pub sybils: usize,
    pub k: usize,
    pub horizon_secs: f64,
    /// Reachable fraction of ordered honest pairs at the last sample.
    pub final_reachability: f64,
    /// Worst sample (shows the fault actually bit).
    pub min_reachability: f64,
    /// `(virtual_secs, reachability)` samples.
    pub timeline: Vec<(f64, f64)>,
    pub windows: Vec<WindowRecovery>,
    pub fault: FaultStats,
    pub join_retries: u64,
    pub demotions: u64,
    pub evictions: u64,
    pub promotions: u64,
    /// Misbehavior-score histogram over every honest ledger entry at
    /// the end: buckets `0, 1, 2, 3, ≥4`.
    pub score_hist: [u64; 5],
    /// Sybil identities present in honest active views at the end
    /// (the eclipse defense requires 0).
    pub attacker_in_active_views: u64,
    /// `(honest, sybil)` ban pairs.
    pub attacker_ban_pairs: u64,
    pub adversary: Option<AdversaryStats>,
    /// Per message class: total honest frames/bytes sent.
    pub overhead: Vec<(String, u64, u64)>,
    pub decode_errors: u64,
}

impl RobustnessReport {
    /// Deterministic JSON: fixed field order, `{:?}` float formatting
    /// (shortest round-trip), no map iteration anywhere.
    pub fn to_json(&self) -> String {
        let num = |v: f64| {
            if v.is_finite() {
                format!("{v:?}")
            } else {
                "null".to_string()
            }
        };
        let opt = |v: Option<f64>| v.map(&num).unwrap_or_else(|| "null".to_string());
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"egoist-robustness/v1\",\n");
        s.push_str(&format!("  \"scenario\": \"{}\",\n", self.scenario));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"n\": {},\n", self.n));
        s.push_str(&format!("  \"sybils\": {},\n", self.sybils));
        s.push_str(&format!("  \"k\": {},\n", self.k));
        s.push_str(&format!(
            "  \"horizon_secs\": {},\n",
            num(self.horizon_secs)
        ));
        s.push_str(&format!(
            "  \"final_reachability\": {},\n",
            num(self.final_reachability)
        ));
        s.push_str(&format!(
            "  \"min_reachability\": {},\n",
            num(self.min_reachability)
        ));
        let tl: Vec<String> = self
            .timeline
            .iter()
            .map(|&(t, r)| format!("[{}, {}]", num(t), num(r)))
            .collect();
        s.push_str(&format!("  \"timeline\": [{}],\n", tl.join(", ")));
        let ws: Vec<String> = self
            .windows
            .iter()
            .map(|w| {
                format!(
                    "{{\"kind\": \"{}\", \"from\": {}, \"to\": {}, \"reconverged_at\": {}, \"recovery_secs\": {}}}",
                    w.kind,
                    num(w.from),
                    num(w.to),
                    opt(w.reconverged_at),
                    opt(w.recovery_secs)
                )
            })
            .collect();
        s.push_str(&format!("  \"windows\": [{}],\n", ws.join(", ")));
        s.push_str(&format!(
            "  \"fault\": {{\"passed\": {}, \"dropped\": {}, \"corrupted\": {}, \"rate_limited\": {}, \"cut\": {}, \"duplicated\": {}, \"reordered\": {}, \"jittered\": {}}},\n",
            self.fault.passed,
            self.fault.dropped,
            self.fault.corrupted,
            self.fault.rate_limited,
            self.fault.cut,
            self.fault.duplicated,
            self.fault.reordered,
            self.fault.jittered
        ));
        s.push_str(&format!(
            "  \"peers\": {{\"join_retries\": {}, \"demotions\": {}, \"evictions\": {}, \"promotions\": {}, \"score_hist\": [{}, {}, {}, {}, {}]}},\n",
            self.join_retries,
            self.demotions,
            self.evictions,
            self.promotions,
            self.score_hist[0],
            self.score_hist[1],
            self.score_hist[2],
            self.score_hist[3],
            self.score_hist[4]
        ));
        match &self.adversary {
            Some(a) => s.push_str(&format!(
                "  \"adversary\": {{\"in_active_views\": {}, \"ban_pairs\": {}, \"sent\": {}, \"throttled\": {}, \"pongs\": {}}},\n",
                self.attacker_in_active_views, self.attacker_ban_pairs, a.sent, a.throttled, a.pongs
            )),
            None => s.push_str("  \"adversary\": null,\n"),
        }
        let oh: Vec<String> = self
            .overhead
            .iter()
            .map(|(class, frames, bytes)| {
                format!("\"{class}\": {{\"frames\": {frames}, \"bytes\": {bytes}}}")
            })
            .collect();
        s.push_str(&format!("  \"overhead\": {{{}}},\n", oh.join(", ")));
        s.push_str(&format!("  \"decode_errors\": {}\n", self.decode_errors));
        s.push_str("}\n");
        s
    }
}

/// Obs handles for fleet-level reconvergence tracking.
struct FleetObs {
    reachability: egoist_obs::Histogram,
    reconvergence_secs: egoist_obs::Histogram,
    routes_reachable: egoist_obs::Counter,
    routes_missing: egoist_obs::Counter,
}

fn fleet_obs() -> &'static FleetObs {
    static OBS: std::sync::OnceLock<FleetObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let r = egoist_obs::registry();
        FleetObs {
            reachability: r.histogram("fleet.reachability"),
            reconvergence_secs: r.histogram("fleet.reconvergence_secs"),
            routes_reachable: r.counter("fleet.routes.reachable"),
            routes_missing: r.counter("fleet.routes.missing"),
        }
    })
}

/// Deterministic per-pair delay in `[4, 16)` ms, varied by seed.
fn delay_matrix(total: usize, seed: u64) -> DistanceMatrix {
    DistanceMatrix::from_fn(total, |i, j| {
        if i == j {
            0.0
        } else {
            let mix = (i as u64)
                .wrapping_mul(31)
                .wrapping_add((j as u64).wrapping_mul(17))
                .wrapping_add(seed)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            4.0 + (mix >> 32) as f64 % 12.0
        }
    })
}

/// Reachable fraction of ordered honest pairs whose both ends are not
/// churned off by the plan at `now`.
fn reachability(views: &[NodeView], plan: &FaultPlan, now: f64, n: usize) -> f64 {
    let on: Vec<bool> = (0..n)
        .map(|i| !plan.node_off(now, NodeId::from_index(i)))
        .collect();
    let mut reachable = 0u64;
    let mut pairs = 0u64;
    for (i, v) in views.iter().enumerate() {
        if !on[i] {
            continue;
        }
        for (j, &on_j) in on.iter().enumerate() {
            if j == i || !on_j {
                continue;
            }
            pairs += 1;
            if v.next_hops[j].is_some() {
                reachable += 1;
            }
        }
    }
    fleet_obs().routes_reachable.add(reachable);
    fleet_obs().routes_missing.add(pairs - reachable);
    if pairs == 0 {
        1.0
    } else {
        reachable as f64 / pairs as f64
    }
}

/// Run one scenario to completion inside the paused-clock runtime and
/// return its report.
pub fn run_fleet(cfg: &FleetConfig) -> RobustnessReport {
    tokio::runtime::block_on_paused(run_fleet_inner(cfg.clone()))
}

async fn run_fleet_inner(cfg: FleetConfig) -> RobustnessReport {
    let total = cfg.total_ids();
    let boot = NodeId::from_index(total);
    let delays = delay_matrix(total + 1, cfg.seed);
    let net = SimNet::with_plan(delays, cfg.fault, Some(cfg.plan.clone()), cfg.seed);
    tokio::spawn(BootstrapServer::new(net.endpoint(boot), Registry::default()).run());

    let mut handles = Vec::with_capacity(cfg.n);
    for i in 0..cfg.n {
        let mut nc = NodeConfig::new(NodeId::from_index(i), total, cfg.k);
        nc.epoch = cfg.epoch;
        nc.announce_interval = cfg.announce_interval;
        nc.ping_interval = cfg.ping_interval;
        nc.liveness_timeout = cfg.liveness_timeout;
        nc.bootstrap = Some(boot);
        nc.seed = cfg.seed.wrapping_mul(1031).wrapping_add(i as u64);
        // Bit-reproducible runs: keep the wiring computation on the
        // executor thread (blocking-pool wakeups are a real-time race).
        nc.inline_rewire = true;
        handles.push(EgoistNode::new(nc, net.endpoint(NodeId::from_index(i))).spawn());
        tokio::time::sleep(Duration::from_millis(100)).await;
    }
    let adversary_stats = cfg
        .adversary
        .as_ref()
        .map(|a| spawn_swarm(a, |id| net.endpoint(id)));

    // Sample reachability over the horizon.
    let sample = cfg.sample_every.as_secs_f64();
    let samples = (cfg.horizon.as_secs_f64() / sample).floor() as usize;
    let mut timeline = Vec::with_capacity(samples);
    for s in 1..=samples {
        tokio::time::sleep(cfg.sample_every).await;
        let now = s as f64 * sample;
        let views: Vec<NodeView> = handles.iter().map(|h| h.snapshot()).collect();
        let r = reachability(&views, &cfg.plan, now, cfg.n);
        fleet_obs().reachability.observe(r);
        timeline.push((now, r));
    }

    // Final state, before any Leave floods from shutdown.
    let views: Vec<NodeView> = handles.iter().map(|h| h.snapshot()).collect();
    let fault = net.fault_stats();
    for h in handles {
        h.stop().await;
    }
    // Swarm tasks die with the runtime; their stats cell outlives them.

    // Per-window reconvergence from the sampled timeline.
    let windows: Vec<WindowRecovery> = cfg
        .plan
        .windows
        .iter()
        .map(|w| {
            let reconverged_at = timeline
                .iter()
                .find(|&&(t, r)| t >= w.to && r >= cfg.recovered_threshold)
                .map(|&(t, _)| t);
            let recovery_secs = reconverged_at.map(|t| t - w.to);
            if let Some(secs) = recovery_secs {
                fleet_obs().reconvergence_secs.observe(secs);
            }
            WindowRecovery {
                kind: w.fault.label().to_string(),
                from: w.from,
                to: w.to,
                reconverged_at,
                recovery_secs,
            }
        })
        .collect();

    let sybil_ids: Vec<NodeId> = (cfg.n..total).map(NodeId::from_index).collect();
    let mut score_hist = [0u64; 5];
    let mut attacker_in_active = 0u64;
    let mut ban_pairs = 0u64;
    let (mut join_retries, mut demotions, mut evictions, mut promotions) = (0u64, 0, 0, 0);
    let mut decode_errors = 0u64;
    for v in &views {
        join_retries += v.join_retries;
        demotions += v.demotions;
        evictions += v.evictions;
        promotions += v.promotions;
        decode_errors += v.decode_errors;
        for &m in &v.misbehavior {
            score_hist[(m as usize).min(4)] += 1;
        }
        attacker_in_active += v.wiring.iter().filter(|w| sybil_ids.contains(w)).count() as u64;
        ban_pairs += v.banned.iter().filter(|b| sybil_ids.contains(b)).count() as u64;
    }
    let overhead: Vec<(String, u64, u64)> = MessageClass::ALL
        .iter()
        .map(|&c| {
            let frames: u64 = views.iter().map(|v| v.overhead.frames(c)).sum();
            let bytes: u64 = views.iter().map(|v| v.overhead.bytes(c)).sum();
            (c.label().to_string(), frames, bytes)
        })
        .collect();

    let final_reachability = timeline.last().map(|&(_, r)| r).unwrap_or(1.0);
    let min_reachability = timeline
        .iter()
        .map(|&(_, r)| r)
        .fold(f64::INFINITY, f64::min)
        .min(final_reachability);
    RobustnessReport {
        schema: "egoist-robustness/v1".to_string(),
        scenario: cfg.scenario.clone(),
        seed: cfg.seed,
        n: cfg.n,
        sybils: cfg.sybils,
        k: cfg.k,
        horizon_secs: cfg.horizon.as_secs_f64(),
        final_reachability,
        min_reachability,
        timeline,
        windows,
        fault,
        join_retries,
        demotions,
        evictions,
        promotions,
        score_hist,
        attacker_in_active_views: attacker_in_active,
        attacker_ban_pairs: ban_pairs,
        adversary: adversary_stats.map(|s| *s.lock()),
        overhead,
        decode_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_fleet_converges_and_reports() {
        let mut cfg = FleetConfig::new("smoke", 6, 2, 7);
        cfg.horizon = Duration::from_secs(120);
        let report = run_fleet(&cfg);
        assert_eq!(report.schema, "egoist-robustness/v1");
        assert_eq!(report.timeline.len(), 12);
        assert!(
            report.final_reachability >= 0.99,
            "clean fleet should fully converge: {}",
            report.final_reachability
        );
        assert_eq!(report.attacker_in_active_views, 0);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"egoist-robustness/v1\""));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn same_seed_fleet_reports_are_byte_identical() {
        let mut cfg = FleetConfig::new("repeat", 5, 2, 99);
        cfg.horizon = Duration::from_secs(90);
        cfg.fault = FaultConfig {
            drop_chance: 0.2,
            corrupt_chance: 0.02,
            ..FaultConfig::default()
        };
        cfg.plan = FaultPlan::new().partition(30.0, 50.0, vec![vec![], vec![NodeId(4)]]);
        let a = run_fleet(&cfg);
        let b = run_fleet(&cfg);
        assert_eq!(a.to_json(), b.to_json());
    }
}
