//! Deterministic adversarial fleet harness.
//!
//! Runs a whole overlay — bootstrap service, honest [`crate::node`]
//! agents, optional [`crate::adversary`] swarm — on one simulated
//! network under a [`FaultPlan`] schedule, inside the vendored
//! virtual-time runtime. Everything observable lands in a
//! [`RobustnessReport`] whose JSON encoding is byte-identical for the
//! same seed and config: the report is derived *only* from per-run
//! state (node views, `SimNet` counters), never from the global obs
//! registry, and every iteration that could leak map order is sorted.
//!
//! **Scheduling.** Nodes are not spawned as one task each. The harness
//! owns every [`EgoistNode`] and drives the node tick methods from a
//! single timer wheel over virtual time: a heap of `(due, node, kind)`
//! events advanced in fixed [`FleetConfig::wheel_step`] quanta. At each
//! step every node's inbound queue is drained in id order, then due
//! events fire in `(due, node, kind)` order. One task per *fleet*
//! instead of six per node is what makes n ≥ 1000 live protocol nodes
//! affordable — and the wheel's total order over ticks is itself the
//! determinism argument: two same-seed runs execute the identical
//! sequence of (drain, tick) steps at the identical virtual instants.
//!
//! This is the §4.4 churn/resilience experiment generalized: instead of
//! replaying a PlanetLab churn trace, the plan scripts partitions,
//! storms, loss/jitter bursts and Sybil/eclipse swarms, and the report
//! records how routing reachability degrades and reconverges.

use crate::adversary::{spawn_swarm, AdversaryConfig, AdversaryStats};
use crate::audit::ClaimRanker;
use crate::bootstrap::{BootstrapServer, Registry};
use crate::message::MessageClass;
use crate::node::{EgoistNode, NodeConfig, NodeView};
use crate::transport::{FaultStats, SimNet, SimTransport};
use egoist_core::policies::PolicyKind;
use egoist_graph::{DistanceMatrix, NodeId};
use egoist_netsim::{FaultConfig, FaultPlan};
use parking_lot::RwLock;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Duration;

/// One fleet scenario.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Scenario name (lands in the report).
    pub scenario: String,
    /// Honest nodes (ids `0..n`).
    pub n: usize,
    /// Links per node.
    pub k: usize,
    /// Sybil identities (ids `n..n+sybils`).
    pub sybils: usize,
    pub seed: u64,
    /// Virtual run length.
    pub horizon: Duration,
    /// Reachability sampling period.
    pub sample_every: Duration,
    /// Always-on fault floor (plan windows boost it).
    pub fault: FaultConfig,
    pub plan: FaultPlan,
    /// Swarm script; `None` = no adversary.
    pub adversary: Option<AdversaryConfig>,
    /// Wiring policy every honest node runs.
    pub policy: PolicyKind,
    pub epoch: Duration,
    pub announce_interval: Duration,
    pub ping_interval: Duration,
    pub liveness_timeout: Duration,
    /// Timer-wheel quantum: inbound queues drain and due ticks fire on
    /// these boundaries. Smaller = finer RTT resolution, more steps.
    pub wheel_step: Duration,
    /// Virtual spacing between consecutive node spawns.
    pub spawn_spacing: Duration,
    /// Gossip fan-out per fresh LSA (`usize::MAX` = classic full flood).
    pub gossip_fanout: usize,
    /// Gossip TTL on originated LSAs.
    pub gossip_ttl: u8,
    /// Anti-entropy digest period.
    pub sync_interval: Duration,
    /// Unwired-candidate measurement pings per ping tick.
    pub ping_sample: usize,
    /// Announce suppression: seq-bump at most every this many announce
    /// ticks unless the wiring changed materially.
    pub announce_refresh: u32,
    /// LSDB record max age override (must exceed the effective announce
    /// refresh period or healthy origins expire between refreshes).
    pub lsdb_max_age: Option<Duration>,
    /// Second-hand claim ranking thresholds.
    pub claims: ClaimRanker,
    /// Publish routing-graph edge lists in node views (forged-link
    /// acceptance metric; O(edges) per publish, off unless needed).
    pub expose_route_edges: bool,
    /// Reachability fraction that counts as "reconverged" after a
    /// fault window heals.
    pub recovered_threshold: f64,
}

impl FleetConfig {
    /// Test-scale defaults: short timers, clean network, no plan.
    pub fn new(scenario: &str, n: usize, k: usize, seed: u64) -> Self {
        FleetConfig {
            scenario: scenario.to_string(),
            n,
            k,
            sybils: 0,
            seed,
            horizon: Duration::from_secs(300),
            sample_every: Duration::from_secs(10),
            fault: FaultConfig::default(),
            plan: FaultPlan::new(),
            adversary: None,
            policy: PolicyKind::BestResponse,
            epoch: Duration::from_secs(10),
            announce_interval: Duration::from_secs(3),
            ping_interval: Duration::from_secs(5),
            liveness_timeout: Duration::from_secs(12),
            wheel_step: Duration::from_millis(1),
            spawn_spacing: Duration::from_millis(100),
            gossip_fanout: usize::MAX,
            gossip_ttl: 8,
            sync_interval: Duration::from_secs(15),
            ping_sample: usize::MAX,
            announce_refresh: 1,
            lsdb_max_age: None,
            claims: ClaimRanker::default(),
            expose_route_edges: false,
            recovered_threshold: 0.95,
        }
    }

    fn total_ids(&self) -> usize {
        self.n + self.sybils
    }

    fn node_config(&self, i: usize, boot: NodeId) -> NodeConfig {
        let mut nc = NodeConfig::new(NodeId::from_index(i), self.total_ids(), self.k);
        nc.policy = self.policy;
        nc.epoch = self.epoch;
        nc.announce_interval = self.announce_interval;
        nc.ping_interval = self.ping_interval;
        nc.liveness_timeout = self.liveness_timeout;
        nc.bootstrap = Some(boot);
        nc.seed = self.seed.wrapping_mul(1031).wrapping_add(i as u64);
        // Bit-reproducible runs: keep the wiring computation on the
        // executor thread (blocking-pool wakeups are a real-time race).
        nc.inline_rewire = true;
        nc.gossip_fanout = self.gossip_fanout;
        nc.gossip_ttl = self.gossip_ttl;
        nc.sync_interval = self.sync_interval;
        nc.ping_sample = self.ping_sample;
        nc.announce_refresh = self.announce_refresh;
        nc.lsdb_max_age = self.lsdb_max_age;
        nc.claims = self.claims;
        nc.expose_route_edges = self.expose_route_edges;
        nc
    }
}

/// The acceptance scenario: 30% frame loss throughout, a churn storm
/// flapping a third of the fleet, then a two-way partition that heals.
/// The fleet must reconverge to ≥95% route reachability before the
/// horizon.
pub fn storm_partition_profile(quick: bool) -> FleetConfig {
    let (n, horizon) = if quick { (10, 360) } else { (18, 480) };
    let mut cfg = FleetConfig::new("storm_partition", n, 3, 808);
    cfg.horizon = Duration::from_secs(horizon);
    cfg.fault = FaultConfig {
        drop_chance: 0.3,
        ..FaultConfig::default()
    };
    let storm: Vec<NodeId> = (0..n / 3).map(NodeId::from_index).collect();
    let minority: Vec<NodeId> = (n - n / 4..n).map(NodeId::from_index).collect();
    let h = horizon as f64;
    cfg.plan = FaultPlan::new()
        .churn_storm(0.25 * h, 0.5 * h, storm, 30.0, 0.4)
        .partition(0.55 * h, 0.7 * h, vec![vec![], minority]);
    cfg
}

/// The adversarial scenario: a Sybil swarm on one endpoint budget runs
/// an eclipse lure against every honest node. Peer scoring must leave
/// no attacker identity in any honest active view by the horizon.
pub fn sybil_eclipse_profile(quick: bool) -> FleetConfig {
    let (n, sybils, horizon) = if quick { (10, 5, 240) } else { (14, 7, 300) };
    let mut cfg = FleetConfig::new("sybil_eclipse", n, 3, 4242);
    cfg.sybils = sybils;
    cfg.horizon = Duration::from_secs(horizon);
    cfg.fault = FaultConfig {
        drop_chance: 0.05,
        ..FaultConfig::default()
    };
    cfg.adversary = Some(AdversaryConfig::swarm(
        n,
        sybils,
        (0..n).map(NodeId::from_index).collect(),
    ));
    cfg
}

/// The scale scenario: ≥1000 live protocol nodes under a churn storm
/// and a healed partition. Gossip is fan-out limited (the full-flood
/// extrapolation would be ~n² frames per announce wave) and coverage
/// beyond the TTL horizon is anti-entropy's job; the fleet must end at
/// ≥95% route reachability anyway.
pub fn chaos_n1000_profile(quick: bool) -> FleetConfig {
    let (horizon, spacing_ms) = if quick { (260, 20) } else { (400, 50) };
    let n = 1000;
    let mut cfg = FleetConfig::new("chaos_n1000", n, 4, 1000);
    cfg.horizon = Duration::from_secs(horizon);
    cfg.sample_every = Duration::from_secs(20);
    cfg.fault = FaultConfig {
        drop_chance: 0.1,
        ..FaultConfig::default()
    };
    // k-Random keeps the union routing graph strongly connected with
    // high probability at k=4 (a k-out digraph), without the per-epoch
    // APSP a best-response fleet of this size would need.
    cfg.policy = PolicyKind::Random;
    cfg.epoch = Duration::from_secs(30);
    cfg.announce_interval = Duration::from_secs(10);
    cfg.ping_interval = Duration::from_secs(10);
    cfg.liveness_timeout = Duration::from_secs(25);
    cfg.wheel_step = Duration::from_millis(10);
    cfg.spawn_spacing = Duration::from_millis(spacing_ms);
    cfg.gossip_fanout = 3;
    cfg.gossip_ttl = 2;
    cfg.sync_interval = Duration::from_secs(15);
    cfg.ping_sample = 8;
    cfg.announce_refresh = 3;
    // Refresh period is announce_refresh × announce_interval = 30 s;
    // records must survive a 30 s partition plus one missed refresh.
    cfg.lsdb_max_age = Some(Duration::from_secs(105));
    // The 10 ms wheel quantum inflates RTT estimates by up to ~2 steps
    // (~20 ms of noise per estimate); the triangle check cannot separate
    // that from forgery here, so give it a margin that keeps it silent
    // (the lure scenario runs at a 1 ms quantum and a tight margin).
    cfg.claims = ClaimRanker {
        margin: 30.0,
        ..ClaimRanker::default()
    };
    let h = horizon as f64;
    let storm: Vec<NodeId> = (0..n / 4).map(NodeId::from_index).collect();
    let minority: Vec<NodeId> = (n - n / 8..n).map(NodeId::from_index).collect();
    cfg.plan = FaultPlan::new()
        .churn_storm(0.25 * h, 0.48 * h, storm, 30.0, 0.3)
        .partition(0.54 * h, 0.66 * h, vec![vec![], minority]);
    cfg
}

/// The defense scenario for the §3.4 hole: a swarm that forges only
/// *third-party* links (per-victim LSA variants omitting the link to
/// the recipient), so the first-hand cost audit never fires and only
/// second-hand claim ranking can catch it. Acceptance: zero forged
/// links in any honest routing graph at the end, and every lure origin
/// banned by ≥90% of honest nodes.
pub fn third_party_lure_profile(quick: bool) -> FleetConfig {
    let (n, sybils, horizon) = if quick { (10, 3, 240) } else { (14, 4, 300) };
    let mut cfg = FleetConfig::new("third_party_lure", n, 3, 3333);
    cfg.sybils = sybils;
    cfg.horizon = Duration::from_secs(horizon);
    cfg.fault = FaultConfig {
        drop_chance: 0.05,
        ..FaultConfig::default()
    };
    cfg.adversary = Some(AdversaryConfig::third_party_swarm(
        n,
        sybils,
        (0..n).map(NodeId::from_index).collect(),
    ));
    // The fleet substrate is an exact metric (planar embedding + base),
    // so the asymmetry allowance can be zero: any forged near-zero
    // third-party cost between two measured nodes is a clean triangle
    // violation. The margin only absorbs wheel quantization (~2 ms).
    cfg.claims = ClaimRanker {
        slack: 0.5,
        margin: 2.5,
        tiv: 0.0,
    };
    cfg.expose_route_edges = true;
    cfg
}

/// Recovery record for one scheduled fault window.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowRecovery {
    pub kind: String,
    pub from: f64,
    pub to: f64,
    /// First sample time ≥ heal with reachability over the threshold.
    pub reconverged_at: Option<f64>,
    /// `reconverged_at - to`.
    pub recovery_secs: Option<f64>,
}

/// Misbehavior-score histogram with data-driven bucket edges.
///
/// The fixed `0,1,2,3,≥4` buckets went degenerate the moment scores
/// were read after decay (everything collapsed into bucket 0), so the
/// histogram now runs over *lifetime* points and rescales its edges to
/// the observed range: bucket 0 is exactly zero, and the remaining four
/// buckets split `1..=max` into equal-width ranges whose lower bounds
/// are returned alongside the counts. With `max ≤ 4` the edges are the
/// classic `[1, 2, 3, 4]`.
pub fn score_histogram(scores: &[u64]) -> ([u64; 5], [u64; 4]) {
    let max = scores.iter().copied().max().unwrap_or(0);
    let width = max.div_ceil(4).max(1);
    let edges = [1, 1 + width, 1 + 2 * width, 1 + 3 * width];
    let mut hist = [0u64; 5];
    for &s in scores {
        let bucket = if s == 0 {
            0
        } else {
            1 + (((s - 1) / width).min(3) as usize)
        };
        hist[bucket] += 1;
    }
    (hist, edges)
}

/// Everything a chaos run measures. Same seed + config ⇒ identical
/// report, byte-for-byte through [`RobustnessReport::to_json`].
#[derive(Clone, Debug, PartialEq)]
pub struct RobustnessReport {
    pub schema: String,
    pub scenario: String,
    pub seed: u64,
    pub n: usize,
    pub sybils: usize,
    pub k: usize,
    pub horizon_secs: f64,
    /// Reachable fraction of ordered honest pairs at the last sample.
    pub final_reachability: f64,
    /// Worst sample (shows the fault actually bit).
    pub min_reachability: f64,
    /// `(virtual_secs, reachability)` samples.
    pub timeline: Vec<(f64, f64)>,
    pub windows: Vec<WindowRecovery>,
    pub fault: FaultStats,
    pub join_retries: u64,
    pub demotions: u64,
    pub evictions: u64,
    pub promotions: u64,
    /// Lifetime misbehavior-point histogram over every honest ledger
    /// entry at the end (buckets per [`score_histogram`]).
    pub score_hist: [u64; 5],
    /// Lower bounds of `score_hist` buckets 1..=4.
    pub score_hist_edges: [u64; 4],
    /// Sybil identities present in honest active views at the end
    /// (the eclipse defense requires 0).
    pub attacker_in_active_views: u64,
    /// `(honest, sybil)` ban pairs.
    pub attacker_ban_pairs: u64,
    pub adversary: Option<AdversaryStats>,
    /// Per message class: total honest frames/bytes sent.
    pub overhead: Vec<(String, u64, u64)>,
    pub decode_errors: u64,
    /// Gossip accounting: seq-bumped LSAs originated plus fresh-LSA
    /// forwards, with the scenario's fan-out/TTL settings echoed.
    pub announces: u64,
    pub gossip_forwards: u64,
    /// `None` = unbounded (classic full flooding).
    pub gossip_fanout: Option<u64>,
    pub gossip_ttl: u8,
    /// Total `link_state`-class frames sent by honest nodes.
    pub link_state_frames: u64,
    /// Full-flood extrapolation: every announce reaching every other
    /// node directly, `announces × (n − 1)`.
    pub full_flood_frames: u64,
    /// `link_state_frames / full_flood_frames` (`None` if no announces).
    pub flood_ratio: Option<f64>,
    /// Anti-entropy accounting: digests sent, pulls sent, LSAs pushed.
    pub ae_digests: u64,
    pub ae_pulls: u64,
    pub ae_pushed: u64,
    /// Second-hand claim ranking: tallies plus route-quarantine counts.
    pub claims_corroborated: u64,
    pub claims_contradicted: u64,
    pub links_quarantined: u64,
    /// Min over sybil identities of the fraction of honest nodes that
    /// banned it (`None` when the scenario has no sybils).
    pub lure_ban_frac: Option<f64>,
    /// Sybil-originated edges inside honest routing graphs at the end
    /// (only populated when `expose_route_edges`; the defense needs 0).
    pub forged_links_in_routes: u64,
}

impl RobustnessReport {
    /// Deterministic JSON: fixed field order, `{:?}` float formatting
    /// (shortest round-trip), no map iteration anywhere.
    pub fn to_json(&self) -> String {
        let num = |v: f64| {
            if v.is_finite() {
                format!("{v:?}")
            } else {
                "null".to_string()
            }
        };
        let opt = |v: Option<f64>| v.map(&num).unwrap_or_else(|| "null".to_string());
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"egoist-robustness/v1\",\n");
        s.push_str(&format!("  \"scenario\": \"{}\",\n", self.scenario));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"n\": {},\n", self.n));
        s.push_str(&format!("  \"sybils\": {},\n", self.sybils));
        s.push_str(&format!("  \"k\": {},\n", self.k));
        s.push_str(&format!(
            "  \"horizon_secs\": {},\n",
            num(self.horizon_secs)
        ));
        s.push_str(&format!(
            "  \"final_reachability\": {},\n",
            num(self.final_reachability)
        ));
        s.push_str(&format!(
            "  \"min_reachability\": {},\n",
            num(self.min_reachability)
        ));
        let tl: Vec<String> = self
            .timeline
            .iter()
            .map(|&(t, r)| format!("[{}, {}]", num(t), num(r)))
            .collect();
        s.push_str(&format!("  \"timeline\": [{}],\n", tl.join(", ")));
        let ws: Vec<String> = self
            .windows
            .iter()
            .map(|w| {
                format!(
                    "{{\"kind\": \"{}\", \"from\": {}, \"to\": {}, \"reconverged_at\": {}, \"recovery_secs\": {}}}",
                    w.kind,
                    num(w.from),
                    num(w.to),
                    opt(w.reconverged_at),
                    opt(w.recovery_secs)
                )
            })
            .collect();
        s.push_str(&format!("  \"windows\": [{}],\n", ws.join(", ")));
        s.push_str(&format!(
            "  \"fault\": {{\"passed\": {}, \"dropped\": {}, \"corrupted\": {}, \"rate_limited\": {}, \"cut\": {}, \"duplicated\": {}, \"reordered\": {}, \"jittered\": {}}},\n",
            self.fault.passed,
            self.fault.dropped,
            self.fault.corrupted,
            self.fault.rate_limited,
            self.fault.cut,
            self.fault.duplicated,
            self.fault.reordered,
            self.fault.jittered
        ));
        s.push_str(&format!(
            "  \"peers\": {{\"join_retries\": {}, \"demotions\": {}, \"evictions\": {}, \"promotions\": {}, \"score_hist\": [{}, {}, {}, {}, {}], \"score_hist_edges\": [{}, {}, {}, {}]}},\n",
            self.join_retries,
            self.demotions,
            self.evictions,
            self.promotions,
            self.score_hist[0],
            self.score_hist[1],
            self.score_hist[2],
            self.score_hist[3],
            self.score_hist[4],
            self.score_hist_edges[0],
            self.score_hist_edges[1],
            self.score_hist_edges[2],
            self.score_hist_edges[3]
        ));
        let fanout = self
            .gossip_fanout
            .map(|f| f.to_string())
            .unwrap_or_else(|| "null".to_string());
        s.push_str(&format!(
            "  \"gossip\": {{\"fanout\": {}, \"ttl\": {}, \"announces\": {}, \"forwards\": {}, \"link_state_frames\": {}, \"full_flood_frames\": {}, \"flood_ratio\": {}}},\n",
            fanout,
            self.gossip_ttl,
            self.announces,
            self.gossip_forwards,
            self.link_state_frames,
            self.full_flood_frames,
            opt(self.flood_ratio)
        ));
        s.push_str(&format!(
            "  \"anti_entropy\": {{\"digests\": {}, \"pulls\": {}, \"pushed\": {}}},\n",
            self.ae_digests, self.ae_pulls, self.ae_pushed
        ));
        s.push_str(&format!(
            "  \"quarantine\": {{\"claims_corroborated\": {}, \"claims_contradicted\": {}, \"links_quarantined\": {}, \"lure_ban_frac\": {}, \"forged_links_in_routes\": {}}},\n",
            self.claims_corroborated,
            self.claims_contradicted,
            self.links_quarantined,
            opt(self.lure_ban_frac),
            self.forged_links_in_routes
        ));
        match &self.adversary {
            Some(a) => s.push_str(&format!(
                "  \"adversary\": {{\"in_active_views\": {}, \"ban_pairs\": {}, \"sent\": {}, \"throttled\": {}, \"pongs\": {}}},\n",
                self.attacker_in_active_views, self.attacker_ban_pairs, a.sent, a.throttled, a.pongs
            )),
            None => s.push_str("  \"adversary\": null,\n"),
        }
        let oh: Vec<String> = self
            .overhead
            .iter()
            .map(|(class, frames, bytes)| {
                format!("\"{class}\": {{\"frames\": {frames}, \"bytes\": {bytes}}}")
            })
            .collect();
        s.push_str(&format!("  \"overhead\": {{{}}},\n", oh.join(", ")));
        s.push_str(&format!("  \"decode_errors\": {}\n", self.decode_errors));
        s.push_str("}\n");
        s
    }
}

/// Obs handles for fleet-level reconvergence tracking.
struct FleetObs {
    reachability: egoist_obs::Histogram,
    reconvergence_secs: egoist_obs::Histogram,
    routes_reachable: egoist_obs::Counter,
    routes_missing: egoist_obs::Counter,
}

fn fleet_obs() -> &'static FleetObs {
    static OBS: std::sync::OnceLock<FleetObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let r = egoist_obs::registry();
        FleetObs {
            reachability: r.histogram("fleet.reachability"),
            reconvergence_secs: r.histogram("fleet.reconvergence_secs"),
            routes_reachable: r.counter("fleet.routes.reachable"),
            routes_missing: r.counter("fleet.routes.missing"),
        }
    })
}

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic *metric* per-pair delay: nodes get seeded positions in
/// a plane and `d(i,j) = 4 + |pᵢ − pⱼ|` ms, landing in `[4, ~32]`. The
/// planar embedding matters: second-hand claim ranking compares link
/// claims against the triangle inequality, so the substrate must
/// satisfy it exactly or honest claims read as forgeries.
fn delay_matrix(total: usize, seed: u64) -> DistanceMatrix {
    let coord = |i: usize, axis: u64| {
        let z = mix64(
            seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ axis.wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        // 53-bit mantissa fraction in [0, 1), scaled so the square's
        // diagonal is ~28 ms. The spread matters for claim ranking:
        // triangle-bound gaps must clear the ranker's margin from
        // *every* vantage point, including nodes near the centroid.
        (z >> 11) as f64 / (1u64 << 53) as f64 * 20.0
    };
    let pos: Vec<(f64, f64)> = (0..total).map(|i| (coord(i, 1), coord(i, 2))).collect();
    DistanceMatrix::from_fn(total, |i, j| {
        if i == j {
            0.0
        } else {
            let (dx, dy) = (pos[i].0 - pos[j].0, pos[i].1 - pos[j].1);
            4.0 + (dx * dx + dy * dy).sqrt()
        }
    })
}

/// Reachable fraction of ordered honest pairs whose both ends are not
/// churned off by the plan at `now`.
fn reachability(views: &[NodeView], plan: &FaultPlan, now: f64, n: usize) -> f64 {
    let on: Vec<bool> = (0..n)
        .map(|i| !plan.node_off(now, NodeId::from_index(i)))
        .collect();
    let mut reachable = 0u64;
    let mut pairs = 0u64;
    for (i, v) in views.iter().enumerate() {
        if !on[i] {
            continue;
        }
        for (j, &on_j) in on.iter().enumerate() {
            if j == i || !on_j {
                continue;
            }
            pairs += 1;
            if v.next_hops.get(j).is_some_and(Option::is_some) {
                reachable += 1;
            }
        }
    }
    fleet_obs().routes_reachable.add(reachable);
    fleet_obs().routes_missing.add(pairs - reachable);
    if pairs == 0 {
        1.0
    } else {
        reachable as f64 / pairs as f64
    }
}

// Timer-wheel event kinds, in firing order for same-instant ties (the
// same biased order the per-node `run()` select uses).
const K_SPAWN: u8 = 0;
const K_PING: u8 = 1;
const K_ANNOUNCE: u8 = 2;
const K_SYNC: u8 = 3;
const K_JOIN: u8 = 4;
const K_EPOCH: u8 = 5;

type WheelEvent = Reverse<(u64, u32, u8)>;

/// Run one scenario to completion inside the paused-clock runtime and
/// return its report.
pub fn run_fleet(cfg: &FleetConfig) -> RobustnessReport {
    tokio::runtime::block_on_paused(run_fleet_inner(cfg.clone()))
}

async fn run_fleet_inner(cfg: FleetConfig) -> RobustnessReport {
    let total = cfg.total_ids();
    let boot = NodeId::from_index(total);
    let delays = delay_matrix(total + 1, cfg.seed);
    let net = SimNet::with_plan(delays, cfg.fault, Some(cfg.plan.clone()), cfg.seed);
    tokio::spawn(BootstrapServer::new(net.endpoint(boot), Registry::default()).run());
    let adversary_stats = cfg
        .adversary
        .as_ref()
        .map(|a| spawn_swarm(a, |id| net.endpoint(id)));

    let step_us = cfg.wheel_step.as_micros().max(1) as u64;
    let horizon_us = cfg.horizon.as_micros() as u64;
    let sample_us = cfg.sample_every.as_micros() as u64;
    let samples = (cfg.horizon.as_secs_f64() / cfg.sample_every.as_secs_f64()).floor() as usize;

    let mut nodes: Vec<Option<EgoistNode<SimTransport>>> = (0..cfg.n).map(|_| None).collect();
    let mut view_handles: Vec<Option<Arc<RwLock<NodeView>>>> = vec![None; cfg.n];
    let mut wheel: BinaryHeap<WheelEvent> = BinaryHeap::new();
    for i in 0..cfg.n {
        wheel.push(Reverse((
            i as u64 * cfg.spawn_spacing.as_micros() as u64,
            i as u32,
            K_SPAWN,
        )));
    }

    let snapshot = |handles: &[Option<Arc<RwLock<NodeView>>>]| -> Vec<NodeView> {
        handles
            .iter()
            .map(|h| h.as_ref().map(|v| v.read().clone()).unwrap_or_default())
            .collect()
    };

    let mut timeline = Vec::with_capacity(samples);
    let mut next_sample_us = sample_us;
    let mut now_us = 0u64;
    while now_us < horizon_us {
        tokio::time::sleep(cfg.wheel_step).await;
        now_us += step_us;
        // Inbound first, in id order: frames delivered during the step
        // are processed before any timer that fires on its boundary.
        for node in nodes.iter_mut().flatten() {
            node.drain().await;
        }
        while let Some(&Reverse((due, ni, kind))) = wheel.peek() {
            if due > now_us {
                break;
            }
            wheel.pop();
            let i = ni as usize;
            if kind == K_SPAWN {
                let nc = cfg.node_config(i, boot);
                let join0 = (nc.join_backoff_base.as_micros() as u64).max(1);
                let endpoint = net.endpoint(nc.id);
                let mut node = EgoistNode::new(nc, endpoint);
                node.start().await;
                view_handles[i] = Some(node.view_handle());
                nodes[i] = Some(node);
                // Per-node phases mirror the live `run()` loop: pings
                // almost immediately, announces early, sync and epoch
                // staggered by id so the fleet never ticks in lockstep.
                let frac = i as f64 / cfg.n.max(1) as f64;
                let ann0 = ((cfg.announce_interval.as_micros() as u64) / 10).max(1);
                let sync0 =
                    (cfg.sync_interval.mul_f64(0.25 + 0.75 * frac).as_micros() as u64).max(1);
                let epoch0 = (cfg.epoch.mul_f64(frac).as_micros() as u64).max(step_us);
                wheel.push(Reverse((due + 10_000, ni, K_PING)));
                wheel.push(Reverse((due + ann0, ni, K_ANNOUNCE)));
                wheel.push(Reverse((due + sync0, ni, K_SYNC)));
                wheel.push(Reverse((due + join0, ni, K_JOIN)));
                wheel.push(Reverse((due + epoch0, ni, K_EPOCH)));
                continue;
            }
            let node = nodes[i].as_mut().expect("tick before spawn");
            match kind {
                K_PING => {
                    node.tick_ping().await;
                    wheel.push(Reverse((
                        due + cfg.ping_interval.as_micros() as u64,
                        ni,
                        K_PING,
                    )));
                }
                K_ANNOUNCE => {
                    node.tick_announce().await;
                    wheel.push(Reverse((
                        due + cfg.announce_interval.as_micros() as u64,
                        ni,
                        K_ANNOUNCE,
                    )));
                }
                K_SYNC => {
                    node.tick_sync().await;
                    wheel.push(Reverse((
                        due + cfg.sync_interval.as_micros() as u64,
                        ni,
                        K_SYNC,
                    )));
                }
                K_JOIN => {
                    let delay = node.tick_join().await;
                    wheel.push(Reverse((
                        due + (delay.as_micros() as u64).max(step_us),
                        ni,
                        K_JOIN,
                    )));
                }
                _ => {
                    node.tick_epoch().await;
                    wheel.push(Reverse((due + cfg.epoch.as_micros() as u64, ni, K_EPOCH)));
                }
            }
        }
        if timeline.len() < samples && now_us >= next_sample_us {
            let nominal = (timeline.len() + 1) as f64 * cfg.sample_every.as_secs_f64();
            let views = snapshot(&view_handles);
            let r = reachability(&views, &cfg.plan, nominal, cfg.n);
            fleet_obs().reachability.observe(r);
            timeline.push((nominal, r));
            next_sample_us += sample_us;
        }
    }

    // Final state, before any Leave floods from shutdown.
    let views = snapshot(&view_handles);
    let fault = net.fault_stats();
    for node in nodes.iter_mut().flatten() {
        node.shutdown_now().await;
    }
    // Swarm tasks die with the runtime; their stats cell outlives them.

    // Per-window reconvergence from the sampled timeline.
    let windows: Vec<WindowRecovery> = cfg
        .plan
        .windows
        .iter()
        .map(|w| {
            let reconverged_at = timeline
                .iter()
                .find(|&&(t, r)| t >= w.to && r >= cfg.recovered_threshold)
                .map(|&(t, _)| t);
            let recovery_secs = reconverged_at.map(|t| t - w.to);
            if let Some(secs) = recovery_secs {
                fleet_obs().reconvergence_secs.observe(secs);
            }
            WindowRecovery {
                kind: w.fault.label().to_string(),
                from: w.from,
                to: w.to,
                reconverged_at,
                recovery_secs,
            }
        })
        .collect();

    let sybil_ids: Vec<NodeId> = (cfg.n..total).map(NodeId::from_index).collect();
    let mut attacker_in_active = 0u64;
    let mut ban_pairs = 0u64;
    let (mut join_retries, mut demotions, mut evictions, mut promotions) = (0u64, 0, 0, 0);
    let mut decode_errors = 0u64;
    let (mut announces, mut gossip_forwards) = (0u64, 0u64);
    let (mut ae_digests, mut ae_pulls, mut ae_pushed) = (0u64, 0u64, 0u64);
    let (mut claims_corroborated, mut claims_contradicted) = (0u64, 0u64);
    let mut links_quarantined = 0u64;
    let mut forged_links_in_routes = 0u64;
    let mut lifetime_points: Vec<u64> = Vec::with_capacity(cfg.n * total);
    for v in &views {
        join_retries += v.join_retries;
        demotions += v.demotions;
        evictions += v.evictions;
        promotions += v.promotions;
        decode_errors += v.decode_errors;
        announces += v.announces;
        gossip_forwards += v.gossip_forwards;
        ae_digests += v.ae_digests;
        ae_pulls += v.ae_pulls;
        ae_pushed += v.ae_pushed;
        claims_corroborated += v.claims_corroborated;
        claims_contradicted += v.claims_contradicted;
        links_quarantined += v.links_quarantined;
        lifetime_points.extend_from_slice(&v.misbehavior_total);
        attacker_in_active += v.wiring.iter().filter(|w| sybil_ids.contains(w)).count() as u64;
        ban_pairs += v.banned.iter().filter(|b| sybil_ids.contains(b)).count() as u64;
        forged_links_in_routes += v
            .route_edges
            .iter()
            .filter(|(from, _)| sybil_ids.contains(from))
            .count() as u64;
    }
    let (score_hist, score_hist_edges) = score_histogram(&lifetime_points);
    let lure_ban_frac = if sybil_ids.is_empty() {
        None
    } else {
        Some(
            sybil_ids
                .iter()
                .map(|s| {
                    views.iter().filter(|v| v.banned.contains(s)).count() as f64 / cfg.n as f64
                })
                .fold(f64::INFINITY, f64::min),
        )
    };
    let overhead: Vec<(String, u64, u64)> = MessageClass::ALL
        .iter()
        .map(|&c| {
            let frames: u64 = views.iter().map(|v| v.overhead.frames(c)).sum();
            let bytes: u64 = views.iter().map(|v| v.overhead.bytes(c)).sum();
            (c.label().to_string(), frames, bytes)
        })
        .collect();
    let link_state_frames: u64 = views
        .iter()
        .map(|v| v.overhead.frames(MessageClass::LinkState))
        .sum();
    let full_flood_frames = announces * (cfg.n.saturating_sub(1)) as u64;
    let flood_ratio = if full_flood_frames == 0 {
        None
    } else {
        Some(link_state_frames as f64 / full_flood_frames as f64)
    };

    let final_reachability = timeline.last().map(|&(_, r)| r).unwrap_or(1.0);
    let min_reachability = timeline
        .iter()
        .map(|&(_, r)| r)
        .fold(f64::INFINITY, f64::min)
        .min(final_reachability);
    RobustnessReport {
        schema: "egoist-robustness/v1".to_string(),
        scenario: cfg.scenario.clone(),
        seed: cfg.seed,
        n: cfg.n,
        sybils: cfg.sybils,
        k: cfg.k,
        horizon_secs: cfg.horizon.as_secs_f64(),
        final_reachability,
        min_reachability,
        timeline,
        windows,
        fault,
        join_retries,
        demotions,
        evictions,
        promotions,
        score_hist,
        score_hist_edges,
        attacker_in_active_views: attacker_in_active,
        attacker_ban_pairs: ban_pairs,
        adversary: adversary_stats.map(|s| *s.lock()),
        overhead,
        decode_errors,
        announces,
        gossip_forwards,
        gossip_fanout: if cfg.gossip_fanout == usize::MAX {
            None
        } else {
            Some(cfg.gossip_fanout as u64)
        },
        gossip_ttl: cfg.gossip_ttl,
        link_state_frames,
        full_flood_frames,
        flood_ratio,
        ae_digests,
        ae_pulls,
        ae_pushed,
        claims_corroborated,
        claims_contradicted,
        links_quarantined,
        lure_ban_frac,
        forged_links_in_routes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_fleet_converges_and_reports() {
        let mut cfg = FleetConfig::new("smoke", 6, 2, 7);
        cfg.horizon = Duration::from_secs(120);
        let report = run_fleet(&cfg);
        assert_eq!(report.schema, "egoist-robustness/v1");
        assert_eq!(report.timeline.len(), 12);
        assert!(
            report.final_reachability >= 0.99,
            "clean fleet should fully converge: {}",
            report.final_reachability
        );
        assert_eq!(report.attacker_in_active_views, 0);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"egoist-robustness/v1\""));
        assert!(json.contains("\"gossip\": {"));
        assert!(json.contains("\"anti_entropy\": {"));
        assert!(json.contains("\"quarantine\": {"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn same_seed_fleet_reports_are_byte_identical() {
        let mut cfg = FleetConfig::new("repeat", 5, 2, 99);
        cfg.horizon = Duration::from_secs(90);
        cfg.fault = FaultConfig {
            drop_chance: 0.2,
            corrupt_chance: 0.02,
            ..FaultConfig::default()
        };
        cfg.plan = FaultPlan::new().partition(30.0, 50.0, vec![vec![], vec![NodeId(4)]]);
        let a = run_fleet(&cfg);
        let b = run_fleet(&cfg);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn fleet_delay_matrix_is_a_metric() {
        let d = delay_matrix(40, 1234);
        for i in 0..40 {
            assert_eq!(d.at(i, i), 0.0);
            for j in 0..40 {
                if i == j {
                    continue;
                }
                assert_eq!(d.at(i, j), d.at(j, i), "symmetric");
                assert!((4.0..=33.0).contains(&d.at(i, j)), "range: {}", d.at(i, j));
                for k in 0..40 {
                    if k == i || k == j {
                        continue;
                    }
                    assert!(
                        d.at(i, j) <= d.at(i, k) + d.at(k, j) + 1e-9,
                        "triangle violated at ({i},{j},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn score_histogram_rescales_to_the_observed_range() {
        // The old fixed buckets collapsed everything into bucket 0 once
        // decayed scores were read; rescaled edges spread the mass.
        let scores = [0, 0, 1, 3, 9, 14, 20];
        let (hist, edges) = score_histogram(&scores);
        assert_eq!(edges, [1, 6, 11, 16]);
        assert_eq!(hist, [2, 2, 1, 1, 1]);
        assert!(
            hist.iter().filter(|&&c| c > 0).count() >= 3,
            "degenerate spread: {hist:?}"
        );
        let (hist, edges) = score_histogram(&[0, 1, 2, 3, 4, 7]);
        assert_eq!(edges, [1, 3, 5, 7]);
        assert_eq!(hist, [1, 2, 2, 0, 1]);
        // Small ranges keep the classic unit-width buckets.
        let (hist, edges) = score_histogram(&[0, 0, 2, 4]);
        assert_eq!(edges, [1, 2, 3, 4]);
        assert_eq!(hist, [2, 0, 1, 0, 1]);
    }
}
