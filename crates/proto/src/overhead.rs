//! Protocol overhead accounting (§4.3).
//!
//! The paper works out EGOIST's injected traffic analytically:
//!
//! * active ping measurement: `≈ (n − k − 1) · 320 / T` bps per node
//!   (candidates only — established links are measured "by virtue of
//!   use");
//! * pyxida (coordinate query): `≈ (320 + 32n) / T` bps per node;
//! * link-state protocol: `≈ (192 + 32k) / T_announce` bps per node.
//!
//! [`OverheadCounters`] measures what a node actually sent per message
//! class; [`analytic`] evaluates the formulas with either the paper's
//! frame sizes or ours, so the bench can print both side by side.

use crate::message::MessageClass;
use std::collections::HashMap;

/// Byte/frame counters per message class.
#[derive(Clone, Debug, Default)]
pub struct OverheadCounters {
    frames: HashMap<MessageClass, u64>,
    bytes: HashMap<MessageClass, u64>,
}

impl OverheadCounters {
    /// Record one sent frame.
    pub fn record(&mut self, class: MessageClass, len: usize) {
        *self.frames.entry(class).or_insert(0) += 1;
        *self.bytes.entry(class).or_insert(0) += len as u64;
    }

    /// Frames sent in a class.
    pub fn frames(&self, class: MessageClass) -> u64 {
        self.frames.get(&class).copied().unwrap_or(0)
    }

    /// Bytes sent in a class.
    pub fn bytes(&self, class: MessageClass) -> u64 {
        self.bytes.get(&class).copied().unwrap_or(0)
    }

    /// Total bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.values().sum()
    }

    /// Average sending rate of a class in bits per second over a window.
    pub fn bps(&self, class: MessageClass, window_secs: f64) -> f64 {
        if window_secs <= 0.0 {
            return 0.0;
        }
        self.bytes(class) as f64 * 8.0 / window_secs
    }
}

/// The §4.3 analytic formulas.
pub mod analytic {
    /// Paper's ICMP echo size in bits.
    pub const PAPER_PING_BITS: f64 = 320.0;
    /// Paper's LSA header+padding bits.
    pub const PAPER_LSA_HEADER_BITS: f64 = 192.0;
    /// Paper's per-neighbor LSA payload bits.
    pub const PAPER_LSA_ENTRY_BITS: f64 = 32.0;

    /// Active ping measurement load, bps per node:
    /// `(n − k − 1) · ping_bits / T`.
    pub fn ping_bps(n: usize, k: usize, t_epoch: f64, ping_bits: f64) -> f64 {
        (n.saturating_sub(k + 1)) as f64 * ping_bits / t_epoch
    }

    /// pyxida (coordinate-system query) load, bps per node:
    /// `(320 + 32 n) / T`.
    pub fn pyxida_bps(n: usize, t_epoch: f64) -> f64 {
        (320.0 + 32.0 * n as f64) / t_epoch
    }

    /// Link-state protocol load, bps per node:
    /// `(header + entry · k) / T_announce`.
    pub fn lsa_bps(k: usize, t_announce: f64, header_bits: f64, entry_bits: f64) -> f64 {
        (header_bits + entry_bits * k as f64) / t_announce
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut c = OverheadCounters::default();
        c.record(MessageClass::Measurement, 52);
        c.record(MessageClass::Measurement, 52);
        c.record(MessageClass::LinkState, 40);
        assert_eq!(c.frames(MessageClass::Measurement), 2);
        assert_eq!(c.bytes(MessageClass::Measurement), 104);
        assert_eq!(c.total_bytes(), 144);
    }

    #[test]
    fn bps_math() {
        let mut c = OverheadCounters::default();
        c.record(MessageClass::LinkState, 100); // 800 bits
        assert!((c.bps(MessageClass::LinkState, 10.0) - 80.0).abs() < 1e-9);
        assert_eq!(c.bps(MessageClass::LinkState, 0.0), 0.0);
    }

    #[test]
    fn paper_numbers_for_50_nodes() {
        // n=50, k=5, T=60: ping ≈ 44·320/60 ≈ 234.7 bps.
        let p = analytic::ping_bps(50, 5, 60.0, analytic::PAPER_PING_BITS);
        assert!((p - 44.0 * 320.0 / 60.0).abs() < 1e-9);
        // pyxida ≈ (320 + 1600)/60 = 32 bps.
        let x = analytic::pyxida_bps(50, 60.0);
        assert!((x - 32.0).abs() < 1e-9);
        // LSA at T_announce=20, k=5: (192+160)/20 = 17.6 bps.
        let l = analytic::lsa_bps(
            5,
            20.0,
            analytic::PAPER_LSA_HEADER_BITS,
            analytic::PAPER_LSA_ENTRY_BITS,
        );
        assert!((l - 17.6).abs() < 1e-9);
    }

    #[test]
    fn pyxida_is_cheaper_than_ping_at_scale() {
        // The paper's point: coordinates beat O(n) pings per epoch.
        for n in [50usize, 100, 295] {
            let ping = analytic::ping_bps(n, 5, 60.0, analytic::PAPER_PING_BITS);
            let pyx = analytic::pyxida_bps(n, 60.0);
            assert!(pyx < ping, "n={n}: pyxida {pyx} !< ping {ping}");
        }
    }
}
