//! Wire messages of the EGOIST protocol.
//!
//! Sizes follow §4.3: a link-state packet carries "its ID, its neighbors'
//! IDs and the cost of the established links to its k neighbors"; header
//! and padding are 192 bits and each neighbor entry 32 bits. Our concrete
//! encoding differs (we carry f32 costs alongside u32 ids), but the same
//! `O(k)` scaling holds and [`crate::overhead`] accounts for both.

use egoist_graph::NodeId;

/// One neighbor entry in a link-state announcement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkEntry {
    pub neighbor: NodeId,
    /// Announced cost of the established link (metric units).
    pub cost: f32,
}

/// A sequence-numbered link-state announcement.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkStateAnnouncement {
    pub origin: NodeId,
    /// Monotonic per-origin sequence number; higher supersedes lower.
    pub seq: u64,
    pub links: Vec<LinkEntry>,
}

/// All EGOIST protocol messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Join request to the bootstrap service.
    BootstrapRequest { from: NodeId },
    /// Candidate neighbor list from the bootstrap service.
    BootstrapResponse { peers: Vec<NodeId> },
    /// First contact with a peer; the receiver replies with `LsdbSync`.
    Hello { from: NodeId },
    /// Full LSDB transfer to a newcomer, or an anti-entropy delta.
    LsdbSync { lsas: Vec<LinkStateAnnouncement> },
    /// Anti-entropy digest: the sender's per-origin `(origin, seq)`
    /// summary, exchanged with one rotating partner per sync tick. The
    /// receiver pushes back fresher LSAs (`LsdbSync`) and pulls stale
    /// ones (`LsdbPull`).
    LsdbDigest {
        from: NodeId,
        entries: Vec<(NodeId, u64)>,
    },
    /// Anti-entropy delta pull: origins where the digest sender was
    /// fresher; answered with an `LsdbSync` carrying just those LSAs.
    LsdbPull { from: NodeId, origins: Vec<NodeId> },
    /// Gossiped link-state announcement. `ttl` bounds forwarding: each
    /// fresh receiver re-gossips with `ttl − 1` until it hits zero;
    /// anti-entropy repairs whatever the bounded push missed.
    LinkState { lsa: LinkStateAnnouncement, ttl: u8 },
    /// Measurement probe (ICMP ECHO stand-in; §4.3 sizes it at 320
    /// bits). `hb` marks keepalives on established links (§3.3), which
    /// the overhead ledger classes as heartbeat rather than measurement.
    Ping { from: NodeId, nonce: u64, hb: bool },
    /// Probe reply echoing the nonce (and the heartbeat marker).
    Pong { from: NodeId, nonce: u64, hb: bool },
    /// Aggressive keepalive on donated backbone links (§3.3).
    Heartbeat { from: NodeId },
    /// Graceful departure.
    Leave { from: NodeId },
}

impl Message {
    /// Message-class label for overhead accounting.
    pub fn class(&self) -> MessageClass {
        match self {
            Message::BootstrapRequest { .. } | Message::BootstrapResponse { .. } => {
                MessageClass::Bootstrap
            }
            Message::Hello { .. }
            | Message::LsdbSync { .. }
            | Message::LsdbDigest { .. }
            | Message::LsdbPull { .. } => MessageClass::Sync,
            Message::LinkState { .. } => MessageClass::LinkState,
            Message::Ping { hb: false, .. } | Message::Pong { hb: false, .. } => {
                MessageClass::Measurement
            }
            Message::Ping { hb: true, .. }
            | Message::Pong { hb: true, .. }
            | Message::Heartbeat { .. } => MessageClass::Heartbeat,
            Message::Leave { .. } => MessageClass::Control,
        }
    }
}

/// Coarse class used by the overhead accountant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MessageClass {
    Bootstrap,
    Sync,
    LinkState,
    Measurement,
    Heartbeat,
    Control,
}

impl MessageClass {
    /// All classes, for iteration in reports.
    pub const ALL: [MessageClass; 6] = [
        MessageClass::Bootstrap,
        MessageClass::Sync,
        MessageClass::LinkState,
        MessageClass::Measurement,
        MessageClass::Heartbeat,
        MessageClass::Control,
    ];

    /// Stable lowercase label (metric names, reports).
    pub fn label(self) -> &'static str {
        match self {
            MessageClass::Bootstrap => "bootstrap",
            MessageClass::Sync => "sync",
            MessageClass::LinkState => "link_state",
            MessageClass::Measurement => "measurement",
            MessageClass::Heartbeat => "heartbeat",
            MessageClass::Control => "control",
        }
    }

    /// Position in [`MessageClass::ALL`], for dense per-class tables.
    pub fn slot(self) -> usize {
        MessageClass::ALL
            .iter()
            .position(|&c| c == self)
            .expect("ALL covers every class")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_all_messages() {
        let msgs = [
            Message::BootstrapRequest { from: NodeId(1) },
            Message::BootstrapResponse {
                peers: vec![NodeId(2)],
            },
            Message::Hello { from: NodeId(1) },
            Message::LsdbSync { lsas: vec![] },
            Message::LsdbDigest {
                from: NodeId(1),
                entries: vec![(NodeId(2), 7)],
            },
            Message::LsdbPull {
                from: NodeId(1),
                origins: vec![NodeId(2)],
            },
            Message::LinkState {
                lsa: LinkStateAnnouncement {
                    origin: NodeId(1),
                    seq: 0,
                    links: vec![],
                },
                ttl: 2,
            },
            Message::Ping {
                from: NodeId(1),
                nonce: 9,
                hb: false,
            },
            Message::Pong {
                from: NodeId(1),
                nonce: 9,
                hb: false,
            },
            Message::Heartbeat { from: NodeId(1) },
            Message::Leave { from: NodeId(1) },
        ];
        for m in msgs {
            // Just ensure classification is total and stable.
            let _ = m.class();
        }
    }

    #[test]
    fn heartbeat_probes_are_classed_apart_from_measurement() {
        let probe = Message::Ping {
            from: NodeId(1),
            nonce: 3,
            hb: false,
        };
        let keepalive = Message::Ping {
            from: NodeId(1),
            nonce: 3,
            hb: true,
        };
        assert_eq!(probe.class(), MessageClass::Measurement);
        assert_eq!(keepalive.class(), MessageClass::Heartbeat);
        let echo = Message::Pong {
            from: NodeId(2),
            nonce: 3,
            hb: true,
        };
        assert_eq!(echo.class(), MessageClass::Heartbeat);
    }

    #[test]
    fn lsa_equality_is_structural() {
        let a = LinkStateAnnouncement {
            origin: NodeId(3),
            seq: 7,
            links: vec![LinkEntry {
                neighbor: NodeId(1),
                cost: 2.5,
            }],
        };
        assert_eq!(a, a.clone());
    }
}
