//! Wire messages of the EGOIST protocol.
//!
//! Sizes follow §4.3: a link-state packet carries "its ID, its neighbors'
//! IDs and the cost of the established links to its k neighbors"; header
//! and padding are 192 bits and each neighbor entry 32 bits. Our concrete
//! encoding differs (we carry f32 costs alongside u32 ids), but the same
//! `O(k)` scaling holds and [`crate::overhead`] accounts for both.

use egoist_graph::NodeId;

/// One neighbor entry in a link-state announcement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkEntry {
    pub neighbor: NodeId,
    /// Announced cost of the established link (metric units).
    pub cost: f32,
}

/// A sequence-numbered link-state announcement.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkStateAnnouncement {
    pub origin: NodeId,
    /// Monotonic per-origin sequence number; higher supersedes lower.
    pub seq: u64,
    pub links: Vec<LinkEntry>,
}

/// All EGOIST protocol messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Join request to the bootstrap service.
    BootstrapRequest { from: NodeId },
    /// Candidate neighbor list from the bootstrap service.
    BootstrapResponse { peers: Vec<NodeId> },
    /// First contact with a peer; the receiver replies with `LsdbSync`.
    Hello { from: NodeId },
    /// Full LSDB transfer to a newcomer.
    LsdbSync { lsas: Vec<LinkStateAnnouncement> },
    /// Flooded link-state announcement.
    LinkState(LinkStateAnnouncement),
    /// Measurement probe (ICMP ECHO stand-in; §4.3 sizes it at 320 bits).
    Ping { from: NodeId, nonce: u64 },
    /// Probe reply echoing the nonce.
    Pong { from: NodeId, nonce: u64 },
    /// Aggressive keepalive on donated backbone links (§3.3).
    Heartbeat { from: NodeId },
    /// Graceful departure.
    Leave { from: NodeId },
}

impl Message {
    /// Message-class label for overhead accounting.
    pub fn class(&self) -> MessageClass {
        match self {
            Message::BootstrapRequest { .. } | Message::BootstrapResponse { .. } => {
                MessageClass::Bootstrap
            }
            Message::Hello { .. } | Message::LsdbSync { .. } => MessageClass::Sync,
            Message::LinkState(_) => MessageClass::LinkState,
            Message::Ping { .. } | Message::Pong { .. } => MessageClass::Measurement,
            Message::Heartbeat { .. } => MessageClass::Heartbeat,
            Message::Leave { .. } => MessageClass::Control,
        }
    }
}

/// Coarse class used by the overhead accountant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MessageClass {
    Bootstrap,
    Sync,
    LinkState,
    Measurement,
    Heartbeat,
    Control,
}

impl MessageClass {
    /// All classes, for iteration in reports.
    pub const ALL: [MessageClass; 6] = [
        MessageClass::Bootstrap,
        MessageClass::Sync,
        MessageClass::LinkState,
        MessageClass::Measurement,
        MessageClass::Heartbeat,
        MessageClass::Control,
    ];

    /// Stable lowercase label (metric names, reports).
    pub fn label(self) -> &'static str {
        match self {
            MessageClass::Bootstrap => "bootstrap",
            MessageClass::Sync => "sync",
            MessageClass::LinkState => "link_state",
            MessageClass::Measurement => "measurement",
            MessageClass::Heartbeat => "heartbeat",
            MessageClass::Control => "control",
        }
    }

    /// Position in [`MessageClass::ALL`], for dense per-class tables.
    pub fn slot(self) -> usize {
        MessageClass::ALL
            .iter()
            .position(|&c| c == self)
            .expect("ALL covers every class")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_all_messages() {
        let msgs = [
            Message::BootstrapRequest { from: NodeId(1) },
            Message::BootstrapResponse {
                peers: vec![NodeId(2)],
            },
            Message::Hello { from: NodeId(1) },
            Message::LsdbSync { lsas: vec![] },
            Message::LinkState(LinkStateAnnouncement {
                origin: NodeId(1),
                seq: 0,
                links: vec![],
            }),
            Message::Ping {
                from: NodeId(1),
                nonce: 9,
            },
            Message::Pong {
                from: NodeId(1),
                nonce: 9,
            },
            Message::Heartbeat { from: NodeId(1) },
            Message::Leave { from: NodeId(1) },
        ];
        for m in msgs {
            // Just ensure classification is total and stable.
            let _ = m.class();
        }
    }

    #[test]
    fn lsa_equality_is_structural() {
        let a = LinkStateAnnouncement {
            origin: NodeId(3),
            seq: 7,
            links: vec![LinkEntry {
                neighbor: NodeId(1),
                cost: 2.5,
            }],
        };
        assert_eq!(a, a.clone());
    }
}
