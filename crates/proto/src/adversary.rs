//! Scripted adversaries for the chaos fleet (§4.5, beyond free-riding).
//!
//! Two attack shapes, both run as deterministic actors on the simulated
//! network:
//!
//! * **Sybil swarm** — many protocol identities backed by *one* endpoint
//!   budget (a shared token bucket over total frames/sec, modeling a
//!   single physical uplink). Some identities speak only garbage.
//! * **Eclipse lure** — each lying identity floods forged LSAs claiming
//!   near-zero-cost links to every victim and to its fellow Sybils, so
//!   the swarm looks like an irresistible transit hub to the §3.1
//!   wiring objective.
//!
//! * **Third-party forgery** — the smarter lure: each victim receives a
//!   per-victim LSA *variant that omits the link to that victim*, so the
//!   §3.4 first-hand audit (which only checks links-to-me) never fires.
//!   Every forged link is a third-party claim from the recipient's
//!   perspective.
//!
//! The defenses under test live in [`crate::node`]: the full-fan lure
//! necessarily claims a link *to* each victim, which the victim audits
//! against its own measurement and punishes; garbage earns decode
//! strikes; and the third-party variants are caught by second-hand claim
//! ranking — a near-zero forged cost between two nodes the recipient
//! *has* measured violates the triangle inequality, quarantining the
//! link and tallying the origin toward a ban. A correctly defending
//! fleet ends with no attacker identity in any honest active view and no
//! forged link in any honest routing graph.

use crate::codec::{decode, encode};
use crate::message::{LinkEntry, LinkStateAnnouncement, Message};
use crate::transport::Transport;
use bytes::Bytes;
use egoist_graph::NodeId;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;
use tokio::time::Instant;

/// Shared uplink budget for a whole swarm: a token bucket refilled in
/// virtual time. Every frame any identity sends costs one token, so
/// adding identities never adds capacity — the paper's asymmetry
/// between cheap identities and scarce bandwidth.
pub struct EndpointBudget {
    inner: Mutex<BudgetInner>,
    rate: f64,
    burst: f64,
}

struct BudgetInner {
    tokens: f64,
    last: Instant,
}

impl EndpointBudget {
    /// Bucket allowing `rate` frames/sec with `burst` headroom.
    pub fn new(rate: f64, burst: f64) -> Arc<Self> {
        Arc::new(EndpointBudget {
            inner: Mutex::new(BudgetInner {
                tokens: burst,
                last: Instant::now(),
            }),
            rate,
            burst,
        })
    }

    /// Take one token if available.
    pub fn try_take(&self) -> bool {
        let mut b = self.inner.lock();
        let now = Instant::now();
        let dt = now.duration_since(b.last).as_secs_f64();
        b.last = now;
        b.tokens = (b.tokens + dt * self.rate).min(self.burst);
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Swarm script parameters.
#[derive(Clone, Debug)]
pub struct AdversaryConfig {
    /// Sybil identities (each gets its own transport endpoint).
    pub ids: Vec<NodeId>,
    /// Honest nodes under attack.
    pub victims: Vec<NodeId>,
    /// Shared uplink: total frames/sec across every identity.
    pub frames_per_sec: f64,
    /// Token-bucket burst headroom.
    pub burst: f64,
    /// Claimed cost of forged links (the lure; honest delays are ≥ ms).
    pub lure_cost: f32,
    /// How often each identity floods its forged LSA.
    pub lure_interval: Duration,
    /// The first `garbage_ids` identities send undecodable noise
    /// instead of LSAs (pure Sybil spam).
    pub garbage_ids: usize,
    /// Third-party forgery: send each victim a per-victim LSA variant
    /// that *omits* the link to that victim, so the recipient's
    /// first-hand audit has nothing to check and only second-hand claim
    /// ranking can catch the forgery.
    pub third_party: bool,
}

impl AdversaryConfig {
    /// A swarm of `sybils` identities starting at id `first`, attacking
    /// `victims`, with moderate budget and an aggressive lure.
    pub fn swarm(first: usize, sybils: usize, victims: Vec<NodeId>) -> Self {
        AdversaryConfig {
            ids: (first..first + sybils).map(NodeId::from_index).collect(),
            victims,
            frames_per_sec: 40.0,
            burst: 20.0,
            lure_cost: 0.05,
            lure_interval: Duration::from_secs(3),
            garbage_ids: sybils / 4,
            third_party: false,
        }
    }

    /// A swarm that forges only third-party links (no garbage, nothing
    /// the first-hand audit can see).
    pub fn third_party_swarm(first: usize, sybils: usize, victims: Vec<NodeId>) -> Self {
        AdversaryConfig {
            garbage_ids: 0,
            third_party: true,
            ..Self::swarm(first, sybils, victims)
        }
    }
}

/// Aggregate swarm accounting, shared by every identity task.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdversaryStats {
    /// Frames actually sent (lure + garbage + pongs).
    pub sent: u64,
    /// Sends suppressed by the endpoint budget.
    pub throttled: u64,
    /// Pings answered (the swarm stays measurable on purpose — an
    /// unmeasurable peer never attracts a link).
    pub pongs: u64,
}

/// Spawn one task per identity; returns the shared stats cell.
///
/// `endpoint_for` maps an identity to its transport endpoint (on a
/// [`crate::transport::SimNet`] this is just `net.endpoint(id)`).
pub fn spawn_swarm<T, F>(cfg: &AdversaryConfig, mut endpoint_for: F) -> Arc<Mutex<AdversaryStats>>
where
    T: Transport,
    F: FnMut(NodeId) -> T,
{
    let budget = EndpointBudget::new(cfg.frames_per_sec, cfg.burst);
    let stats = Arc::new(Mutex::new(AdversaryStats::default()));
    for (slot, &id) in cfg.ids.iter().enumerate() {
        let t = endpoint_for(id);
        let garbage = slot < cfg.garbage_ids;
        tokio::spawn(identity_task(
            t,
            id,
            slot,
            garbage,
            cfg.clone(),
            Arc::clone(&budget),
            Arc::clone(&stats),
        ));
    }
    stats
}

/// Forged announcement: near-zero links to every victim and every
/// fellow Sybil. In third-party mode, `exclude` (the recipient) is
/// dropped from the link set so the first-hand audit never fires.
fn lure_lsa(me: NodeId, seq: u64, cfg: &AdversaryConfig, exclude: Option<NodeId>) -> Message {
    let links: Vec<LinkEntry> = cfg
        .victims
        .iter()
        .copied()
        .chain(cfg.ids.iter().copied().filter(|&s| s != me))
        .filter(|&x| Some(x) != exclude)
        .map(|neighbor| LinkEntry {
            neighbor,
            cost: cfg.lure_cost,
        })
        .collect();
    Message::LinkState {
        lsa: LinkStateAnnouncement {
            origin: me,
            seq,
            links,
        },
        ttl: 8,
    }
}

async fn identity_task<T: Transport>(
    mut transport: T,
    me: NodeId,
    slot: usize,
    garbage: bool,
    cfg: AdversaryConfig,
    budget: Arc<EndpointBudget>,
    stats: Arc<Mutex<AdversaryStats>>,
) {
    // Stagger identities across the lure interval so the swarm's load
    // is spread (and the schedule stays deterministic per slot).
    let stagger = cfg
        .lure_interval
        .mul_f64(slot as f64 / cfg.ids.len().max(1) as f64);
    let mut lure = tokio::time::interval_at(Instant::now() + stagger, cfg.lure_interval);
    lure.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
    let mut seq = 0u64;
    loop {
        tokio::select! {
            biased;
            maybe = transport.recv() => {
                let Some((_, frame)) = maybe else { return };
                // Stay pingable: a candidate with no measurement never
                // attracts a link, so the swarm answers probes honestly
                // (the lie lives in the LSAs, not the RTT).
                if let Ok(Message::Ping { from: peer, nonce, hb }) = decode(&frame) {
                    if budget.try_take() {
                        let pong = encode(&Message::Pong { from: me, nonce, hb });
                        let _ = transport.send(peer, pong).await;
                        let mut s = stats.lock();
                        s.sent += 1;
                        s.pongs += 1;
                    } else {
                        stats.lock().throttled += 1;
                    }
                }
            }
            _ = lure.tick() => {
                for (vi, &v) in cfg.victims.iter().enumerate() {
                    if !budget.try_take() {
                        stats.lock().throttled += 1;
                        continue;
                    }
                    let frame = if garbage {
                        // Wrong magic: fails the codec checksum path.
                        Bytes::from_static(b"\xBA\xD5\x1B\x17garbage-sybil-frame\x00")
                    } else if cfg.third_party {
                        // Per-victim variant on its own seq, so every
                        // recipient always sees a fresh forgery even if
                        // variants leak between victims via gossip.
                        encode(&lure_lsa(
                            me,
                            seq * cfg.victims.len() as u64 + vi as u64 + 1,
                            &cfg,
                            Some(v),
                        ))
                    } else {
                        encode(&lure_lsa(me, seq + 1, &cfg, None))
                    };
                    let _ = transport.send(v, frame).await;
                    stats.lock().sent += 1;
                }
                seq += 1;
            }
        }
    }
}
