//! The bootstrap service (§3.1).
//!
//! "A newcomer overlay node connects to the system by querying a
//! bootstrap node, from which it receives a list of potential overlay
//! neighbors." The service is a tiny request/reply actor on its own
//! transport endpoint: it records every requester and answers with the
//! current membership list (capped, most recent first).

use crate::codec::{decode, encode};
use crate::message::Message;
use crate::transport::Transport;
use egoist_graph::NodeId;
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Capped exponential backoff with deterministic jitter.
///
/// Join retries (§3.1) use this instead of a fixed re-ask cadence: an
/// unreachable seed is non-fatal, and a thundering herd of newcomers
/// de-correlates because each node's jitter stream is seeded by its id.
/// Same seed ⇒ identical retry schedule, which the adversarial fleet
/// harness relies on for bit-reproducible runs.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: StdRng,
}

impl Backoff {
    /// New schedule: delays grow `base · 2^attempt` up to `cap`, each
    /// scaled by a jitter factor in `[0.5, 1.0)`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Backoff {
            base,
            cap,
            attempt: 0,
            rng: StdRng::seed_from_u64(seed ^ 0xBAC0_FF01),
        }
    }

    /// Delay to wait before the next attempt (advances the schedule).
    pub fn next_delay(&mut self) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << self.attempt.min(16))
            .min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        let jitter = 0.5 + 0.5 * self.rng.random::<f64>();
        exp.mul_f64(jitter)
    }

    /// Number of attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Success: restart from the base delay (jitter stream continues).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// Shared membership registry.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RwLock<Vec<NodeId>>>,
}

impl Registry {
    /// Snapshot of registered nodes.
    pub fn members(&self) -> Vec<NodeId> {
        self.inner.read().clone()
    }

    /// Register a node (idempotent; moves it to most-recent position).
    pub fn register(&self, id: NodeId) {
        let mut v = self.inner.write();
        v.retain(|&x| x != id);
        v.push(id);
    }

    /// Remove a node.
    pub fn remove(&self, id: NodeId) {
        self.inner.write().retain(|&x| x != id);
    }
}

/// The bootstrap server task.
pub struct BootstrapServer<T: Transport> {
    transport: T,
    registry: Registry,
    /// Maximum peers returned per response.
    pub max_peers: usize,
}

impl<T: Transport> BootstrapServer<T> {
    /// New server over a transport endpoint.
    pub fn new(transport: T, registry: Registry) -> Self {
        BootstrapServer {
            transport,
            registry,
            max_peers: 16,
        }
    }

    /// Serve until the transport closes.
    pub async fn run(mut self) {
        while let Some((from, frame)) = self.transport.recv().await {
            let Ok(msg) = decode(&frame) else {
                // Garbage frames are dropped, but not silently: the chaos
                // harness watches this counter.
                egoist_obs::counter("proto.bootstrap.decode_errors").inc();
                continue;
            };
            match msg {
                Message::BootstrapRequest { from: requester } => {
                    // Candidates: most recently registered first, excluding
                    // the requester itself.
                    let mut peers: Vec<NodeId> = self
                        .registry
                        .members()
                        .into_iter()
                        .rev()
                        .filter(|&p| p != requester)
                        .take(self.max_peers)
                        .collect();
                    peers.sort_unstable();
                    self.registry.register(requester);
                    let reply = encode(&Message::BootstrapResponse { peers });
                    let _ = self.transport.send(from, reply).await;
                }
                Message::Leave { from: leaver } => {
                    self.registry.remove(leaver);
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::SimNet;
    use bytes::Bytes;
    use egoist_graph::DistanceMatrix;

    const BOOT_ID: NodeId = NodeId(99);

    #[test]
    fn first_joiner_gets_empty_list_then_grows() {
        tokio::runtime::block_on_paused(async {
            let net = SimNet::clean(DistanceMatrix::off_diagonal(100, 1.0));
            let registry = Registry::default();
            let server = BootstrapServer::new(net.endpoint(BOOT_ID), registry.clone());
            tokio::spawn(server.run());

            let mut a = net.endpoint(NodeId(0));
            a.send(
                BOOT_ID,
                encode(&Message::BootstrapRequest { from: NodeId(0) }),
            )
            .await
            .unwrap();
            let (_, frame) = a.recv().await.unwrap();
            assert_eq!(
                decode(&frame).unwrap(),
                Message::BootstrapResponse { peers: vec![] }
            );

            let mut b = net.endpoint(NodeId(1));
            b.send(
                BOOT_ID,
                encode(&Message::BootstrapRequest { from: NodeId(1) }),
            )
            .await
            .unwrap();
            let (_, frame) = b.recv().await.unwrap();
            assert_eq!(
                decode(&frame).unwrap(),
                Message::BootstrapResponse {
                    peers: vec![NodeId(0)]
                }
            );
            assert_eq!(registry.members(), vec![NodeId(0), NodeId(1)]);
        });
    }

    #[test]
    fn leave_removes_from_registry() {
        tokio::runtime::block_on_paused(async {
            let net = SimNet::clean(DistanceMatrix::off_diagonal(100, 1.0));
            let registry = Registry::default();
            registry.register(NodeId(3));
            registry.register(NodeId(4));
            let server = BootstrapServer::new(net.endpoint(BOOT_ID), registry.clone());
            tokio::spawn(server.run());

            let c = net.endpoint(NodeId(3));
            c.send(BOOT_ID, encode(&Message::Leave { from: NodeId(3) }))
                .await
                .unwrap();
            tokio::time::sleep(std::time::Duration::from_millis(10)).await;
            assert_eq!(registry.members(), vec![NodeId(4)]);
        });
    }

    #[test]
    fn garbage_frames_ignored() {
        tokio::runtime::block_on_paused(async {
            let net = SimNet::clean(DistanceMatrix::off_diagonal(100, 1.0));
            let server = BootstrapServer::new(net.endpoint(BOOT_ID), Registry::default());
            tokio::spawn(server.run());
            let mut a = net.endpoint(NodeId(0));
            a.send(BOOT_ID, Bytes::from_static(b"not a frame"))
                .await
                .unwrap();
            a.send(
                BOOT_ID,
                encode(&Message::BootstrapRequest { from: NodeId(0) }),
            )
            .await
            .unwrap();
            let (_, frame) = a.recv().await.unwrap();
            assert!(matches!(
                decode(&frame).unwrap(),
                Message::BootstrapResponse { .. }
            ));
        });
    }
}
