//! The link-state database.
//!
//! Every node floods a sequence-numbered announcement of its established
//! links every `T_announce` (§4.3). The LSDB keeps the freshest
//! announcement per origin, deduplicates floods, ages out origins that go
//! silent (churned-off nodes), and can snapshot the announced overlay as a
//! [`DiGraph`] for route computation — the "full residual graph `G_{−i}`"
//! a newcomer obtains (§3.1).

use crate::message::LinkStateAnnouncement;
use egoist_graph::{DiGraph, NodeId};
use std::collections::HashMap;

/// Stored record for one origin.
#[derive(Clone, Debug)]
struct Record {
    lsa: LinkStateAnnouncement,
    /// Local (monotonic, seconds) time of last refresh.
    refreshed_at: f64,
}

/// The link-state database.
#[derive(Clone, Debug, Default)]
pub struct Lsdb {
    records: HashMap<NodeId, Record>,
    /// Announcements older than this many seconds are considered dead.
    pub max_age: f64,
}

impl Lsdb {
    /// New LSDB; `max_age` should be several `T_announce` (the paper's
    /// 20 s announcements and 60 s epochs suggest ~3 missed announcements).
    pub fn new(max_age: f64) -> Self {
        Lsdb {
            records: HashMap::new(),
            max_age,
        }
    }

    /// Apply an announcement received at local time `now`.
    /// Returns `true` when it was fresh (and should be flooded onward).
    pub fn apply(&mut self, lsa: LinkStateAnnouncement, now: f64) -> bool {
        match self.records.get(&lsa.origin) {
            Some(rec) if rec.lsa.seq >= lsa.seq => false,
            _ => {
                self.records.insert(
                    lsa.origin,
                    Record {
                        lsa,
                        refreshed_at: now,
                    },
                );
                true
            }
        }
    }

    /// Refresh the age of every record whose `(origin, seq)` matches an
    /// entry in `digest` exactly. A digest naming our exact record proves
    /// the origin is still being re-announced somewhere, so anti-entropy
    /// keeps agreed-on records alive between suppressed announces.
    pub fn touch_matching(&mut self, digest: &[(NodeId, u64)], now: f64) {
        for &(origin, seq) in digest {
            if let Some(rec) = self.records.get_mut(&origin) {
                if rec.lsa.seq == seq {
                    rec.refreshed_at = now;
                }
            }
        }
    }

    /// Drop records that have aged out; returns the expired origins.
    pub fn expire(&mut self, now: f64) -> Vec<NodeId> {
        let max_age = self.max_age;
        let dead: Vec<NodeId> = self
            .records
            .iter()
            .filter(|(_, r)| now - r.refreshed_at > max_age)
            .map(|(id, _)| *id)
            .collect();
        for id in &dead {
            self.records.remove(id);
        }
        dead
    }

    /// Remove one origin immediately (Leave message).
    pub fn remove(&mut self, origin: NodeId) {
        self.records.remove(&origin);
    }

    /// Known origins (the announced membership).
    pub fn origins(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.records.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of stored announcements.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the LSDB is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Current sequence number of `origin` (0 when unknown).
    pub fn seq_of(&self, origin: NodeId) -> u64 {
        self.records.get(&origin).map(|r| r.lsa.seq).unwrap_or(0)
    }

    /// All stored LSAs (for `LsdbSync` to a newcomer).
    pub fn all(&self) -> Vec<LinkStateAnnouncement> {
        let mut v: Vec<LinkStateAnnouncement> =
            self.records.values().map(|r| r.lsa.clone()).collect();
        v.sort_by_key(|l| l.origin);
        v
    }

    /// Compact anti-entropy summary: sorted `(origin, seq)` pairs.
    pub fn digest(&self) -> Vec<(NodeId, u64)> {
        let mut v: Vec<(NodeId, u64)> = self
            .records
            .iter()
            .map(|(id, r)| (*id, r.lsa.seq))
            .collect();
        v.sort_unstable();
        v
    }

    /// LSAs we hold that are fresher than (or absent from) a peer's
    /// digest — the push half of a digest exchange. Sorted by origin.
    pub fn fresher_than(&self, digest: &[(NodeId, u64)]) -> Vec<LinkStateAnnouncement> {
        let theirs: HashMap<NodeId, u64> = digest.iter().copied().collect();
        let mut v: Vec<LinkStateAnnouncement> = self
            .records
            .values()
            .filter(|r| theirs.get(&r.lsa.origin).is_none_or(|&s| r.lsa.seq > s))
            .map(|r| r.lsa.clone())
            .collect();
        v.sort_by_key(|l| l.origin);
        v
    }

    /// Origins where a peer's digest is fresher than what we hold — the
    /// pull half of a digest exchange. Sorted.
    pub fn stale_origins(&self, digest: &[(NodeId, u64)]) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = digest
            .iter()
            .filter(|(origin, seq)| self.seq_of(*origin) < *seq)
            .map(|(origin, _)| *origin)
            .collect();
        v.sort_unstable();
        v
    }

    /// The stored LSAs for `origins` we actually hold (pull answer).
    pub fn select(&self, origins: &[NodeId]) -> Vec<LinkStateAnnouncement> {
        let mut v: Vec<LinkStateAnnouncement> = origins
            .iter()
            .filter_map(|o| self.records.get(o).map(|r| r.lsa.clone()))
            .collect();
        v.sort_by_key(|l| l.origin);
        v
    }

    /// Snapshot the announced overlay as a graph over ids `0..n`.
    /// Links toward origins missing from the LSDB are kept (the target
    /// may simply not have announced yet); links from missing origins
    /// don't exist.
    pub fn graph(&self, n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for rec in self.records.values() {
            let from = rec.lsa.origin;
            if from.index() >= n {
                continue;
            }
            for l in &rec.lsa.links {
                if l.neighbor.index() < n && l.neighbor != from {
                    g.add_edge(from, l.neighbor, l.cost as f64);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::LinkEntry;

    fn lsa(origin: u32, seq: u64, links: &[(u32, f32)]) -> LinkStateAnnouncement {
        LinkStateAnnouncement {
            origin: NodeId(origin),
            seq,
            links: links
                .iter()
                .map(|&(n, c)| LinkEntry {
                    neighbor: NodeId(n),
                    cost: c,
                })
                .collect(),
        }
    }

    #[test]
    fn fresh_announcements_accepted_stale_rejected() {
        let mut db = Lsdb::new(60.0);
        assert!(db.apply(lsa(1, 5, &[(2, 1.0)]), 0.0));
        assert!(!db.apply(lsa(1, 5, &[(2, 1.0)]), 1.0), "duplicate seq");
        assert!(!db.apply(lsa(1, 4, &[(3, 1.0)]), 2.0), "older seq");
        assert!(db.apply(lsa(1, 6, &[(3, 1.0)]), 3.0), "newer seq");
        assert_eq!(db.seq_of(NodeId(1)), 6);
    }

    #[test]
    fn graph_reflects_latest_announcements() {
        let mut db = Lsdb::new(60.0);
        db.apply(lsa(0, 1, &[(1, 2.0), (2, 3.0)]), 0.0);
        db.apply(lsa(1, 1, &[(2, 1.5)]), 0.0);
        let g = db.graph(3);
        assert_eq!(g.edge_cost(NodeId(0), NodeId(1)), Some(2.0));
        assert_eq!(g.edge_cost(NodeId(1), NodeId(2)), Some(1.5));
        // Replacement drops old links.
        db.apply(lsa(0, 2, &[(2, 9.0)]), 1.0);
        let g = db.graph(3);
        assert_eq!(g.edge_cost(NodeId(0), NodeId(1)), None);
        assert_eq!(g.edge_cost(NodeId(0), NodeId(2)), Some(9.0));
    }

    #[test]
    fn expiry_drops_silent_origins() {
        let mut db = Lsdb::new(60.0);
        db.apply(lsa(0, 1, &[]), 0.0);
        db.apply(lsa(1, 1, &[]), 50.0);
        let dead = db.expire(70.0);
        assert_eq!(dead, vec![NodeId(0)]);
        assert_eq!(db.origins(), vec![NodeId(1)]);
    }

    #[test]
    fn refresh_resets_age() {
        let mut db = Lsdb::new(60.0);
        db.apply(lsa(0, 1, &[]), 0.0);
        db.apply(lsa(0, 2, &[]), 55.0);
        assert!(db.expire(100.0).is_empty());
    }

    #[test]
    fn remove_and_sync_roundtrip() {
        let mut db = Lsdb::new(60.0);
        db.apply(lsa(0, 3, &[(1, 1.0)]), 0.0);
        db.apply(lsa(1, 9, &[(0, 2.0)]), 0.0);
        let all = db.all();
        assert_eq!(all.len(), 2);
        // A newcomer applying the sync sees identical state.
        let mut db2 = Lsdb::new(60.0);
        for l in all {
            db2.apply(l, 0.0);
        }
        assert_eq!(db2.seq_of(NodeId(1)), 9);
        db2.remove(NodeId(0));
        assert_eq!(db2.origins(), vec![NodeId(1)]);
    }

    #[test]
    fn digest_diff_identifies_both_directions() {
        let mut a = Lsdb::new(60.0);
        let mut b = Lsdb::new(60.0);
        a.apply(lsa(0, 5, &[]), 0.0); // a fresher
        a.apply(lsa(1, 2, &[]), 0.0); // b fresher
        b.apply(lsa(1, 7, &[]), 0.0);
        b.apply(lsa(2, 1, &[]), 0.0); // only b
        let d = b.digest();
        assert_eq!(d, vec![(NodeId(1), 7), (NodeId(2), 1)]);
        let push: Vec<NodeId> = a.fresher_than(&d).iter().map(|l| l.origin).collect();
        assert_eq!(push, vec![NodeId(0)]);
        assert_eq!(a.stale_origins(&d), vec![NodeId(1), NodeId(2)]);
        assert_eq!(b.select(&[NodeId(2), NodeId(9)]).len(), 1);
    }

    #[test]
    fn out_of_range_ids_ignored_in_graph() {
        let mut db = Lsdb::new(60.0);
        db.apply(lsa(7, 1, &[(1, 1.0)]), 0.0);
        db.apply(lsa(0, 1, &[(9, 1.0), (1, 2.0)]), 0.0);
        let g = db.graph(3);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_cost(NodeId(0), NodeId(1)), Some(2.0));
    }

    mod anti_entropy {
        use super::*;
        use crate::codec::{decode, encode};
        use crate::message::Message;
        use egoist_netsim::fault::{FaultConfig, FaultInjector, Verdict};
        use proptest::prelude::*;

        /// Pass one message over the lossy link; `None` when dropped.
        fn send(inj: &mut FaultInjector, now: f64, msg: Message) -> Option<Message> {
            let mut frame = encode(&msg).to_vec();
            match inj.process(now, &mut frame) {
                Verdict::Drop | Verdict::Cut => None,
                // Corruption surfaces as a decode failure, i.e. a drop.
                _ => decode(&frame).ok(),
            }
        }

        /// One digest round initiated by `a`: digest → push + pull →
        /// pull answer, every leg individually lossy.
        fn round(a: &mut Lsdb, b: &mut Lsdb, inj: &mut FaultInjector, now: f64) {
            let digest = Message::LsdbDigest {
                from: NodeId(0),
                entries: a.digest(),
            };
            let Some(Message::LsdbDigest { entries, .. }) = send(inj, now, digest) else {
                return;
            };
            let push = Message::LsdbSync {
                lsas: b.fresher_than(&entries),
            };
            if let Some(Message::LsdbSync { lsas }) = send(inj, now, push) {
                for lsa in lsas {
                    a.apply(lsa, now);
                }
            }
            let pull = Message::LsdbPull {
                from: NodeId(1),
                origins: b.stale_origins(&entries),
            };
            if let Some(Message::LsdbPull { origins, .. }) = send(inj, now, pull) {
                let answer = Message::LsdbSync {
                    lsas: a.select(&origins),
                };
                if let Some(Message::LsdbSync { lsas }) = send(inj, now, answer) {
                    for lsa in lsas {
                        b.apply(lsa, now);
                    }
                }
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Two LSDBs with arbitrary overlapping/disjoint contents
            /// reconcile to identical databases within a bounded number
            /// of digest rounds, even with 30% seeded message loss.
            #[test]
            fn converges_under_loss(
                seed in any::<u64>(),
                xs in proptest::collection::vec((0u32..48, 1u64..1000), 0..40),
                ys in proptest::collection::vec((0u32..48, 1u64..1000), 0..40),
            ) {
                // An origin's LSA at seq `s` is one global value, so the
                // generated content must be a function of (origin, seq).
                let gen = |o: u32, s: u64| lsa(o, s, &[(o + 1, (s % 7) as f32)]);
                let mut a = Lsdb::new(1e9);
                let mut b = Lsdb::new(1e9);
                for (o, s) in xs {
                    a.apply(gen(o, s), 0.0);
                }
                for (o, s) in ys {
                    b.apply(gen(o, s), 0.0);
                }
                let mut inj = FaultInjector::new(FaultConfig::lossy(0.3), seed);
                let mut rounds = 0usize;
                while a.digest() != b.digest() {
                    prop_assert!(rounds < 64, "no convergence after 64 digest rounds");
                    round(&mut a, &mut b, &mut inj, rounds as f64);
                    rounds += 1;
                }
                // Same digests means same databases (seq identifies the LSA).
                prop_assert_eq!(a.all(), b.all());
            }
        }
    }
}
