//! Binary framing for EGOIST messages.
//!
//! Frame layout (all integers big-endian):
//!
//! ```text
//! +--------+---------+------+----------+------------------+----------+
//! | magic  | version | type | len      | payload          | checksum |
//! | u16    | u8      | u8   | u32      | len bytes        | u32      |
//! +--------+---------+------+----------+------------------+----------+
//! ```
//!
//! The checksum is FNV-1a over header+payload. Decoding is *total*: any
//! malformed, truncated, or corrupted input yields a [`DecodeError`],
//! never a panic — the property the fault-injection tests rely on.

use crate::message::{LinkEntry, LinkStateAnnouncement, Message};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use egoist_graph::NodeId;

/// Frame magic ("EG").
pub const MAGIC: u16 = 0x4547;
/// Protocol version.
pub const VERSION: u8 = 1;
/// Upper bound on accepted payload length (defends against corrupt
/// length fields).
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Why a frame failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    TooShort,
    BadMagic,
    BadVersion(u8),
    BadChecksum,
    BadType(u8),
    BadLength,
    TrailingBytes,
    Truncated,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for DecodeError {}

fn fnv1a(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for b in data {
        h ^= *b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

mod tag {
    pub const BOOTSTRAP_REQUEST: u8 = 1;
    pub const BOOTSTRAP_RESPONSE: u8 = 2;
    pub const HELLO: u8 = 3;
    pub const LSDB_SYNC: u8 = 4;
    pub const LINK_STATE: u8 = 5;
    pub const PING: u8 = 6;
    pub const PONG: u8 = 7;
    pub const HEARTBEAT: u8 = 8;
    pub const LEAVE: u8 = 9;
    pub const LSDB_DIGEST: u8 = 10;
    pub const LSDB_PULL: u8 = 11;
}

fn put_lsa(buf: &mut BytesMut, lsa: &LinkStateAnnouncement) {
    buf.put_u32(lsa.origin.0);
    buf.put_u64(lsa.seq);
    buf.put_u16(lsa.links.len() as u16);
    for l in &lsa.links {
        buf.put_u32(l.neighbor.0);
        buf.put_f32(l.cost);
    }
}

fn get_lsa(buf: &mut Bytes) -> Result<LinkStateAnnouncement, DecodeError> {
    if buf.remaining() < 14 {
        return Err(DecodeError::Truncated);
    }
    let origin = NodeId(buf.get_u32());
    let seq = buf.get_u64();
    let n = buf.get_u16() as usize;
    if buf.remaining() < n * 8 {
        return Err(DecodeError::Truncated);
    }
    let mut links = Vec::with_capacity(n);
    for _ in 0..n {
        let neighbor = NodeId(buf.get_u32());
        let cost = buf.get_f32();
        links.push(LinkEntry { neighbor, cost });
    }
    Ok(LinkStateAnnouncement { origin, seq, links })
}

/// Encode a message into a complete frame.
pub fn encode(msg: &Message) -> Bytes {
    let mut payload = BytesMut::with_capacity(64);
    let ty = match msg {
        Message::BootstrapRequest { from } => {
            payload.put_u32(from.0);
            tag::BOOTSTRAP_REQUEST
        }
        Message::BootstrapResponse { peers } => {
            payload.put_u16(peers.len() as u16);
            for p in peers {
                payload.put_u32(p.0);
            }
            tag::BOOTSTRAP_RESPONSE
        }
        Message::Hello { from } => {
            payload.put_u32(from.0);
            tag::HELLO
        }
        Message::LsdbSync { lsas } => {
            payload.put_u16(lsas.len() as u16);
            for lsa in lsas {
                put_lsa(&mut payload, lsa);
            }
            tag::LSDB_SYNC
        }
        Message::LsdbDigest { from, entries } => {
            payload.put_u32(from.0);
            payload.put_u16(entries.len() as u16);
            for (origin, seq) in entries {
                payload.put_u32(origin.0);
                payload.put_u64(*seq);
            }
            tag::LSDB_DIGEST
        }
        Message::LsdbPull { from, origins } => {
            payload.put_u32(from.0);
            payload.put_u16(origins.len() as u16);
            for o in origins {
                payload.put_u32(o.0);
            }
            tag::LSDB_PULL
        }
        Message::LinkState { lsa, ttl } => {
            payload.put_u8(*ttl);
            put_lsa(&mut payload, lsa);
            tag::LINK_STATE
        }
        Message::Ping { from, nonce, hb } => {
            payload.put_u32(from.0);
            payload.put_u64(*nonce);
            payload.put_u8(*hb as u8);
            // Pad to the paper's 320-bit (40-byte) ICMP echo size.
            payload.put_bytes(0, 40usize.saturating_sub(13));
            tag::PING
        }
        Message::Pong { from, nonce, hb } => {
            payload.put_u32(from.0);
            payload.put_u64(*nonce);
            payload.put_u8(*hb as u8);
            payload.put_bytes(0, 40usize.saturating_sub(13));
            tag::PONG
        }
        Message::Heartbeat { from } => {
            payload.put_u32(from.0);
            tag::HEARTBEAT
        }
        Message::Leave { from } => {
            payload.put_u32(from.0);
            tag::LEAVE
        }
    };

    let mut frame = BytesMut::with_capacity(payload.len() + 12);
    frame.put_u16(MAGIC);
    frame.put_u8(VERSION);
    frame.put_u8(ty);
    frame.put_u32(payload.len() as u32);
    frame.extend_from_slice(&payload);
    let ck = fnv1a(&frame);
    frame.put_u32(ck);
    frame.freeze()
}

/// Decode one complete frame.
pub fn decode(frame: &[u8]) -> Result<Message, DecodeError> {
    if frame.len() < 12 {
        return Err(DecodeError::TooShort);
    }
    let body_len = frame.len() - 4;
    let claimed_ck = u32::from_be_bytes(frame[body_len..].try_into().expect("4 bytes"));
    if fnv1a(&frame[..body_len]) != claimed_ck {
        return Err(DecodeError::BadChecksum);
    }
    let mut buf = Bytes::copy_from_slice(&frame[..body_len]);
    let magic = buf.get_u16();
    if magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let ty = buf.get_u8();
    let len = buf.get_u32() as usize;
    if len > MAX_PAYLOAD || len != buf.remaining() {
        return Err(DecodeError::BadLength);
    }

    let msg = match ty {
        tag::BOOTSTRAP_REQUEST => {
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            Message::BootstrapRequest {
                from: NodeId(buf.get_u32()),
            }
        }
        tag::BOOTSTRAP_RESPONSE => {
            if buf.remaining() < 2 {
                return Err(DecodeError::Truncated);
            }
            let n = buf.get_u16() as usize;
            if buf.remaining() < n * 4 {
                return Err(DecodeError::Truncated);
            }
            let peers = (0..n).map(|_| NodeId(buf.get_u32())).collect();
            Message::BootstrapResponse { peers }
        }
        tag::HELLO => {
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            Message::Hello {
                from: NodeId(buf.get_u32()),
            }
        }
        tag::LSDB_SYNC => {
            if buf.remaining() < 2 {
                return Err(DecodeError::Truncated);
            }
            let n = buf.get_u16() as usize;
            let mut lsas = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                lsas.push(get_lsa(&mut buf)?);
            }
            Message::LsdbSync { lsas }
        }
        tag::LINK_STATE => {
            if buf.remaining() < 1 {
                return Err(DecodeError::Truncated);
            }
            let ttl = buf.get_u8();
            Message::LinkState {
                lsa: get_lsa(&mut buf)?,
                ttl,
            }
        }
        tag::PING | tag::PONG => {
            if buf.remaining() < 13 {
                return Err(DecodeError::Truncated);
            }
            let from = NodeId(buf.get_u32());
            let nonce = buf.get_u64();
            let hb = buf.get_u8() != 0;
            buf.advance(buf.remaining()); // padding
            if ty == tag::PING {
                Message::Ping { from, nonce, hb }
            } else {
                Message::Pong { from, nonce, hb }
            }
        }
        tag::HEARTBEAT => {
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            Message::Heartbeat {
                from: NodeId(buf.get_u32()),
            }
        }
        tag::LEAVE => {
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            Message::Leave {
                from: NodeId(buf.get_u32()),
            }
        }
        tag::LSDB_DIGEST => {
            if buf.remaining() < 6 {
                return Err(DecodeError::Truncated);
            }
            let from = NodeId(buf.get_u32());
            let n = buf.get_u16() as usize;
            if buf.remaining() < n * 12 {
                return Err(DecodeError::Truncated);
            }
            let entries = (0..n)
                .map(|_| (NodeId(buf.get_u32()), buf.get_u64()))
                .collect();
            Message::LsdbDigest { from, entries }
        }
        tag::LSDB_PULL => {
            if buf.remaining() < 6 {
                return Err(DecodeError::Truncated);
            }
            let from = NodeId(buf.get_u32());
            let n = buf.get_u16() as usize;
            if buf.remaining() < n * 4 {
                return Err(DecodeError::Truncated);
            }
            let origins = (0..n).map(|_| NodeId(buf.get_u32())).collect();
            Message::LsdbPull { from, origins }
        }
        other => return Err(DecodeError::BadType(other)),
    };
    if buf.has_remaining() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::BootstrapRequest { from: NodeId(7) },
            Message::BootstrapResponse {
                peers: vec![NodeId(1), NodeId(2), NodeId(3)],
            },
            Message::Hello { from: NodeId(0) },
            Message::LsdbSync {
                lsas: vec![LinkStateAnnouncement {
                    origin: NodeId(4),
                    seq: 42,
                    links: vec![
                        LinkEntry {
                            neighbor: NodeId(5),
                            cost: 12.5,
                        },
                        LinkEntry {
                            neighbor: NodeId(6),
                            cost: 0.25,
                        },
                    ],
                }],
            },
            Message::LsdbDigest {
                from: NodeId(2),
                entries: vec![(NodeId(4), 42), (NodeId(9), 7)],
            },
            Message::LsdbPull {
                from: NodeId(5),
                origins: vec![NodeId(4), NodeId(8)],
            },
            Message::LinkState {
                lsa: LinkStateAnnouncement {
                    origin: NodeId(9),
                    seq: 1,
                    links: vec![],
                },
                ttl: 3,
            },
            Message::Ping {
                from: NodeId(3),
                nonce: 0xDEADBEEF,
                hb: false,
            },
            Message::Pong {
                from: NodeId(4),
                nonce: 0xDEADBEEF,
                hb: true,
            },
            Message::Heartbeat { from: NodeId(2) },
            Message::Leave { from: NodeId(1) },
        ]
    }

    #[test]
    fn roundtrip_all_message_kinds() {
        for m in sample_messages() {
            let f = encode(&m);
            assert_eq!(decode(&f).expect("decode"), m, "roundtrip failed for {m:?}");
        }
    }

    #[test]
    fn ping_frames_match_paper_size() {
        // §4.3 says ICMP echo ≈ 320 bits = 40 bytes; our ping payload is
        // exactly that, plus the 12-byte frame envelope.
        let f = encode(&Message::Ping {
            from: NodeId(0),
            nonce: 0,
            hb: false,
        });
        assert_eq!(f.len(), 40 + 12);
        // The heartbeat flag rides in the padding; same wire size.
        let hb = encode(&Message::Ping {
            from: NodeId(0),
            nonce: 0,
            hb: true,
        });
        assert_eq!(hb.len(), 40 + 12);
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let mut f = encode(&Message::Hello { from: NodeId(1) }).to_vec();
        let last = f.len() - 1;
        f[last] ^= 0xFF;
        assert_eq!(decode(&f), Err(DecodeError::BadChecksum));
    }

    #[test]
    fn short_frames_rejected() {
        assert_eq!(decode(&[]), Err(DecodeError::TooShort));
        assert_eq!(decode(&[0x45; 5]), Err(DecodeError::TooShort));
    }

    #[test]
    fn bad_magic_rejected() {
        let f = encode(&Message::Hello { from: NodeId(1) });
        let mut v = f.to_vec();
        v[0] = 0x00;
        // Checksum covers the magic, so flipping it without fixing the
        // checksum fails there first; fix the checksum to reach BadMagic.
        let body = v.len() - 4;
        let ck = super::fnv1a(&v[..body]);
        v[body..].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(decode(&v), Err(DecodeError::BadMagic));
    }

    #[test]
    fn every_single_bitflip_is_rejected_or_harmless() {
        // Fault injection flips one bit anywhere; decode must never panic
        // and must almost always reject (the checksum catches it).
        let f = encode(&Message::LinkState {
            lsa: LinkStateAnnouncement {
                origin: NodeId(1),
                seq: 77,
                links: vec![LinkEntry {
                    neighbor: NodeId(2),
                    cost: 3.5,
                }],
            },
            ttl: 2,
        });
        for byte in 0..f.len() {
            for bit in 0..8 {
                let mut v = f.to_vec();
                v[byte] ^= 1 << bit;
                let _ = decode(&v); // must not panic
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Arbitrary bytes never panic the decoder.
        #[test]
        fn decode_is_total(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode(&data);
        }

        /// Roundtrip for arbitrary LSAs.
        #[test]
        fn lsa_roundtrip(origin in 0u32..1000, seq in 0u64..u64::MAX, ttl in 0u8..8,
                         links in proptest::collection::vec((0u32..1000, 0.0f32..1e6), 0..64)) {
            let lsa = LinkStateAnnouncement {
                origin: NodeId(origin),
                seq,
                links: links
                    .into_iter()
                    .map(|(n, c)| LinkEntry { neighbor: NodeId(n), cost: c })
                    .collect(),
            };
            let m = Message::LinkState { lsa, ttl };
            prop_assert_eq!(decode(&encode(&m)).unwrap(), m);
        }

        /// Roundtrip for arbitrary anti-entropy digests and pulls.
        #[test]
        fn digest_roundtrip(from in 0u32..1000,
                            entries in proptest::collection::vec((0u32..1000, 0u64..u64::MAX), 0..128)) {
            let m = Message::LsdbDigest {
                from: NodeId(from),
                entries: entries.iter().map(|&(o, s)| (NodeId(o), s)).collect(),
            };
            prop_assert_eq!(decode(&encode(&m)).unwrap(), m);
            let p = Message::LsdbPull {
                from: NodeId(from),
                origins: entries.iter().map(|&(o, _)| NodeId(o)).collect(),
            };
            prop_assert_eq!(decode(&encode(&p)).unwrap(), p);
        }
    }
}
