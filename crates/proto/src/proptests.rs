//! Property tests for the protocol state machines.

use crate::lsdb::Lsdb;
use crate::message::{LinkEntry, LinkStateAnnouncement};
use egoist_graph::NodeId;
use proptest::prelude::*;

fn arb_lsa() -> impl Strategy<Value = LinkStateAnnouncement> {
    (
        0u32..20,
        0u64..50,
        proptest::collection::vec((0u32..20, 0.1f32..100.0), 0..6),
    )
        .prop_map(|(origin, seq, links)| LinkStateAnnouncement {
            origin: NodeId(origin),
            seq,
            links: links
                .into_iter()
                .filter(|&(n, _)| n != origin)
                .map(|(n, c)| LinkEntry {
                    neighbor: NodeId(n),
                    cost: c,
                })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The LSDB is last-writer-wins per origin with monotone sequence
    /// numbers: after applying any stream of LSAs, each origin's stored
    /// seq is the maximum seen for it, and apply() returned true exactly
    /// when the max advanced.
    #[test]
    fn lsdb_keeps_max_seq_per_origin(lsas in proptest::collection::vec(arb_lsa(), 1..40)) {
        let mut db = Lsdb::new(1e9);
        let mut expected_max: std::collections::HashMap<NodeId, u64> = Default::default();
        for (t, lsa) in lsas.iter().enumerate() {
            let prev = expected_max.get(&lsa.origin).copied();
            let fresh = db.apply(lsa.clone(), t as f64);
            let should_be_fresh = prev.map(|p| lsa.seq > p).unwrap_or(true);
            prop_assert_eq!(fresh, should_be_fresh, "apply() freshness mismatch");
            if should_be_fresh {
                expected_max.insert(lsa.origin, lsa.seq);
            }
        }
        for (origin, seq) in expected_max {
            prop_assert_eq!(db.seq_of(origin), seq);
        }
    }

    /// Syncing a fresh LSDB from `all()` reproduces identical state
    /// (idempotent anti-entropy).
    #[test]
    fn lsdb_sync_is_lossless(lsas in proptest::collection::vec(arb_lsa(), 1..30)) {
        let mut a = Lsdb::new(1e9);
        for (t, lsa) in lsas.into_iter().enumerate() {
            a.apply(lsa, t as f64);
        }
        let mut b = Lsdb::new(1e9);
        for lsa in a.all() {
            b.apply(lsa, 0.0);
        }
        prop_assert_eq!(a.origins(), b.origins());
        for o in a.origins() {
            prop_assert_eq!(a.seq_of(o), b.seq_of(o));
        }
        // Graph snapshots agree edge for edge.
        let (ga, gb) = (a.graph(20), b.graph(20));
        let mut ea: Vec<_> = ga.edges().collect();
        let mut eb: Vec<_> = gb.edges().collect();
        ea.sort_by_key(|x| (x.0, x.1));
        eb.sort_by_key(|x| (x.0, x.1));
        prop_assert_eq!(ea, eb);
    }

    /// Re-applying a stream in any interleaving with duplicates never
    /// regresses state (duplicates and stale frames are no-ops).
    #[test]
    fn lsdb_is_monotone_under_duplicates(lsas in proptest::collection::vec(arb_lsa(), 1..20)) {
        let mut once = Lsdb::new(1e9);
        for (t, lsa) in lsas.iter().enumerate() {
            once.apply(lsa.clone(), t as f64);
        }
        // Apply everything twice, second pass shuffled by reversal.
        let mut twice = Lsdb::new(1e9);
        for (t, lsa) in lsas.iter().enumerate() {
            twice.apply(lsa.clone(), t as f64);
        }
        for (t, lsa) in lsas.iter().rev().enumerate() {
            twice.apply(lsa.clone(), (lsas.len() + t) as f64);
        }
        prop_assert_eq!(once.origins(), twice.origins());
        for o in once.origins() {
            prop_assert_eq!(once.seq_of(o), twice.seq_of(o));
        }
    }
}
