//! # egoist-proto — the EGOIST overlay routing protocol
//!
//! The deployable half of the reproduction: the link-state overlay
//! protocol of §3.1 as an async (tokio) implementation.
//!
//! * [`message`] — the wire messages: bootstrap handshake, link-state
//!   announcements (id + neighbor ids + link costs, §4.3), LSDB sync for
//!   newcomers, ping/pong measurement probes, heartbeats for donated
//!   links, leave notices.
//! * [`codec`] — length-prefixed binary framing over [`bytes`], with
//!   magic/version/checksum; decoding is total (corrupt frames are
//!   rejected, never panic) — exercised by proptest and fault injection.
//! * [`lsdb`] — the link-state database: sequence-numbered announcements,
//!   flood deduplication, aging, and graph snapshots.
//! * [`transport`] — the [`transport::Transport`] trait with two
//!   implementations: real UDP sockets ([`transport::UdpTransport`]) and a
//!   deterministic in-process simulator ([`transport::SimTransport`]) that
//!   routes frames through `egoist-netsim` delays and fault injection.
//! * [`node`] — [`node::EgoistNode`]: join via bootstrap, periodic
//!   announcements (`T_announce`), staggered wiring epochs (`T`),
//!   measurement (ping RTT/2 with EWMA), selfish re-wiring through
//!   `egoist-core` policies, immediate/delayed re-wiring modes, optional
//!   cost inflation (free riding).
//! * [`bootstrap`] — the bootstrap service answering join requests with
//!   candidate peers.
//! * [`overhead`] — byte accounting per message class, checked against
//!   §4.3's analytic overhead formulas.
//! * [`audit`] — the §3.4 countermeasure: compare declared link-state
//!   costs against independent (Vivaldi) estimates and flag liars.
//! * [`adversary`] — scripted Sybil swarms and eclipse lures on a
//!   shared endpoint budget, for exercising the peer-scoring defenses.
//! * [`fleet`] — the deterministic adversarial fleet harness: a whole
//!   overlay plus adversaries under a `FaultPlan`, reported as
//!   byte-reproducible robustness JSON.

pub mod adversary;
pub mod audit;
pub mod bootstrap;
pub mod codec;
pub mod fleet;
pub mod lsdb;
pub mod message;
pub mod node;
pub mod overhead;
pub mod transport;

pub use fleet::{run_fleet, FleetConfig, RobustnessReport};
pub use message::Message;
pub use node::{EgoistNode, NodeConfig, NodeHandle, RewireMode};
pub use transport::{SimNet, SimTransport, Transport, UdpTransport};

#[cfg(test)]
mod proptests;
