//! Link-state audits (§3.4): catching free riders on the wire.
//!
//! "Nodes could periodically select a random subset of remote nodes and
//! 'audit them' by asking the coordinate system for the delays of the
//! outgoing links of the audited nodes and comparing them to the actual
//! values that the audited nodes declare on the link-state routing
//! protocol."
//!
//! [`Auditor`] implements exactly that: it reads declared link costs out
//! of an [`Lsdb`] snapshot, obtains independent estimates from a Vivaldi
//! [`CoordinateSystem`] (or any estimator), and flags origins whose
//! declarations deviate beyond a tolerance on more than a configurable
//! fraction of audited links. Tolerances must absorb both coordinate
//! embedding error and genuine delay variation, so the defaults are
//! deliberately loose — a ×2 inflation still towers over them.

use crate::lsdb::Lsdb;
use egoist_coord::CoordinateSystem;
use egoist_graph::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Audit configuration.
#[derive(Clone, Debug)]
pub struct AuditConfig {
    /// Nodes audited per round.
    pub nodes_per_round: usize,
    /// Links checked per audited node.
    pub links_per_node: usize,
    /// Relative deviation beyond which a link is suspicious.
    pub link_tolerance: f64,
    /// Fraction of suspicious links that flags the node.
    pub flag_fraction: f64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            nodes_per_round: 5,
            links_per_node: 4,
            link_tolerance: 0.6,
            flag_fraction: 0.5,
        }
    }
}

/// Outcome of auditing one origin.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditVerdict {
    pub origin: NodeId,
    pub links_checked: usize,
    pub links_suspicious: usize,
    pub flagged: bool,
}

/// The §3.4 auditor.
pub struct Auditor {
    pub cfg: AuditConfig,
}

impl Auditor {
    /// Auditor with the given configuration.
    pub fn new(cfg: AuditConfig) -> Self {
        Auditor { cfg }
    }

    /// Audit one round: sample origins from the LSDB and compare their
    /// declared out-link costs against `estimate(from, to)`.
    pub fn audit_round(
        &self,
        lsdb: &Lsdb,
        mut estimate: impl FnMut(NodeId, NodeId) -> f64,
        rng: &mut StdRng,
    ) -> Vec<AuditVerdict> {
        let mut origins = lsdb.origins();
        origins.shuffle(rng);
        origins.truncate(self.cfg.nodes_per_round);
        origins
            .into_iter()
            .map(|origin| self.audit_origin(lsdb, origin, &mut estimate))
            .collect()
    }

    /// Audit a single origin's announced links.
    pub fn audit_origin(
        &self,
        lsdb: &Lsdb,
        origin: NodeId,
        estimate: &mut impl FnMut(NodeId, NodeId) -> f64,
    ) -> AuditVerdict {
        let mut checked = 0usize;
        let mut suspicious = 0usize;
        for lsa in lsdb.all() {
            if lsa.origin != origin {
                continue;
            }
            for link in lsa.links.iter().take(self.cfg.links_per_node) {
                let est = estimate(origin, link.neighbor);
                if !est.is_finite() || est <= 0.0 {
                    continue;
                }
                checked += 1;
                let declared = link.cost as f64;
                if (declared - est).abs() / est > self.cfg.link_tolerance {
                    suspicious += 1;
                }
            }
        }
        let flagged = checked > 0 && (suspicious as f64) >= self.cfg.flag_fraction * checked as f64;
        AuditVerdict {
            origin,
            links_checked: checked,
            links_suspicious: suspicious,
            flagged,
        }
    }

    /// Convenience: audit every LSDB origin against a coordinate system's
    /// predictions (symmetric estimates, as pyxida provides).
    pub fn audit_all_with_coords(
        &self,
        lsdb: &Lsdb,
        coords: &CoordinateSystem,
    ) -> Vec<AuditVerdict> {
        lsdb.origins()
            .into_iter()
            .map(|origin| {
                self.audit_origin(lsdb, origin, &mut |a: NodeId, b: NodeId| {
                    if a.index() < coords.len() && b.index() < coords.len() {
                        coords.coord(a.index()).distance(&coords.coord(b.index()))
                    } else {
                        f64::NAN
                    }
                })
            })
            .collect()
    }
}

/// Verdict on one second-hand (third-party) link claim.
///
/// A per-node audit (§3.4) only checks links that terminate at the
/// auditor, so a lure that forges links *between third parties* slides
/// straight past it. [`ClaimRanker`] closes that hole with the triangle
/// inequality: for a claimed link `o → x`, any node holding delay
/// estimates to both endpoints knows `|est(me,o) − est(me,x)|` is a hard
/// lower bound on the true delay `d(o,x)`. A claim far below that bound
/// is provably false — no embedding error excuse applies, because the
/// bound uses the node's *own measured* delays, not coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClaimVerdict {
    /// Claim is consistent with the triangle lower bound.
    Corroborated,
    /// Claim violates the lower bound beyond slack — provably false.
    Contradicted,
    /// No usable estimates to either endpoint; cannot rank.
    Unknown,
}

/// Ranks second-hand link claims against the triangle lower bound.
#[derive(Clone, Copy, Debug)]
pub struct ClaimRanker {
    /// Multiplicative slack on the claimed cost absorbing genuine delay
    /// variation (claims may honestly sit below a noisy bound by this
    /// relative margin).
    pub slack: f64,
    /// Additive margin (metric units) shielding near-zero claims from
    /// measurement noise.
    pub margin: f64,
    /// Triangle-inequality-violation allowance, as a fraction of the
    /// larger endpoint estimate. Measured delay spaces are not exact
    /// metrics — routing-policy asymmetry means `d(me,o) − d(me,x)` can
    /// exceed `d(o,x)` by a slice of the *long* paths even between two
    /// nearby remote nodes — so the bound only fires past this
    /// allowance. Deployments on a symmetric substrate (the simulated
    /// fleet's planar matrix) can set it to 0 for the exact bound.
    pub tiv: f64,
}

impl Default for ClaimRanker {
    fn default() -> Self {
        ClaimRanker {
            slack: 0.5,
            margin: 2.0,
            tiv: 0.4,
        }
    }
}

impl ClaimRanker {
    /// Rank the claim `origin → neighbor` at `claimed` cost, given this
    /// node's own delay estimates to both endpoints (`NaN`/non-positive
    /// values mean "no estimate").
    pub fn rank(&self, est_to_origin: f64, est_to_neighbor: f64, claimed: f64) -> ClaimVerdict {
        let usable = |e: f64| e.is_finite() && e > 0.0;
        if !usable(est_to_origin) || !usable(est_to_neighbor) {
            return ClaimVerdict::Unknown;
        }
        // Triangle inequality: d(o,x) ≥ |d(me,o) − d(me,x)|, up to the
        // substrate's asymmetry allowance on the long legs.
        let lower_bound =
            (est_to_origin - est_to_neighbor).abs() - self.tiv * est_to_origin.max(est_to_neighbor);
        if claimed * (1.0 + self.slack) + self.margin < lower_bound {
            ClaimVerdict::Contradicted
        } else {
            ClaimVerdict::Corroborated
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{LinkEntry, LinkStateAnnouncement};
    use egoist_netsim::DelayModel;
    use rand::SeedableRng;

    /// Build an LSDB where every node announces its 3 ring links with
    /// true costs, except the liars who inflate by `factor`.
    fn lsdb_with_liars(d: &egoist_graph::DistanceMatrix, liars: &[u32], factor: f32) -> Lsdb {
        let n = d.len();
        let mut db = Lsdb::new(1e9);
        for i in 0..n {
            let links = (1..=3usize)
                .map(|o| {
                    let j = (i + o) % n;
                    let mut cost = d.at(i, j) as f32;
                    if liars.contains(&(i as u32)) {
                        cost *= factor;
                    }
                    LinkEntry {
                        neighbor: NodeId::from_index(j),
                        cost,
                    }
                })
                .collect();
            db.apply(
                LinkStateAnnouncement {
                    origin: NodeId::from_index(i),
                    seq: 1,
                    links,
                },
                0.0,
            );
        }
        db
    }

    #[test]
    fn perfect_estimator_catches_inflators_exactly() {
        let d = DelayModel::planetlab_50(3).base().clone();
        let db = lsdb_with_liars(&d, &[7, 21], 2.0);
        let auditor = Auditor::new(AuditConfig::default());
        for origin in db.origins() {
            let v = auditor.audit_origin(&db, origin, &mut |a: NodeId, b: NodeId| d.get(a, b));
            assert_eq!(
                v.flagged,
                origin == NodeId(7) || origin == NodeId(21),
                "verdict for {origin}: {v:?}"
            );
        }
    }

    #[test]
    fn coordinate_estimates_catch_big_liars() {
        let model = DelayModel::planetlab_50(5);
        let d = model.base().clone();
        let mut coords = egoist_coord::CoordinateSystem::new(50, 5);
        coords.converge(&d, 60);
        // Liars inflate 4x: far beyond Vivaldi's embedding error.
        let db = lsdb_with_liars(&d, &[11], 4.0);
        let auditor = Auditor::new(AuditConfig {
            link_tolerance: 1.2,
            ..Default::default()
        });
        let verdicts = auditor.audit_all_with_coords(&db, &coords);
        let flagged: Vec<NodeId> = verdicts
            .iter()
            .filter(|v| v.flagged)
            .map(|v| v.origin)
            .collect();
        assert!(
            flagged.contains(&NodeId(11)),
            "the 4x liar must be flagged; flagged = {flagged:?}"
        );
        // False positives stay rare (coordinate error can cause a few).
        assert!(flagged.len() <= 5, "too many false positives: {flagged:?}");
    }

    #[test]
    fn audit_round_samples_bounded_subset() {
        let d = DelayModel::planetlab_50(7).base().clone();
        let db = lsdb_with_liars(&d, &[], 1.0);
        let auditor = Auditor::new(AuditConfig {
            nodes_per_round: 3,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let verdicts = auditor.audit_round(&db, |a: NodeId, b: NodeId| d.get(a, b), &mut rng);
        assert_eq!(verdicts.len(), 3);
        assert!(verdicts.iter().all(|v| !v.flagged));
    }

    #[test]
    fn deflation_is_flagged_too() {
        let d = DelayModel::planetlab_50(9).base().clone();
        let db = lsdb_with_liars(&d, &[0], 0.3);
        let auditor = Auditor::new(AuditConfig::default());
        let v = auditor.audit_origin(&db, NodeId(0), &mut |a: NodeId, b: NodeId| d.get(a, b));
        assert!(v.flagged, "0.3x deflation must be flagged: {v:?}");
    }

    #[test]
    fn unknown_estimates_are_skipped() {
        let d = DelayModel::planetlab_50(11).base().clone();
        let db = lsdb_with_liars(&d, &[4], 2.0);
        let auditor = Auditor::new(AuditConfig::default());
        let v = auditor.audit_origin(&db, NodeId(4), &mut |_, _| f64::NAN);
        assert_eq!(v.links_checked, 0);
        assert!(!v.flagged, "no evidence, no flag");
    }

    #[test]
    fn claim_ranker_contradicts_impossibly_cheap_third_party_links() {
        let r = ClaimRanker::default();
        // I measure 5 ms to the origin and 80 ms to the claimed
        // neighbor; the link between them cannot be under 75 ms, so a
        // 1 ms claim is provably forged even with 50% slack + 2 ms.
        assert_eq!(r.rank(5.0, 80.0, 1.0), ClaimVerdict::Contradicted);
        // An honest 90 ms claim clears the bound easily.
        assert_eq!(r.rank(5.0, 80.0, 90.0), ClaimVerdict::Corroborated);
        // Claims above the bound are never contradicted (inflation is
        // the per-node audit's job, not the triangle bound's).
        assert_eq!(r.rank(5.0, 80.0, 500.0), ClaimVerdict::Corroborated);
    }

    #[test]
    fn claim_ranker_tolerates_noise_near_the_bound() {
        let r = ClaimRanker::default();
        // Lower bound 20; a 15 claim is within 50% slack (15·1.5 = 22.5).
        assert_eq!(r.rank(30.0, 50.0, 15.0), ClaimVerdict::Corroborated);
        // Near-zero endpoints: additive margin shields tiny claims.
        assert_eq!(r.rank(1.0, 2.5, 0.1), ClaimVerdict::Corroborated);
    }

    #[test]
    fn claim_ranker_unknown_without_estimates() {
        let r = ClaimRanker::default();
        assert_eq!(r.rank(f64::NAN, 10.0, 1.0), ClaimVerdict::Unknown);
        assert_eq!(r.rank(10.0, 0.0, 1.0), ClaimVerdict::Unknown);
        assert_eq!(r.rank(-1.0, 10.0, 1.0), ClaimVerdict::Unknown);
    }

    #[test]
    fn claim_ranker_never_contradicts_true_distances() {
        // On a real metric every true d(o,x) satisfies the triangle
        // inequality, so honest claims are never contradicted from any
        // vantage point.
        let d = DelayModel::planetlab_50(13).base().clone();
        let r = ClaimRanker::default();
        let n = d.len();
        for me in 0..n {
            for o in 0..n {
                for x in 0..n {
                    if me == o || me == x || o == x {
                        continue;
                    }
                    let v = r.rank(d.at(me, o), d.at(me, x), d.at(o, x));
                    assert_ne!(
                        v,
                        ClaimVerdict::Contradicted,
                        "honest claim contradicted: me={me} o={o} x={x}"
                    );
                }
            }
        }
    }
}
