//! The EGOIST node agent.
//!
//! One `EgoistNode` per overlay member, generic over the transport. The
//! agent implements the full §3.1 lifecycle:
//!
//! 1. **Join**: query the bootstrap node, `Hello` a returned peer, receive
//!    an `LsdbSync` with the full residual graph.
//! 2. **Measure**: ping every known node once per epoch (the `O(n)`
//!    candidate measurement); EWMA of RTT/2 is the direct-cost estimate.
//!    Established links are effectively monitored continuously by use.
//! 3. **Re-wire**: once per (staggered) epoch `T`, compute the policy's
//!    wiring over the announced residual graph — the CPU-bound best
//!    response runs under `spawn_blocking`, per async best practice.
//! 4. **Announce**: flood a sequence-numbered LSA of established links
//!    every `T_announce`; forward fresh LSAs from others to overlay
//!    neighbors (link-state flooding with LSDB dedup).
//! 5. **React to failures**: in [`RewireMode::Immediate`] a dead neighbor
//!    (ping silence beyond the liveness timeout) triggers an immediate
//!    re-wire; in [`RewireMode::Delayed`] (the paper's default) repair
//!    waits for the wiring epoch.
//!
//! A node configured with `cost_inflation > 1` is a §4.5 free rider: the
//! costs in its *announcements* are scaled, while its own decisions use
//! its honest measurements.

use crate::codec::{decode, encode};
use crate::lsdb::Lsdb;
use crate::message::{LinkEntry, LinkStateAnnouncement, Message, MessageClass};
use crate::overhead::OverheadCounters;
use crate::transport::Transport;
use egoist_core::cost::Preferences;
use egoist_core::policies::{PolicyKind, WiringContext};
use egoist_graph::apsp::apsp;
use egoist_graph::NodeId;
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;
use tokio::sync::oneshot;
use tokio::time::Instant;

/// Obs handles for the protocol layer, per-class send/receive tables
/// indexed by [`MessageClass::slot`]. These mirror the per-node
/// [`OverheadCounters`] in aggregate: every frame accounted there is
/// also counted here (`tests/obs_consistency.rs` pins the equality).
/// Timestamps fed to the convergence histogram come from the node's
/// virtual clock (`now_secs`), so paused-runtime tests see exact values.
struct ProtoObs {
    send_frames: Vec<egoist_obs::Counter>,
    send_bytes: Vec<egoist_obs::Counter>,
    recv_frames: Vec<egoist_obs::Counter>,
    recv_bytes: Vec<egoist_obs::Counter>,
    decode_errors: egoist_obs::Counter,
    join_secs: egoist_obs::Histogram,
    join_retries: egoist_obs::Counter,
    banned_frames: egoist_obs::Counter,
    demotions: egoist_obs::Counter,
    evictions: egoist_obs::Counter,
    promotions: egoist_obs::Counter,
    passive_probes: egoist_obs::Counter,
    peer_score: egoist_obs::Histogram,
}

fn proto_obs() -> &'static ProtoObs {
    static OBS: OnceLock<ProtoObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = egoist_obs::registry();
        let table = |dir: &str, what: &str| {
            MessageClass::ALL
                .iter()
                .map(|c| r.counter(&format!("proto.{dir}.{}.{what}", c.label())))
                .collect()
        };
        ProtoObs {
            send_frames: table("send", "frames"),
            send_bytes: table("send", "bytes"),
            recv_frames: table("recv", "frames"),
            recv_bytes: table("recv", "bytes"),
            decode_errors: r.counter("proto.decode_errors"),
            join_secs: r.histogram("proto.convergence.join_secs"),
            join_retries: r.counter("proto.join.retries"),
            banned_frames: r.counter("proto.drop.banned_sender"),
            demotions: r.counter("proto.peer.demotions"),
            evictions: r.counter("proto.peer.evictions"),
            promotions: r.counter("proto.peer.promotions"),
            passive_probes: r.counter("proto.peer.passive_probes"),
            peer_score: r.histogram("proto.peer.score"),
        }
    })
}

/// When to repair a dropped link (§3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RewireMode {
    /// Re-wire as soon as the link is declared dead.
    Immediate,
    /// Re-wire at the next wiring epoch (the default in the paper's
    /// experiments).
    Delayed,
}

/// Static configuration of one node.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    pub id: NodeId,
    /// Upper bound on node ids in this overlay (dense id space).
    pub n: usize,
    /// Number of neighbors to maintain.
    pub k: usize,
    pub policy: PolicyKind,
    /// Wiring epoch `T` (paper: 60 s).
    pub epoch: Duration,
    /// Announcement period `T_announce` (paper: 20 s).
    pub announce_interval: Duration,
    /// Candidate measurement period (paper: once per epoch).
    pub ping_interval: Duration,
    /// Silence on an established link after which it is dead.
    pub liveness_timeout: Duration,
    pub mode: RewireMode,
    /// Announced-cost multiplier; 1.0 = honest, 2.0 = the Fig. 4 liar.
    pub cost_inflation: f64,
    /// Bootstrap service id, if joining an existing overlay.
    pub bootstrap: Option<NodeId>,
    pub seed: u64,
    /// HyParView-style cap on maintained links. The paper's protocol is
    /// `O(n)`, so the default is unbounded; chaos profiles tighten it.
    pub active_view_size: usize,
    /// Cap on remembered-but-unwired peers (partition-healing reserve).
    pub passive_view_size: usize,
    /// First join-retry delay; doubles per attempt (deterministic jitter).
    pub join_backoff_base: Duration,
    /// Ceiling on the join-retry delay.
    pub join_backoff_cap: Duration,
    /// An LSA claiming a link to us priced more than this factor away
    /// from our own measurement is a flood inconsistency.
    pub audit_ratio: f64,
    /// Misbehavior points (decode garbage ×2, flood inconsistency ×1,
    /// decaying 1/epoch) at which a peer is banned for good.
    pub ban_threshold: u32,
    /// Consecutive unanswered pings after which an established neighbor
    /// is demoted to the passive view (recoverable, unlike a ban).
    pub demote_after: u32,
    /// Run the wiring computation on the executor thread instead of
    /// `spawn_blocking`. Blocking-pool completions are delivered by real
    /// threads at racy points in the scheduler queue, so bit-reproducible
    /// runs (the chaos fleet harness) need the inline path; the live
    /// deployment keeps the pool to stay responsive.
    pub inline_rewire: bool,
}

impl NodeConfig {
    /// Paper-like defaults (scaled-down timers happen in tests).
    pub fn new(id: NodeId, n: usize, k: usize) -> Self {
        NodeConfig {
            id,
            n,
            k,
            policy: PolicyKind::BestResponse,
            epoch: Duration::from_secs(60),
            announce_interval: Duration::from_secs(20),
            ping_interval: Duration::from_secs(60),
            liveness_timeout: Duration::from_secs(65),
            mode: RewireMode::Delayed,
            cost_inflation: 1.0,
            bootstrap: None,
            seed: id.0 as u64,
            active_view_size: usize::MAX,
            passive_view_size: 96,
            join_backoff_base: Duration::from_secs(1),
            join_backoff_cap: Duration::from_secs(30),
            audit_ratio: 4.0,
            ban_threshold: 4,
            demote_after: 3,
            inline_rewire: false,
        }
    }
}

/// Observable node state, refreshed by the agent.
#[derive(Clone, Debug, Default)]
pub struct NodeView {
    pub wiring: Vec<NodeId>,
    /// EWMA one-way delay estimate per node id (NaN = never measured).
    pub direct_est: Vec<f64>,
    pub lsdb_size: usize,
    pub epochs_completed: u64,
    pub rewirings: u64,
    /// Next overlay hop per destination id (`None` = unknown/unreachable).
    pub next_hops: Vec<Option<NodeId>>,
    pub overhead: OverheadCounters,
    /// Frames that failed to decode (corruption, garbage).
    pub decode_errors: u64,
    /// Remembered-but-unwired peers (bounded; survives LSDB expiry, so a
    /// healed partition can be re-probed without the bootstrap seed).
    pub passive_view: Vec<NodeId>,
    /// Peers evicted for misbehavior (permanent).
    pub banned: Vec<NodeId>,
    /// Current misbehavior points per node id (decays each epoch).
    pub misbehavior: Vec<u32>,
    pub join_retries: u64,
    pub demotions: u64,
    pub evictions: u64,
    pub promotions: u64,
}

/// Handle to a spawned node.
pub struct NodeHandle {
    pub view: Arc<RwLock<NodeView>>,
    shutdown: Option<oneshot::Sender<()>>,
    join: tokio::task::JoinHandle<()>,
}

impl NodeHandle {
    /// Request shutdown (the node sends `Leave` first) and wait for exit.
    pub async fn stop(mut self) {
        if let Some(tx) = self.shutdown.take() {
            let _ = tx.send(());
        }
        let _ = self.join.await;
    }

    /// Snapshot the node's current view.
    pub fn snapshot(&self) -> NodeView {
        self.view.read().clone()
    }
}

/// Per-peer health ledger. Two independent strike families: ping
/// silence is *responsiveness* (recoverable — loss and partitions hit
/// honest peers too, so it only ever demotes), while decode garbage and
/// flood inconsistencies are *misbehavior* (a peer emitting them is
/// broken or hostile; enough points and it is banned outright).
#[derive(Clone, Copy, Debug, Default)]
struct PeerScore {
    /// Consecutive pings with no pong; reset by any frame from the peer.
    silent_pings: u32,
    /// Accumulated misbehavior points; decays by 1 each epoch.
    misbehavior: u32,
}

/// EWMA estimator for one-way delay.
#[derive(Clone, Copy, Debug)]
struct Ewma {
    value: f64,
    alpha: f64,
}

impl Ewma {
    fn new() -> Self {
        Ewma {
            value: f64::NAN,
            alpha: 0.3,
        }
    }

    fn update(&mut self, sample: f64) {
        if self.value.is_nan() {
            self.value = sample;
        } else {
            self.value = self.alpha * sample + (1.0 - self.alpha) * self.value;
        }
    }
}

/// The node agent.
pub struct EgoistNode<T: Transport> {
    cfg: NodeConfig,
    transport: T,
    lsdb: Lsdb,
    est: Vec<Ewma>,
    last_heard: Vec<Option<Instant>>,
    wiring: Vec<NodeId>,
    pending_pings: HashMap<u64, (NodeId, Instant)>,
    next_nonce: u64,
    seq: u64,
    rng: StdRng,
    view: Arc<RwLock<NodeView>>,
    t0: Instant,
    rewirings: u64,
    epochs: u64,
    decode_errors: u64,
    overhead: OverheadCounters,
    /// Set once the node has wired at least one link (the §3.1 join).
    join_wired: bool,
    scores: Vec<PeerScore>,
    banned: Vec<bool>,
    /// Passive view, LRU order (oldest first). Bounded by
    /// `passive_view_size`; retains ids past LSDB expiry.
    passive: Vec<NodeId>,
    first_heard: Vec<Option<Instant>>,
    join_retries: u64,
    demotions: u64,
    evictions: u64,
    promotions: u64,
}

impl<T: Transport> EgoistNode<T> {
    /// Build a node over a transport endpoint.
    pub fn new(cfg: NodeConfig, transport: T) -> Self {
        assert_eq!(cfg.id, transport.local_id(), "config/transport id mismatch");
        let n = cfg.n;
        EgoistNode {
            lsdb: Lsdb::new(cfg.announce_interval.as_secs_f64() * 3.5),
            est: vec![Ewma::new(); n],
            last_heard: vec![None; n],
            wiring: Vec::new(),
            pending_pings: HashMap::new(),
            next_nonce: (cfg.id.0 as u64) << 32,
            seq: 0,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xE601),
            view: Arc::new(RwLock::new(NodeView {
                direct_est: vec![f64::NAN; n],
                next_hops: vec![None; n],
                ..NodeView::default()
            })),
            t0: Instant::now(),
            rewirings: 0,
            epochs: 0,
            decode_errors: 0,
            overhead: OverheadCounters::default(),
            join_wired: false,
            scores: vec![PeerScore::default(); n],
            banned: vec![false; n],
            passive: Vec::new(),
            first_heard: vec![None; n],
            join_retries: 0,
            demotions: 0,
            evictions: 0,
            promotions: 0,
            cfg,
            transport,
        }
    }

    /// Spawn the agent onto the current runtime.
    pub fn spawn(self) -> NodeHandle {
        let view = Arc::clone(&self.view);
        let (tx, rx) = oneshot::channel();
        let join = tokio::spawn(self.run(rx));
        NodeHandle {
            view,
            shutdown: Some(tx),
            join,
        }
    }

    fn now_secs(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    async fn send_msg(&mut self, to: NodeId, msg: &Message) {
        let frame = encode(msg);
        let class = msg.class();
        self.overhead.record(class, frame.len());
        let obs = proto_obs();
        obs.send_frames[class.slot()].inc();
        obs.send_bytes[class.slot()].add(frame.len() as u64);
        let _ = self.transport.send(to, frame).await;
    }

    /// Known overlay members other than self: LSDB origins plus anyone we
    /// have *recently* heard from. Measured-but-silent peers age out with
    /// the liveness timeout — otherwise a departed node would linger as a
    /// candidate (and, through the disconnection penalty, keep attracting
    /// links) forever.
    fn known_peers(&self) -> Vec<NodeId> {
        let mut known: Vec<NodeId> = self.lsdb.origins();
        for j in 0..self.cfg.n {
            let fresh = matches!(
                self.last_heard[j],
                Some(at) if at.elapsed() < self.cfg.liveness_timeout
            );
            if fresh && !self.est[j].value.is_nan() && !known.contains(&NodeId::from_index(j)) {
                known.push(NodeId::from_index(j));
            }
        }
        known.retain(|&p| p != self.cfg.id && p.index() < self.cfg.n && !self.banned[p.index()]);
        known.sort_unstable();
        known
    }

    /// Remember a peer in the passive view (LRU move-to-back, bounded).
    fn remember_passive(&mut self, peer: NodeId) {
        if peer == self.cfg.id
            || peer.index() >= self.cfg.n
            || self.banned[peer.index()]
            || self.wiring.contains(&peer)
        {
            return;
        }
        self.passive.retain(|&p| p != peer);
        self.passive.push(peer);
        if self.passive.len() > self.cfg.passive_view_size {
            let excess = self.passive.len() - self.cfg.passive_view_size;
            self.passive.drain(..excess);
        }
    }

    /// Add misbehavior points; at the threshold the peer is banned and
    /// purged from every table. Returns whether a ban happened.
    fn punish(&mut self, peer: NodeId, points: u32) -> bool {
        if peer.index() >= self.cfg.n || self.banned[peer.index()] {
            return false;
        }
        let score = {
            let s = &mut self.scores[peer.index()];
            s.misbehavior = s.misbehavior.saturating_add(points);
            s.misbehavior
        };
        if score < self.cfg.ban_threshold {
            return false;
        }
        self.banned[peer.index()] = true;
        self.evictions += 1;
        proto_obs().evictions.inc();
        proto_obs().peer_score.observe(score as f64);
        egoist_obs::event_at(
            (self.now_secs() * 1e9) as u64,
            "proto.peer.ban",
            &[
                ("node", (self.cfg.id.index() as u64).into()),
                ("peer", (peer.index() as u64).into()),
                ("score", (score as u64).into()),
            ],
        );
        self.lsdb.remove(peer);
        self.est[peer.index()] = Ewma::new();
        self.last_heard[peer.index()] = None;
        self.wiring.retain(|&w| w != peer);
        self.passive.retain(|&p| p != peer);
        self.pending_pings.retain(|_, (to, _)| *to != peer);
        true
    }

    /// Demote an unresponsive established neighbor: drop the link, keep
    /// the peer in the passive view for later re-probing.
    fn demote(&mut self, peer: NodeId) {
        if !self.wiring.contains(&peer) {
            return;
        }
        self.wiring.retain(|&w| w != peer);
        self.demotions += 1;
        proto_obs().demotions.inc();
        egoist_obs::event_at(
            (self.now_secs() * 1e9) as u64,
            "proto.peer.demote",
            &[
                ("node", (self.cfg.id.index() as u64).into()),
                ("peer", (peer.index() as u64).into()),
            ],
        );
        self.remember_passive(peer);
    }

    /// §3.4-style flood audit: an LSA whose origin claims a link *to us*
    /// priced more than `audit_ratio` away from our own measurement of
    /// that origin is lying (the eclipse lure announces near-zero costs;
    /// the Fig. 4 free rider's 2× inflation stays under the default 4×).
    /// Newly-heard origins get a grace period — their first
    /// announcements carry a placeholder cost until their own pings
    /// resolve. Returns whether the LSA may be applied and forwarded.
    fn audit_lsa(&mut self, lsa: &LinkStateAnnouncement) -> bool {
        let o = lsa.origin;
        if o.index() >= self.cfg.n {
            return true;
        }
        if self.banned[o.index()] {
            return false;
        }
        let my_est = self.est[o.index()].value;
        if my_est.is_nan() || my_est <= 0.0 {
            return true;
        }
        let grace = self.cfg.announce_interval.mul_f64(3.0);
        match self.first_heard[o.index()] {
            Some(at) if at.elapsed() > grace => {}
            _ => return true,
        }
        let offending = lsa.links.iter().any(|l| {
            l.neighbor == self.cfg.id
                && ((l.cost as f64) < my_est / self.cfg.audit_ratio
                    || (l.cost as f64) > my_est * self.cfg.audit_ratio)
        });
        if offending {
            self.punish(o, 1);
            return false;
        }
        true
    }

    /// Flood a message to overlay neighbors (out-links) and known
    /// in-neighbors, excluding `except`.
    async fn flood(&mut self, msg: &Message, except: Option<NodeId>) {
        let mut targets = self.wiring.clone();
        let g = self.lsdb.graph(self.cfg.n);
        for (from, to, _) in g.edges() {
            if to == self.cfg.id && !targets.contains(&from) {
                targets.push(from);
            }
        }
        targets.retain(|&t| {
            Some(t) != except
                && t != self.cfg.id
                && !(t.index() < self.cfg.n && self.banned[t.index()])
        });
        // Sorted send order: flood fan-out must not depend on LSDB map
        // iteration, or same-seed runs diverge across processes.
        targets.sort_unstable();
        for t in targets {
            self.send_msg(t, msg).await;
        }
    }

    /// Build and flood this node's LSA.
    async fn announce(&mut self) {
        self.seq += 1;
        let links: Vec<LinkEntry> = self
            .wiring
            .iter()
            .map(|&w| {
                let honest = self.est[w.index()].value;
                let cost = if honest.is_nan() { 1.0 } else { honest };
                LinkEntry {
                    neighbor: w,
                    cost: (cost * self.cfg.cost_inflation) as f32,
                }
            })
            .collect();
        let lsa = LinkStateAnnouncement {
            origin: self.cfg.id,
            seq: self.seq,
            links,
        };
        let now = self.now_secs();
        self.lsdb.apply(lsa.clone(), now);
        self.flood(&Message::LinkState(lsa), None).await;
    }

    /// Send measurement pings to every known candidate (§3.1's `O(n)`
    /// per-epoch measurements) plus a couple of passive-view probes.
    async fn send_pings(&mut self) {
        // Expire stale pending pings, charging each to its peer's
        // responsiveness ledger (sorted so same-seed runs agree).
        let deadline = self.cfg.liveness_timeout;
        let mut expired: Vec<NodeId> = self
            .pending_pings
            .values()
            .filter(|(_, at)| at.elapsed() >= deadline)
            .map(|&(peer, _)| peer)
            .collect();
        expired.sort_unstable();
        self.pending_pings
            .retain(|_, (_, at)| at.elapsed() < deadline);
        for peer in expired {
            if peer.index() >= self.cfg.n || self.banned[peer.index()] {
                continue;
            }
            let s = &mut self.scores[peer.index()];
            s.silent_pings = s.silent_pings.saturating_add(1);
            if s.silent_pings >= self.cfg.demote_after {
                self.demote(peer);
            }
        }

        let mut targets = self.known_peers();
        if let Some(b) = self.cfg.bootstrap {
            targets.retain(|&t| t != b);
        }
        // Passive probes: re-ping the two coldest remembered peers that
        // are not already candidates. This is what heals a partition —
        // the other side has expired from the LSDB everywhere, and only
        // the passive view still knows those ids exist.
        let fresh = |last: Option<Instant>| matches!(last, Some(at) if at.elapsed() < self.cfg.liveness_timeout);
        let cold: Vec<NodeId> = self
            .passive
            .iter()
            .copied()
            .filter(|p| !targets.contains(p) && !fresh(self.last_heard[p.index()]))
            .take(2)
            .collect();
        for p in cold {
            // Move to the back so probing rotates through the view.
            self.passive.retain(|&q| q != p);
            self.passive.push(p);
            proto_obs().passive_probes.inc();
            targets.push(p);
        }
        for peer in targets {
            let nonce = self.next_nonce;
            self.next_nonce += 1;
            self.pending_pings.insert(nonce, (peer, Instant::now()));
            self.send_msg(
                peer,
                &Message::Ping {
                    from: self.cfg.id,
                    nonce,
                },
            )
            .await;
        }
    }

    /// Check established links for liveness; returns dead neighbors.
    fn dead_neighbors(&self) -> Vec<NodeId> {
        self.wiring
            .iter()
            .copied()
            .filter(|w| match self.last_heard[w.index()] {
                Some(at) => at.elapsed() > self.cfg.liveness_timeout,
                None => false, // never heard: still joining, give it time
            })
            .collect()
    }

    /// Compute a new wiring with the configured policy (CPU-bound part on
    /// the blocking pool) and install it. Returns whether it changed.
    async fn rewire(&mut self) -> bool {
        let now = self.now_secs();
        // Expired origins are gone for good: drop their links and forget
        // their measurements so they stop being candidates.
        for e in self.lsdb.expire(now) {
            if e.index() < self.cfg.n {
                self.est[e.index()] = Ewma::new();
                self.last_heard[e.index()] = None;
            }
            self.wiring.retain(|&w| w != e);
        }
        let candidates = self.known_peers();
        if candidates.is_empty() {
            return false;
        }
        let me = self.cfg.id;
        let n = self.cfg.n;
        let k = self.cfg.k;
        let policy = self.cfg.policy;
        let direct: Vec<f64> = (0..n)
            .map(|j| {
                let v = self.est[j].value;
                if v.is_nan() {
                    f64::INFINITY
                } else {
                    v
                }
            })
            .collect();
        let mut announced = self.lsdb.graph(n);
        announced.clear_out_edges(me);
        let current = self.wiring.clone();
        let mut alive = vec![false; n];
        alive[me.index()] = true;
        for c in &candidates {
            alive[c.index()] = true;
        }
        let seed = self.rng_next();

        let job = move || {
            let residual = apsp(&announced);
            let prefs = Preferences::uniform(n);
            let finite_max = direct
                .iter()
                .copied()
                .filter(|d| d.is_finite())
                .fold(1.0f64, f64::max);
            let penalty = finite_max * n as f64 * 4.0;
            let ctx = WiringContext {
                node: me,
                k,
                candidates: &candidates,
                direct: &direct,
                residual: egoist_core::ResidualView::dense(&residual),
                prefs: &prefs,
                alive: &alive,
                penalty,
                current: &current,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            policy.instantiate().wire(&ctx, &mut rng)
        };
        // The k-median local search is the expensive bit; run it off the
        // async thread — unless the run must be bit-reproducible, in
        // which case blocking-pool wakeup order is a race we avoid.
        let new_wiring = if self.cfg.inline_rewire {
            job()
        } else {
            tokio::task::spawn_blocking(job).await.unwrap_or_default()
        };

        let mut new_wiring = new_wiring;
        if new_wiring.len() > self.cfg.active_view_size {
            new_wiring.truncate(self.cfg.active_view_size);
        }
        let mut old = self.wiring.clone();
        let mut new = new_wiring.clone();
        old.sort_unstable();
        new.sort_unstable();
        let changed = old != new;
        // View bookkeeping: passive peers that won a link are promotions;
        // peers that lost theirs stay remembered for later re-probing.
        for &w in &new_wiring {
            if old.binary_search(&w).is_err() && self.passive.contains(&w) {
                self.promotions += 1;
                proto_obs().promotions.inc();
            }
        }
        self.wiring = new_wiring;
        let dropped: Vec<NodeId> = old
            .iter()
            .copied()
            .filter(|w| new.binary_search(w).is_err())
            .collect();
        for w in dropped {
            self.remember_passive(w);
        }
        self.passive.retain(|p| new.binary_search(p).is_err());
        changed
    }

    fn rng_next(&mut self) -> u64 {
        use rand::Rng;
        self.rng.random()
    }

    /// Refresh the shared view (routes, estimates, counters).
    fn publish(&mut self) {
        let mut g = self.lsdb.graph(self.cfg.n);
        // Own links with honest costs (routing uses the freshest local
        // knowledge).
        for &w in &self.wiring {
            let c = self.est[w.index()].value;
            if !c.is_nan() {
                g.add_edge(self.cfg.id, w, c);
            }
        }
        let sp = egoist_graph::dijkstra::dijkstra(&g, self.cfg.id);
        let next_hops: Vec<Option<NodeId>> = (0..self.cfg.n)
            .map(|j| sp.next_hop(NodeId::from_index(j)))
            .collect();
        let mut v = self.view.write();
        v.wiring = self.wiring.clone();
        v.direct_est = self.est.iter().map(|e| e.value).collect();
        v.lsdb_size = self.lsdb.len();
        v.epochs_completed = self.epochs;
        v.rewirings = self.rewirings;
        v.next_hops = next_hops;
        v.overhead = self.overhead.clone();
        v.decode_errors = self.decode_errors;
        v.passive_view = self.passive.clone();
        v.banned = (0..self.cfg.n)
            .filter(|&j| self.banned[j])
            .map(NodeId::from_index)
            .collect();
        v.misbehavior = self.scores.iter().map(|s| s.misbehavior).collect();
        v.join_retries = self.join_retries;
        v.demotions = self.demotions;
        v.evictions = self.evictions;
        v.promotions = self.promotions;
    }

    async fn handle_frame(&mut self, from: NodeId, frame: bytes::Bytes) {
        if from.index() < self.cfg.n && self.banned[from.index()] {
            proto_obs().banned_frames.inc();
            return;
        }
        let msg = match decode(&frame) {
            Ok(m) => m,
            Err(_) => {
                self.decode_errors += 1;
                proto_obs().decode_errors.inc();
                // Garbage from a known sender scores one misbehavior
                // point. Link corruption hits honest peers too, so the
                // rate matters, not the event: background corruption
                // stays under the 1/epoch decay, a garbage flood does not.
                self.punish(from, 1);
                return;
            }
        };
        {
            let obs = proto_obs();
            let class = msg.class();
            obs.recv_frames[class.slot()].inc();
            obs.recv_bytes[class.slot()].add(frame.len() as u64);
        }
        if from.index() < self.cfg.n {
            self.last_heard[from.index()] = Some(Instant::now());
            if self.first_heard[from.index()].is_none() {
                self.first_heard[from.index()] = Some(Instant::now());
            }
            self.scores[from.index()].silent_pings = 0;
        }
        match msg {
            Message::BootstrapResponse { peers } => {
                for &p in &peers {
                    self.remember_passive(p);
                }
                // Hello up to three peers for LSDB sync redundancy.
                for p in peers.into_iter().take(3) {
                    if p != self.cfg.id && !(p.index() < self.cfg.n && self.banned[p.index()]) {
                        self.send_msg(p, &Message::Hello { from: self.cfg.id })
                            .await;
                    }
                }
            }
            Message::Hello { from: peer } => {
                let lsas = self.lsdb.all();
                self.send_msg(peer, &Message::LsdbSync { lsas }).await;
            }
            Message::LsdbSync { lsas } => {
                let now = self.now_secs();
                for lsa in lsas {
                    if self.audit_lsa(&lsa) {
                        self.lsdb.apply(lsa, now);
                    }
                }
            }
            Message::LinkState(lsa) => {
                let now = self.now_secs();
                // Audited before apply *and* before forward: a rejected
                // LSA is neither believed nor propagated.
                if self.audit_lsa(&lsa) && self.lsdb.apply(lsa.clone(), now) {
                    self.flood(&Message::LinkState(lsa), Some(from)).await;
                }
            }
            Message::Ping { from: peer, nonce } => {
                self.send_msg(
                    peer,
                    &Message::Pong {
                        from: self.cfg.id,
                        nonce,
                    },
                )
                .await;
            }
            Message::Pong { from: peer, nonce } => {
                if let Some((expected, sent_at)) = self.pending_pings.remove(&nonce) {
                    if expected == peer && peer.index() < self.cfg.n {
                        let one_way_ms = sent_at.elapsed().as_secs_f64() * 1000.0 / 2.0;
                        self.est[peer.index()].update(one_way_ms);
                        // §3.1 join: the newcomer connects as soon as it
                        // can price at least one candidate, rather than
                        // waiting out its first wiring epoch.
                        if !self.join_wired && self.wiring.is_empty() && self.rewire().await {
                            self.join_wired = true;
                            // Gossip convergence: virtual seconds from
                            // node start to the first established link.
                            let joined = self.now_secs();
                            proto_obs().join_secs.observe(joined);
                            egoist_obs::event_at(
                                (joined * 1e9) as u64,
                                "proto.join",
                                &[
                                    ("node", (self.cfg.id.index() as u64).into()),
                                    ("secs", joined.into()),
                                ],
                            );
                            self.rewirings += 1;
                            self.announce().await;
                            self.publish();
                        }
                    }
                }
            }
            Message::Heartbeat { .. } => {} // liveness already recorded
            Message::Leave { from: leaver } => {
                self.lsdb.remove(leaver);
                if leaver.index() < self.cfg.n {
                    self.last_heard[leaver.index()] = None;
                    self.est[leaver.index()] = Ewma::new();
                }
                let had = self.wiring.contains(&leaver);
                self.wiring.retain(|&w| w != leaver);
                if had && self.cfg.mode == RewireMode::Immediate {
                    if self.rewire().await {
                        self.rewirings += 1;
                    }
                    self.announce().await;
                }
            }
            Message::BootstrapRequest { .. } => {} // not a bootstrap server
        }
    }

    /// The agent main loop.
    pub async fn run(mut self, mut shutdown: oneshot::Receiver<()>) {
        // Join attempt 0; retries ride the backoff branch below, so an
        // unreachable seed costs a capped retry stream, never a panic.
        let mut join_backoff = crate::bootstrap::Backoff::new(
            self.cfg.join_backoff_base,
            self.cfg.join_backoff_cap,
            self.cfg.seed,
        );
        if let Some(b) = self.cfg.bootstrap {
            self.send_msg(b, &Message::BootstrapRequest { from: self.cfg.id })
                .await;
        }
        let mut next_join_at = Instant::now() + join_backoff.next_delay();

        // Staggered epoch start: node i first re-wires at i·T/n (§4.2).
        let stagger = self
            .cfg
            .epoch
            .mul_f64(self.cfg.id.index() as f64 / self.cfg.n.max(1) as f64);
        let mut epoch_timer = tokio::time::interval_at(Instant::now() + stagger, self.cfg.epoch);
        let mut announce_timer = tokio::time::interval_at(
            Instant::now() + self.cfg.announce_interval.mul_f64(0.1),
            self.cfg.announce_interval,
        );
        let mut ping_timer = tokio::time::interval_at(
            Instant::now() + Duration::from_millis(10),
            self.cfg.ping_interval,
        );
        epoch_timer.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
        announce_timer.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
        ping_timer.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);

        loop {
            tokio::select! {
                biased;
                _ = &mut shutdown => {
                    self.flood(&Message::Leave { from: self.cfg.id }, None).await;
                    if let Some(b) = self.cfg.bootstrap {
                        self.send_msg(b, &Message::Leave { from: self.cfg.id }).await;
                    }
                    self.publish();
                    return;
                }
                maybe = self.transport.recv() => {
                    match maybe {
                        Some((from, frame)) => self.handle_frame(from, frame).await,
                        None => { self.publish(); return; }
                    }
                }
                _ = ping_timer.tick() => {
                    self.send_pings().await;
                    // Immediate mode repairs dropped links as soon as the
                    // liveness check trips, not at the next epoch (§3.3's
                    // aggressive monitoring of critical links).
                    if self.cfg.mode == RewireMode::Immediate {
                        let dead = self.dead_neighbors();
                        if !dead.is_empty() {
                            for d in &dead {
                                self.lsdb.remove(*d);
                                self.est[d.index()] = Ewma::new();
                                self.last_heard[d.index()] = None;
                            }
                            self.wiring.retain(|w| !dead.contains(w));
                            if self.rewire().await {
                                self.rewirings += 1;
                            }
                            self.announce().await;
                            self.publish();
                        }
                    }
                }
                _ = announce_timer.tick() => {
                    // Presence beacon even with no links yet: a silent
                    // node's LSDB record would age out everywhere and the
                    // join cascade would stall one epoch per node.
                    self.announce().await;
                }
                _ = tokio::time::sleep_until(next_join_at) => {
                    // Degradation watchdog: while this node knows nobody
                    // (never joined, or cut off by a partition), re-ask
                    // the seed and probe the passive view on a capped
                    // exponential backoff. Healthy nodes just re-arm.
                    if self.known_peers().is_empty() {
                        self.join_retries += 1;
                        proto_obs().join_retries.inc();
                        if let Some(b) = self.cfg.bootstrap {
                            self.send_msg(b, &Message::BootstrapRequest { from: self.cfg.id })
                                .await;
                        }
                        self.send_pings().await;
                        next_join_at = Instant::now() + join_backoff.next_delay();
                    } else {
                        join_backoff.reset();
                        next_join_at = Instant::now() + self.cfg.ping_interval;
                    }
                }
                _ = epoch_timer.tick() => {
                    // Immediate-mode failure reaction happens here too:
                    // drop links whose peer went silent.
                    let dead = self.dead_neighbors();
                    if !dead.is_empty() {
                        for d in &dead {
                            self.lsdb.remove(*d);
                            self.est[d.index()] = Ewma::new();
                            self.last_heard[d.index()] = None;
                        }
                        self.wiring.retain(|w| !dead.contains(w));
                    }
                    if self.rewire().await {
                        self.rewirings += 1;
                    }
                    self.epochs += 1;
                    self.announce().await;
                    // Anti-entropy: a lost flood leaves a permanent LSDB
                    // hole otherwise; one Hello per epoch to a random
                    // known peer repairs it with an LsdbSync.
                    let peers = self.known_peers();
                    if !peers.is_empty() {
                        let pick = peers[(self.rng_next() as usize) % peers.len()];
                        self.send_msg(pick, &Message::Hello { from: self.cfg.id }).await;
                    }
                    // Misbehavior decay (forgives background corruption)
                    // plus score export and passive-view upkeep.
                    for j in 0..self.cfg.n {
                        let m = self.scores[j].misbehavior;
                        if m > 0 {
                            proto_obs().peer_score.observe(m as f64);
                            self.scores[j].misbehavior = m - 1;
                        }
                    }
                    for p in peers {
                        self.remember_passive(p);
                    }
                    self.publish();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::{BootstrapServer, Registry};
    use crate::transport::SimNet;
    use egoist_graph::DistanceMatrix;
    use egoist_netsim::fault::FaultConfig;

    const BOOT: NodeId = NodeId(1000);

    /// Spin up an n-node overlay on a SimNet with short timers; returns
    /// handles after `warm_epochs` virtual epochs.
    async fn overlay(
        n: usize,
        k: usize,
        delays: DistanceMatrix,
        fault: FaultConfig,
        warm_epochs: u32,
    ) -> Vec<NodeHandle> {
        // Ids up to 1000 exist on the net (bootstrap gets 1000).
        let mut big = DistanceMatrix::off_diagonal(1001, 1.0);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    big.set_at(i, j, delays.at(i, j));
                }
            }
        }
        let net = SimNet::new(big, fault, 42);
        let registry = Registry::default();
        tokio::spawn(BootstrapServer::new(net.endpoint(BOOT), registry).run());

        let mut handles = Vec::new();
        for i in 0..n {
            let mut cfg = NodeConfig::new(NodeId::from_index(i), n, k);
            cfg.epoch = Duration::from_secs(10);
            cfg.announce_interval = Duration::from_secs(3);
            cfg.ping_interval = Duration::from_secs(5);
            cfg.liveness_timeout = Duration::from_secs(12);
            cfg.bootstrap = Some(BOOT);
            let node = EgoistNode::new(cfg, net.endpoint(NodeId::from_index(i)));
            handles.push(node.spawn());
            // Small join spacing.
            tokio::time::sleep(Duration::from_millis(200)).await;
        }
        tokio::time::sleep(Duration::from_secs(10 * warm_epochs as u64)).await;
        handles
    }

    #[test]
    fn overlay_converges_to_full_routing() {
        tokio::runtime::block_on_paused(async {
            let delays = DistanceMatrix::from_fn(8, |i, j| 5.0 + ((i * 3 + j) % 7) as f64);
            let handles = overlay(8, 3, delays, FaultConfig::default(), 6).await;
            for (i, h) in handles.iter().enumerate() {
                let v = h.snapshot();
                assert_eq!(v.wiring.len(), 3, "node {i} wiring {:?}", v.wiring);
                assert!(
                    v.epochs_completed >= 4,
                    "node {i} ran {} epochs",
                    v.epochs_completed
                );
                // Routes to every other node.
                let reachable = (0..8)
                    .filter(|&j| j != i && v.next_hops[j].is_some())
                    .count();
                assert_eq!(reachable, 7, "node {i} reaches {reachable}/7");
            }
            for h in handles {
                h.stop().await;
            }
        });
    }

    #[test]
    fn rtt_estimates_reflect_link_delays() {
        tokio::runtime::block_on_paused(async {
            let delays = DistanceMatrix::from_fn(4, |i, j| {
                if (i, j) == (0, 1) || (1, 0) == (i, j) {
                    30.0
                } else {
                    5.0
                }
            });
            let handles = overlay(4, 2, delays, FaultConfig::default(), 4).await;
            let v0 = handles[0].snapshot();
            // One-way estimate for node 1 ≈ (30+30)/2 / ... RTT/2 = 30 ms.
            let est = v0.direct_est[1];
            assert!(
                (est - 30.0).abs() < 3.0,
                "estimated one-way to v1 should be ≈30 ms, got {est}"
            );
            let est2 = v0.direct_est[2];
            assert!((est2 - 5.0).abs() < 2.0, "≈5 ms, got {est2}");
            for h in handles {
                h.stop().await;
            }
        });
    }

    #[test]
    fn overlay_survives_lossy_links() {
        tokio::runtime::block_on_paused(async {
            let delays = DistanceMatrix::off_diagonal(6, 8.0);
            let handles = overlay(6, 2, delays, FaultConfig::lossy(0.15), 8).await;
            let mut total_reachable = 0;
            for (i, h) in handles.iter().enumerate() {
                let v = h.snapshot();
                total_reachable += (0..6)
                    .filter(|&j| j != i && v.next_hops[j].is_some())
                    .count();
            }
            // With 15% loss the protocol must still build a mostly-complete
            // routing mesh (30 = perfect).
            assert!(
                total_reachable >= 24,
                "only {total_reachable}/30 routes with 15% loss"
            );
            for h in handles {
                h.stop().await;
            }
        });
    }

    #[test]
    fn leave_triggers_reroute() {
        tokio::runtime::block_on_paused(async {
            let delays = DistanceMatrix::off_diagonal(5, 6.0);
            let mut handles = overlay(5, 2, delays, FaultConfig::default(), 5).await;
            let victim = handles.remove(4);
            victim.stop().await;
            // Give survivors a couple of epochs to re-wire.
            tokio::time::sleep(Duration::from_secs(25)).await;
            for (i, h) in handles.iter().enumerate() {
                let v = h.snapshot();
                assert!(
                    !v.wiring.contains(&NodeId(4)),
                    "node {i} still wired to the departed node: {:?}",
                    v.wiring
                );
            }
            for h in handles {
                h.stop().await;
            }
        });
    }

    #[test]
    fn crash_is_detected_by_liveness() {
        tokio::runtime::block_on_paused(async {
            let delays = DistanceMatrix::off_diagonal(5, 6.0);
            // Build a dedicated net so we can blackhole a node abruptly.
            let mut big = DistanceMatrix::off_diagonal(1001, 1.0);
            for i in 0..5 {
                for j in 0..5 {
                    if i != j {
                        big.set_at(i, j, delays.at(i, j));
                    }
                }
            }
            let net = SimNet::clean(big);
            tokio::spawn(BootstrapServer::new(net.endpoint(BOOT), Registry::default()).run());
            let mut handles = Vec::new();
            for i in 0..5 {
                let mut cfg = NodeConfig::new(NodeId::from_index(i), 5, 2);
                cfg.epoch = Duration::from_secs(10);
                cfg.announce_interval = Duration::from_secs(3);
                cfg.ping_interval = Duration::from_secs(5);
                cfg.liveness_timeout = Duration::from_secs(12);
                cfg.bootstrap = Some(BOOT);
                handles.push(EgoistNode::new(cfg, net.endpoint(NodeId::from_index(i))).spawn());
                tokio::time::sleep(Duration::from_millis(100)).await;
            }
            tokio::time::sleep(Duration::from_secs(50)).await;
            // Crash node 4 without a Leave.
            net.disconnect(NodeId(4));
            tokio::time::sleep(Duration::from_secs(60)).await;
            for (i, h) in handles.iter().enumerate().take(4) {
                let v = h.snapshot();
                assert!(
                    !v.wiring.contains(&NodeId(4)),
                    "node {i} kept a dead neighbor: {:?}",
                    v.wiring
                );
            }
            for h in handles {
                h.stop().await;
            }
        });
    }

    #[test]
    fn immediate_mode_recovers_faster_than_delayed() {
        tokio::runtime::block_on_paused(async {
            // Crash one node and measure how long survivors keep it wired.
            async fn time_to_repair(mode: RewireMode) -> f64 {
                let mut big = DistanceMatrix::off_diagonal(1001, 1.0);
                for i in 0..5 {
                    for j in 0..5 {
                        if i != j {
                            // v4 is a cheap hub, so every survivor wires it.
                            let c = if i == 4 || j == 4 { 2.0 } else { 6.0 };
                            big.set_at(i, j, c);
                        }
                    }
                }
                let net = SimNet::clean(big);
                tokio::spawn(BootstrapServer::new(net.endpoint(BOOT), Registry::default()).run());
                let mut handles = Vec::new();
                for i in 0..5 {
                    let mut cfg = NodeConfig::new(NodeId::from_index(i), 5, 2);
                    cfg.epoch = Duration::from_secs(60); // long epochs
                    cfg.announce_interval = Duration::from_secs(5);
                    cfg.ping_interval = Duration::from_secs(4);
                    cfg.liveness_timeout = Duration::from_secs(10);
                    cfg.mode = mode;
                    cfg.bootstrap = Some(BOOT);
                    handles.push(EgoistNode::new(cfg, net.endpoint(NodeId::from_index(i))).spawn());
                    tokio::time::sleep(Duration::from_millis(100)).await;
                }
                tokio::time::sleep(Duration::from_secs(65)).await;
                net.disconnect(NodeId(4));
                let t0 = Instant::now();
                // Poll until no survivor lists v4.
                loop {
                    tokio::time::sleep(Duration::from_secs(1)).await;
                    let wired = handles
                        .iter()
                        .take(4)
                        .any(|h| h.snapshot().wiring.contains(&NodeId(4)));
                    if !wired {
                        break;
                    }
                    if t0.elapsed() > Duration::from_secs(180) {
                        break;
                    }
                }
                let secs = t0.elapsed().as_secs_f64();
                for h in handles {
                    h.stop().await;
                }
                secs
            }

            let immediate = time_to_repair(RewireMode::Immediate).await;
            let delayed = time_to_repair(RewireMode::Delayed).await;
            assert!(
                immediate < delayed,
                "immediate mode ({immediate:.0}s) must repair faster than delayed ({delayed:.0}s)"
            );
            assert!(
                immediate < 30.0,
                "immediate repair should happen within ~2 liveness timeouts: {immediate:.0}s"
            );
        });
    }

    #[test]
    fn free_rider_announces_inflated_costs() {
        tokio::runtime::block_on_paused(async {
            let delays = DistanceMatrix::off_diagonal(4, 10.0);
            let mut big = DistanceMatrix::off_diagonal(1001, 1.0);
            for i in 0..4 {
                for j in 0..4 {
                    if i != j {
                        big.set_at(i, j, delays.at(i, j));
                    }
                }
            }
            let net = SimNet::clean(big);
            tokio::spawn(BootstrapServer::new(net.endpoint(BOOT), Registry::default()).run());
            let mut handles = Vec::new();
            for i in 0..4 {
                let mut cfg = NodeConfig::new(NodeId::from_index(i), 4, 2);
                cfg.epoch = Duration::from_secs(10);
                cfg.announce_interval = Duration::from_secs(3);
                cfg.ping_interval = Duration::from_secs(5);
                cfg.liveness_timeout = Duration::from_secs(12);
                cfg.bootstrap = Some(BOOT);
                if i == 0 {
                    cfg.cost_inflation = 2.0;
                }
                handles.push(EgoistNode::new(cfg, net.endpoint(NodeId::from_index(i))).spawn());
                tokio::time::sleep(Duration::from_millis(100)).await;
            }
            tokio::time::sleep(Duration::from_secs(60)).await;
            // An honest node's own estimate of v0's links is ~10 ms one-way;
            // but v0 is announcing ~20. Node 1's LSDB-derived route through
            // v0 should therefore be priced at ~20 per hop. We verify via
            // decode of the next announcement indirectly: node 1 avoids
            // routing through 0 when a direct 10ms edge exists.
            let v1 = handles[1].snapshot();
            // Direct estimates are honest everywhere.
            assert!((v1.direct_est[0] - 10.0).abs() < 3.0);
            for h in handles {
                h.stop().await;
            }
        });
    }

    #[test]
    fn unreachable_seed_is_nonfatal_and_join_retries_back_off() {
        tokio::runtime::block_on_paused(async {
            let net = SimNet::clean(DistanceMatrix::off_diagonal(1001, 2.0));
            // No bootstrap endpoint exists yet: every request is dropped.
            let mut handles = Vec::new();
            for i in 0..2 {
                let mut cfg = NodeConfig::new(NodeId::from_index(i), 2, 1);
                cfg.epoch = Duration::from_secs(10);
                cfg.announce_interval = Duration::from_secs(3);
                cfg.ping_interval = Duration::from_secs(5);
                cfg.liveness_timeout = Duration::from_secs(12);
                cfg.bootstrap = Some(BOOT);
                cfg.join_backoff_base = Duration::from_millis(500);
                cfg.join_backoff_cap = Duration::from_secs(5);
                handles.push(EgoistNode::new(cfg, net.endpoint(NodeId::from_index(i))).spawn());
            }
            tokio::time::sleep(Duration::from_secs(40)).await;
            for (i, h) in handles.iter().enumerate() {
                let v = h.snapshot();
                assert!(v.wiring.is_empty(), "node {i} wired with no seed?");
                assert!(
                    v.join_retries >= 4,
                    "node {i} retried only {} times in 40 s",
                    v.join_retries
                );
                // Capped backoff: retries are bounded too (not a hot loop).
                assert!(v.join_retries <= 40, "node {i}: {} retries", v.join_retries);
            }
            // The seed comes up late; the next capped retry finds it and
            // the join completes.
            tokio::spawn(BootstrapServer::new(net.endpoint(BOOT), Registry::default()).run());
            tokio::time::sleep(Duration::from_secs(40)).await;
            for (i, h) in handles.iter().enumerate() {
                let v = h.snapshot();
                assert_eq!(v.wiring.len(), 1, "node {i} still unwired: {v:?}");
            }
            for h in handles {
                h.stop().await;
            }
        });
    }

    #[test]
    fn garbage_flooder_gets_banned() {
        tokio::runtime::block_on_paused(async {
            let net = SimNet::clean(DistanceMatrix::off_diagonal(1001, 2.0));
            tokio::spawn(BootstrapServer::new(net.endpoint(BOOT), Registry::default()).run());
            let mut handles = Vec::new();
            for i in 0..2 {
                let mut cfg = NodeConfig::new(NodeId::from_index(i), 3, 1);
                cfg.epoch = Duration::from_secs(10);
                cfg.announce_interval = Duration::from_secs(3);
                cfg.ping_interval = Duration::from_secs(5);
                cfg.liveness_timeout = Duration::from_secs(12);
                cfg.bootstrap = Some(BOOT);
                handles.push(EgoistNode::new(cfg, net.endpoint(NodeId::from_index(i))).spawn());
                tokio::time::sleep(Duration::from_millis(100)).await;
            }
            tokio::time::sleep(Duration::from_secs(15)).await;
            // Node 2 never speaks the protocol: it floods garbage at the
            // others faster than the 1/epoch decay forgives.
            let flooder = net.endpoint(NodeId(2));
            for _ in 0..8 {
                for target in [NodeId(0), NodeId(1)] {
                    flooder
                        .send(target, bytes::Bytes::from_static(b"\xFFnoise\x00"))
                        .await
                        .unwrap();
                }
                tokio::time::sleep(Duration::from_millis(300)).await;
            }
            // Views refresh at epoch ticks; wait out a full epoch.
            tokio::time::sleep(Duration::from_secs(12)).await;
            for (i, h) in handles.iter().enumerate() {
                let v = h.snapshot();
                assert!(
                    v.banned.contains(&NodeId(2)),
                    "node {i} did not ban the flooder: {:?}",
                    v.banned
                );
                assert!(!v.wiring.contains(&NodeId(2)));
                assert!(!v.passive_view.contains(&NodeId(2)));
            }
            for h in handles {
                h.stop().await;
            }
        });
    }

    #[test]
    fn overhead_counters_track_messages() {
        tokio::runtime::block_on_paused(async {
            let delays = DistanceMatrix::off_diagonal(4, 5.0);
            let handles = overlay(4, 2, delays, FaultConfig::default(), 4).await;
            let v = handles[0].snapshot();
            use crate::message::MessageClass;
            assert!(v.overhead.frames(MessageClass::Measurement) > 0);
            assert!(v.overhead.frames(MessageClass::LinkState) > 0);
            assert!(v.overhead.bytes(MessageClass::LinkState) > 0);
            for h in handles {
                h.stop().await;
            }
        });
    }
}
