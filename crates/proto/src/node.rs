//! The EGOIST node agent.
//!
//! One `EgoistNode` per overlay member, generic over the transport. The
//! agent implements the full §3.1 lifecycle:
//!
//! 1. **Join**: query the bootstrap node, `Hello` a returned peer, receive
//!    an `LsdbSync` with the full residual graph.
//! 2. **Measure**: ping every known node once per epoch (the `O(n)`
//!    candidate measurement); EWMA of RTT/2 is the direct-cost estimate.
//!    Established links are effectively monitored continuously by use.
//! 3. **Re-wire**: once per (staggered) epoch `T`, compute the policy's
//!    wiring over the announced residual graph — the CPU-bound best
//!    response runs under `spawn_blocking`, per async best practice.
//! 4. **Announce**: gossip a sequence-numbered LSA of established links
//!    every `T_announce`; forward fresh LSAs from others to a
//!    fanout-bounded, deterministically chosen subset of overlay
//!    neighbors (TTL-limited push, LSDB dedup), with periodic LSDB
//!    anti-entropy — compact `(origin, seq)` digests to one rotating
//!    partner — repairing whatever the bounded push missed. With
//!    `gossip_fanout = usize::MAX` this degenerates to classic
//!    link-state flooding.
//! 5. **React to failures**: in [`RewireMode::Immediate`] a dead neighbor
//!    (ping silence beyond the liveness timeout) triggers an immediate
//!    re-wire; in [`RewireMode::Delayed`] (the paper's default) repair
//!    waits for the wiring epoch.
//!
//! A node configured with `cost_inflation > 1` is a §4.5 free rider: the
//! costs in its *announcements* are scaled, while its own decisions use
//! its honest measurements.

use crate::audit::{ClaimRanker, ClaimVerdict};
use crate::codec::{decode, encode};
use crate::lsdb::Lsdb;
use crate::message::{LinkEntry, LinkStateAnnouncement, Message, MessageClass};
use crate::overhead::OverheadCounters;
use crate::transport::Transport;
use egoist_core::cost::Preferences;
use egoist_core::policies::{PolicyKind, WiringContext};
use egoist_graph::apsp::apsp;
use egoist_graph::NodeId;
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;
use tokio::sync::oneshot;
use tokio::time::Instant;

/// Obs handles for the protocol layer, per-class send/receive tables
/// indexed by [`MessageClass::slot`]. These mirror the per-node
/// [`OverheadCounters`] in aggregate: every frame accounted there is
/// also counted here (`tests/obs_consistency.rs` pins the equality).
/// Timestamps fed to the convergence histogram come from the node's
/// virtual clock (`now_secs`), so paused-runtime tests see exact values.
struct ProtoObs {
    send_frames: Vec<egoist_obs::Counter>,
    send_bytes: Vec<egoist_obs::Counter>,
    recv_frames: Vec<egoist_obs::Counter>,
    recv_bytes: Vec<egoist_obs::Counter>,
    decode_errors: egoist_obs::Counter,
    join_secs: egoist_obs::Histogram,
    join_retries: egoist_obs::Counter,
    banned_frames: egoist_obs::Counter,
    demotions: egoist_obs::Counter,
    evictions: egoist_obs::Counter,
    promotions: egoist_obs::Counter,
    passive_probes: egoist_obs::Counter,
    peer_score: egoist_obs::Histogram,
    gossip_forwards: egoist_obs::Counter,
    ae_digests: egoist_obs::Counter,
    ae_pulls: egoist_obs::Counter,
    ae_pushed: egoist_obs::Counter,
    claims_corroborated: egoist_obs::Counter,
    claims_contradicted: egoist_obs::Counter,
    links_quarantined: egoist_obs::Counter,
}

fn proto_obs() -> &'static ProtoObs {
    static OBS: OnceLock<ProtoObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = egoist_obs::registry();
        let table = |dir: &str, what: &str| {
            MessageClass::ALL
                .iter()
                .map(|c| r.counter(&format!("proto.{dir}.{}.{what}", c.label())))
                .collect()
        };
        ProtoObs {
            send_frames: table("send", "frames"),
            send_bytes: table("send", "bytes"),
            recv_frames: table("recv", "frames"),
            recv_bytes: table("recv", "bytes"),
            decode_errors: r.counter("proto.decode_errors"),
            join_secs: r.histogram("proto.convergence.join_secs"),
            join_retries: r.counter("proto.join.retries"),
            banned_frames: r.counter("proto.drop.banned_sender"),
            demotions: r.counter("proto.peer.demotions"),
            evictions: r.counter("proto.peer.evictions"),
            promotions: r.counter("proto.peer.promotions"),
            passive_probes: r.counter("proto.peer.passive_probes"),
            peer_score: r.histogram("proto.peer.score"),
            gossip_forwards: r.counter("proto.gossip.forwards"),
            ae_digests: r.counter("proto.ae.digests"),
            ae_pulls: r.counter("proto.ae.pulls"),
            ae_pushed: r.counter("proto.ae.pushed_lsas"),
            claims_corroborated: r.counter("proto.claims.corroborated"),
            claims_contradicted: r.counter("proto.claims.contradicted"),
            links_quarantined: r.counter("proto.claims.quarantined_links"),
        }
    })
}

/// When to repair a dropped link (§3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RewireMode {
    /// Re-wire as soon as the link is declared dead.
    Immediate,
    /// Re-wire at the next wiring epoch (the default in the paper's
    /// experiments).
    Delayed,
}

/// Static configuration of one node.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    pub id: NodeId,
    /// Upper bound on node ids in this overlay (dense id space).
    pub n: usize,
    /// Number of neighbors to maintain.
    pub k: usize,
    pub policy: PolicyKind,
    /// Wiring epoch `T` (paper: 60 s).
    pub epoch: Duration,
    /// Announcement period `T_announce` (paper: 20 s).
    pub announce_interval: Duration,
    /// Candidate measurement period (paper: once per epoch).
    pub ping_interval: Duration,
    /// Silence on an established link after which it is dead.
    pub liveness_timeout: Duration,
    pub mode: RewireMode,
    /// Announced-cost multiplier; 1.0 = honest, 2.0 = the Fig. 4 liar.
    pub cost_inflation: f64,
    /// Bootstrap service id, if joining an existing overlay.
    pub bootstrap: Option<NodeId>,
    pub seed: u64,
    /// HyParView-style cap on maintained links. The paper's protocol is
    /// `O(n)`, so the default is unbounded; chaos profiles tighten it.
    pub active_view_size: usize,
    /// Cap on remembered-but-unwired peers (partition-healing reserve).
    pub passive_view_size: usize,
    /// First join-retry delay; doubles per attempt (deterministic jitter).
    pub join_backoff_base: Duration,
    /// Ceiling on the join-retry delay.
    pub join_backoff_cap: Duration,
    /// An LSA claiming a link to us priced more than this factor away
    /// from our own measurement is a flood inconsistency.
    pub audit_ratio: f64,
    /// Misbehavior points (decode garbage ×2, flood inconsistency ×1,
    /// decaying 1/epoch) at which a peer is banned for good.
    pub ban_threshold: u32,
    /// Consecutive unanswered pings after which an established neighbor
    /// is demoted to the passive view (recoverable, unlike a ban).
    pub demote_after: u32,
    /// Run the wiring computation on the executor thread instead of
    /// `spawn_blocking`. Blocking-pool completions are delivered by real
    /// threads at racy points in the scheduler queue, so bit-reproducible
    /// runs (the chaos fleet harness) need the inline path; the live
    /// deployment keeps the pool to stay responsive.
    pub inline_rewire: bool,
    /// Gossip fan-out: fresh LSAs are pushed to at most this many
    /// targets, chosen by a deterministic per-(origin, seq) hash.
    /// `usize::MAX` restores classic full flooding.
    pub gossip_fanout: usize,
    /// Gossip TTL on originated LSAs; each fresh receiver forwards with
    /// `ttl − 1` until it hits zero. Coverage beyond the TTL horizon is
    /// anti-entropy's job.
    pub gossip_ttl: u8,
    /// Anti-entropy period: every tick, exchange an LSDB digest with one
    /// rotating known peer (push fresher LSAs, pull stale ones).
    pub sync_interval: Duration,
    /// Measurement pings per ping tick toward *unwired* candidates (a
    /// rotating sample); wired neighbors are always pinged (heartbeats).
    /// `usize::MAX` pings every candidate — the paper's O(n) measurement.
    pub ping_sample: usize,
    /// Announce a seq-bumped LSA at most every this many announce ticks
    /// unless the wiring changed materially (membership, or any link
    /// cost shifted >10%). 1 = announce every tick (classic behavior).
    pub announce_refresh: u32,
    /// Override for the LSDB max age; `None` keeps 3.5× the announce
    /// interval. Profiles that stretch `announce_refresh` must stretch
    /// this too, or healthy origins age out between refreshes.
    pub lsdb_max_age: Option<Duration>,
    /// Second-hand claim ranking thresholds (§3.4 extension): the
    /// triangle-inequality check on third-party link claims.
    pub claims: ClaimRanker,
    /// Publish the routing graph's edge list in the view (used by the
    /// forged-link acceptance metric; off by default — it is O(edges)
    /// per publish).
    pub expose_route_edges: bool,
}

impl NodeConfig {
    /// Paper-like defaults (scaled-down timers happen in tests).
    pub fn new(id: NodeId, n: usize, k: usize) -> Self {
        NodeConfig {
            id,
            n,
            k,
            policy: PolicyKind::BestResponse,
            epoch: Duration::from_secs(60),
            announce_interval: Duration::from_secs(20),
            ping_interval: Duration::from_secs(60),
            liveness_timeout: Duration::from_secs(65),
            mode: RewireMode::Delayed,
            cost_inflation: 1.0,
            bootstrap: None,
            seed: id.0 as u64,
            active_view_size: usize::MAX,
            passive_view_size: 96,
            join_backoff_base: Duration::from_secs(1),
            join_backoff_cap: Duration::from_secs(30),
            audit_ratio: 4.0,
            ban_threshold: 4,
            demote_after: 3,
            inline_rewire: false,
            gossip_fanout: usize::MAX,
            gossip_ttl: 8,
            sync_interval: Duration::from_secs(15),
            ping_sample: usize::MAX,
            announce_refresh: 1,
            lsdb_max_age: None,
            claims: ClaimRanker::default(),
            expose_route_edges: false,
        }
    }
}

/// Observable node state, refreshed by the agent.
#[derive(Clone, Debug, Default)]
pub struct NodeView {
    pub wiring: Vec<NodeId>,
    /// EWMA one-way delay estimate per node id (NaN = never measured).
    pub direct_est: Vec<f64>,
    pub lsdb_size: usize,
    pub epochs_completed: u64,
    pub rewirings: u64,
    /// Next overlay hop per destination id (`None` = unknown/unreachable).
    pub next_hops: Vec<Option<NodeId>>,
    pub overhead: OverheadCounters,
    /// Frames that failed to decode (corruption, garbage).
    pub decode_errors: u64,
    /// Remembered-but-unwired peers (bounded; survives LSDB expiry, so a
    /// healed partition can be re-probed without the bootstrap seed).
    pub passive_view: Vec<NodeId>,
    /// Peers evicted for misbehavior (permanent).
    pub banned: Vec<NodeId>,
    /// Current misbehavior points per node id (decays each epoch).
    pub misbehavior: Vec<u32>,
    pub join_retries: u64,
    pub demotions: u64,
    pub evictions: u64,
    pub promotions: u64,
    /// LSAs this node originated (seq bumps actually sent).
    pub announces: u64,
    /// Gossip forwards of other origins' fresh LSAs.
    pub gossip_forwards: u64,
    /// Anti-entropy digests sent / pulls sent / LSAs pushed to partners.
    pub ae_digests: u64,
    pub ae_pulls: u64,
    pub ae_pushed: u64,
    /// Second-hand claim ranking tallies (third-party links checked).
    pub claims_corroborated: u64,
    pub claims_contradicted: u64,
    /// Links excluded from the last route computation by quarantine.
    pub links_quarantined: u64,
    /// Undecayed lifetime misbehavior points per node id (score
    /// histogram input — decayed points collapse into bucket 0).
    pub misbehavior_total: Vec<u64>,
    /// Edges of the last routing graph (only when `expose_route_edges`).
    pub route_edges: Vec<(NodeId, NodeId)>,
}

/// Handle to a spawned node.
pub struct NodeHandle {
    pub view: Arc<RwLock<NodeView>>,
    shutdown: Option<oneshot::Sender<()>>,
    join: tokio::task::JoinHandle<()>,
}

impl NodeHandle {
    /// Request shutdown (the node sends `Leave` first) and wait for exit.
    pub async fn stop(mut self) {
        if let Some(tx) = self.shutdown.take() {
            let _ = tx.send(());
        }
        let _ = self.join.await;
    }

    /// Snapshot the node's current view.
    pub fn snapshot(&self) -> NodeView {
        self.view.read().clone()
    }
}

/// Per-peer health ledger. Two independent strike families: ping loss
/// is *responsiveness* (recoverable — loss and partitions hit honest
/// peers too, so it only ever demotes), while decode garbage and flood
/// inconsistencies are *misbehavior* (a peer emitting them is broken or
/// hostile; enough points and it is banned outright).
///
/// Responsiveness rides a smoothed metric with hysteresis rather than a
/// raw consecutive-miss counter (Jonglez et al., arXiv:1403.3488):
/// instantaneous loss/delay signals flap under jitter windows, so the
/// demotion decision uses a loss-rate EWMA that must stay above
/// [`PeerHealth::DEMOTE_ABOVE`] for a dwell of consecutive lost probes,
/// and the demoted latch only releases below the (much lower)
/// [`PeerHealth::RESTORE_BELOW`] — a peer oscillating between the two
/// thresholds cannot be flapped across the boundary.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PeerHealth {
    /// EWMA of the probe-loss indicator (1 = lost). 0 samples = NaN.
    loss: f64,
    /// Consecutive lost probes observed while the EWMA sat above the
    /// demotion threshold.
    above: u32,
    /// Demotion latch; releases only below `RESTORE_BELOW`.
    demoted: bool,
}

impl Default for PeerHealth {
    fn default() -> Self {
        PeerHealth {
            // NaN: the first probe outcome seeds the EWMA outright, so a
            // peer that is dead on arrival demotes after exactly `dwell`
            // probes rather than waiting out the smoothing ramp.
            loss: f64::NAN,
            above: 0,
            demoted: false,
        }
    }
}

impl PeerHealth {
    /// Smoothing factor. Deliberately small: the stationary standard
    /// deviation of the EWMA is `sqrt(p(1−p)·α/(2−α))`, and the
    /// proptest's stability claim needs ≥5σ between a healthy peer's
    /// loss rate and `DEMOTE_ABOVE`.
    const ALPHA: f64 = 0.15;
    /// EWMA loss above this arms demotion.
    const DEMOTE_ABOVE: f64 = 0.55;
    /// EWMA loss below this releases the demoted latch (hysteresis gap).
    const RESTORE_BELOW: f64 = 0.25;

    /// Record one probe outcome. Returns `true` when this sample trips
    /// the demotion latch (caller drops the link once per trip).
    fn record(&mut self, lost: bool, dwell: u32) -> bool {
        let x = if lost { 1.0 } else { 0.0 };
        self.loss = if self.loss.is_nan() {
            x
        } else {
            Self::ALPHA * x + (1.0 - Self::ALPHA) * self.loss
        };
        if lost && self.loss > Self::DEMOTE_ABOVE {
            self.above = self.above.saturating_add(1);
        } else if self.loss <= Self::DEMOTE_ABOVE {
            self.above = 0;
        }
        if self.loss < Self::RESTORE_BELOW {
            self.demoted = false;
        }
        if self.above >= dwell && !self.demoted {
            self.demoted = true;
            return true;
        }
        false
    }

    /// Whether the demotion latch is currently set.
    #[cfg(test)]
    fn is_demoted(&self) -> bool {
        self.demoted
    }

    fn reset(&mut self) {
        *self = PeerHealth::default();
    }
}

/// Full per-peer ledger: responsiveness health plus misbehavior points.
#[derive(Clone, Copy, Debug, Default)]
struct PeerScore {
    health: PeerHealth,
    /// Accumulated misbehavior points; decays by 1 each epoch.
    misbehavior: u32,
    /// Lifetime points, never decayed (score histogram input).
    total_points: u64,
    /// Third-party claim contradictions observed this epoch; converted
    /// to misbehavior points (capped) at the epoch tick.
    contradicted_epoch: u32,
}

/// EWMA estimator for one-way delay.
#[derive(Clone, Copy, Debug)]
struct Ewma {
    value: f64,
    alpha: f64,
}

impl Ewma {
    fn new() -> Self {
        Ewma {
            value: f64::NAN,
            alpha: 0.3,
        }
    }

    fn update(&mut self, sample: f64) {
        if self.value.is_nan() {
            self.value = sample;
        } else {
            self.value = self.alpha * sample + (1.0 - self.alpha) * self.value;
        }
    }
}

/// Stateless splitmix64-style mix ranking gossip targets: a pure
/// function of `(origin, seq, me, target)`, so every process computes
/// the same fan-out subset with no shared RNG state, yet successive
/// rumors (and successive forwarders) land on different subsets.
fn gossip_hash(origin: NodeId, seq: u64, me: NodeId, target: NodeId) -> u64 {
    let mut z = ((origin.0 as u64) << 40)
        ^ ((me.0 as u64) << 20)
        ^ (target.0 as u64)
        ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The node agent.
pub struct EgoistNode<T: Transport> {
    cfg: NodeConfig,
    transport: T,
    lsdb: Lsdb,
    est: Vec<Ewma>,
    last_heard: Vec<Option<Instant>>,
    wiring: Vec<NodeId>,
    pending_pings: HashMap<u64, (NodeId, Instant)>,
    next_nonce: u64,
    seq: u64,
    rng: StdRng,
    view: Arc<RwLock<NodeView>>,
    t0: Instant,
    rewirings: u64,
    epochs: u64,
    decode_errors: u64,
    overhead: OverheadCounters,
    /// Set once the node has wired at least one link (the §3.1 join).
    join_wired: bool,
    scores: Vec<PeerScore>,
    banned: Vec<bool>,
    /// Passive view, LRU order (oldest first). Bounded by
    /// `passive_view_size`; retains ids past LSDB expiry.
    passive: Vec<NodeId>,
    first_heard: Vec<Option<Instant>>,
    join_retries: u64,
    demotions: u64,
    evictions: u64,
    promotions: u64,
    /// In-neighbor cache: `in_nbrs[j]` iff `j`'s latest applied LSA
    /// claims a link to us. Kept in sync on apply/expire/remove so
    /// gossip target selection never rebuilds the LSDB graph.
    in_nbrs: Vec<bool>,
    /// Links announced in the last seq bump (announce suppression).
    last_announced: Vec<LinkEntry>,
    /// Announce ticks since the last seq bump.
    announce_ticks: u32,
    /// Rotating anti-entropy partner cursor.
    sync_cursor: usize,
    /// Rotating measurement-sample cursor.
    ping_cursor: usize,
    /// Capped-exponential join retry schedule.
    backoff: crate::bootstrap::Backoff,
    announces: u64,
    gossip_forwards: u64,
    ae_digests: u64,
    ae_pulls: u64,
    ae_pushed: u64,
    claims_corroborated: u64,
    claims_contradicted: u64,
    links_quarantined: u64,
}

impl<T: Transport> EgoistNode<T> {
    /// Build a node over a transport endpoint.
    pub fn new(cfg: NodeConfig, transport: T) -> Self {
        assert_eq!(cfg.id, transport.local_id(), "config/transport id mismatch");
        let n = cfg.n;
        let max_age = cfg
            .lsdb_max_age
            .map(|d| d.as_secs_f64())
            .unwrap_or(cfg.announce_interval.as_secs_f64() * 3.5);
        EgoistNode {
            lsdb: Lsdb::new(max_age),
            est: vec![Ewma::new(); n],
            last_heard: vec![None; n],
            wiring: Vec::new(),
            pending_pings: HashMap::new(),
            next_nonce: (cfg.id.0 as u64) << 32,
            seq: 0,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xE601),
            view: Arc::new(RwLock::new(NodeView {
                direct_est: vec![f64::NAN; n],
                next_hops: vec![None; n],
                ..NodeView::default()
            })),
            t0: Instant::now(),
            rewirings: 0,
            epochs: 0,
            decode_errors: 0,
            overhead: OverheadCounters::default(),
            join_wired: false,
            scores: vec![PeerScore::default(); n],
            banned: vec![false; n],
            passive: Vec::new(),
            first_heard: vec![None; n],
            join_retries: 0,
            demotions: 0,
            evictions: 0,
            promotions: 0,
            in_nbrs: vec![false; n],
            last_announced: Vec::new(),
            announce_ticks: 0,
            sync_cursor: 0,
            ping_cursor: 0,
            backoff: crate::bootstrap::Backoff::new(
                cfg.join_backoff_base,
                cfg.join_backoff_cap,
                cfg.seed,
            ),
            announces: 0,
            gossip_forwards: 0,
            ae_digests: 0,
            ae_pulls: 0,
            ae_pushed: 0,
            claims_corroborated: 0,
            claims_contradicted: 0,
            links_quarantined: 0,
            cfg,
            transport,
        }
    }

    /// Spawn the agent onto the current runtime.
    pub fn spawn(self) -> NodeHandle {
        let view = Arc::clone(&self.view);
        let (tx, rx) = oneshot::channel();
        let join = tokio::spawn(self.run(rx));
        NodeHandle {
            view,
            shutdown: Some(tx),
            join,
        }
    }

    fn now_secs(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    async fn send_msg(&mut self, to: NodeId, msg: &Message) {
        let frame = encode(msg);
        let class = msg.class();
        self.overhead.record(class, frame.len());
        let obs = proto_obs();
        obs.send_frames[class.slot()].inc();
        obs.send_bytes[class.slot()].add(frame.len() as u64);
        let _ = self.transport.send(to, frame).await;
    }

    /// Known overlay members other than self: LSDB origins plus anyone we
    /// have *recently* heard from. Measured-but-silent peers age out with
    /// the liveness timeout — otherwise a departed node would linger as a
    /// candidate (and, through the disconnection penalty, keep attracting
    /// links) forever.
    fn known_peers(&self) -> Vec<NodeId> {
        // Mark-vector membership: the old Vec::contains scan was O(n²)
        // per call, which dominates everything at fleet scale.
        let n = self.cfg.n;
        let mut mark = vec![false; n];
        for o in self.lsdb.origins() {
            if o.index() < n {
                mark[o.index()] = true;
            }
        }
        for (j, m) in mark.iter_mut().enumerate() {
            if !*m {
                let fresh = matches!(
                    self.last_heard[j],
                    Some(at) if at.elapsed() < self.cfg.liveness_timeout
                );
                *m = fresh && !self.est[j].value.is_nan();
            }
        }
        if self.cfg.id.index() < n {
            mark[self.cfg.id.index()] = false;
        }
        (0..n)
            .filter(|&j| mark[j] && !self.banned[j] && !self.condemned(j))
            .map(NodeId::from_index)
            .collect()
    }

    /// Remember a peer in the passive view (LRU move-to-back, bounded).
    fn remember_passive(&mut self, peer: NodeId) {
        if peer == self.cfg.id
            || peer.index() >= self.cfg.n
            || self.banned[peer.index()]
            || self.condemned(peer.index())
            || self.wiring.contains(&peer)
        {
            return;
        }
        self.passive.retain(|&p| p != peer);
        self.passive.push(peer);
        if self.passive.len() > self.cfg.passive_view_size {
            let excess = self.passive.len() - self.cfg.passive_view_size;
            self.passive.drain(..excess);
        }
    }

    /// Add misbehavior points; at the threshold the peer is banned and
    /// purged from every table. Returns whether a ban happened.
    fn punish(&mut self, peer: NodeId, points: u32) -> bool {
        if peer.index() >= self.cfg.n || self.banned[peer.index()] {
            return false;
        }
        let score = {
            let s = &mut self.scores[peer.index()];
            s.misbehavior = s.misbehavior.saturating_add(points);
            s.total_points += points as u64;
            s.misbehavior
        };
        if score < self.cfg.ban_threshold {
            return false;
        }
        self.banned[peer.index()] = true;
        self.evictions += 1;
        proto_obs().evictions.inc();
        proto_obs().peer_score.observe(score as f64);
        egoist_obs::event_at(
            (self.now_secs() * 1e9) as u64,
            "proto.peer.ban",
            &[
                ("node", (self.cfg.id.index() as u64).into()),
                ("peer", (peer.index() as u64).into()),
                ("score", (score as u64).into()),
            ],
        );
        self.lsdb.remove(peer);
        self.est[peer.index()] = Ewma::new();
        self.last_heard[peer.index()] = None;
        self.in_nbrs[peer.index()] = false;
        self.wiring.retain(|&w| w != peer);
        self.passive.retain(|&p| p != peer);
        self.pending_pings.retain(|_, (to, _)| *to != peer);
        true
    }

    /// Demote an unresponsive established neighbor: drop the link, keep
    /// the peer in the passive view for later re-probing.
    fn demote(&mut self, peer: NodeId) {
        if !self.wiring.contains(&peer) {
            return;
        }
        self.wiring.retain(|&w| w != peer);
        self.demotions += 1;
        proto_obs().demotions.inc();
        egoist_obs::event_at(
            (self.now_secs() * 1e9) as u64,
            "proto.peer.demote",
            &[
                ("node", (self.cfg.id.index() as u64).into()),
                ("peer", (peer.index() as u64).into()),
            ],
        );
        self.remember_passive(peer);
    }

    /// Forget everything measured about a departed/dead peer.
    fn forget(&mut self, peer: NodeId) {
        self.lsdb.remove(peer);
        if peer.index() < self.cfg.n {
            self.est[peer.index()] = Ewma::new();
            self.last_heard[peer.index()] = None;
            self.in_nbrs[peer.index()] = false;
        }
    }

    /// §3.4-style flood audit: an LSA whose origin claims a link *to us*
    /// priced more than `audit_ratio` away from our own measurement of
    /// that origin is lying (the eclipse lure announces near-zero costs;
    /// the Fig. 4 free rider's 2× inflation stays under the default 4×).
    /// Newly-heard origins get a grace period — their first
    /// announcements carry a placeholder cost until their own pings
    /// resolve. Returns whether the LSA may be applied and forwarded.
    fn audit_lsa(&mut self, lsa: &LinkStateAnnouncement) -> bool {
        let o = lsa.origin;
        if o.index() >= self.cfg.n {
            return true;
        }
        if self.banned[o.index()] {
            return false;
        }
        let my_est = self.est[o.index()].value;
        if my_est.is_nan() || my_est <= 0.0 {
            return true;
        }
        let grace = self.cfg.announce_interval.mul_f64(3.0);
        match self.first_heard[o.index()] {
            Some(at) if at.elapsed() > grace => {}
            _ => return true,
        }
        let offending = lsa.links.iter().any(|l| {
            l.neighbor == self.cfg.id
                && ((l.cost as f64) < my_est / self.cfg.audit_ratio
                    || (l.cost as f64) > my_est * self.cfg.audit_ratio)
        });
        if offending {
            self.punish(o, 1);
            return false;
        }
        true
    }

    /// Gossip fan-out targets for `(origin, seq)`: the active view plus
    /// cached in-neighbors, minus self/`except`/banned; when more than
    /// `fanout` remain, keep the `fanout` lowest by a stateless
    /// per-(origin, seq, me, target) hash — deterministic across runs,
    /// yet a pseudo-random subset per rumor, so successive forwarders
    /// cover different corners of the overlay.
    fn gossip_targets(
        &self,
        origin: NodeId,
        seq: u64,
        except: Option<NodeId>,
        fanout: usize,
    ) -> Vec<NodeId> {
        let n = self.cfg.n;
        let mut mark = vec![false; n];
        for &w in &self.wiring {
            if w.index() < n {
                mark[w.index()] = true;
            }
        }
        for (j, m) in mark.iter_mut().enumerate() {
            if self.in_nbrs[j] {
                *m = true;
            }
        }
        if self.cfg.id.index() < n {
            mark[self.cfg.id.index()] = false;
        }
        if let Some(e) = except {
            if e.index() < n {
                mark[e.index()] = false;
            }
        }
        let mut targets: Vec<NodeId> = (0..n)
            .filter(|&j| mark[j] && !self.banned[j])
            .map(NodeId::from_index)
            .collect();
        if targets.len() > fanout {
            let me = self.cfg.id;
            targets.sort_by_key(|&t| (gossip_hash(origin, seq, me, t), t));
            targets.truncate(fanout);
            // Sorted send order: fan-out must not depend on hash order,
            // or frame interleavings (and reports) drift.
            targets.sort_unstable();
        }
        targets
    }

    /// Push a fresh LSA to the gossip subset.
    async fn gossip_lsa(&mut self, lsa: LinkStateAnnouncement, ttl: u8, except: Option<NodeId>) {
        let targets = self.gossip_targets(lsa.origin, lsa.seq, except, self.cfg.gossip_fanout);
        let msg = Message::LinkState { lsa, ttl };
        for t in targets {
            self.send_msg(t, &msg).await;
        }
    }

    /// Flood a message to every overlay neighbor (Leave notifications —
    /// never fanout-limited; a missed Leave costs a liveness timeout).
    async fn flood(&mut self, msg: &Message, except: Option<NodeId>) {
        let targets = self.gossip_targets(self.cfg.id, self.seq, except, usize::MAX);
        for t in targets {
            self.send_msg(t, msg).await;
        }
    }

    /// Whether `links` differ materially from the last announced set:
    /// different membership, or any shared link's cost shifted >10%.
    fn announce_material(&self, links: &[LinkEntry]) -> bool {
        if links.len() != self.last_announced.len() {
            return true;
        }
        let mut old: Vec<(NodeId, f32)> = self
            .last_announced
            .iter()
            .map(|l| (l.neighbor, l.cost))
            .collect();
        let mut new: Vec<(NodeId, f32)> = links.iter().map(|l| (l.neighbor, l.cost)).collect();
        old.sort_by_key(|&(id, _)| id);
        new.sort_by_key(|&(id, _)| id);
        old.iter().zip(&new).any(|(&(oi, oc), &(ni, nc))| {
            oi != ni || (oc - nc).abs() > 0.1 * oc.abs().max(f32::EPSILON)
        })
    }

    /// Build this node's LSA and gossip it. With announce suppression
    /// (`announce_refresh > 1`) an unchanged wiring re-announces only
    /// every `announce_refresh` ticks — the periodic refresh that keeps
    /// LSDB records alive — while material changes go out immediately.
    /// `force` bypasses suppression (join, failure reaction).
    async fn announce(&mut self, force: bool) {
        let links: Vec<LinkEntry> = self
            .wiring
            .iter()
            .map(|&w| {
                let honest = self.est[w.index()].value;
                let cost = if honest.is_nan() { 1.0 } else { honest };
                LinkEntry {
                    neighbor: w,
                    cost: (cost * self.cfg.cost_inflation) as f32,
                }
            })
            .collect();
        self.announce_ticks += 1;
        if !force
            && self.announce_ticks < self.cfg.announce_refresh
            && !self.announce_material(&links)
        {
            return;
        }
        self.announce_ticks = 0;
        self.seq += 1;
        self.announces += 1;
        let lsa = LinkStateAnnouncement {
            origin: self.cfg.id,
            seq: self.seq,
            links: links.clone(),
        };
        self.last_announced = links;
        let now = self.now_secs();
        self.lsdb.apply(lsa.clone(), now);
        self.gossip_lsa(lsa, self.cfg.gossip_ttl, None).await;
    }

    /// Rank every third-party link claim in `lsa` against the triangle
    /// lower bound from this node's own measurements. Any contradicted
    /// claim rejects the LSA (it is neither believed nor forwarded) and
    /// is tallied toward the origin's per-epoch misbehavior conversion.
    fn rank_claims(&mut self, lsa: &LinkStateAnnouncement) -> bool {
        let o = lsa.origin;
        if o.index() >= self.cfg.n {
            return true;
        }
        // Same grace window as the first-hand audit: a freshly-joined
        // origin announces placeholder costs for links its own pings
        // have not measured yet, and those carry no rankable signal.
        let grace = self.cfg.announce_interval.mul_f64(3.0);
        match self.first_heard[o.index()] {
            Some(at) if at.elapsed() > grace => {}
            _ => return true,
        }
        let est_o = self.est[o.index()].value;
        let mut contradicted = 0u32;
        for l in &lsa.links {
            if l.neighbor == self.cfg.id || l.neighbor.index() >= self.cfg.n {
                continue; // first-hand links are audit_lsa's job
            }
            let est_x = self.est[l.neighbor.index()].value;
            match self.cfg.claims.rank(est_o, est_x, l.cost as f64) {
                ClaimVerdict::Contradicted => contradicted += 1,
                ClaimVerdict::Corroborated => {
                    self.claims_corroborated += 1;
                    proto_obs().claims_corroborated.inc();
                }
                ClaimVerdict::Unknown => {}
            }
        }
        if contradicted > 0 {
            self.claims_contradicted += contradicted as u64;
            let obs = proto_obs();
            for _ in 0..contradicted {
                obs.claims_contradicted.inc();
            }
            self.scores[o.index()].contradicted_epoch = self.scores[o.index()]
                .contradicted_epoch
                .saturating_add(contradicted);
            return false;
        }
        true
    }

    /// Admission control for a received LSA: the §3.4 first-hand audit
    /// (links to us vs our own measurement) plus second-hand claim
    /// ranking. Applies it to the LSDB when admitted; returns whether it
    /// was fresh *and clean* (and should be forwarded).
    ///
    /// A contradicted LSA is still stored: quarantine happens at route
    /// computation, not at admission, because rejecting the record would
    /// let the origin expire from the LSDB, drop out of the candidate
    /// set, and stop being measured — resetting the very estimates the
    /// ranking needs, so the next forgery would arrive unrankable. It is
    /// never gossiped onward though: forwarding only launders forgeries.
    fn admit_lsa(&mut self, lsa: LinkStateAnnouncement) -> bool {
        if !self.audit_lsa(&lsa) {
            return false;
        }
        let clean = self.rank_claims(&lsa);
        let now = self.now_secs();
        let origin = lsa.origin;
        let links_me = lsa.links.iter().any(|l| l.neighbor == self.cfg.id);
        let fresh = self.lsdb.apply(lsa, now);
        if fresh && origin.index() < self.cfg.n {
            self.in_nbrs[origin.index()] = links_me;
        }
        fresh && clean
    }

    /// Whether `origin` is currently under suspicion (open misbehavior
    /// points or fresh claim contradictions): its third-party claims
    /// are quarantined from route computation. Suspicion also becomes
    /// *permanent* once lifetime points reach the ban threshold, even
    /// when decay kept the instantaneous score below it — the triangle
    /// bound is vantage-dependent, and a node sitting at the metric's
    /// center may be geometrically unable to re-derive what the audits
    /// already proved about a forger before its relays went quiet.
    fn suspect(&self, origin: NodeId) -> bool {
        origin.index() < self.cfg.n && {
            let s = &self.scores[origin.index()];
            s.misbehavior > 0 || s.contradicted_epoch > 0 || self.condemned(origin.index())
        }
    }

    /// Permanent suspicion: lifetime points reached the ban threshold,
    /// even if decay kept the instantaneous score below it. A condemned
    /// peer is never wired again and its claims stay quarantined — but
    /// it is *not* purged like a banned one, so its record stays
    /// measurable and future forgeries stay rankable.
    fn condemned(&self, j: usize) -> bool {
        self.scores[j].total_points >= self.cfg.ban_threshold as u64
    }

    /// The LSDB graph minus quarantined second-hand claims: links *to
    /// us* are first-hand (audited on receipt, kept); third-party links
    /// are re-ranked against current measurements — contradicted ones
    /// are always excluded, unknown ones are excluded when their origin
    /// is suspect. Corroboration counts, not trust-on-sight, decide what
    /// routes may use.
    fn routing_graph(&mut self) -> egoist_graph::DiGraph {
        let n = self.cfg.n;
        let mut g = egoist_graph::DiGraph::new(n);
        let mut quarantined = 0u64;
        for lsa in self.lsdb.all() {
            let from = lsa.origin;
            if from.index() >= n {
                continue;
            }
            let est_o = self.est[from.index()].value;
            let sus = self.suspect(from);
            for l in &lsa.links {
                if l.neighbor.index() >= n || l.neighbor == from {
                    continue;
                }
                if l.neighbor == self.cfg.id && from != self.cfg.id {
                    // First-hand link, but it may have been admitted
                    // during the newcomer grace window (no estimate
                    // yet): re-audit against the current measurement so
                    // a stale grace-period forgery cannot squat in the
                    // routing graph.
                    if est_o.is_finite() && est_o > 0.0 {
                        let c = l.cost as f64;
                        if c < est_o / self.cfg.audit_ratio || c > est_o * self.cfg.audit_ratio {
                            quarantined += 1;
                            continue;
                        }
                    }
                } else if from != self.cfg.id {
                    let est_x = self.est[l.neighbor.index()].value;
                    match self.cfg.claims.rank(est_o, est_x, l.cost as f64) {
                        ClaimVerdict::Contradicted => {
                            quarantined += 1;
                            continue;
                        }
                        // An origin under live suspicion loses *all* its
                        // third-party claims, even ones the triangle
                        // bound cannot individually refute — a caught
                        // forger's corroborations are worthless (the
                        // bound only sees gaps, not absolute costs).
                        _ if sus => {
                            quarantined += 1;
                            continue;
                        }
                        _ => {}
                    }
                }
                g.add_edge(from, l.neighbor, l.cost as f64);
            }
        }
        if quarantined > 0 {
            let obs = proto_obs();
            for _ in 0..quarantined {
                obs.links_quarantined.inc();
            }
        }
        // Cumulative over the node's lifetime (the report sums ledgers,
        // not instantaneous snapshots).
        self.links_quarantined = self.links_quarantined.saturating_add(quarantined);
        g
    }

    /// Send one ping to `peer` and arm the pending-pong timer.
    async fn ping_one(&mut self, peer: NodeId, hb: bool) {
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        self.pending_pings.insert(nonce, (peer, Instant::now()));
        self.send_msg(
            peer,
            &Message::Ping {
                from: self.cfg.id,
                nonce,
                hb,
            },
        )
        .await;
    }

    /// Liveness heartbeats to every wired neighbor, measurement pings to
    /// a rotating sample of unwired candidates (the paper's `O(n)`
    /// per-epoch measurement when `ping_sample` is unbounded), plus a
    /// couple of passive-view probes.
    async fn send_pings(&mut self) {
        // Expire stale pending pings, charging each to its peer's
        // responsiveness ledger (sorted so same-seed runs agree).
        let deadline = self.cfg.liveness_timeout;
        let mut expired: Vec<NodeId> = self
            .pending_pings
            .values()
            .filter(|(_, at)| at.elapsed() >= deadline)
            .map(|&(peer, _)| peer)
            .collect();
        expired.sort_unstable();
        self.pending_pings
            .retain(|_, (_, at)| at.elapsed() < deadline);
        let dwell = self.cfg.demote_after;
        for peer in expired {
            if peer.index() >= self.cfg.n || self.banned[peer.index()] {
                continue;
            }
            if self.scores[peer.index()].health.record(true, dwell) {
                self.demote(peer);
            }
        }

        // Wired neighbors: heartbeat every tick, no sampling — a dead
        // established link must be noticed within the dwell.
        let wired: Vec<NodeId> = self
            .wiring
            .iter()
            .copied()
            .filter(|w| w.index() < self.cfg.n && !self.banned[w.index()])
            .collect();
        let mut unwired = self.known_peers();
        unwired.retain(|t| Some(*t) != self.cfg.bootstrap && !wired.contains(t));
        // Rotating measurement window over the unwired candidates: every
        // candidate is still measured, just `ping_sample` per tick.
        if unwired.len() > self.cfg.ping_sample {
            let m = unwired.len();
            let start = self.ping_cursor % m;
            self.ping_cursor = self.ping_cursor.wrapping_add(self.cfg.ping_sample);
            let mut window: Vec<NodeId> = (0..self.cfg.ping_sample)
                .map(|i| unwired[(start + i) % m])
                .collect();
            window.sort_unstable();
            unwired = window;
        }
        // Passive probes: re-ping the two coldest remembered peers that
        // are not already candidates. This is what heals a partition —
        // the other side has expired from the LSDB everywhere, and only
        // the passive view still knows those ids exist.
        let fresh = |last: Option<Instant>| matches!(last, Some(at) if at.elapsed() < self.cfg.liveness_timeout);
        let cold: Vec<NodeId> = self
            .passive
            .iter()
            .copied()
            .filter(|p| {
                !wired.contains(p) && !unwired.contains(p) && !fresh(self.last_heard[p.index()])
            })
            .take(2)
            .collect();
        for p in cold {
            // Move to the back so probing rotates through the view.
            self.passive.retain(|&q| q != p);
            self.passive.push(p);
            proto_obs().passive_probes.inc();
            unwired.push(p);
        }
        for peer in wired {
            self.ping_one(peer, true).await;
        }
        for peer in unwired {
            self.ping_one(peer, false).await;
        }
    }

    /// Check established links for liveness; returns dead neighbors.
    fn dead_neighbors(&self) -> Vec<NodeId> {
        self.wiring
            .iter()
            .copied()
            .filter(|w| match self.last_heard[w.index()] {
                Some(at) => at.elapsed() > self.cfg.liveness_timeout,
                None => false, // never heard: still joining, give it time
            })
            .collect()
    }

    /// Compute a new wiring with the configured policy (CPU-bound part on
    /// the blocking pool) and install it. Returns whether it changed.
    async fn rewire(&mut self) -> bool {
        let now = self.now_secs();
        // Expired origins are gone for good: drop their links and forget
        // their measurements so they stop being candidates.
        for e in self.lsdb.expire(now) {
            if e.index() < self.cfg.n {
                self.est[e.index()] = Ewma::new();
                self.last_heard[e.index()] = None;
                self.in_nbrs[e.index()] = false;
            }
            self.wiring.retain(|&w| w != e);
        }
        let candidates = self.known_peers();
        if candidates.is_empty() {
            return false;
        }
        let me = self.cfg.id;
        let n = self.cfg.n;
        let k = self.cfg.k;
        let policy = self.cfg.policy;
        let direct: Vec<f64> = (0..n)
            .map(|j| {
                let v = self.est[j].value;
                if v.is_nan() {
                    f64::INFINITY
                } else {
                    v
                }
            })
            .collect();
        // Oblivious policies never read residual state: skip both the
        // quarantine-ranked graph build and the O(n²·log n) APSP — this
        // is what makes a 1000-node fleet of k-Closest nodes tractable.
        let announced = if policy.needs_residual() {
            let mut g = self.routing_graph();
            g.clear_out_edges(me);
            Some(g)
        } else {
            None
        };
        let current = self.wiring.clone();
        let mut alive = vec![false; n];
        alive[me.index()] = true;
        for c in &candidates {
            alive[c.index()] = true;
        }
        let seed = self.rng_next();

        let job = move || {
            let prefs = Preferences::uniform(n);
            let finite_max = direct
                .iter()
                .copied()
                .filter(|d| d.is_finite())
                .fold(1.0f64, f64::max);
            let penalty = finite_max * n as f64 * 4.0;
            let dense;
            let zero_row;
            let residual = match &announced {
                Some(g) => {
                    dense = apsp(g);
                    egoist_core::ResidualView::dense(&dense)
                }
                None => {
                    zero_row = vec![0.0; n];
                    egoist_core::ResidualView::broadcast(&zero_row)
                }
            };
            let ctx = WiringContext {
                node: me,
                k,
                candidates: &candidates,
                direct: &direct,
                residual,
                prefs: &prefs,
                alive: &alive,
                penalty,
                current: &current,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            policy.instantiate().wire(&ctx, &mut rng)
        };
        // The k-median local search is the expensive bit; run it off the
        // async thread — unless the run must be bit-reproducible, in
        // which case blocking-pool wakeup order is a race we avoid.
        let new_wiring = if self.cfg.inline_rewire {
            job()
        } else {
            tokio::task::spawn_blocking(job).await.unwrap_or_default()
        };

        let mut new_wiring = new_wiring;
        if new_wiring.len() > self.cfg.active_view_size {
            new_wiring.truncate(self.cfg.active_view_size);
        }
        let mut old = self.wiring.clone();
        let mut new = new_wiring.clone();
        old.sort_unstable();
        new.sort_unstable();
        let changed = old != new;
        // View bookkeeping: passive peers that won a link are promotions;
        // peers that lost theirs stay remembered for later re-probing.
        for &w in &new_wiring {
            if old.binary_search(&w).is_err() && self.passive.contains(&w) {
                self.promotions += 1;
                proto_obs().promotions.inc();
                // Re-promotion wipes the responsiveness ledger: the link
                // is being retried on fresh evidence, not old grudges.
                self.scores[w.index()].health.reset();
            }
        }
        self.wiring = new_wiring;
        let dropped: Vec<NodeId> = old
            .iter()
            .copied()
            .filter(|w| new.binary_search(w).is_err())
            .collect();
        for w in dropped {
            self.remember_passive(w);
        }
        self.passive.retain(|p| new.binary_search(p).is_err());
        changed
    }

    fn rng_next(&mut self) -> u64 {
        use rand::Rng;
        self.rng.random()
    }

    /// Refresh the shared view (routes, estimates, counters).
    fn publish(&mut self) {
        let mut g = self.routing_graph();
        // Own links with honest costs (routing uses the freshest local
        // knowledge).
        for &w in &self.wiring {
            let c = self.est[w.index()].value;
            if !c.is_nan() {
                g.add_edge(self.cfg.id, w, c);
            }
        }
        let sp = egoist_graph::dijkstra::dijkstra(&g, self.cfg.id);
        let next_hops: Vec<Option<NodeId>> = (0..self.cfg.n)
            .map(|j| sp.next_hop(NodeId::from_index(j)))
            .collect();
        let mut v = self.view.write();
        v.wiring = self.wiring.clone();
        v.direct_est = self.est.iter().map(|e| e.value).collect();
        v.lsdb_size = self.lsdb.len();
        v.epochs_completed = self.epochs;
        v.rewirings = self.rewirings;
        v.next_hops = next_hops;
        v.overhead = self.overhead.clone();
        v.decode_errors = self.decode_errors;
        v.passive_view = self.passive.clone();
        v.banned = (0..self.cfg.n)
            .filter(|&j| self.banned[j])
            .map(NodeId::from_index)
            .collect();
        v.misbehavior = self.scores.iter().map(|s| s.misbehavior).collect();
        v.join_retries = self.join_retries;
        v.demotions = self.demotions;
        v.evictions = self.evictions;
        v.promotions = self.promotions;
        v.announces = self.announces;
        v.gossip_forwards = self.gossip_forwards;
        v.ae_digests = self.ae_digests;
        v.ae_pulls = self.ae_pulls;
        v.ae_pushed = self.ae_pushed;
        v.claims_corroborated = self.claims_corroborated;
        v.claims_contradicted = self.claims_contradicted;
        v.links_quarantined = self.links_quarantined;
        v.misbehavior_total = self.scores.iter().map(|s| s.total_points).collect();
        if self.cfg.expose_route_edges {
            v.route_edges = g.edges().map(|(f, t, _)| (f, t)).collect();
        }
    }

    async fn handle_frame(&mut self, from: NodeId, frame: bytes::Bytes) {
        if from.index() < self.cfg.n && self.banned[from.index()] {
            proto_obs().banned_frames.inc();
            return;
        }
        let msg = match decode(&frame) {
            Ok(m) => m,
            Err(_) => {
                self.decode_errors += 1;
                proto_obs().decode_errors.inc();
                // Garbage from a known sender scores one misbehavior
                // point. Link corruption hits honest peers too, so the
                // rate matters, not the event: background corruption
                // stays under the 1/epoch decay, a garbage flood does not.
                self.punish(from, 1);
                return;
            }
        };
        {
            let obs = proto_obs();
            let class = msg.class();
            obs.recv_frames[class.slot()].inc();
            obs.recv_bytes[class.slot()].add(frame.len() as u64);
        }
        if from.index() < self.cfg.n {
            self.last_heard[from.index()] = Some(Instant::now());
            if self.first_heard[from.index()].is_none() {
                self.first_heard[from.index()] = Some(Instant::now());
            }
        }
        match msg {
            Message::BootstrapResponse { peers } => {
                for &p in &peers {
                    self.remember_passive(p);
                }
                // Hello up to three peers for LSDB sync redundancy.
                for p in peers.into_iter().take(3) {
                    if p != self.cfg.id && !(p.index() < self.cfg.n && self.banned[p.index()]) {
                        self.send_msg(p, &Message::Hello { from: self.cfg.id })
                            .await;
                    }
                }
            }
            Message::Hello { from: peer } => {
                let lsas = self.lsdb.all();
                self.send_msg(peer, &Message::LsdbSync { lsas }).await;
            }
            Message::LsdbSync { lsas } => {
                for lsa in lsas {
                    // Admission-controlled but not re-forwarded: sync
                    // deltas propagate by anti-entropy, not push.
                    self.admit_lsa(lsa);
                }
            }
            Message::LinkState { lsa, ttl } => {
                // Audited before apply *and* before forward: a rejected
                // LSA is neither believed nor propagated. Fresh with TTL
                // budget left → push on to a fanout-bounded subset.
                if self.admit_lsa(lsa.clone()) && ttl > 0 {
                    self.gossip_forwards += 1;
                    proto_obs().gossip_forwards.inc();
                    self.gossip_lsa(lsa, ttl - 1, Some(from)).await;
                }
            }
            Message::LsdbDigest {
                from: peer,
                entries,
            } => {
                // Anti-entropy: push what we know fresher, pull what the
                // partner knows fresher. Records the digest agrees with
                // are refreshed — the partner's knowledge of (origin,
                // seq) proves the origin is alive somewhere, so agreed
                // records don't age out between suppressed announces.
                let now = self.now_secs();
                self.lsdb.touch_matching(&entries, now);
                let fresher = self.lsdb.fresher_than(&entries);
                if !fresher.is_empty() {
                    self.ae_pushed += fresher.len() as u64;
                    let obs = proto_obs();
                    for _ in 0..fresher.len() {
                        obs.ae_pushed.inc();
                    }
                    self.send_msg(peer, &Message::LsdbSync { lsas: fresher })
                        .await;
                }
                let stale = self.lsdb.stale_origins(&entries);
                if !stale.is_empty() {
                    self.ae_pulls += 1;
                    proto_obs().ae_pulls.inc();
                    self.send_msg(
                        peer,
                        &Message::LsdbPull {
                            from: self.cfg.id,
                            origins: stale,
                        },
                    )
                    .await;
                }
            }
            Message::LsdbPull {
                from: peer,
                origins,
            } => {
                let lsas = self.lsdb.select(&origins);
                if !lsas.is_empty() {
                    self.ae_pushed += lsas.len() as u64;
                    let obs = proto_obs();
                    for _ in 0..lsas.len() {
                        obs.ae_pushed.inc();
                    }
                    self.send_msg(peer, &Message::LsdbSync { lsas }).await;
                }
            }
            Message::Ping {
                from: peer,
                nonce,
                hb,
            } => {
                self.send_msg(
                    peer,
                    &Message::Pong {
                        from: self.cfg.id,
                        nonce,
                        hb,
                    },
                )
                .await;
            }
            Message::Pong {
                from: peer,
                nonce,
                hb: _,
            } => {
                if let Some((expected, sent_at)) = self.pending_pings.remove(&nonce) {
                    if expected == peer && peer.index() < self.cfg.n {
                        self.scores[peer.index()]
                            .health
                            .record(false, self.cfg.demote_after);
                        let one_way_ms = sent_at.elapsed().as_secs_f64() * 1000.0 / 2.0;
                        self.est[peer.index()].update(one_way_ms);
                        // §3.1 join: the newcomer connects as soon as it
                        // can price at least one candidate, rather than
                        // waiting out its first wiring epoch.
                        if !self.join_wired && self.wiring.is_empty() && self.rewire().await {
                            self.join_wired = true;
                            // Gossip convergence: virtual seconds from
                            // node start to the first established link.
                            let joined = self.now_secs();
                            proto_obs().join_secs.observe(joined);
                            egoist_obs::event_at(
                                (joined * 1e9) as u64,
                                "proto.join",
                                &[
                                    ("node", (self.cfg.id.index() as u64).into()),
                                    ("secs", joined.into()),
                                ],
                            );
                            self.rewirings += 1;
                            self.announce(true).await;
                            self.publish();
                        }
                    }
                }
            }
            Message::Heartbeat { .. } => {} // liveness already recorded
            Message::Leave { from: leaver } => {
                self.forget(leaver);
                let had = self.wiring.contains(&leaver);
                self.wiring.retain(|&w| w != leaver);
                if had && self.cfg.mode == RewireMode::Immediate {
                    if self.rewire().await {
                        self.rewirings += 1;
                    }
                    self.announce(true).await;
                }
            }
            Message::BootstrapRequest { .. } => {} // not a bootstrap server
        }
    }

    // ------------------------------------------------------------------
    // Tick methods. The agent is a plain state machine driven by five
    // periodic events; `run()` drives them off per-node tokio timers
    // (the live deployment), while the fleet harness owns the nodes and
    // drives the same methods from one shared timer wheel — one task per
    // *fleet* instead of six per node, which is what makes n ≥ 1000
    // deterministic runs affordable.
    // ------------------------------------------------------------------

    /// The node's id.
    pub fn id(&self) -> NodeId {
        self.cfg.id
    }

    /// Shared view handle, for drivers that own the node.
    pub fn view_handle(&self) -> Arc<RwLock<NodeView>> {
        Arc::clone(&self.view)
    }

    /// First action on the wire: ask the bootstrap for peers.
    pub async fn start(&mut self) {
        if let Some(b) = self.cfg.bootstrap {
            self.send_msg(b, &Message::BootstrapRequest { from: self.cfg.id })
                .await;
        }
    }

    /// Drain every queued inbound frame without blocking.
    pub async fn drain(&mut self) {
        while let Some((from, frame)) = self.transport.try_recv() {
            self.handle_frame(from, frame).await;
        }
    }

    /// Ping tick: probes out, plus Immediate-mode link repair (§3.3's
    /// aggressive monitoring of critical links).
    pub async fn tick_ping(&mut self) {
        self.send_pings().await;
        if self.cfg.mode == RewireMode::Immediate {
            let dead = self.dead_neighbors();
            if !dead.is_empty() {
                for d in &dead {
                    self.forget(*d);
                }
                self.wiring.retain(|w| !dead.contains(w));
                if self.rewire().await {
                    self.rewirings += 1;
                }
                self.announce(true).await;
                self.publish();
            }
        }
    }

    /// Announce tick. Presence beacon even with no links yet: a silent
    /// node's LSDB record would age out everywhere and the join cascade
    /// would stall one epoch per node.
    pub async fn tick_announce(&mut self) {
        self.announce(false).await;
    }

    /// Anti-entropy tick: LSDB digest to one rotating known peer. This
    /// is the repair path for everything bounded gossip missed — and,
    /// after a partition heals, how the two sides' databases re-merge.
    pub async fn tick_sync(&mut self) {
        let peers = self.known_peers();
        if peers.is_empty() {
            return;
        }
        let partner = peers[self.sync_cursor % peers.len()];
        self.sync_cursor = self.sync_cursor.wrapping_add(1);
        self.ae_digests += 1;
        proto_obs().ae_digests.inc();
        let entries = self.lsdb.digest();
        self.send_msg(
            partner,
            &Message::LsdbDigest {
                from: self.cfg.id,
                entries,
            },
        )
        .await;
    }

    /// Degradation watchdog: while this node's candidate set cannot even
    /// fill its `k` views (never joined, cut off by a partition, or
    /// eclipsed — every honest record expired and only attacker
    /// identities remain measurable), re-ask the seed and probe the
    /// passive view on a capped exponential backoff. Healthy nodes just
    /// re-arm. Returns the delay until the next watchdog check.
    pub async fn tick_join(&mut self) -> Duration {
        if self.known_peers().len() <= self.cfg.k {
            self.join_retries += 1;
            proto_obs().join_retries.inc();
            if let Some(b) = self.cfg.bootstrap {
                self.send_msg(b, &Message::BootstrapRequest { from: self.cfg.id })
                    .await;
            }
            self.send_pings().await;
            self.backoff.next_delay()
        } else {
            self.backoff.reset();
            self.cfg.ping_interval
        }
    }

    /// Wiring-epoch tick: liveness reaping, re-wire, announce, claim
    /// tallies → misbehavior points, decay, view refresh.
    pub async fn tick_epoch(&mut self) {
        let dead = self.dead_neighbors();
        if !dead.is_empty() {
            for d in &dead {
                self.forget(*d);
            }
            self.wiring.retain(|w| !dead.contains(w));
        }
        if self.rewire().await {
            self.rewirings += 1;
        }
        self.epochs += 1;
        self.announce(false).await;
        // Second-hand claim tallies convert to capped misbehavior points
        // once per epoch: a lure whose per-victim forgeries draw fresh
        // contradictions every round nets +1 past the decay and walks
        // into the ban threshold; an honest origin whose claim tripped a
        // jitter artifact nets zero.
        for j in 0..self.cfg.n {
            let tally = self.scores[j].contradicted_epoch;
            if tally > 0 {
                self.scores[j].contradicted_epoch = 0;
                let points = if tally >= 3 { 2 } else { 1 };
                self.punish(NodeId::from_index(j), points);
            }
        }
        // Misbehavior decay (forgives background corruption) plus score
        // export and passive-view upkeep.
        for j in 0..self.cfg.n {
            let m = self.scores[j].misbehavior;
            if m > 0 {
                proto_obs().peer_score.observe(m as f64);
                self.scores[j].misbehavior = m - 1;
            }
        }
        for p in self.known_peers() {
            self.remember_passive(p);
        }
        self.publish();
    }

    /// Send `Leave` everywhere and publish the final view.
    pub async fn shutdown_now(&mut self) {
        self.flood(&Message::Leave { from: self.cfg.id }, None)
            .await;
        if let Some(b) = self.cfg.bootstrap {
            self.send_msg(b, &Message::Leave { from: self.cfg.id })
                .await;
        }
        self.publish();
    }

    /// The agent main loop (per-node timers; the live deployment path).
    pub async fn run(mut self, mut shutdown: oneshot::Receiver<()>) {
        // Join attempt 0; retries ride the backoff branch below, so an
        // unreachable seed costs a capped retry stream, never a panic.
        self.start().await;
        let mut next_join_at = Instant::now() + self.backoff.next_delay();

        // Staggered epoch start: node i first re-wires at i·T/n (§4.2).
        let frac = self.cfg.id.index() as f64 / self.cfg.n.max(1) as f64;
        let stagger = self.cfg.epoch.mul_f64(frac);
        let mut epoch_timer = tokio::time::interval_at(Instant::now() + stagger, self.cfg.epoch);
        let mut announce_timer = tokio::time::interval_at(
            Instant::now() + self.cfg.announce_interval.mul_f64(0.1),
            self.cfg.announce_interval,
        );
        let mut ping_timer = tokio::time::interval_at(
            Instant::now() + Duration::from_millis(10),
            self.cfg.ping_interval,
        );
        // Sync partners rotate, so stagger the phase too or every node
        // digests in the same instant.
        let mut sync_timer = tokio::time::interval_at(
            Instant::now() + self.cfg.sync_interval.mul_f64(0.25 + 0.75 * frac),
            self.cfg.sync_interval,
        );
        epoch_timer.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
        announce_timer.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
        ping_timer.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);
        sync_timer.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Skip);

        loop {
            tokio::select! {
                biased;
                _ = &mut shutdown => {
                    self.shutdown_now().await;
                    return;
                }
                maybe = self.transport.recv() => {
                    match maybe {
                        Some((from, frame)) => self.handle_frame(from, frame).await,
                        None => { self.publish(); return; }
                    }
                }
                _ = ping_timer.tick() => {
                    self.tick_ping().await;
                }
                _ = announce_timer.tick() => {
                    self.tick_announce().await;
                }
                _ = sync_timer.tick() => {
                    self.tick_sync().await;
                }
                _ = tokio::time::sleep_until(next_join_at) => {
                    next_join_at = Instant::now() + self.tick_join().await;
                }
                _ = epoch_timer.tick() => {
                    self.tick_epoch().await;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::{BootstrapServer, Registry};
    use crate::transport::SimNet;
    use egoist_graph::DistanceMatrix;
    use egoist_netsim::fault::FaultConfig;

    const BOOT: NodeId = NodeId(1000);

    /// Spin up an n-node overlay on a SimNet with short timers; returns
    /// handles after `warm_epochs` virtual epochs.
    async fn overlay(
        n: usize,
        k: usize,
        delays: DistanceMatrix,
        fault: FaultConfig,
        warm_epochs: u32,
    ) -> Vec<NodeHandle> {
        // Ids up to 1000 exist on the net (bootstrap gets 1000).
        let mut big = DistanceMatrix::off_diagonal(1001, 1.0);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    big.set_at(i, j, delays.at(i, j));
                }
            }
        }
        let net = SimNet::new(big, fault, 42);
        let registry = Registry::default();
        tokio::spawn(BootstrapServer::new(net.endpoint(BOOT), registry).run());

        let mut handles = Vec::new();
        for i in 0..n {
            let mut cfg = NodeConfig::new(NodeId::from_index(i), n, k);
            cfg.epoch = Duration::from_secs(10);
            cfg.announce_interval = Duration::from_secs(3);
            cfg.ping_interval = Duration::from_secs(5);
            cfg.liveness_timeout = Duration::from_secs(12);
            cfg.bootstrap = Some(BOOT);
            let node = EgoistNode::new(cfg, net.endpoint(NodeId::from_index(i)));
            handles.push(node.spawn());
            // Small join spacing.
            tokio::time::sleep(Duration::from_millis(200)).await;
        }
        tokio::time::sleep(Duration::from_secs(10 * warm_epochs as u64)).await;
        handles
    }

    #[test]
    fn overlay_converges_to_full_routing() {
        tokio::runtime::block_on_paused(async {
            let delays = DistanceMatrix::from_fn(8, |i, j| 5.0 + ((i * 3 + j) % 7) as f64);
            let handles = overlay(8, 3, delays, FaultConfig::default(), 6).await;
            for (i, h) in handles.iter().enumerate() {
                let v = h.snapshot();
                assert_eq!(v.wiring.len(), 3, "node {i} wiring {:?}", v.wiring);
                assert!(
                    v.epochs_completed >= 4,
                    "node {i} ran {} epochs",
                    v.epochs_completed
                );
                // Routes to every other node.
                let reachable = (0..8)
                    .filter(|&j| j != i && v.next_hops[j].is_some())
                    .count();
                assert_eq!(reachable, 7, "node {i} reaches {reachable}/7");
            }
            for h in handles {
                h.stop().await;
            }
        });
    }

    #[test]
    fn rtt_estimates_reflect_link_delays() {
        tokio::runtime::block_on_paused(async {
            // Metric spread (30 ≤ 16 + 16): claim ranking treats gross
            // triangle violations as forgery, so honest test substrates
            // must satisfy the inequality like real delay spaces do.
            let delays = DistanceMatrix::from_fn(4, |i, j| {
                if (i, j) == (0, 1) || (1, 0) == (i, j) {
                    30.0
                } else {
                    16.0
                }
            });
            let handles = overlay(4, 2, delays, FaultConfig::default(), 4).await;
            let v0 = handles[0].snapshot();
            // One-way estimate for node 1 ≈ (30+30)/2 / ... RTT/2 = 30 ms.
            let est = v0.direct_est[1];
            assert!(
                (est - 30.0).abs() < 3.0,
                "estimated one-way to v1 should be ≈30 ms, got {est}"
            );
            let est2 = v0.direct_est[2];
            assert!((est2 - 16.0).abs() < 3.0, "≈16 ms, got {est2}");
            for h in handles {
                h.stop().await;
            }
        });
    }

    #[test]
    fn overlay_survives_lossy_links() {
        tokio::runtime::block_on_paused(async {
            let delays = DistanceMatrix::off_diagonal(6, 8.0);
            let handles = overlay(6, 2, delays, FaultConfig::lossy(0.15), 8).await;
            let mut total_reachable = 0;
            for (i, h) in handles.iter().enumerate() {
                let v = h.snapshot();
                total_reachable += (0..6)
                    .filter(|&j| j != i && v.next_hops[j].is_some())
                    .count();
            }
            // With 15% loss the protocol must still build a mostly-complete
            // routing mesh (30 = perfect).
            assert!(
                total_reachable >= 24,
                "only {total_reachable}/30 routes with 15% loss"
            );
            for h in handles {
                h.stop().await;
            }
        });
    }

    #[test]
    fn leave_triggers_reroute() {
        tokio::runtime::block_on_paused(async {
            let delays = DistanceMatrix::off_diagonal(5, 6.0);
            let mut handles = overlay(5, 2, delays, FaultConfig::default(), 5).await;
            let victim = handles.remove(4);
            victim.stop().await;
            // Give survivors a couple of epochs to re-wire.
            tokio::time::sleep(Duration::from_secs(25)).await;
            for (i, h) in handles.iter().enumerate() {
                let v = h.snapshot();
                assert!(
                    !v.wiring.contains(&NodeId(4)),
                    "node {i} still wired to the departed node: {:?}",
                    v.wiring
                );
            }
            for h in handles {
                h.stop().await;
            }
        });
    }

    #[test]
    fn crash_is_detected_by_liveness() {
        tokio::runtime::block_on_paused(async {
            let delays = DistanceMatrix::off_diagonal(5, 6.0);
            // Build a dedicated net so we can blackhole a node abruptly.
            let mut big = DistanceMatrix::off_diagonal(1001, 1.0);
            for i in 0..5 {
                for j in 0..5 {
                    if i != j {
                        big.set_at(i, j, delays.at(i, j));
                    }
                }
            }
            let net = SimNet::clean(big);
            tokio::spawn(BootstrapServer::new(net.endpoint(BOOT), Registry::default()).run());
            let mut handles = Vec::new();
            for i in 0..5 {
                let mut cfg = NodeConfig::new(NodeId::from_index(i), 5, 2);
                cfg.epoch = Duration::from_secs(10);
                cfg.announce_interval = Duration::from_secs(3);
                cfg.ping_interval = Duration::from_secs(5);
                cfg.liveness_timeout = Duration::from_secs(12);
                cfg.bootstrap = Some(BOOT);
                handles.push(EgoistNode::new(cfg, net.endpoint(NodeId::from_index(i))).spawn());
                tokio::time::sleep(Duration::from_millis(100)).await;
            }
            tokio::time::sleep(Duration::from_secs(50)).await;
            // Crash node 4 without a Leave.
            net.disconnect(NodeId(4));
            tokio::time::sleep(Duration::from_secs(60)).await;
            for (i, h) in handles.iter().enumerate().take(4) {
                let v = h.snapshot();
                assert!(
                    !v.wiring.contains(&NodeId(4)),
                    "node {i} kept a dead neighbor: {:?}",
                    v.wiring
                );
            }
            for h in handles {
                h.stop().await;
            }
        });
    }

    #[test]
    fn immediate_mode_recovers_faster_than_delayed() {
        tokio::runtime::block_on_paused(async {
            // Crash one node and measure how long survivors keep it wired.
            async fn time_to_repair(mode: RewireMode) -> f64 {
                let mut big = DistanceMatrix::off_diagonal(1001, 1.0);
                for i in 0..5 {
                    for j in 0..5 {
                        if i != j {
                            // v4 is a cheap hub, so every survivor wires it.
                            let c = if i == 4 || j == 4 { 2.0 } else { 6.0 };
                            big.set_at(i, j, c);
                        }
                    }
                }
                let net = SimNet::clean(big);
                tokio::spawn(BootstrapServer::new(net.endpoint(BOOT), Registry::default()).run());
                let mut handles = Vec::new();
                for i in 0..5 {
                    let mut cfg = NodeConfig::new(NodeId::from_index(i), 5, 2);
                    cfg.epoch = Duration::from_secs(60); // long epochs
                    cfg.announce_interval = Duration::from_secs(5);
                    cfg.ping_interval = Duration::from_secs(4);
                    cfg.liveness_timeout = Duration::from_secs(10);
                    cfg.mode = mode;
                    cfg.bootstrap = Some(BOOT);
                    handles.push(EgoistNode::new(cfg, net.endpoint(NodeId::from_index(i))).spawn());
                    tokio::time::sleep(Duration::from_millis(100)).await;
                }
                tokio::time::sleep(Duration::from_secs(65)).await;
                net.disconnect(NodeId(4));
                let t0 = Instant::now();
                // Poll until no survivor lists v4.
                loop {
                    tokio::time::sleep(Duration::from_secs(1)).await;
                    let wired = handles
                        .iter()
                        .take(4)
                        .any(|h| h.snapshot().wiring.contains(&NodeId(4)));
                    if !wired {
                        break;
                    }
                    if t0.elapsed() > Duration::from_secs(180) {
                        break;
                    }
                }
                let secs = t0.elapsed().as_secs_f64();
                for h in handles {
                    h.stop().await;
                }
                secs
            }

            let immediate = time_to_repair(RewireMode::Immediate).await;
            let delayed = time_to_repair(RewireMode::Delayed).await;
            assert!(
                immediate < delayed,
                "immediate mode ({immediate:.0}s) must repair faster than delayed ({delayed:.0}s)"
            );
            assert!(
                immediate < 30.0,
                "immediate repair should happen within ~2 liveness timeouts: {immediate:.0}s"
            );
        });
    }

    #[test]
    fn free_rider_announces_inflated_costs() {
        tokio::runtime::block_on_paused(async {
            let delays = DistanceMatrix::off_diagonal(4, 10.0);
            let mut big = DistanceMatrix::off_diagonal(1001, 1.0);
            for i in 0..4 {
                for j in 0..4 {
                    if i != j {
                        big.set_at(i, j, delays.at(i, j));
                    }
                }
            }
            let net = SimNet::clean(big);
            tokio::spawn(BootstrapServer::new(net.endpoint(BOOT), Registry::default()).run());
            let mut handles = Vec::new();
            for i in 0..4 {
                let mut cfg = NodeConfig::new(NodeId::from_index(i), 4, 2);
                cfg.epoch = Duration::from_secs(10);
                cfg.announce_interval = Duration::from_secs(3);
                cfg.ping_interval = Duration::from_secs(5);
                cfg.liveness_timeout = Duration::from_secs(12);
                cfg.bootstrap = Some(BOOT);
                if i == 0 {
                    cfg.cost_inflation = 2.0;
                }
                handles.push(EgoistNode::new(cfg, net.endpoint(NodeId::from_index(i))).spawn());
                tokio::time::sleep(Duration::from_millis(100)).await;
            }
            tokio::time::sleep(Duration::from_secs(60)).await;
            // An honest node's own estimate of v0's links is ~10 ms one-way;
            // but v0 is announcing ~20. Node 1's LSDB-derived route through
            // v0 should therefore be priced at ~20 per hop. We verify via
            // decode of the next announcement indirectly: node 1 avoids
            // routing through 0 when a direct 10ms edge exists.
            let v1 = handles[1].snapshot();
            // Direct estimates are honest everywhere.
            assert!((v1.direct_est[0] - 10.0).abs() < 3.0);
            for h in handles {
                h.stop().await;
            }
        });
    }

    #[test]
    fn unreachable_seed_is_nonfatal_and_join_retries_back_off() {
        tokio::runtime::block_on_paused(async {
            let net = SimNet::clean(DistanceMatrix::off_diagonal(1001, 2.0));
            // No bootstrap endpoint exists yet: every request is dropped.
            let mut handles = Vec::new();
            for i in 0..2 {
                let mut cfg = NodeConfig::new(NodeId::from_index(i), 2, 1);
                cfg.epoch = Duration::from_secs(10);
                cfg.announce_interval = Duration::from_secs(3);
                cfg.ping_interval = Duration::from_secs(5);
                cfg.liveness_timeout = Duration::from_secs(12);
                cfg.bootstrap = Some(BOOT);
                cfg.join_backoff_base = Duration::from_millis(500);
                cfg.join_backoff_cap = Duration::from_secs(5);
                handles.push(EgoistNode::new(cfg, net.endpoint(NodeId::from_index(i))).spawn());
            }
            tokio::time::sleep(Duration::from_secs(40)).await;
            for (i, h) in handles.iter().enumerate() {
                let v = h.snapshot();
                assert!(v.wiring.is_empty(), "node {i} wired with no seed?");
                assert!(
                    v.join_retries >= 4,
                    "node {i} retried only {} times in 40 s",
                    v.join_retries
                );
                // Capped backoff: retries are bounded too (not a hot loop).
                assert!(v.join_retries <= 40, "node {i}: {} retries", v.join_retries);
            }
            // The seed comes up late; the next capped retry finds it and
            // the join completes.
            tokio::spawn(BootstrapServer::new(net.endpoint(BOOT), Registry::default()).run());
            tokio::time::sleep(Duration::from_secs(40)).await;
            for (i, h) in handles.iter().enumerate() {
                let v = h.snapshot();
                assert_eq!(v.wiring.len(), 1, "node {i} still unwired: {v:?}");
            }
            for h in handles {
                h.stop().await;
            }
        });
    }

    #[test]
    fn garbage_flooder_gets_banned() {
        tokio::runtime::block_on_paused(async {
            let net = SimNet::clean(DistanceMatrix::off_diagonal(1001, 2.0));
            tokio::spawn(BootstrapServer::new(net.endpoint(BOOT), Registry::default()).run());
            let mut handles = Vec::new();
            for i in 0..2 {
                let mut cfg = NodeConfig::new(NodeId::from_index(i), 3, 1);
                cfg.epoch = Duration::from_secs(10);
                cfg.announce_interval = Duration::from_secs(3);
                cfg.ping_interval = Duration::from_secs(5);
                cfg.liveness_timeout = Duration::from_secs(12);
                cfg.bootstrap = Some(BOOT);
                handles.push(EgoistNode::new(cfg, net.endpoint(NodeId::from_index(i))).spawn());
                tokio::time::sleep(Duration::from_millis(100)).await;
            }
            tokio::time::sleep(Duration::from_secs(15)).await;
            // Node 2 never speaks the protocol: it floods garbage at the
            // others faster than the 1/epoch decay forgives.
            let flooder = net.endpoint(NodeId(2));
            for _ in 0..8 {
                for target in [NodeId(0), NodeId(1)] {
                    flooder
                        .send(target, bytes::Bytes::from_static(b"\xFFnoise\x00"))
                        .await
                        .unwrap();
                }
                tokio::time::sleep(Duration::from_millis(300)).await;
            }
            // Views refresh at epoch ticks; wait out a full epoch.
            tokio::time::sleep(Duration::from_secs(12)).await;
            for (i, h) in handles.iter().enumerate() {
                let v = h.snapshot();
                assert!(
                    v.banned.contains(&NodeId(2)),
                    "node {i} did not ban the flooder: {:?}",
                    v.banned
                );
                assert!(!v.wiring.contains(&NodeId(2)));
                assert!(!v.passive_view.contains(&NodeId(2)));
            }
            for h in handles {
                h.stop().await;
            }
        });
    }

    mod peer_health_props {
        use super::*;
        use proptest::prelude::*;
        use rand::Rng;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            /// Hysteresis stability: a peer with a *fixed* probe-loss
            /// rate must reach a stable verdict — never demoted for a
            /// healthy loss rate, demoted-and-latched for a dead-ish
            /// one — instead of flapping with each jitter excursion.
            #[test]
            fn fixed_loss_rate_reaches_stable_verdict(
                seed in any::<u64>(),
                healthy in 0.0f64..0.10,
                dead in 0.90f64..1.0,
            ) {
                for (p, expect) in [(healthy, false), (dead, true)] {
                    let mut h = PeerHealth::default();
                    let mut rng = StdRng::seed_from_u64(seed);
                    for i in 0..3000u32 {
                        let lost = rng.random::<f64>() < p;
                        h.record(lost, 3);
                        if i >= 1000 {
                            prop_assert_eq!(
                                h.is_demoted(),
                                expect,
                                "loss rate {} flapped to {} at probe {}",
                                p,
                                h.is_demoted(),
                                i
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn overhead_counters_track_messages() {
        tokio::runtime::block_on_paused(async {
            let delays = DistanceMatrix::off_diagonal(4, 5.0);
            let handles = overlay(4, 2, delays, FaultConfig::default(), 4).await;
            let v = handles[0].snapshot();
            use crate::message::MessageClass;
            assert!(v.overhead.frames(MessageClass::Measurement) > 0);
            assert!(v.overhead.frames(MessageClass::LinkState) > 0);
            assert!(v.overhead.bytes(MessageClass::LinkState) > 0);
            for h in handles {
                h.stop().await;
            }
        });
    }
}
