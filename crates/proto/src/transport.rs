//! Transport abstraction: real UDP and a deterministic in-process network.
//!
//! The node state machine is generic over [`Transport`], so the *same*
//! protocol logic runs over loopback/LAN UDP (the live deployment path)
//! and over [`SimTransport`] (frames delivered through `egoist-netsim`
//! link delays and fault injection, with tokio's paused clock making
//! tests instant and deterministic).

use bytes::Bytes;
use egoist_graph::{DistanceMatrix, NodeId};
use egoist_netsim::fault::{FaultConfig, FaultInjector, FaultPlan, Verdict};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use tokio::net::UdpSocket;
use tokio::sync::mpsc;

/// Obs handles for transport-level drops that used to vanish silently.
struct TransportObs {
    unknown_sender: egoist_obs::Counter,
    no_endpoint: egoist_obs::Counter,
}

fn transport_obs() -> &'static TransportObs {
    static OBS: OnceLock<TransportObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = egoist_obs::registry();
        TransportObs {
            unknown_sender: r.counter("proto.drop.unknown_sender"),
            no_endpoint: r.counter("proto.drop.no_endpoint"),
        }
    })
}

/// A datagram transport between overlay nodes.
pub trait Transport: Send + 'static {
    /// This endpoint's node id.
    fn local_id(&self) -> NodeId;

    /// Send one frame to a peer. Unreachable peers are a silent drop
    /// (datagram semantics) — protocol liveness comes from retries and
    /// timeouts, not the transport.
    fn send(
        &self,
        to: NodeId,
        frame: Bytes,
    ) -> impl std::future::Future<Output = std::io::Result<()>> + Send;

    /// Receive the next frame as `(sender, bytes)`. `None` = transport
    /// closed.
    fn recv(&mut self) -> impl std::future::Future<Output = Option<(NodeId, Bytes)>> + Send;

    /// Non-blocking receive: the next already-delivered frame, or `None`
    /// when the queue is currently empty. Drivers that multiplex many
    /// nodes on one task (the fleet timer wheel) drain with this instead
    /// of `recv`. Transports without buffering semantics keep the
    /// default (always empty).
    fn try_recv(&mut self) -> Option<(NodeId, Bytes)> {
        None
    }
}

// ---------------------------------------------------------------------
// Simulated network
// ---------------------------------------------------------------------

struct SimNetInner {
    /// One-way frame latency in milliseconds per directed pair.
    delays: DistanceMatrix,
    txs: Mutex<HashMap<NodeId, mpsc::UnboundedSender<(NodeId, Bytes)>>>,
    fault: Mutex<FaultInjector>,
    epoch: tokio::time::Instant,
    pub frames_sent: AtomicU64,
    pub bytes_sent: AtomicU64,
}

/// An in-process network shared by many [`SimTransport`] endpoints.
#[derive(Clone)]
pub struct SimNet {
    inner: Arc<SimNetInner>,
}

impl SimNet {
    /// Build a network with per-pair one-way delays (ms) and a fault
    /// injector configuration.
    pub fn new(delays: DistanceMatrix, fault: FaultConfig, seed: u64) -> Self {
        Self::with_plan(delays, fault, None, seed)
    }

    /// Build a network with a scheduled [`FaultPlan`] (partitions, churn
    /// storms, loss/jitter windows) on top of the base fault config.
    pub fn with_plan(
        delays: DistanceMatrix,
        fault: FaultConfig,
        plan: Option<FaultPlan>,
        seed: u64,
    ) -> Self {
        SimNet {
            inner: Arc::new(SimNetInner {
                delays,
                txs: Mutex::new(HashMap::new()),
                fault: Mutex::new(FaultInjector::with_plan(fault, plan, seed)),
                epoch: tokio::time::Instant::now(),
                frames_sent: AtomicU64::new(0),
                bytes_sent: AtomicU64::new(0),
            }),
        }
    }

    /// A clean (lossless) network.
    pub fn clean(delays: DistanceMatrix) -> Self {
        Self::new(delays, FaultConfig::default(), 0)
    }

    /// Create the endpoint for node `id`. Panics if `id` already exists.
    pub fn endpoint(&self, id: NodeId) -> SimTransport {
        let (tx, rx) = mpsc::unbounded_channel();
        let prev = self.inner.txs.lock().insert(id, tx);
        assert!(prev.is_none(), "duplicate endpoint for {id}");
        SimTransport {
            id,
            net: Arc::clone(&self.inner),
            rx,
        }
    }

    /// Disconnect an endpoint (its queued frames are dropped) — used to
    /// simulate abrupt node failure.
    pub fn disconnect(&self, id: NodeId) {
        self.inner.txs.lock().remove(&id);
    }

    /// Total frames accepted for transmission.
    pub fn frames_sent(&self) -> u64 {
        self.inner.frames_sent.load(Ordering::Relaxed)
    }

    /// Total payload bytes accepted for transmission.
    pub fn bytes_sent(&self) -> u64 {
        self.inner.bytes_sent.load(Ordering::Relaxed)
    }

    /// Snapshot of the shared fault injector's verdict counters.
    pub fn fault_stats(&self) -> FaultStats {
        let f = self.inner.fault.lock();
        FaultStats {
            passed: f.passed,
            dropped: f.dropped,
            corrupted: f.corrupted,
            rate_limited: f.rate_limited,
            cut: f.cut,
            duplicated: f.duplicated,
            reordered: f.reordered,
            jittered: f.jittered,
        }
    }
}

/// Verdict counters of a [`SimNet`]'s injector, for robustness reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub passed: u64,
    pub dropped: u64,
    pub corrupted: u64,
    pub rate_limited: u64,
    pub cut: u64,
    pub duplicated: u64,
    pub reordered: u64,
    pub jittered: u64,
}

/// One node's endpoint on a [`SimNet`].
pub struct SimTransport {
    id: NodeId,
    net: Arc<SimNetInner>,
    rx: mpsc::UnboundedReceiver<(NodeId, Bytes)>,
}

impl Transport for SimTransport {
    fn local_id(&self) -> NodeId {
        self.id
    }

    async fn send(&self, to: NodeId, frame: Bytes) -> std::io::Result<()> {
        self.net.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.net
            .bytes_sent
            .fetch_add(frame.len() as u64, Ordering::Relaxed);

        let mut data = frame.to_vec();
        let now = self.net.epoch.elapsed().as_secs_f64();
        let from = self.id;
        let verdict = self
            .net
            .fault
            .lock()
            .process_addressed(now, from, to, &mut data);
        if matches!(verdict, Verdict::Drop | Verdict::Cut) {
            return Ok(()); // datagram lost (loss or partition/storm cut)
        }
        let Some(tx) = self.net.txs.lock().get(&to).cloned() else {
            transport_obs().no_endpoint.inc();
            return Ok(()); // peer gone: datagram lost
        };
        let delay_ms = if to.index() < self.net.delays.len() && from.index() < self.net.delays.len()
        {
            self.net.delays.get(from, to).max(0.0)
        } else {
            1.0
        };
        let deliver = |tx: mpsc::UnboundedSender<(NodeId, Bytes)>, data: Vec<u8>, ms: f64| {
            tokio::spawn(async move {
                tokio::time::sleep(std::time::Duration::from_secs_f64(ms / 1000.0)).await;
                let _ = tx.send((from, Bytes::from(data)));
            });
        };
        match verdict {
            Verdict::Duplicate { extra_us } => {
                deliver(tx.clone(), data.clone(), delay_ms);
                deliver(tx, data, delay_ms + extra_us as f64 / 1000.0);
            }
            Verdict::Delayed { extra_us } | Verdict::Reordered { extra_us } => {
                deliver(tx, data, delay_ms + extra_us as f64 / 1000.0);
            }
            _ => deliver(tx, data, delay_ms),
        }
        Ok(())
    }

    async fn recv(&mut self) -> Option<(NodeId, Bytes)> {
        self.rx.recv().await
    }

    fn try_recv(&mut self) -> Option<(NodeId, Bytes)> {
        self.rx.try_recv()
    }
}

// ---------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------

/// A UDP endpoint with a static peer roster (id ↔ address).
///
/// The roster is shared and mutable, so late joiners can be added; a full
/// deployment would learn addresses from the bootstrap exchange, which the
/// prototype keeps out of band as PlanetLab's EGOIST did with its central
/// bootstrap list.
pub struct UdpTransport {
    id: NodeId,
    socket: Arc<UdpSocket>,
    by_id: Arc<Mutex<HashMap<NodeId, SocketAddr>>>,
    by_addr: Arc<Mutex<HashMap<SocketAddr, NodeId>>>,
    buf: Vec<u8>,
}

impl UdpTransport {
    /// Bind `id` to `addr` (use port 0 for an OS-assigned port).
    pub async fn bind(id: NodeId, addr: &str) -> std::io::Result<Self> {
        let socket = UdpSocket::bind(addr).await?;
        Ok(UdpTransport {
            id,
            socket: Arc::new(socket),
            by_id: Arc::new(Mutex::new(HashMap::new())),
            by_addr: Arc::new(Mutex::new(HashMap::new())),
            buf: vec![0u8; 64 * 1024],
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Register a peer's address.
    pub fn add_peer(&self, id: NodeId, addr: SocketAddr) {
        self.by_id.lock().insert(id, addr);
        self.by_addr.lock().insert(addr, id);
    }

    /// Known peers.
    pub fn peers(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.by_id.lock().keys().copied().collect();
        v.sort_unstable();
        v
    }
}

impl Transport for UdpTransport {
    fn local_id(&self) -> NodeId {
        self.id
    }

    async fn send(&self, to: NodeId, frame: Bytes) -> std::io::Result<()> {
        let addr = { self.by_id.lock().get(&to).copied() };
        let Some(addr) = addr else {
            return Ok(()); // unknown peer: datagram lost
        };
        self.socket.send_to(&frame, addr).await.map(|_| ())
    }

    async fn recv(&mut self) -> Option<(NodeId, Bytes)> {
        loop {
            match self.socket.recv_from(&mut self.buf).await {
                Ok((len, addr)) => {
                    let from = { self.by_addr.lock().get(&addr).copied() };
                    if let Some(from) = from {
                        return Some((from, Bytes::copy_from_slice(&self.buf[..len])));
                    }
                    // Unknown sender: drop (counted) and keep listening.
                    transport_obs().unknown_sender.inc();
                }
                Err(_) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_delays(ms: f64) -> DistanceMatrix {
        DistanceMatrix::off_diagonal(2, ms)
    }

    #[test]
    fn sim_delivers_with_delay() {
        tokio::runtime::block_on_paused(async {
            let net = SimNet::clean(two_node_delays(25.0));
            let a = net.endpoint(NodeId(0));
            let mut b = net.endpoint(NodeId(1));
            let t0 = tokio::time::Instant::now();
            a.send(NodeId(1), Bytes::from_static(b"hi")).await.unwrap();
            let (from, data) = b.recv().await.unwrap();
            let elapsed = t0.elapsed().as_secs_f64() * 1000.0;
            assert_eq!(from, NodeId(0));
            assert_eq!(&data[..], b"hi");
            assert!((elapsed - 25.0).abs() < 1.0, "latency {elapsed} ms");
        });
    }

    #[test]
    fn sim_drops_to_unknown_peer() {
        tokio::runtime::block_on_paused(async {
            let net = SimNet::clean(two_node_delays(1.0));
            let a = net.endpoint(NodeId(0));
            // No endpoint for node 1: send succeeds, nothing delivered.
            a.send(NodeId(1), Bytes::from_static(b"x")).await.unwrap();
            assert_eq!(net.frames_sent(), 1);
        });
    }

    #[test]
    fn sim_fault_injection_drops() {
        tokio::runtime::block_on_paused(async {
            let net = SimNet::new(two_node_delays(1.0), FaultConfig::lossy(1.0), 7);
            let a = net.endpoint(NodeId(0));
            let mut b = net.endpoint(NodeId(1));
            for _ in 0..10 {
                a.send(NodeId(1), Bytes::from_static(b"y")).await.unwrap();
            }
            // All dropped: recv should time out.
            let got = tokio::time::timeout(std::time::Duration::from_secs(5), b.recv()).await;
            assert!(got.is_err(), "lossy(1.0) must drop everything");
        });
    }

    #[test]
    fn sim_disconnect_blackholes() {
        tokio::runtime::block_on_paused(async {
            let net = SimNet::clean(two_node_delays(1.0));
            let a = net.endpoint(NodeId(0));
            let mut b = net.endpoint(NodeId(1));
            net.disconnect(NodeId(1));
            a.send(NodeId(1), Bytes::from_static(b"z")).await.unwrap();
            // The hub dropped b's sender, so b's stream ends without ever
            // delivering the frame.
            let got = tokio::time::timeout(std::time::Duration::from_secs(5), b.recv()).await;
            assert_eq!(got, Ok(None));
        });
    }

    #[test]
    fn sim_partition_window_cuts_then_heals() {
        tokio::runtime::block_on_paused(async {
            let plan = egoist_netsim::FaultPlan::new().partition(
                5.0,
                15.0,
                vec![vec![NodeId(0)], vec![NodeId(1)]],
            );
            let net =
                SimNet::with_plan(two_node_delays(1.0), FaultConfig::default(), Some(plan), 3);
            let a = net.endpoint(NodeId(0));
            let mut b = net.endpoint(NodeId(1));
            // Before the window: delivered.
            a.send(NodeId(1), Bytes::from_static(b"pre")).await.unwrap();
            assert_eq!(&b.recv().await.unwrap().1[..], b"pre");
            // Inside the window: cut.
            tokio::time::sleep(std::time::Duration::from_secs(8)).await;
            a.send(NodeId(1), Bytes::from_static(b"mid")).await.unwrap();
            let got = tokio::time::timeout(std::time::Duration::from_secs(2), b.recv()).await;
            assert!(got.is_err(), "partitioned frame must be cut");
            assert_eq!(net.fault_stats().cut, 1);
            // After the heal: delivered again.
            tokio::time::sleep(std::time::Duration::from_secs(8)).await;
            a.send(NodeId(1), Bytes::from_static(b"post"))
                .await
                .unwrap();
            assert_eq!(&b.recv().await.unwrap().1[..], b"post");
        });
    }

    #[test]
    fn sim_duplicate_verdict_delivers_twice() {
        tokio::runtime::block_on_paused(async {
            let cfg = FaultConfig {
                duplicate_chance: 1.0,
                ..Default::default()
            };
            let net = SimNet::new(two_node_delays(1.0), cfg, 4);
            let a = net.endpoint(NodeId(0));
            let mut b = net.endpoint(NodeId(1));
            a.send(NodeId(1), Bytes::from_static(b"dup")).await.unwrap();
            assert_eq!(&b.recv().await.unwrap().1[..], b"dup");
            assert_eq!(&b.recv().await.unwrap().1[..], b"dup");
            assert_eq!(net.fault_stats().duplicated, 1);
        });
    }

    #[test]
    fn sim_jitter_verdict_adds_latency() {
        tokio::runtime::block_on_paused(async {
            let cfg = FaultConfig {
                jitter_chance: 1.0,
                jitter_ms: 40.0,
                ..Default::default()
            };
            let net = SimNet::new(two_node_delays(10.0), cfg, 5);
            let a = net.endpoint(NodeId(0));
            let mut b = net.endpoint(NodeId(1));
            let t0 = tokio::time::Instant::now();
            a.send(NodeId(1), Bytes::from_static(b"j")).await.unwrap();
            let _ = b.recv().await.unwrap();
            let ms = t0.elapsed().as_secs_f64() * 1000.0;
            assert!(ms >= 10.0, "jitter only adds latency: {ms} ms");
            assert!(ms <= 50.5, "jitter capped at jitter_ms: {ms} ms");
            assert_eq!(net.fault_stats().jittered, 1);
        });
    }

    #[test]
    fn udp_roundtrip_on_loopback() {
        tokio::runtime::block_on(async {
            let mut a = UdpTransport::bind(NodeId(0), "127.0.0.1:0").await.unwrap();
            let mut b = UdpTransport::bind(NodeId(1), "127.0.0.1:0").await.unwrap();
            let (aa, ba) = (a.local_addr().unwrap(), b.local_addr().unwrap());
            a.add_peer(NodeId(1), ba);
            b.add_peer(NodeId(0), aa);
            a.send(NodeId(1), Bytes::from_static(b"ping"))
                .await
                .unwrap();
            let (from, data) = tokio::time::timeout(std::time::Duration::from_secs(5), b.recv())
                .await
                .expect("timely")
                .expect("open");
            assert_eq!(from, NodeId(0));
            assert_eq!(&data[..], b"ping");
            b.send(NodeId(0), Bytes::from_static(b"pong"))
                .await
                .unwrap();
            let (from, data) = tokio::time::timeout(std::time::Duration::from_secs(5), a.recv())
                .await
                .expect("timely")
                .expect("open");
            assert_eq!(from, NodeId(1));
            assert_eq!(&data[..], b"pong");
        });
    }

    #[test]
    fn udp_unknown_sender_filtered() {
        tokio::runtime::block_on(async {
            let mut a = UdpTransport::bind(NodeId(0), "127.0.0.1:0").await.unwrap();
            let stranger = UdpTransport::bind(NodeId(9), "127.0.0.1:0").await.unwrap();
            stranger.add_peer(NodeId(0), a.local_addr().unwrap());
            stranger
                .send(NodeId(0), Bytes::from_static(b"??"))
                .await
                .unwrap();
            let got = tokio::time::timeout(std::time::Duration::from_millis(300), a.recv()).await;
            assert!(got.is_err(), "frames from unknown addresses are dropped");
        });
    }
}
