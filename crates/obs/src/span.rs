//! Timing spans.
//!
//! A [`Timer`] is a named span accumulator: each completed span adds
//! `(1, elapsed_ns)` to its `(count, total_ns)` cell. Hierarchy is by
//! dotted name — `core.epoch.turn.solver` rolls up under
//! `core.epoch.turn` in any viewer that re-nests on dots; the registry
//! itself keeps a flat map.
//!
//! Wall-clock enters here and only here. When instrumentation is
//! disabled, [`Timer::start`] takes no timestamp at all (no syscall),
//! which is what keeps the disabled path within noise of un-instrumented
//! code. `total_ns` is inherently nondeterministic and is excluded from
//! every fingerprinted export; `count` is deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Default)]
pub(crate) struct SpanStats {
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl SpanStats {
    pub(crate) fn load(&self) -> (u64, u64) {
        (
            self.count.load(Ordering::Relaxed),
            self.total_ns.load(Ordering::Relaxed),
        )
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
    }
}

/// Handle onto a registered (or detached) span accumulator.
#[derive(Clone)]
pub struct Timer {
    pub(crate) stats: Arc<SpanStats>,
}

impl Timer {
    /// A timer not attached to any registry.
    pub fn detached() -> Self {
        Timer {
            stats: Arc::new(SpanStats::default()),
        }
    }

    pub(crate) fn from_stats(stats: Arc<SpanStats>) -> Self {
        Timer { stats }
    }

    /// Open a span. The guard records on drop; while disabled this
    /// takes no timestamp and the drop is a no-op.
    #[inline]
    pub fn start(&self) -> SpanGuard<'_> {
        SpanGuard {
            stats: if crate::is_enabled() {
                Some((&self.stats, Instant::now()))
            } else {
                None
            },
        }
    }

    /// Record an externally measured duration (used where a span's
    /// start and end live in different stack frames).
    #[inline]
    pub fn add_ns(&self, ns: u64) {
        if crate::is_enabled() {
            self.stats.count.fetch_add(1, Ordering::Relaxed);
            self.stats.total_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Completed span count.
    pub fn count(&self) -> u64 {
        self.stats.count.load(Ordering::Relaxed)
    }

    /// Accumulated wall nanoseconds across completed spans.
    pub fn total_ns(&self) -> u64 {
        self.stats.total_ns.load(Ordering::Relaxed)
    }
}

/// RAII guard for an open span.
pub struct SpanGuard<'a> {
    stats: Option<(&'a SpanStats, Instant)>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((stats, t0)) = self.stats.take() {
            stats.count.fetch_add(1, Ordering::Relaxed);
            stats
                .total_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_on_drop() {
        let _g = crate::testutil::serial();
        crate::enable();
        let t = Timer::detached();
        {
            let _g = t.start();
        }
        {
            let _g = t.start();
        }
        assert_eq!(t.count(), 2);
        crate::disable();
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = crate::testutil::serial();
        crate::disable();
        let t = Timer::detached();
        let _g = t.start();
        drop(_g);
        assert_eq!(t.count(), 0);
        assert_eq!(t.total_ns(), 0);
    }

    #[test]
    fn add_ns_accumulates() {
        let _g = crate::testutil::serial();
        crate::enable();
        let t = Timer::detached();
        t.add_ns(5);
        t.add_ns(7);
        assert_eq!((t.count(), t.total_ns()), (2, 12));
        crate::disable();
    }
}
