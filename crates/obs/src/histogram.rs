//! Log-linear-bucket histograms with deterministic merge.
//!
//! Layout (HdrHistogram-style, fixed at compile time):
//!
//! * bucket 0 holds everything ≤ 0 (and NaN);
//! * buckets 1.. cover `[2^MIN_EXP, 2^(MAX_EXP+1))` in octaves of
//!   [`SUB`] linear sub-buckets each — ≤ 12.5% relative width;
//! * values below `2^MIN_EXP` clamp into the first positive bucket
//!   (whose lower edge is therefore 0), values at or above
//!   `2^(MAX_EXP+1)` (and `+∞`) clamp into the last (upper edge `+∞`).
//!
//! Bucket indexing is pure bit arithmetic on the IEEE-754
//! representation — no `log2`, no rounding ambiguity — so the same
//! observation always lands in the same bucket on every platform.
//!
//! Determinism: the histogram stores only bucket counts (`u64`), a
//! total count, and a fixed-point micro-unit sum. Merging two
//! snapshots adds counts element-wise, which is associative and
//! commutative — the property the proptests pin. Quantile estimates
//! return the containing bucket's upper edge and are therefore always
//! bounded by the bucket edges around the true rank value.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Linear sub-buckets per octave (power of two; `SUB = 1 << SUB_BITS`).
pub const SUB: usize = 8;
const SUB_BITS: u32 = 3;
/// Lowest octave: values below `2^MIN_EXP` clamp to the first bucket.
pub const MIN_EXP: i32 = -20;
/// Highest octave: values at/above `2^(MAX_EXP+1)` clamp to the last.
pub const MAX_EXP: i32 = 40;
/// Total bucket count including the ≤0 bucket.
pub const NUM_BUCKETS: usize = 1 + (MAX_EXP - MIN_EXP + 1) as usize * SUB;

/// Map a value onto its bucket index. Total: NaN and `v ≤ 0` → 0.
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    let bits = v.to_bits();
    let e = ((bits >> 52) & 0x7ff) as i32 - 1023; // subnormals → -1023
    if e < MIN_EXP {
        return 1;
    }
    if e > MAX_EXP {
        return NUM_BUCKETS - 1; // includes +inf (e = 1024)
    }
    let sub = ((bits >> (52 - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    1 + (e - MIN_EXP) as usize * SUB + sub
}

/// Exclusive upper edge of bucket `idx` (`0.0` for the ≤0 bucket,
/// `+∞` for the last).
pub fn upper_edge(idx: usize) -> f64 {
    if idx == 0 {
        return 0.0;
    }
    if idx >= NUM_BUCKETS - 1 {
        return f64::INFINITY;
    }
    let b = idx - 1;
    let e = MIN_EXP + (b / SUB) as i32;
    let sub = (b % SUB) as f64;
    exp2(e) * (1.0 + (sub + 1.0) / SUB as f64)
}

/// Inclusive lower edge of bucket `idx` (`-∞` for the ≤0 bucket; the
/// first positive bucket's lower edge is 0 because sub-`2^MIN_EXP`
/// values clamp into it).
pub fn lower_edge(idx: usize) -> f64 {
    match idx {
        0 => f64::NEG_INFINITY,
        1 => 0.0,
        _ => upper_edge(idx - 1),
    }
}

fn exp2(e: i32) -> f64 {
    f64::from_bits(((e + 1023) as u64) << 52)
}

pub(crate) struct HistCell {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_micros: AtomicI64,
}

impl HistCell {
    pub(crate) fn new() -> Self {
        HistCell {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicI64::new(0),
        }
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_micros.store(0, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i, c));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Handle onto a registered (or detached) histogram.
#[derive(Clone)]
pub struct Histogram {
    pub(crate) cell: Arc<HistCell>,
}

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached() -> Self {
        Histogram {
            cell: Arc::new(HistCell::new()),
        }
    }

    pub(crate) fn from_cell(cell: Arc<HistCell>) -> Self {
        Histogram { cell }
    }

    /// Record one observation; no-op while instrumentation is disabled.
    #[inline]
    pub fn observe(&self, v: f64) {
        if !crate::is_enabled() {
            return;
        }
        let idx = bucket_index(v);
        self.cell.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.cell.count.fetch_add(1, Ordering::Relaxed);
        // Fixed-point micro-units keep the sum deterministic and its
        // merge associative (`as` casts saturate, NaN casts to 0).
        let dv = if v.is_finite() {
            (v * 1e6).round() as i64
        } else {
            0
        };
        self.cell.sum_micros.fetch_add(dv, Ordering::Relaxed);
    }

    /// Point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cell.snapshot()
    }
}

/// An immutable, mergeable copy of a histogram's state. Only non-empty
/// buckets are materialized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    /// Sum of finite observations in fixed-point micro-units.
    pub sum_micros: i64,
    /// `(bucket_index, count)` pairs, ascending by index, counts > 0.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum_micros: 0,
            buckets: Vec::new(),
        }
    }

    /// Sum of finite observations.
    pub fn sum(&self) -> f64 {
        self.sum_micros as f64 / 1e6
    }

    /// Merge `other` into `self` (element-wise bucket addition —
    /// associative and commutative).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum_micros = self.sum_micros.saturating_add(other.sum_micros);
        let mut merged: Vec<(usize, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        merged.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, cb));
                        b.next();
                    } else {
                        merged.push((ia, ca + cb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }

    /// Conservative quantile estimate: the upper edge of the bucket
    /// containing the rank-`⌈p·count⌉` observation (so the true value
    /// is ≤ the estimate, and ≥ the same bucket's lower edge).
    pub fn quantile(&self, p: f64) -> f64 {
        self.quantile_bounds(p).1
    }

    /// `(lower_edge, upper_edge)` of the bucket containing quantile `p`.
    /// Returns `(NaN, NaN)` on an empty histogram.
    pub fn quantile_bounds(&self, p: f64) -> (f64, f64) {
        if self.count == 0 {
            return (f64::NAN, f64::NAN);
        }
        let target = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for &(idx, c) in &self.buckets {
            cum += c;
            if cum >= target {
                return (lower_edge(idx), upper_edge(idx));
            }
        }
        // Unreachable when bucket counts sum to `count`; be safe.
        let last = self.buckets.last().map(|&(i, _)| i).unwrap_or(0);
        (lower_edge(last), upper_edge(last))
    }

    /// Cumulative count at or below bucket `idx`'s upper edge.
    pub fn cumulative_at(&self, idx: usize) -> u64 {
        self.buckets
            .iter()
            .take_while(|&&(i, _)| i <= idx)
            .map(|&(_, c)| c)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_on_samples() {
        let vals = [1e-9, 0.001, 0.5, 1.0, 1.49, 1.5, 2.0, 3.0, 100.0, 1e9, 1e13];
        for w in vals.windows(2) {
            assert!(
                bucket_index(w[0]) <= bucket_index(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn edges_bound_their_bucket() {
        for v in [0.37, 1.0, 1.99, 12.5, 4096.0, 7e9] {
            let idx = bucket_index(v);
            assert!(
                lower_edge(idx) <= v && v < upper_edge(idx),
                "v={v} idx={idx}"
            );
        }
    }

    #[test]
    fn nonpositive_and_nan_land_in_bucket_zero() {
        for v in [0.0, -1.0, f64::NEG_INFINITY, f64::NAN] {
            assert_eq!(bucket_index(v), 0);
        }
        assert_eq!(bucket_index(f64::INFINITY), NUM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let _g = crate::testutil::serial();
        crate::enable();
        let h = Histogram::detached();
        for i in 1..=100 {
            h.observe(i as f64);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        let (lo, hi) = s.quantile_bounds(0.5);
        assert!(
            lo <= 50.0 && 50.0 <= hi * (1.0 + 1e-12),
            "median in [{lo},{hi}]"
        );
        assert!(s.quantile(1.0) >= 100.0);
        assert!(s.quantile(0.0) <= s.quantile(1.0));
        assert!((s.sum() - 5050.0).abs() < 1e-6);
        crate::disable();
    }

    #[test]
    fn merge_adds_counts() {
        let _g = crate::testutil::serial();
        crate::enable();
        let a = Histogram::detached();
        let b = Histogram::detached();
        a.observe(1.0);
        a.observe(2.0);
        b.observe(2.0);
        b.observe(300.0);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 4);
        assert_eq!(m.cumulative_at(NUM_BUCKETS - 1), 4);
        assert!((m.sum() - 305.0).abs() < 1e-6);
        crate::disable();
    }

    #[test]
    fn observe_is_noop_when_disabled() {
        let _g = crate::testutil::serial();
        crate::disable();
        let h = Histogram::detached();
        h.observe(1.0);
        assert_eq!(h.snapshot().count, 0);
    }
}
