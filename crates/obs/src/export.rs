//! Snapshot exporters: deterministic JSON and Prometheus text.
//!
//! Both walk the registry's `BTreeMap`s, so field order is sorted name
//! order and two exports of the same state are byte-identical. The
//! only nondeterministic values in an export are span `total_ns` (wall
//! clock) — everything else is a pure function of the simulation, which
//! is what lets CI schema-check the document and tests diff the
//! deterministic subset.
//!
//! The crate is zero-dependency, so this module carries its own tiny
//! JSON string/number formatters (same conventions as the traffic
//! report writer: shortest-roundtrip floats, non-finite → `null`).

use crate::histogram::{upper_edge, HistogramSnapshot};
use crate::recorder::FieldValue;
use crate::registry::Registry;

/// Schema tag stamped into every JSON export.
pub const JSON_SCHEMA: &str = "egoist-obs/v1";

/// Escape and quote a JSON string.
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float as a JSON number; non-finite values become `null`.
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn hist_json(s: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = s
        .buckets
        .iter()
        .map(|&(idx, c)| format!("[{},{}]", jnum(upper_edge(idx)), c))
        .collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[{}]}}",
        s.count,
        jnum(s.sum()),
        jnum(s.quantile(0.5)),
        jnum(s.quantile(0.9)),
        jnum(s.quantile(0.99)),
        buckets.join(",")
    )
}

impl Registry {
    /// The full registry as one deterministic JSON document.
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters_sorted()
            .into_iter()
            .map(|(k, v)| format!("{}:{}", jstr(&k), v))
            .collect();
        let spans: Vec<String> = self
            .spans_sorted()
            .into_iter()
            .map(|(k, c, ns)| format!("{}:{{\"count\":{c},\"total_ns\":{ns}}}", jstr(&k)))
            .collect();
        let hists: Vec<String> = self
            .histograms_sorted()
            .into_iter()
            .map(|(k, s)| format!("{}:{}", jstr(&k), hist_json(&s)))
            .collect();
        format!(
            "{{\"schema\":{},\"counters\":{{{}}},\"spans\":{{{}}},\"histograms\":{{{}}}}}",
            jstr(JSON_SCHEMA),
            counters.join(","),
            spans.join(","),
            hists.join(",")
        )
    }

    /// The flight-recorder ring as a JSON document (oldest first).
    pub fn events_to_json(&self) -> String {
        let events = self.events();
        let dropped = self.events_recorded() - events.len() as u64;
        let items: Vec<String> = events
            .iter()
            .map(|e| {
                let fields: Vec<String> = e
                    .fields
                    .iter()
                    .map(|(k, v)| {
                        let val = match v {
                            FieldValue::U64(x) => x.to_string(),
                            FieldValue::I64(x) => x.to_string(),
                            FieldValue::F64(x) => jnum(*x),
                            FieldValue::Str(s) => jstr(s),
                        };
                        format!("{}:{}", jstr(k), val)
                    })
                    .collect();
                format!(
                    "{{\"seq\":{},\"t_ns\":{},\"name\":{},\"fields\":{{{}}}}}",
                    e.seq,
                    e.t_ns,
                    jstr(e.name),
                    fields.join(",")
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"egoist-obs-events/v1\",\"dropped\":{},\"events\":[{}]}}",
            dropped,
            items.join(",")
        )
    }

    /// Prometheus text exposition format (metric names are the dotted
    /// registry names with `egoist_` prefixed and dots flattened).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.counters_sorted() {
            let m = promname(&name);
            out.push_str(&format!("# TYPE {m}_total counter\n{m}_total {v}\n"));
        }
        for (name, count, total_ns) in self.spans_sorted() {
            let m = promname(&name);
            out.push_str(&format!(
                "# TYPE {m}_spans_total counter\n{m}_spans_total {count}\n"
            ));
            out.push_str(&format!(
                "# TYPE {m}_ns_total counter\n{m}_ns_total {total_ns}\n"
            ));
        }
        for (name, s) in self.histograms_sorted() {
            let m = promname(&name);
            out.push_str(&format!("# TYPE {m} histogram\n"));
            let mut cum = 0u64;
            for &(idx, c) in &s.buckets {
                cum += c;
                let le = upper_edge(idx);
                if le.is_finite() {
                    out.push_str(&format!("{m}_bucket{{le=\"{le:?}\"}} {cum}\n"));
                }
            }
            out.push_str(&format!("{m}_bucket{{le=\"+Inf\"}} {}\n", s.count));
            out.push_str(&format!("{m}_sum {:?}\n", s.sum()));
            out.push_str(&format!("{m}_count {}\n", s.count));
        }
        out
    }
}

/// Flatten a dotted instrument name into a Prometheus metric name.
fn promname(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("egoist_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::registry;

    #[test]
    fn json_is_deterministic_and_sorted() {
        let _g = crate::testutil::serial();
        crate::enable();
        registry().counter("test.export.b").add(2);
        registry().counter("test.export.a").add(1);
        let j1 = registry().to_json();
        let j2 = registry().to_json();
        assert_eq!(j1, j2);
        let ia = j1.find("test.export.a").unwrap();
        let ib = j1.find("test.export.b").unwrap();
        assert!(ia < ib, "sorted name order");
        assert!(j1.starts_with("{\"schema\":\"egoist-obs/v1\""));
        crate::disable();
    }

    #[test]
    fn prometheus_has_counter_and_histogram_families() {
        let _g = crate::testutil::serial();
        crate::enable();
        registry().counter("test.prom.count").add(7);
        let h = registry().histogram("test.prom.lat");
        h.observe(1.0);
        h.observe(3.0);
        let text = registry().to_prometheus();
        assert!(text.contains("# TYPE egoist_test_prom_count_total counter"));
        assert!(text.contains("egoist_test_prom_count_total 7"));
        assert!(text.contains("# TYPE egoist_test_prom_lat histogram"));
        assert!(text.contains("egoist_test_prom_lat_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("egoist_test_prom_lat_count 2"));
        crate::disable();
    }

    #[test]
    fn events_json_reports_drops() {
        let _g = crate::testutil::serial();
        crate::enable();
        crate::enable_trace();
        registry().reset();
        registry().set_recorder_capacity(2);
        for i in 0..4u64 {
            crate::event_at(i, "test.ev", &[("i", FieldValue::U64(i))]);
        }
        let j = registry().events_to_json();
        assert!(j.contains("\"dropped\":2"), "{j}");
        assert!(j.contains("\"seq\":3"));
        registry().set_recorder_capacity(1024);
        crate::disable_trace();
        crate::disable();
    }
}
