//! Property-based tests for the histogram invariants.
//!
//! These operate on [`HistogramSnapshot`] values built directly from
//! observation lists (pure bucket arithmetic, no global enable flag),
//! so they are immune to the enable/disable toggling the unit tests do.

use crate::histogram::{bucket_index, lower_edge, upper_edge, HistogramSnapshot, NUM_BUCKETS};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Build a snapshot from raw observations without touching atomics.
fn snap_of(vals: &[f64]) -> HistogramSnapshot {
    let mut buckets: BTreeMap<usize, u64> = BTreeMap::new();
    let mut sum_micros = 0i64;
    for &v in vals {
        *buckets.entry(bucket_index(v)).or_default() += 1;
        if v.is_finite() {
            sum_micros = sum_micros.saturating_add((v * 1e6).round() as i64);
        }
    }
    HistogramSnapshot {
        count: vals.len() as u64,
        sum_micros,
        buckets: buckets.into_iter().collect(),
    }
}

fn arb_vals() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1e-8f64..1e10, 0..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Larger values never land in smaller buckets.
    #[test]
    fn bucket_index_is_monotone(a in 1e-12f64..1e14, b in 1e-12f64..1e14) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi),
            "{lo} -> {} vs {hi} -> {}", bucket_index(lo), bucket_index(hi));
    }

    /// Every in-range value sits inside its own bucket's edges, and the
    /// edges tile: lower_edge(i+1) == upper_edge(i).
    #[test]
    fn edges_bound_and_tile(v in 1e-6f64..1e12) {
        let idx = bucket_index(v);
        prop_assert!(lower_edge(idx) <= v && v < upper_edge(idx));
        if idx + 1 < NUM_BUCKETS {
            prop_assert_eq!(lower_edge(idx + 1).to_bits(), upper_edge(idx).to_bits());
        }
    }

    /// Merge is associative: (A ⊕ B) ⊕ C == A ⊕ (B ⊕ C).
    #[test]
    fn merge_is_associative(a in arb_vals(), b in arb_vals(), c in arb_vals()) {
        let (sa, sb, sc) = (snap_of(&a), snap_of(&b), snap_of(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merge is commutative and conserves counts: total count and every
    /// bucket count add exactly.
    #[test]
    fn merge_conserves_counts(a in arb_vals(), b in arb_vals()) {
        let (sa, sb) = (snap_of(&a), snap_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.count, sa.count + sb.count);
        let bucket_total: u64 = ab.buckets.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(bucket_total, ab.count);
        // Merging matches observing the concatenation.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(&ab, &snap_of(&all));
    }

    /// Quantile estimates are bounded by the containing bucket's edges,
    /// and those edges bracket the true rank statistic.
    #[test]
    fn quantiles_bounded_by_bucket_edges(vals in proptest::collection::vec(1e-6f64..1e12, 1..60),
                                         p in 0.0f64..1.0) {
        let s = snap_of(&vals);
        let mut sorted = vals.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let target = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[target - 1];
        let (lo, hi) = s.quantile_bounds(p);
        prop_assert!(lo <= truth && truth <= hi,
            "q({p}) = [{lo}, {hi}] must bracket rank value {truth}");
        prop_assert_eq!(s.quantile(p).to_bits(), hi.to_bits());
    }
}
