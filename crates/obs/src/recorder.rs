//! The flight recorder: a bounded ring of recent structured events.
//!
//! When a long run fails an assertion three hours in, the counters say
//! *how much* happened but not *what just happened*. The flight
//! recorder keeps the last `capacity` events (default 1024) — rewires,
//! churn arrivals, protocol joins — each with a caller-supplied or
//! monotonic timestamp, a static name, and a handful of typed fields.
//! Older events are overwritten; `seq` numbers stay globally ordered
//! so a dump shows exactly how much history was lost.
//!
//! Recording is double-gated (`obs::is_enabled() && obs::is_tracing()`)
//! so metrics-only runs never touch the ring's mutex.

use std::collections::VecDeque;

/// A typed event field value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Global sequence number (never reused, reveals ring overwrites).
    pub seq: u64,
    /// Timestamp in nanoseconds — virtual time in protocol tests,
    /// process-monotonic otherwise.
    pub t_ns: u64,
    pub name: &'static str,
    pub fields: Vec<(&'static str, FieldValue)>,
}

pub(crate) struct FlightRecorder {
    capacity: usize,
    next_seq: u64,
    buf: VecDeque<Event>,
}

pub(crate) const DEFAULT_CAPACITY: usize = 1024;

impl FlightRecorder {
    pub(crate) fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity,
            next_seq: 0,
            buf: VecDeque::with_capacity(capacity.min(256)),
        }
    }

    pub(crate) fn record(
        &mut self,
        t_ns: u64,
        name: &'static str,
        fields: &[(&'static str, FieldValue)],
    ) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(Event {
            seq: self.next_seq,
            t_ns,
            name,
            fields: fields.to_vec(),
        });
        self.next_seq += 1;
    }

    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.buf.len() > self.capacity {
            self.buf.pop_front();
        }
    }

    pub(crate) fn clear(&mut self) {
        self.buf.clear();
        self.next_seq = 0;
    }

    pub(crate) fn snapshot(&self) -> Vec<Event> {
        self.buf.iter().cloned().collect()
    }

    pub(crate) fn total_recorded(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_but_keeps_seq() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5u64 {
            r.record(i * 10, "tick", &[("i", FieldValue::U64(i))]);
        }
        let ev = r.snapshot();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].seq, 2);
        assert_eq!(ev[2].seq, 4);
        assert_eq!(r.total_recorded(), 5);
    }

    #[test]
    fn shrinking_capacity_trims_front() {
        let mut r = FlightRecorder::new(8);
        for i in 0..8u64 {
            r.record(i, "e", &[]);
        }
        r.set_capacity(2);
        let ev = r.snapshot();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].seq, 6);
    }
}
