//! Deterministic observability for the EGOIST stack.
//!
//! Every layer of the reproduction — epoch engine, BR solver, APSP
//! repair, data-plane router, protocol nodes — reports through one
//! process-wide [`Registry`] of named instruments:
//!
//! * [`Counter`] — monotonic `u64`, atomic, deterministic across runs
//!   (counts derive only from simulation decisions, never from time);
//! * [`Histogram`] — log-linear buckets with a deterministic merge and
//!   bucket-edge-bounded quantiles (see `histogram` module docs);
//! * [`Timer`] — a named span accumulating `(count, total_ns)`;
//!   hierarchy is encoded in dotted names (`core.epoch.turn.solver` is
//!   a child of `core.epoch.turn`), so exports can be re-nested without
//!   the registry tracking parent pointers;
//! * the flight [`recorder`] — a bounded ring of recent structured
//!   events for postmortem on failed runs.
//!
//! # Determinism
//!
//! Counters and histograms observe *simulation quantities* (messages
//! sent, candidates scanned, flow latency in simulated ms), so two runs
//! with the same seed export bit-identical values. Wall-clock time
//! enters exactly one place: span durations (`total_ns`), which are
//! explicitly excluded from fingerprints and schema-checked exports'
//! deterministic subset. Flight-recorder timestamps are supplied by the
//! caller (virtual time in the tokio-paused protocol tests) or drawn
//! from a process-monotonic clock for interactive postmortems.
//!
//! # Zero cost when disabled
//!
//! All instruments are no-ops unless [`enable`] has been called: one
//! relaxed atomic load and a predictable branch, no `Instant::now()`
//! syscall, no allocation. The `perf_baseline --overhead-gate` CI step
//! pins the enabled-vs-disabled wall-time gap under 3%.

pub mod counter;
pub mod export;
pub mod histogram;
pub mod recorder;
pub mod registry;
pub mod span;

pub use counter::Counter;
pub use histogram::{Histogram, HistogramSnapshot};
pub use recorder::{Event, FieldValue};
pub use registry::{registry, Registry};
pub use span::{SpanGuard, Timer};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static TRACE: AtomicBool = AtomicBool::new(false);

/// Turn instrumentation on. Cheap, idempotent, thread-safe.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn instrumentation off. Existing values stay readable.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// The single fast-path check every instrument performs first.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the flight recorder on (implies nothing about metrics —
/// recording is gated on `is_enabled() && is_tracing()`).
pub fn enable_trace() {
    TRACE.store(true, Ordering::SeqCst);
}

/// Turn the flight recorder off.
pub fn disable_trace() {
    TRACE.store(false, Ordering::SeqCst);
}

/// Whether flight-recorder events should be captured.
#[inline(always)]
pub fn is_tracing() -> bool {
    TRACE.load(Ordering::Relaxed)
}

/// Convenience: fetch-or-register a counter from the global registry.
pub fn counter(name: &str) -> Counter {
    registry().counter(name)
}

/// Convenience: fetch-or-register a histogram from the global registry.
pub fn histogram(name: &str) -> Histogram {
    registry().histogram(name)
}

/// Convenience: fetch-or-register a span timer from the global registry.
pub fn timer(name: &str) -> Timer {
    registry().timer(name)
}

/// Convenience: record a flight-recorder event at a caller-supplied
/// timestamp (nanoseconds; virtual time in protocol tests).
pub fn event_at(t_ns: u64, name: &'static str, fields: &[(&'static str, FieldValue)]) {
    if is_enabled() && is_tracing() {
        registry().record_event(t_ns, name, fields);
    }
}

/// Convenience: record a flight-recorder event stamped with the
/// process-monotonic clock.
pub fn event(name: &'static str, fields: &[(&'static str, FieldValue)]) {
    if is_enabled() && is_tracing() {
        let t = registry().monotonic_ns();
        registry().record_event(t, name, fields);
    }
}

#[cfg(test)]
mod proptests;

/// The enable/trace flags are process-global, so tests that toggle them
/// must not interleave. Every such test takes this lock first.
#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();

    pub(crate) fn serial() -> MutexGuard<'static, ()> {
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_instruments_are_noops() {
        let _g = testutil::serial();
        let c = Counter::detached();
        disable();
        c.add(5);
        assert_eq!(c.get(), 0);
        enable();
        c.add(5);
        assert_eq!(c.get(), 5);
        disable();
    }

    #[test]
    fn trace_flag_round_trips() {
        let _g = testutil::serial();
        enable_trace();
        assert!(is_tracing());
        disable_trace();
        assert!(!is_tracing());
    }
}
