//! The process-wide instrument registry.
//!
//! Components resolve handles by dotted name once at construction
//! (`registry().counter("core.solver.scanned")`) and hit only their
//! own atomic cell afterwards — the registry's maps are touched on
//! registration, reset, and export, never on the hot path.
//!
//! [`Registry::reset`] zeroes every value but keeps registrations, so
//! benchmark drivers can reuse handles across scenarios and read each
//! scenario's deltas as absolute values.

use crate::counter::{Counter, CounterCell};
use crate::histogram::{HistCell, Histogram, HistogramSnapshot};
use crate::recorder::{Event, FieldValue, FlightRecorder, DEFAULT_CAPACITY};
use crate::span::{SpanStats, Timer};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<CounterCell>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistCell>>>,
    spans: Mutex<BTreeMap<String, Arc<SpanStats>>>,
    recorder: Mutex<FlightRecorder>,
    origin: Instant,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The global registry (created on first use).
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        spans: Mutex::new(BTreeMap::new()),
        recorder: Mutex::new(FlightRecorder::new(DEFAULT_CAPACITY)),
        origin: Instant::now(),
    })
}

impl Registry {
    /// Fetch or register the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = lock(&self.counters);
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(CounterCell::default()));
        Counter::from_cell(Arc::clone(cell))
    }

    /// Fetch or register the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = lock(&self.histograms);
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistCell::new()));
        Histogram::from_cell(Arc::clone(cell))
    }

    /// Fetch or register the span timer named `name`.
    pub fn timer(&self, name: &str) -> Timer {
        let mut map = lock(&self.spans);
        let stats = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(SpanStats::default()));
        Timer::from_stats(Arc::clone(stats))
    }

    /// Zero every instrument and clear the flight recorder. Handles
    /// stay valid — existing components keep reporting into the same
    /// cells.
    pub fn reset(&self) {
        for cell in lock(&self.counters).values() {
            cell.reset();
        }
        for cell in lock(&self.histograms).values() {
            cell.reset();
        }
        for stats in lock(&self.spans).values() {
            stats.reset();
        }
        lock(&self.recorder).clear();
    }

    /// Nanoseconds since the registry was created (process-monotonic).
    pub fn monotonic_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Resize the flight-recorder ring (default 1024 events).
    pub fn set_recorder_capacity(&self, capacity: usize) {
        lock(&self.recorder).set_capacity(capacity);
    }

    pub(crate) fn record_event(
        &self,
        t_ns: u64,
        name: &'static str,
        fields: &[(&'static str, FieldValue)],
    ) {
        lock(&self.recorder).record(t_ns, name, fields);
    }

    /// The retained flight-recorder events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        lock(&self.recorder).snapshot()
    }

    /// Total events ever recorded (including ones the ring dropped).
    pub fn events_recorded(&self) -> u64 {
        lock(&self.recorder).total_recorded()
    }

    /// Current value of a counter, 0 if unregistered. Export/test path.
    pub fn counter_value(&self, name: &str) -> u64 {
        lock(&self.counters).get(name).map_or(0, |c| c.load())
    }

    /// `(count, total_ns)` of a span, zeros if unregistered.
    pub fn span_value(&self, name: &str) -> (u64, u64) {
        lock(&self.spans).get(name).map_or((0, 0), |s| s.load())
    }

    /// Snapshot of a histogram, empty if unregistered.
    pub fn histogram_snapshot(&self, name: &str) -> HistogramSnapshot {
        lock(&self.histograms)
            .get(name)
            .map_or_else(HistogramSnapshot::empty, |h| h.snapshot())
    }

    /// All counters as sorted `(name, value)` pairs.
    pub fn counters_sorted(&self) -> Vec<(String, u64)> {
        lock(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.load()))
            .collect()
    }

    /// All spans as sorted `(name, count, total_ns)` tuples.
    pub fn spans_sorted(&self) -> Vec<(String, u64, u64)> {
        lock(&self.spans)
            .iter()
            .map(|(k, v)| {
                let (c, ns) = v.load();
                (k.clone(), c, ns)
            })
            .collect()
    }

    /// All histograms as sorted `(name, snapshot)` pairs.
    pub fn histograms_sorted(&self) -> Vec<(String, HistogramSnapshot)> {
        lock(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_a_cell_and_reset_keeps_handles() {
        let _g = crate::testutil::serial();
        crate::enable();
        let a = registry().counter("test.registry.shared");
        let b = registry().counter("test.registry.shared");
        a.add(3);
        assert_eq!(b.get(), 3);
        registry().reset();
        assert_eq!(a.get(), 0);
        b.add(1);
        assert_eq!(registry().counter_value("test.registry.shared"), 1);
        crate::disable();
    }

    #[test]
    fn unregistered_names_read_as_empty() {
        assert_eq!(registry().counter_value("test.registry.nope"), 0);
        assert_eq!(registry().span_value("test.registry.nope"), (0, 0));
        assert_eq!(registry().histogram_snapshot("test.registry.nope").count, 0);
    }
}
