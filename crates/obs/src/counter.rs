//! Monotonic counters.
//!
//! A [`Counter`] is a clone-cheap handle onto a shared atomic cell.
//! Handles are resolved once (at component construction) and the hot
//! path is a relaxed load + add. Code inside tight loops should batch
//! into a local `u64` and flush with one [`Counter::add`] per solve /
//! per call — the solver counters do exactly that.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Default)]
pub(crate) struct CounterCell {
    value: AtomicU64,
}

impl CounterCell {
    pub(crate) fn load(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Handle onto a registered (or detached) monotonic counter.
#[derive(Clone)]
pub struct Counter {
    pub(crate) cell: Arc<CounterCell>,
}

impl Counter {
    /// A counter not attached to any registry — used in tests and as a
    /// do-nothing default.
    pub fn detached() -> Self {
        Counter {
            cell: Arc::new(CounterCell::default()),
        }
    }

    pub(crate) fn from_cell(cell: Arc<CounterCell>) -> Self {
        Counter { cell }
    }

    /// Add `n`; no-op while instrumentation is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::is_enabled() && n > 0 {
            self.cell.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_adds_accumulate() {
        let _g = crate::testutil::serial();
        crate::enable();
        let c = Counter::detached();
        let mut local = 0u64;
        for i in 0..100u64 {
            local += i % 3;
        }
        c.add(local);
        assert_eq!(c.get(), (0..100u64).map(|i| i % 3).sum::<u64>());
        crate::disable();
    }

    #[test]
    fn clones_share_the_cell() {
        let _g = crate::testutil::serial();
        crate::enable();
        let a = Counter::detached();
        let b = a.clone();
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        crate::disable();
    }
}
