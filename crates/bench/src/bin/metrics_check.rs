//! `metrics_check` — validate an `egoist-obs/v1` registry export (the
//! `--metrics-out` output of `perf_baseline` / `traffic_workloads`)
//! against the checked-in schema.
//!
//! The schema file (`schemas/metrics.schema.json`) is a standard JSON
//! Schema for external tooling; this binary enforces its load-bearing
//! subset without a serde dependency: the schema tag, the three
//! top-level instrument maps, per-entry structural invariants, and the
//! `x-required-instruments` lists — the names every full epoch-engine
//! run must have registered. A missing name means a layer lost its
//! instrumentation; CI fails before a human notices the dashboards
//! went dark.
//!
//! Usage: metrics_check [METRICS.json] [SCHEMA.json]
//! (defaults: metrics_ci.json, schemas/metrics.schema.json)

const SCHEMA_TAG: &str = "\"schema\":\"egoist-obs/v1\"";

/// Pull the JSON string array keyed `key` out of `doc` at or after
/// `from` (whitespace-tolerant) — only used on our own checked-in
/// schema file, where the layout is controlled.
fn extract_list(doc: &str, key: &str, from: usize) -> Result<Vec<String>, String> {
    let tag = format!("\"{key}\"");
    let at = doc[from..]
        .find(&tag)
        .ok_or_else(|| format!("schema: no {key} list"))?
        + from
        + tag.len();
    let open = doc[at..]
        .find('[')
        .ok_or_else(|| format!("schema: {key} is not a list"))?
        + at
        + 1;
    let end = doc[open..]
        .find(']')
        .ok_or_else(|| format!("schema: unterminated {key} list"))?
        + open;
    Ok(doc[open..end]
        .split('"')
        .skip(1)
        .step_by(2)
        .map(str::to_string)
        .collect())
}

fn check(metrics: &str, schema: &str) -> Result<usize, String> {
    if !metrics.contains(SCHEMA_TAG) {
        return Err(format!("metrics document lacks the {SCHEMA_TAG} tag"));
    }
    for section in ["\"counters\":{", "\"spans\":{", "\"histograms\":{"] {
        if !metrics.contains(section) {
            return Err(format!("metrics document lacks the {section}... object"));
        }
    }

    // Structural sanity of the histogram entries: each carries exactly
    // one of every required field, so the field counts must agree.
    let counts: Vec<usize> = ["\"p50\":", "\"p90\":", "\"p99\":", "\"buckets\":"]
        .iter()
        .map(|f| metrics.matches(f).count())
        .collect();
    if counts.windows(2).any(|w| w[0] != w[1]) {
        return Err(format!(
            "histogram entries are structurally uneven (p50/p90/p99/buckets counts {counts:?})"
        ));
    }
    // Same for spans.
    let span_counts = metrics.matches("\"total_ns\":").count();
    let count_fields = metrics.matches("\"count\":").count();
    if count_fields != span_counts + counts[0] {
        return Err(format!(
            "expected one count field per span+histogram entry \
             ({span_counts} spans + {} histograms, found {count_fields})",
            counts[0]
        ));
    }

    // The x-required-instruments lists: every name must appear as a key.
    let marker = schema
        .find("\"x-required-instruments\"")
        .ok_or("schema: no x-required-instruments section")?;
    let mut required = 0usize;
    for section in ["counters", "spans", "histograms"] {
        for name in extract_list(schema, section, marker)? {
            if !metrics.contains(&format!("\"{name}\":")) {
                return Err(format!(
                    "required instrument {name} is missing from the export \
                     (a layer lost its instrumentation?)"
                ));
            }
            required += 1;
        }
    }
    Ok(required)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_path = args
        .first()
        .map(String::as_str)
        .unwrap_or("metrics_ci.json");
    let schema_path = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("schemas/metrics.schema.json");
    let metrics = std::fs::read_to_string(metrics_path)
        .unwrap_or_else(|e| panic!("read {metrics_path}: {e}"));
    let schema =
        std::fs::read_to_string(schema_path).unwrap_or_else(|e| panic!("read {schema_path}: {e}"));
    match check(&metrics, &schema) {
        Ok(required) => {
            println!("{metrics_path}: valid egoist-obs/v1 export, {required} required instruments present");
        }
        Err(e) => {
            eprintln!("{metrics_path}: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_export() -> String {
        egoist_obs::enable();
        let r = egoist_obs::registry();
        r.reset();
        // Register every instrument the schema requires, touch a few.
        let schema = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../schemas/metrics.schema.json"
        ))
        .unwrap();
        let marker = schema.find("\"x-required-instruments\"").unwrap();
        for name in extract_list(&schema, "counters", marker).unwrap() {
            r.counter(&name).inc();
        }
        for name in extract_list(&schema, "spans", marker).unwrap() {
            r.timer(&name).add_ns(10);
        }
        for name in extract_list(&schema, "histograms", marker).unwrap() {
            r.histogram(&name).observe(1.5);
        }
        let doc = r.to_json();
        egoist_obs::disable();
        doc
    }

    #[test]
    fn full_export_validates_and_mutations_fail() {
        let schema = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../schemas/metrics.schema.json"
        ))
        .unwrap();
        let doc = demo_export();
        assert!(check(&doc, &schema).is_ok(), "{:?}", check(&doc, &schema));
        // Dropping a required instrument must fail.
        let broken = doc.replace("\"traffic.flow_latency_ms\":", "\"traffic.renamed\":");
        assert!(check(&broken, &schema).is_err());
        // A wrong schema tag must fail.
        let wrong = doc.replace("egoist-obs/v1", "egoist-obs/v0");
        assert!(check(&wrong, &schema).is_err());
    }
}
