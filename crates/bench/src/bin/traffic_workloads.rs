//! Data-plane workload comparison: policies × workloads, as JSON.
//!
//! Runs the closed-loop traffic engine for every combination of wiring
//! policy (BR, k-Random, k-Closest, and k-Regular as the degenerate
//! baseline) and workload shape (uniform, gravity, broadcast, CDN), and
//! emits one JSON document comparing their steady-state summaries —
//! throughput, delivery ratio, p50/p99 flow latency, path stretch.
//!
//! The paper's claim under test: selfishly-wired overlays carry real
//! traffic better (lower latency, less stretch), and with the closed
//! loop they keep doing so *under the congestion their own traffic
//! induces*.
//!
//! Honors `EGOIST_FAST=1`, `EGOIST_SEEDS`, `EGOIST_EPOCHS`.
//!
//! Flags: `--metrics-out PATH` dumps the obs registry (egoist-obs/v1,
//! all runs accumulated — flow latency/stretch/utilization histograms,
//! router counters, epoch spans) after the sweep; `--trace` turns the
//! flight recorder on and echoes its events JSON to stderr; `--sweep`
//! switches to an offered-load × data-policy sweep (spf, backpressure,
//! delay-aware) through `egoist_traffic::sweep_offered` — the same code
//! path the `policy_race` scenarios run on.

use egoist_bench::{epochs, seeds, warmup};
use egoist_core::policies::PolicyKind;
use egoist_core::sim::Metric;
use egoist_traffic::demand::WorkloadKind;
use egoist_traffic::engine::{sweep_offered, TrafficConfig, TrafficEngine};
use egoist_traffic::json::{array, JsonObject};
use egoist_traffic::policy::DataPolicyKind;

/// The `--sweep` mode: one wiring policy (BR), all three data policies,
/// offered load swept across the knee.
fn run_sweep() {
    let loads = [250.0, 500.0, 1000.0, 2000.0, 3000.0];
    let policies = DataPolicyKind::all();
    let seed = seeds()[0];
    let mut cfg = TrafficConfig::new(32, 4, PolicyKind::BestResponse, Metric::Load, seed);
    cfg.sim.epochs = epochs();
    cfg.sim.warmup_epochs = warmup();
    cfg.flows_per_epoch = 48;
    let points: Vec<String> = sweep_offered(&cfg, &loads, &policies)
        .iter()
        .map(|p| {
            let s = &p.report.summary;
            JsonObject::new()
                .str("data_policy", p.data_policy.label())
                .f64("offered_mbps", p.offered_mbps)
                .f64("delivered_mbps", s.delivered_mbps)
                .f64("delivery_ratio", s.delivery_ratio)
                .f64("p50_latency_ms", s.p50_latency_ms)
                .f64("p99_latency_ms", s.p99_latency_ms)
                .f64("mean_stretch", s.mean_stretch)
                .u64("route_changes", s.route_changes as u64)
                .finish()
        })
        .collect();
    let doc = JsonObject::new()
        .str("experiment", "traffic_workloads_sweep")
        .str(
            "expectation",
            "delivered throughput rises with offered load until the knee; past \
             it, backpressure keeps climbing toward the multi-commodity capacity \
             while the path-committed policies flatten out",
        )
        .u64("n", 32)
        .u64("k", 4)
        .str("metric", "Load")
        .u64("seed", seed)
        .raw("loads", array(loads.iter().map(|l| l.to_string())))
        .raw("points", array(points))
        .finish();
    println!("{doc}");
    eprintln!(
        "# traffic_workloads --sweep: {} policies x {} loads done",
        DataPolicyKind::all().len(),
        loads.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_out = args
        .iter()
        .position(|a| a == "--metrics-out")
        .and_then(|p| args.get(p + 1))
        .cloned();
    let trace = args.iter().any(|a| a == "--trace");
    if metrics_out.is_some() || trace {
        egoist_obs::enable();
    }
    if trace {
        egoist_obs::enable_trace();
    }
    if args.iter().any(|a| a == "--sweep") {
        run_sweep();
        return;
    }
    let n = 32;
    let k = 4;
    let policies = [
        PolicyKind::BestResponse,
        PolicyKind::Random,
        PolicyKind::Closest,
        PolicyKind::Regular,
    ];
    let workloads = WorkloadKind::all();

    let mut runs = Vec::new();
    for &policy in &policies {
        for &workload in &workloads {
            // Per-seed reports; the JSON carries each seed's summary so
            // downstream tooling can compute its own aggregates.
            let mut per_seed = Vec::new();
            for &seed in &seeds() {
                let mut cfg = TrafficConfig::new(n, k, policy, Metric::Load, seed);
                cfg.sim.epochs = epochs();
                cfg.sim.warmup_epochs = warmup();
                cfg.workload = workload;
                cfg.offered_mbps = 200.0;
                cfg.flows_per_epoch = 48;
                let report = TrafficEngine::run(&cfg);
                per_seed.push(
                    JsonObject::new()
                        .u64("seed", seed)
                        .raw(
                            "summary",
                            JsonObject::new()
                                .f64("delivered_mbps", report.summary.delivered_mbps)
                                .f64("delivery_ratio", report.summary.delivery_ratio)
                                .f64("p50_latency_ms", report.summary.p50_latency_ms)
                                .f64("p99_latency_ms", report.summary.p99_latency_ms)
                                .f64("mean_stretch", report.summary.mean_stretch)
                                .f64("mean_rewirings", report.summary.mean_rewirings)
                                .u64("flows_measured", report.summary.flows_measured as u64)
                                .finish(),
                        )
                        .finish(),
                );
            }
            runs.push(
                JsonObject::new()
                    .str("policy", &policy.label())
                    .str("workload", workload.label())
                    .raw("seeds", array(per_seed))
                    .finish(),
            );
        }
    }

    let doc = JsonObject::new()
        .str("experiment", "traffic_workloads")
        .str(
            "expectation",
            "BR carries flows at lower p50/p99 latency and stretch than the \
             heuristics on every workload; the closed loop keeps BR's latency \
             advantage under self-induced congestion",
        )
        .u64("n", n as u64)
        .u64("k", k as u64)
        .str("metric", "Load")
        .bool("closed_loop", true)
        .f64("offered_mbps", 200.0)
        .raw("seeds", array(seeds().iter().map(|s| s.to_string())))
        .raw("runs", array(runs))
        .finish();
    println!("{doc}");

    // A human-readable echo on stderr so terminal runs are scannable.
    eprintln!(
        "# traffic_workloads: {} policies x {} workloads x {} seeds done",
        policies.len(),
        workloads.len(),
        seeds().len()
    );

    if let Some(mpath) = metrics_out {
        let snapshot = egoist_obs::registry().to_json();
        std::fs::write(&mpath, format!("{snapshot}\n")).expect("write metrics");
        eprintln!("# metrics -> {mpath}");
    }
    if trace {
        eprintln!("{}", egoist_obs::registry().events_to_json());
    }
}
