//! Figure 1 (bottom-right): total available bandwidth / BR available
//! bandwidth vs k (higher is better; BR normalizes to 1).

use egoist_bench::{epochs, print_expectation, print_figure, seeds, warmup, Series};
use egoist_core::policies::PolicyKind;
use egoist_core::sim::{run, Metric, SimConfig};

fn main() {
    print_expectation(
        "BR delivers 2x-4x the aggregate bottleneck bandwidth of every \
         heuristic across the whole k range, so all plotted ratios sit well \
         below 1.0",
    );

    let ks = [2usize, 3, 4, 5, 6, 7, 8];
    let policies = [
        ("k-Random", PolicyKind::Random),
        ("k-Regular", PolicyKind::Regular),
        ("k-Closest", PolicyKind::Closest),
    ];
    let mut series: Vec<Series> = policies.iter().map(|(l, _)| Series::new(*l)).collect();

    for &k in &ks {
        let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
        for &seed in &seeds() {
            let mut cfg = SimConfig::baseline(k, PolicyKind::BestResponse, Metric::Bandwidth, seed);
            cfg.epochs = epochs();
            cfg.warmup_epochs = warmup();
            let br_bw = run(cfg.clone()).mean_bandwidth_utility(warmup());
            for (idx, (_, p)) in policies.iter().enumerate() {
                let mut pcfg = cfg.clone();
                pcfg.policy = *p;
                ratios[idx].push(run(pcfg).mean_bandwidth_utility(warmup()) / br_bw);
            }
        }
        for (idx, r) in ratios.iter().enumerate() {
            series[idx].push_samples(k as f64, r);
        }
    }
    print_figure(
        "Figure 1 (bottom-right): PlanetLab baseline, available bandwidth",
        "k",
        "total avail. bw / BR avail. bw (higher is better)",
        &series,
    );
}
