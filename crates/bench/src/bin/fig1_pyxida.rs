//! Figure 1 (top-right): individual cost / BR cost vs k, delay estimated
//! passively via the Vivaldi coordinate system (the paper's pyxida mode).

use egoist_bench::{epochs, print_expectation, print_figure, seeds, warmup, Series};
use egoist_core::policies::PolicyKind;
use egoist_core::sim::{run, Metric, SimConfig};

fn main() {
    print_expectation(
        "same ordering as the ping panel — BR best at every k, gap largest at \
         small k (ratios up to ~4.5) — but noisier, since coordinate estimates \
         are less accurate than pings",
    );

    let ks = [2usize, 3, 4, 5, 6, 7, 8];
    let policies = [
        ("k-Random", PolicyKind::Random),
        ("k-Regular", PolicyKind::Regular),
        ("k-Closest", PolicyKind::Closest),
    ];
    let mut series: Vec<Series> = policies.iter().map(|(l, _)| Series::new(*l)).collect();

    for &k in &ks {
        let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
        for &seed in &seeds() {
            let mut cfg =
                SimConfig::baseline(k, PolicyKind::BestResponse, Metric::DelayVivaldi, seed);
            cfg.epochs = epochs();
            cfg.warmup_epochs = warmup();
            let br_cost = run(cfg.clone()).mean_individual_cost(warmup());
            for (idx, (_, p)) in policies.iter().enumerate() {
                let mut pcfg = cfg.clone();
                pcfg.policy = *p;
                ratios[idx].push(run(pcfg).mean_individual_cost(warmup()) / br_cost);
            }
        }
        for (idx, r) in ratios.iter().enumerate() {
            series[idx].push_samples(k as f64, r);
        }
    }
    print_figure(
        "Figure 1 (top-right): PlanetLab baseline, delay via pyxida/Vivaldi",
        "k",
        "individual cost / BR cost",
        &series,
    );
}
