//! Figure 1 (top-left): individual cost / BR cost vs k, delay via ping,
//! with the full-mesh (RON) reference.

use egoist_bench::{epochs, print_expectation, print_figure, seeds, warmup, Series};
use egoist_core::policies::PolicyKind;
use egoist_core::sim::{full_mesh_reference, run, Metric, SimConfig};

fn main() {
    print_expectation(
        "BR dominates all heuristics for every k; at k=2 heuristics pay 2x-4x; \
         full mesh is at most ~30% below BR at k=2 and indistinguishable by k≈4; \
         k-Closest beats k-Random at small k, loses at larger k; k-Regular is worst",
    );

    let ks = [2usize, 3, 4, 5, 6, 7, 8];
    let policies = [
        ("k-Random", PolicyKind::Random),
        ("k-Regular", PolicyKind::Regular),
        ("k-Closest", PolicyKind::Closest),
    ];
    let mut series: Vec<Series> = policies.iter().map(|(l, _)| Series::new(*l)).collect();
    let mut mesh_series = Series::new("Full mesh");

    for &k in &ks {
        let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
        let mut mesh_ratios = Vec::new();
        for &seed in &seeds() {
            let mut cfg = SimConfig::baseline(k, PolicyKind::BestResponse, Metric::DelayPing, seed);
            cfg.epochs = epochs();
            cfg.warmup_epochs = warmup();
            let br_cost = run(cfg.clone()).mean_individual_cost(warmup());
            let mesh_cost = full_mesh_reference(&cfg);
            mesh_ratios.push(mesh_cost / br_cost);
            for (idx, (_, p)) in policies.iter().enumerate() {
                let mut pcfg = cfg.clone();
                pcfg.policy = *p;
                let cost = run(pcfg).mean_individual_cost(warmup());
                ratios[idx].push(cost / br_cost);
            }
        }
        for (idx, r) in ratios.iter().enumerate() {
            series[idx].push_samples(k as f64, r);
        }
        mesh_series.push_samples(k as f64, &mesh_ratios);
    }
    series.push(mesh_series);
    print_figure(
        "Figure 1 (top-left): PlanetLab baseline, delay via ping",
        "k",
        "individual cost / BR cost",
        &series,
    );
}
