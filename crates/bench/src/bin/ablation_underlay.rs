//! Ablation (§5): "we use these data sets [PlanetLab, BRITE synthetic
//! topologies, real AS topologies] … results obtained in the other
//! settings were similar."
//!
//! Runs the headline policy comparison (normalized cost vs BR at k = 3)
//! on three underlay families: the PlanetLab-like generator, Waxman
//! (BRITE router-level), and Barabási–Albert (AS-like). The *ordering*
//! should be underlay-invariant.

use egoist_bench::{print_expectation, print_figure, seeds, Series};
use egoist_core::cost::{disconnection_penalty, node_cost_from_dists, Preferences};
use egoist_core::game::Game;
use egoist_core::policies::PolicyKind;
use egoist_core::stats;
use egoist_graph::apsp::apsp;
use egoist_graph::connectivity::strongly_connected;
use egoist_graph::cycles::enforce_cycle;
use egoist_graph::{DiGraph, DistanceMatrix, NodeId};
use egoist_netsim::topo::{barabasi_albert_delays, waxman_delays, BaConfig, WaxmanConfig};
use egoist_netsim::DelayModel;

/// Mean individual cost over a (possibly cycle-fixed) overlay graph.
fn mean_cost(g: &DiGraph, d: &DistanceMatrix) -> f64 {
    let n = d.len();
    let prefs = Preferences::uniform(n);
    let alive = vec![true; n];
    let penalty = disconnection_penalty(d);
    let dist = apsp(g);
    let costs: Vec<f64> = (0..n)
        .map(|i| {
            let row: Vec<f64> = (0..n).map(|j| dist.at(i, j)).collect();
            node_cost_from_dists(NodeId::from_index(i), &row, &prefs, &alive, penalty)
        })
        .collect();
    stats::mean(&costs)
}

fn normalized(d: &DistanceMatrix, policy: PolicyKind, seed: u64) -> f64 {
    let k = 3;
    let members: Vec<NodeId> = (0..d.len()).map(NodeId::from_index).collect();
    let mut br = Game::new(d.clone(), k, PolicyKind::BestResponse, seed);
    br.run_to_convergence(10);
    let mut other = Game::new(d.clone(), k, policy, seed);
    other.sweep();
    // The §3.2 fix-up the deployed system applies to heuristic overlays:
    // enforce a cycle when not strongly connected.
    let mut g = other.graph();
    if !strongly_connected(&g, &members) {
        enforce_cycle(&mut g, d, &members);
    }
    mean_cost(&g, d) / mean_cost(&br.graph(), d)
}

fn main() {
    print_expectation(
        "the BR > heuristics ordering is underlay-invariant: it holds on \
         PlanetLab-like, Waxman/BRITE and Barabási-Albert (AS-like) delay \
         spaces alike",
    );

    let n = 50usize;
    let policies = [
        ("k-Random", PolicyKind::Random),
        ("k-Regular", PolicyKind::Regular),
        ("k-Closest", PolicyKind::Closest),
    ];

    type UnderlayFactory = Box<dyn Fn(u64) -> DistanceMatrix>;
    let underlays: Vec<(&str, UnderlayFactory)> = vec![
        (
            "PlanetLab-like",
            Box::new(|seed| DelayModel::planetlab_50(seed).base().clone()),
        ),
        (
            "Waxman (BRITE)",
            Box::new(move |seed| waxman_delays(n, &WaxmanConfig::default(), seed)),
        ),
        (
            "Barabasi-Albert (AS)",
            Box::new(move |seed| barabasi_albert_delays(n, &BaConfig::default(), seed)),
        ),
    ];

    let mut series: Vec<Series> = policies.iter().map(|(l, _)| Series::new(*l)).collect();
    for (u_idx, (_, gen)) in underlays.iter().enumerate() {
        for (p_idx, (_, policy)) in policies.iter().enumerate() {
            let ratios: Vec<f64> = seeds()
                .iter()
                .map(|&seed| {
                    let d = gen(seed);
                    normalized(&d, *policy, seed)
                })
                .collect();
            series[p_idx].push_samples(u_idx as f64, &ratios);
        }
    }
    for (u_idx, (name, _)) in underlays.iter().enumerate() {
        println!("# x = {u_idx} → {name}");
    }
    print_figure(
        "Ablation: policy ordering across underlay families (n=50, k=3)",
        "underlay",
        "policy cost / BR cost",
        &series,
    );
}
