//! Ablation (§3.3): how many links should HybridBR donate?
//!
//! Sweeps the donated-link budget k2 at two churn intensities. The paper
//! argues k2 = 2 (one bidirectional cycle) suffices and that donating is
//! only worthwhile when churn is high; this bin quantifies that design
//! point, and also compares the id-cycle backbone against the k-MST
//! alternative it rejected (Young et al. \[43\]) on backbone path quality.

use egoist_bench::{epochs, print_expectation, print_figure, seeds, warmup, Series};
use egoist_core::policies::PolicyKind;
use egoist_core::sim::{run, Metric, SimConfig};
use egoist_graph::cycles::backbone_edges;
use egoist_graph::mst::{k_mst_backbone, tree_weight};
use egoist_graph::NodeId;
use egoist_netsim::{ChurnModel, DelayModel};

fn main() {
    print_expectation(
        "at mild churn, every donated link costs efficiency (k2=0 is best); \
         at heavy churn k2=2 pays for itself; k2=4 adds little beyond k2=2 \
         (diminishing returns). The id-cycle backbone is heavier than k-MST \
         per edge but needs no global recomputation on churn",
    );

    // ---- k2 sweep under two churn regimes. ----
    let k = 6usize;
    for (label, divisor) in [("mild churn", 5.0f64), ("heavy churn", 400.0)] {
        let mut series = Series::new("mean efficiency");
        for k2 in [0usize, 2, 4] {
            let mut effs = Vec::new();
            for &seed in &seeds() {
                let mut model = ChurnModel::planetlab_like(50, seed);
                model.timescale_divisor = divisor;
                let trace = model.generate(epochs() as f64 * 60.0);
                let policy = if k2 == 0 {
                    PolicyKind::BestResponse
                } else {
                    PolicyKind::HybridBestResponse { k2 }
                };
                let mut cfg = SimConfig::baseline(k, policy, Metric::DelayPing, seed);
                cfg.epochs = epochs();
                cfg.warmup_epochs = warmup();
                cfg.churn = Some(trace);
                effs.push(run(cfg).mean_efficiency(warmup()));
            }
            series.push_samples(k2 as f64, &effs);
        }
        print_figure(
            &format!("Ablation: HybridBR donated-link budget, {label} (n=50, k={k})"),
            "k2",
            "mean node efficiency (absolute)",
            &[series],
        );
    }

    // ---- Backbone construction comparison: id-cycles vs k-MST. ----
    let mut cyc_weight = Series::new("id-cycle backbone weight");
    let mut mst_weight = Series::new("k-MST backbone weight");
    for &seed in &seeds() {
        let d = DelayModel::planetlab_50(seed).base().clone();
        let members: Vec<NodeId> = (0..50).map(NodeId).collect();
        let cyc: f64 = backbone_edges(&members, 2)
            .iter()
            .map(|&(a, b)| d.get(a, b))
            .sum();
        let trees = k_mst_backbone(&d, &members, 1);
        let mst: f64 = trees.iter().map(|t| 2.0 * tree_weight(&d, t)).sum();
        cyc_weight.push(seed as f64, cyc);
        mst_weight.push(seed as f64, mst);
    }
    print_figure(
        "Ablation: backbone total edge weight (one bidirectional cycle vs one MST, per seed)",
        "seed",
        "total one-way link weight (ms)",
        &[cyc_weight, mst_weight],
    );
    println!(
        "# trade-off: the MST is lighter, but must be recomputed globally on every\n\
         # membership change; the id-cycle repairs with two local link swaps (§3.3)."
    );
}
