//! `policy_race` — race the data-plane routing policies and the
//! traffic-aware wiring, emitting the deterministic `egoist-traffic/v1`
//! report.
//!
//! Three scenarios, all driven through `egoist_traffic::sweep_offered`
//! (the same code path `traffic_workloads --sweep` uses):
//!
//! * `uniform_knee` — offered-load sweep, spf vs backpressure vs
//!   delay-aware on a uniform workload. Verdict: at the highest offered
//!   load, backpressure delivers strictly more than shortest-path —
//!   differential-backlog forwarding finds the capacity path-committed
//!   routing leaves on the table (arXiv:1612.05537).
//! * `saturated_link` — a hot-spot gravity workload far past the knee,
//!   delay-aware with hysteresis vs the same policy with hysteresis
//!   disabled. Verdict: the hysteretic run's route-change count stays
//!   under both the flap budget and the hysteresis-free count
//!   (arXiv:1403.3488).
//! * `wiring_race` — plain BR wiring vs demand-blended BR
//!   (`PolicyKind::TrafficAware`), same closed-loop workload. Verdict:
//!   wiring toward the observed demand matrix keeps delivered
//!   throughput within tolerance of plain BR (it re-aims links, it must
//!   not break transport).
//!
//! Every scenario is executed TWICE and the serializations must be
//! byte-identical — the determinism gate runs on every invocation.
//! `--check` additionally rejects any report with a failed verdict, so
//! CI holds the acceptance claims, not just the shape.
//!
//! Usage: policy_race [--quick] [--out PATH] [--schema PATH] [--check PATH]
//!   --quick        small profiles (CI scale)
//!   --out PATH     write the report (default: stdout)
//!   --schema PATH  schema to validate against (default: schemas/traffic.schema.json)
//!   --check PATH   validate an existing report file and exit (no run)

use egoist_core::policies::PolicyKind;
use egoist_core::sim::Metric;
use egoist_traffic::demand::WorkloadKind;
use egoist_traffic::engine::{sweep_offered, SweepPoint, TrafficConfig};
use egoist_traffic::json::{array, JsonObject};
use egoist_traffic::policy::DataPolicyKind;

const SCHEMA_TAG: &str = "\"schema\":\"egoist-traffic/v1\"";

/// Pull the JSON string array keyed `key` out of `doc` at or after
/// `from` — only used on our own checked-in schema file.
fn extract_list(doc: &str, key: &str, from: usize) -> Result<Vec<String>, String> {
    let tag = format!("\"{key}\"");
    let at = doc[from..]
        .find(&tag)
        .ok_or_else(|| format!("schema: no {key} list"))?
        + from
        + tag.len();
    let open = doc[at..]
        .find('[')
        .ok_or_else(|| format!("schema: {key} is not a list"))?
        + at
        + 1;
    let end = doc[open..]
        .find(']')
        .ok_or_else(|| format!("schema: unterminated {key} list"))?
        + open;
    Ok(doc[open..end]
        .split('"')
        .skip(1)
        .step_by(2)
        .map(str::to_string)
        .collect())
}

/// Validate the load-bearing subset of `schemas/traffic.schema.json`:
/// the schema tag, the scenarios array, one occurrence of every
/// x-required-keys field per scenario, and all-passing verdicts.
fn check(report: &str, schema: &str) -> Result<usize, String> {
    if !report.contains(SCHEMA_TAG) {
        return Err(format!("report lacks the {SCHEMA_TAG} tag"));
    }
    if !report.contains("\"scenarios\":[") {
        return Err("report lacks the \"scenarios\" array".to_string());
    }
    let scenarios = report.matches("\"scenario\":\"").count();
    if scenarios == 0 {
        return Err("report has an empty scenarios array".to_string());
    }
    let marker = schema
        .find("\"x-required-keys\"")
        .ok_or("schema: no x-required-keys section")?;
    let required = extract_list(schema, "x-required-keys", marker)?;
    for key in &required {
        let n = report.matches(&format!("\"{key}\":")).count();
        if n != scenarios {
            return Err(format!(
                "expected one \"{key}\" per scenario ({scenarios} scenarios, found {n})"
            ));
        }
    }
    // The verdicts are the acceptance claims — a shipped report must
    // not contain a failed one.
    if report.contains("\"pass\":false") {
        return Err("report contains a failed verdict".to_string());
    }
    Ok(required.len())
}

/// One measured point of a sweep.
fn point_json(policy_label: &str, p: &SweepPoint) -> String {
    let s = &p.report.summary;
    JsonObject::new()
        .str("config", &p.report.config_label)
        .str("data_policy", policy_label)
        .f64("offered_mbps", p.offered_mbps)
        .f64("delivered_mbps", s.delivered_mbps)
        .f64("delivery_ratio", s.delivery_ratio)
        .f64("p50_latency_ms", s.p50_latency_ms)
        .f64("p99_latency_ms", s.p99_latency_ms)
        .f64("mean_stretch", s.mean_stretch)
        .u64("route_changes", s.route_changes as u64)
        .finish()
}

fn verdict_json(name: &str, lhs: f64, op: &str, rhs: f64, pass: bool) -> String {
    JsonObject::new()
        .str("name", name)
        .f64("lhs", lhs)
        .str("op", op)
        .f64("rhs", rhs)
        .bool("pass", pass)
        .finish()
}

fn scenario_json(name: &str, cfg: &TrafficConfig, points: Vec<String>, verdict: String) -> String {
    JsonObject::new()
        .str("scenario", name)
        .u64("n", cfg.sim.n as u64)
        .u64("k", cfg.sim.k as u64)
        .u64("seed", cfg.sim.seed)
        .str("workload", cfg.workload.label())
        .raw("points", array(points))
        .raw("verdict", verdict)
        .finish()
}

/// The shared control-plane base: closed loop on the Load metric, so
/// carried traffic feeds back into the announcements the wiring sees.
fn base(policy: PolicyKind, workload: WorkloadKind, seed: u64, quick: bool) -> TrafficConfig {
    let n = if quick { 20 } else { 24 };
    let mut cfg = TrafficConfig::new(n, 3, policy, Metric::Load, seed);
    cfg.sim.epochs = if quick { 8 } else { 12 };
    cfg.sim.warmup_epochs = if quick { 3 } else { 4 };
    cfg.workload = workload;
    cfg.flows_per_epoch = if quick { 32 } else { 48 };
    cfg
}

/// Offered-load sweep: the throughput knee, all three data policies.
fn uniform_knee(quick: bool) -> String {
    let cfg = base(PolicyKind::BestResponse, WorkloadKind::Uniform, 11, quick);
    let loads: &[f64] = if quick {
        &[500.0, 3000.0]
    } else {
        &[250.0, 500.0, 1000.0, 2000.0, 3000.0]
    };
    let policies = DataPolicyKind::all();
    let pts = sweep_offered(&cfg, loads, &policies);
    let peak = *loads.last().unwrap();
    let at_peak = |kind: DataPolicyKind| {
        pts.iter()
            .find(|p| p.data_policy == kind && p.offered_mbps == peak)
            .map(|p| p.report.summary.delivered_mbps)
            .unwrap_or(0.0)
    };
    let spf = at_peak(DataPolicyKind::ShortestPath);
    let bp = at_peak(DataPolicyKind::Backpressure);
    let verdict = verdict_json("backpressure_beats_spf_at_peak", bp, ">", spf, bp > spf);
    let points = pts
        .iter()
        .map(|p| point_json(p.data_policy.label(), p))
        .collect();
    scenario_json("uniform_knee", &cfg, points, verdict)
}

/// Saturated hot-spot workload: hysteresis vs none on route flapping.
fn saturated_link(quick: bool) -> String {
    let workload = WorkloadKind::Gravity { exponent: 1.5 };
    let mut hyst = base(PolicyKind::BestResponse, workload, 27, quick);
    hyst.delay_aware.hysteresis = 0.25;
    let mut nohyst = hyst.clone();
    nohyst.delay_aware.hysteresis = 0.0;
    let loads = [2500.0];
    let policies = [DataPolicyKind::DelayAware];
    let p_hyst = &sweep_offered(&hyst, &loads, &policies)[0];
    let p_nohyst = &sweep_offered(&nohyst, &loads, &policies)[0];
    let changes = p_hyst.report.summary.route_changes as f64;
    let rivals = p_nohyst.report.summary.route_changes as f64;
    // Flap budget: a quarter of one switch per flow per steady epoch.
    let steady = (hyst.sim.epochs - hyst.sim.warmup_epochs) as f64;
    let budget = hyst.flows_per_epoch as f64 * steady / 4.0;
    let bound = budget.min(rivals);
    let verdict = verdict_json(
        "delay_aware_route_changes_bounded",
        changes,
        "<=",
        bound,
        changes <= bound,
    );
    let points = vec![
        point_json("delay-aware", p_hyst),
        point_json("delay-aware-nohyst", p_nohyst),
    ];
    scenario_json("saturated_link", &hyst, points, verdict)
}

/// Plain BR vs demand-blended BR wiring, same closed-loop traffic.
fn wiring_race(quick: bool) -> String {
    let workload = WorkloadKind::Gravity { exponent: 1.2 };
    let br = base(PolicyKind::BestResponse, workload, 33, quick);
    let ta = base(PolicyKind::TrafficAware { bias: 0.8 }, workload, 33, quick);
    let loads = [800.0];
    let policies = [DataPolicyKind::ShortestPath];
    let p_br = &sweep_offered(&br, &loads, &policies)[0];
    let p_ta = &sweep_offered(&ta, &loads, &policies)[0];
    let br_del = p_br.report.summary.delivered_mbps;
    let ta_del = p_ta.report.summary.delivered_mbps;
    let floor = 0.95 * br_del;
    let verdict = verdict_json(
        "traffic_aware_within_tolerance",
        ta_del,
        ">=",
        floor,
        ta_del >= floor,
    );
    let points = vec![point_json("spf", p_br), point_json("spf", p_ta)];
    scenario_json("wiring_race", &ta, points, verdict)
}

/// Build one scenario twice and insist the serializations agree.
fn run_deterministic(name: &str, f: impl Fn() -> String) -> String {
    eprintln!("policy_race: scenario {name} ...");
    let a = f();
    let b = f();
    assert_eq!(
        a, b,
        "scenario {name} produced two different same-seed reports"
    );
    a
}

fn build_report(quick: bool) -> String {
    let scenarios = vec![
        run_deterministic("uniform_knee", || uniform_knee(quick)),
        run_deterministic("saturated_link", || saturated_link(quick)),
        run_deterministic("wiring_race", || wiring_race(quick)),
    ];
    let doc = JsonObject::new()
        .str("schema", "egoist-traffic/v1")
        .bool("quick", quick)
        .raw("scenarios", array(scenarios))
        .finish();
    format!("{doc}\n")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut schema_path = "schemas/traffic.schema.json".to_string();
    let mut check_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = Some(it.next().expect("--out needs a path")),
            "--schema" => schema_path = it.next().expect("--schema needs a path"),
            "--check" => check_path = Some(it.next().expect("--check needs a path")),
            other => panic!("unknown flag {other}"),
        }
    }

    let schema =
        std::fs::read_to_string(&schema_path).unwrap_or_else(|e| panic!("read {schema_path}: {e}"));

    if let Some(path) = check_path {
        let report = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        match check(&report, &schema) {
            Ok(required) => {
                println!(
                    "{path}: valid egoist-traffic/v1 report, {required} required keys per scenario, all verdicts pass"
                );
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let doc = build_report(quick);
    // Never ship a document the checker would reject.
    if let Err(e) = check(&doc, &schema) {
        eprintln!("policy_race: generated report fails its own schema: {e}");
        std::process::exit(1);
    }
    match out {
        Some(path) => {
            std::fs::write(&path, &doc).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("policy_race: wrote {path} ({} bytes)", doc.len());
        }
        None => print!("{doc}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> String {
        std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../schemas/traffic.schema.json"
        ))
        .unwrap()
    }

    #[test]
    fn quick_report_validates_and_mutations_fail() {
        let schema = schema();
        let doc = build_report(true);
        assert!(check(&doc, &schema).is_ok(), "{:?}", check(&doc, &schema));
        // Dropping a required key must fail.
        let broken = doc.replacen("\"workload\":", "\"renamed\":", 1);
        assert!(check(&broken, &schema).is_err());
        // A wrong schema tag must fail.
        let wrong = doc.replace("egoist-traffic/v1", "egoist-traffic/v0");
        assert!(check(&wrong, &schema).is_err());
        // A failed verdict must fail.
        let failed = doc.replacen("\"pass\":true", "\"pass\":false", 1);
        assert!(check(&failed, &schema).is_err());
    }

    #[test]
    fn whole_report_is_deterministic() {
        assert_eq!(build_report(true), build_report(true));
    }
}
