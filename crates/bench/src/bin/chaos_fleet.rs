//! `chaos_fleet` — run the adversarial fleet harness and emit/verify
//! the deterministic robustness report.
//!
//! Four scenarios, straight from `egoist_proto::fleet`:
//!
//! * `storm_partition` — 30% background loss plus a scheduled churn
//!   storm and a healed two-way partition; the fleet must reconverge.
//! * `sybil_eclipse` — a Sybil swarm on one endpoint budget running an
//!   eclipse lure; peer scoring must keep every attacker identity out
//!   of the honest active views.
//! * `chaos_n1000` — 1000 live protocol nodes on the timer wheel with
//!   fan-out-limited gossip and anti-entropy repair, under a churn
//!   storm and a healed partition; ≥95% final reachability with
//!   link-state traffic under 5% of the full-flood extrapolation.
//! * `third_party_lure` — a swarm forging only third-party links (the
//!   first-hand audit never fires); second-hand claim ranking must keep
//!   every forged link out of honest routing graphs and ban the origins.
//!
//! Every scenario is executed TWICE and the two reports must be
//! byte-identical — the determinism gate runs on every invocation, not
//! just in the test suite. The combined document nests one
//! `RobustnessReport` per scenario under `"scenarios"` and is validated
//! against `schemas/robustness.schema.json` (the load-bearing subset,
//! no serde — same approach as `metrics_check`).
//!
//! Usage: chaos_fleet [--quick] [--out PATH] [--schema PATH] [--check PATH]
//!   --quick        small fleet profiles (CI scale)
//!   --out PATH     write the combined report (default: stdout)
//!   --schema PATH  schema to validate against (default: schemas/robustness.schema.json)
//!   --check PATH   validate an existing report file and exit (no run)

use egoist_proto::fleet::{
    chaos_n1000_profile, run_fleet, storm_partition_profile, sybil_eclipse_profile,
    third_party_lure_profile, FleetConfig,
};

const SCHEMA_TAG: &str = "\"schema\": \"egoist-robustness/v1\"";

/// Pull the JSON string array keyed `key` out of `doc` at or after
/// `from` — only used on our own checked-in schema file.
fn extract_list(doc: &str, key: &str, from: usize) -> Result<Vec<String>, String> {
    let tag = format!("\"{key}\"");
    let at = doc[from..]
        .find(&tag)
        .ok_or_else(|| format!("schema: no {key} list"))?
        + from
        + tag.len();
    let open = doc[at..]
        .find('[')
        .ok_or_else(|| format!("schema: {key} is not a list"))?
        + at
        + 1;
    let end = doc[open..]
        .find(']')
        .ok_or_else(|| format!("schema: unterminated {key} list"))?
        + open;
    Ok(doc[open..end]
        .split('"')
        .skip(1)
        .step_by(2)
        .map(str::to_string)
        .collect())
}

/// Parse the f64 immediately following every occurrence of `"<key>": `.
fn values_of(doc: &str, key: &str) -> Vec<f64> {
    let tag = format!("\"{key}\": ");
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = doc[from..].find(&tag) {
        let start = from + at + tag.len();
        let end = doc[start..]
            .find([',', '\n', '}'])
            .map(|e| start + e)
            .unwrap_or(doc.len());
        if let Ok(v) = doc[start..end].trim().parse::<f64>() {
            out.push(v);
        }
        from = start;
    }
    out
}

/// Validate the load-bearing subset of `schemas/robustness.schema.json`.
fn check(report: &str, schema: &str) -> Result<usize, String> {
    if !report.contains(SCHEMA_TAG) {
        return Err(format!("report lacks the {SCHEMA_TAG} tag"));
    }
    if !report.contains("\"scenarios\": [") {
        return Err("report lacks the \"scenarios\" array".to_string());
    }
    let scenarios = report.matches("\"scenario\": \"").count();
    if scenarios == 0 {
        return Err("report has an empty scenarios array".to_string());
    }

    // Every x-required-keys field appears exactly once per scenario.
    let marker = schema
        .find("\"x-required-keys\"")
        .ok_or("schema: no x-required-keys section")?;
    let required = extract_list(schema, "x-required-keys", marker)?;
    for key in &required {
        let n = report.matches(&format!("\"{key}\":")).count();
        if n != scenarios {
            return Err(format!(
                "expected one \"{key}\" per scenario ({scenarios} scenarios, found {n})"
            ));
        }
    }

    // Reachability fractions are actual fractions.
    for key in ["final_reachability", "min_reachability"] {
        for v in values_of(report, key) {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{key} {v} outside [0, 1]"));
            }
        }
    }
    Ok(required.len())
}

/// Run one scenario twice and insist the reports are byte-identical —
/// the whole point of the harness is reproducible robustness evidence.
fn run_deterministic(cfg: &FleetConfig) -> String {
    eprintln!(
        "chaos_fleet: scenario {} (n={}, sybils={}, seed={}) ...",
        cfg.scenario, cfg.n, cfg.sybils, cfg.seed
    );
    let a = run_fleet(cfg).to_json();
    let b = run_fleet(cfg).to_json();
    assert_eq!(
        a, b,
        "scenario {} produced two different same-seed reports",
        cfg.scenario
    );
    a
}

/// Nest per-scenario reports under a top-level document.
fn combine(reports: &[String]) -> String {
    let mut s = String::with_capacity(reports.iter().map(String::len).sum::<usize>() + 128);
    s.push_str("{\n");
    s.push_str("  \"schema\": \"egoist-robustness/v1\",\n");
    s.push_str("  \"scenarios\": [\n");
    let indented: Vec<String> = reports
        .iter()
        .map(|r| {
            r.trim_end()
                .lines()
                .map(|l| format!("    {l}"))
                .collect::<Vec<_>>()
                .join("\n")
        })
        .collect();
    s.push_str(&indented.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut schema_path = "schemas/robustness.schema.json".to_string();
    let mut check_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = Some(it.next().expect("--out needs a path")),
            "--schema" => schema_path = it.next().expect("--schema needs a path"),
            "--check" => check_path = Some(it.next().expect("--check needs a path")),
            other => panic!("unknown flag {other}"),
        }
    }

    let schema =
        std::fs::read_to_string(&schema_path).unwrap_or_else(|e| panic!("read {schema_path}: {e}"));

    if let Some(path) = check_path {
        let report = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        match check(&report, &schema) {
            Ok(required) => {
                println!(
                    "{path}: valid egoist-robustness/v1 report, {required} required keys per scenario"
                );
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let reports = vec![
        run_deterministic(&storm_partition_profile(quick)),
        run_deterministic(&sybil_eclipse_profile(quick)),
        run_deterministic(&third_party_lure_profile(quick)),
        run_deterministic(&chaos_n1000_profile(quick)),
    ];
    let doc = combine(&reports);
    // Never ship a document the checker would reject.
    if let Err(e) = check(&doc, &schema) {
        eprintln!("chaos_fleet: generated report fails its own schema: {e}");
        std::process::exit(1);
    }
    match out {
        Some(path) => {
            std::fs::write(&path, &doc).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("chaos_fleet: wrote {path} ({} bytes)", doc.len());
        }
        None => print!("{doc}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> String {
        std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../schemas/robustness.schema.json"
        ))
        .unwrap()
    }

    fn demo_doc() -> String {
        let mut cfg = FleetConfig::new("demo", 6, 2, 7);
        cfg.horizon = std::time::Duration::from_secs(120);
        combine(&[run_fleet(&cfg).to_json()])
    }

    #[test]
    fn generated_report_validates_and_mutations_fail() {
        let schema = schema();
        let doc = demo_doc();
        assert!(check(&doc, &schema).is_ok(), "{:?}", check(&doc, &schema));
        // Dropping a required key must fail.
        let broken = doc.replace("\"min_reachability\":", "\"renamed\":");
        assert!(check(&broken, &schema).is_err());
        // A wrong schema tag must fail.
        let wrong = doc.replace("egoist-robustness/v1", "egoist-robustness/v0");
        assert!(check(&wrong, &schema).is_err());
        // An out-of-range reachability must fail.
        let tag = "\"min_reachability\": ";
        let at = doc.find(tag).unwrap() + tag.len();
        let end = at + doc[at..].find(',').unwrap();
        let inflated = format!("{}2.0{}", &doc[..at], &doc[end..]);
        assert!(check(&inflated, &schema).is_err());
    }
}
