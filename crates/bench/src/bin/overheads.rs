//! §4.3 overhead validation: run a real protocol overlay (SimNet
//! transport, paused virtual clock) with the paper's timers, measure the
//! injected traffic per message class, and compare with the analytic
//! formulas.

use egoist_core::stats;
use egoist_graph::{DistanceMatrix, NodeId};
use egoist_netsim::fault::FaultConfig;
use egoist_netsim::DelayModel;
use egoist_proto::bootstrap::{BootstrapServer, Registry};
use egoist_proto::message::MessageClass;
use egoist_proto::overhead::analytic;
use egoist_proto::{EgoistNode, NodeConfig, SimNet};
use std::time::Duration;

const BOOT: NodeId = NodeId(1000);

fn main() {
    tokio::runtime::block_on(run())
}

async fn run() {
    // Virtual time: the whole 20-minute run takes milliseconds.
    tokio::time::pause();

    let n = 20usize;
    let k = 5usize;
    let t_epoch = 60.0;
    let t_announce = 20.0;
    let horizon_secs = 20.0 * 60.0;

    println!("# §4.3 overhead validation: n={n}, k={k}, T={t_epoch}s, T_announce={t_announce}s");
    println!("# paper expectation: measurement ≈ (n-k-1)*320/T bps; LSA ≈ (192+32k)/T_a bps;");
    println!("#                    both tiny (tens to hundreds of bps per node)");

    let delays = DelayModel::planetlab_50(7)
        .base()
        .submatrix(&(0..n as u32).map(NodeId).collect::<Vec<_>>());
    let mut big = DistanceMatrix::off_diagonal(1001, 1.0);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                big.set_at(i, j, delays.at(i, j));
            }
        }
    }
    let net = SimNet::new(big, FaultConfig::default(), 11);
    tokio::spawn(BootstrapServer::new(net.endpoint(BOOT), Registry::default()).run());

    let mut handles = Vec::new();
    for i in 0..n {
        let mut cfg = NodeConfig::new(NodeId::from_index(i), n, k);
        cfg.epoch = Duration::from_secs_f64(t_epoch);
        cfg.announce_interval = Duration::from_secs_f64(t_announce);
        cfg.ping_interval = Duration::from_secs_f64(t_epoch);
        cfg.liveness_timeout = Duration::from_secs_f64(3.0 * t_epoch);
        cfg.bootstrap = Some(BOOT);
        handles.push(EgoistNode::new(cfg, net.endpoint(NodeId::from_index(i))).spawn());
        tokio::time::sleep(Duration::from_millis(500)).await;
    }
    tokio::time::sleep(Duration::from_secs_f64(horizon_secs)).await;

    let mut ping_bps = Vec::new();
    let mut lsa_bps = Vec::new();
    for h in &handles {
        let v = h.snapshot();
        ping_bps.push(v.overhead.bps(MessageClass::Measurement, horizon_secs));
        lsa_bps.push(v.overhead.bps(MessageClass::LinkState, horizon_secs));
    }
    for h in handles {
        h.stop().await;
    }

    // Our ping frames are 52 bytes (paper assumed 40-byte ICMP echo).
    let our_ping_bits = 52.0 * 8.0;
    // Our LSA frame: 12-byte envelope + 14-byte LSA header + 8 bytes/link.
    let our_lsa_header_bits = (12.0 + 14.0) * 8.0;
    let our_lsa_entry_bits = 8.0 * 8.0;

    println!();
    println!(
        "{:<28} {:>12} {:>12} {:>14}",
        "quantity", "measured", "analytic", "paper-formula"
    );
    println!(
        "{:<28} {:>12.1} {:>12.1} {:>14.1}",
        "ping bps/node",
        stats::mean(&ping_bps),
        // Pings go to n-1 known peers (pongs count too, hence ×~2).
        2.0 * (n as f64 - 1.0) * our_ping_bits / t_epoch,
        analytic::ping_bps(n, k, t_epoch, analytic::PAPER_PING_BITS),
    );
    println!(
        "{:<28} {:>12.1} {:>12.1} {:>14.1}",
        "link-state bps/node",
        stats::mean(&lsa_bps),
        // Flooding: every node forwards each fresh LSA once over its ~2k
        // overlay links (out-neighbors + in-neighbors), so one announce
        // costs ≈ n·2k transmissions network-wide; with n origins per
        // T_announce that is ≈ frame · n · 2k / T_a per node — the O(nk)
        // (not O(n²)) scaling §4.3 claims for the link-state protocol.
        (our_lsa_header_bits + our_lsa_entry_bits * k as f64) * (n as f64 * 2.0 * k as f64)
            / t_announce,
        analytic::lsa_bps(
            k,
            t_announce,
            analytic::PAPER_LSA_HEADER_BITS,
            analytic::PAPER_LSA_ENTRY_BITS
        ),
    );
    println!(
        "{:<28} {:>12} {:>12} {:>14.1}",
        "pyxida bps/node (formula)",
        "-",
        "-",
        analytic::pyxida_bps(n, t_epoch),
    );
    println!();
    println!(
        "# note: the paper-formula column counts one injected announcement per origin \
         (what §4.3 reports); the measured and analytic columns include flood \
         forwarding, which multiplies per-node load by ≈ n·2k/n-origins — still the \
         O(nk), not O(n²), scaling §3.1 claims over a full mesh."
    );
}
