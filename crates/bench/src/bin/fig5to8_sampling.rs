//! Figures 5–8: newcomer cost under sampling (§5).
//!
//! An n-node overlay (n = 295 sites, k = 3) is built with one of four
//! strategies — BR (incrementally, Fig. 5), k-Random (Fig. 6), k-Regular
//! (Fig. 7), k-Closest (Fig. 8). A newcomer then joins using each
//! strategy restricted to a random sample of size m, or BR over a
//! topology-biased sample (radius r = 2). Reported: newcomer's realized
//! cost normalized by BR-without-sampling.

use egoist_bench::{fast, print_expectation, print_figure, seeds, Series};
use egoist_core::cost::{disconnection_penalty, Preferences};
use egoist_core::game::Game;
use egoist_core::policies::best_response::BrInstance;
use egoist_core::policies::{PolicyKind, WiringContext};
use egoist_core::sampling::{random_sample, topology_biased_sample};
use egoist_core::stats;
use egoist_graph::apsp::apsp;
use egoist_graph::{DiGraph, DistanceMatrix, NodeId};
use egoist_netsim::delay::{DelayConfig, DelayModel};
use egoist_netsim::rng::derive;
use egoist_netsim::PlanetLabSpec;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Evaluate the newcomer's realized cost for a chosen wiring `w` against
/// *all* existing nodes.
fn realized_cost(
    newcomer: NodeId,
    w: &[NodeId],
    d: &DistanceMatrix,
    dist: &DistanceMatrix,
    existing: &[NodeId],
    penalty: f64,
) -> f64 {
    let mut total = 0.0;
    for &j in existing {
        let mut best = penalty;
        for &hop in w {
            let tail = if hop == j { 0.0 } else { dist.get(hop, j) };
            if tail.is_finite() {
                best = best.min(d.get(newcomer, hop) + tail);
            }
        }
        total += best;
    }
    total / existing.len() as f64
}

/// BR restricted to `sample` as both candidate and (sampled) destination
/// set — the §5 "scaled-down input".
fn br_on_sample(
    newcomer: NodeId,
    sample: &[NodeId],
    d: &DistanceMatrix,
    dist: &DistanceMatrix,
    alive: &[bool],
    k: usize,
    penalty: f64,
) -> Vec<NodeId> {
    let n = d.len();
    let prefs = Preferences::uniform(n);
    let direct: Vec<f64> = d.row(newcomer.index()).to_vec();
    let ctx = WiringContext {
        node: newcomer,
        k,
        candidates: sample,
        direct: &direct,
        residual: egoist_core::ResidualView::dense(dist),
        prefs: &prefs,
        alive,
        penalty,
        current: &[],
    };
    let inst = BrInstance::build(&ctx);
    let init = inst.greedy(k, &[]);
    let (subset, _) = inst.local_search(k, init, &[], 64);
    inst.to_nodes(&subset)
}

/// k-Regular over the sorted sample ring.
fn regular_on_sample(sample: &[NodeId], k: usize) -> Vec<NodeId> {
    let mut s: Vec<NodeId> = sample.to_vec();
    s.sort_unstable();
    let m = s.len();
    let mut out = Vec::new();
    for j in 1..=k {
        let raw = 1.0 + (j as f64 - 1.0) * (m as f64 - 1.0) / (k as f64 + 1.0);
        let idx = ((raw.round() as usize).max(1) - 1) % m;
        if !out.contains(&s[idx]) {
            out.push(s[idx]);
        }
    }
    out
}

fn main() {
    print_expectation(
        "BR-with-sampling beats all sampled heuristics at every sample size; \
         topology-biased BRtp improves on random-sampled BR everywhere; even \
         m/n ≈ 2% keeps the newcomer's ratio near 1 on a BR graph; heuristics \
         fare relatively best on the BR graph (already optimized) and worst on \
         k-Regular graphs",
    );

    let n_existing = if fast() { 60 } else { 295 };
    let k = 3usize;
    let r = 2usize;
    let seed = seeds()[0];
    let reps = if fast() { 2 } else { 6 };
    let sample_sizes: Vec<usize> = (3..=10).map(|x| 2 * x).collect(); // 6..=20

    // One extra site for the newcomer.
    let mut spec = PlanetLabSpec::paper_295();
    if fast() {
        spec = PlanetLabSpec {
            counts: vec![(egoist_netsim::Region::NorthAmerica, n_existing)],
        };
    }
    spec.counts.push((egoist_netsim::Region::NorthAmerica, 1));
    let model = DelayModel::from_spec(&spec, &DelayConfig::default(), seed);
    let d = model.base().clone();
    let n = d.len();
    let newcomer = NodeId::from_index(n - 1);
    let existing: Vec<NodeId> = (0..n - 1).map(NodeId::from_index).collect();
    let penalty = disconnection_penalty(&d);

    let graphs = [
        ("BR graph (Fig. 5)", PolicyKind::BestResponse, true),
        ("k-Random graph (Fig. 6)", PolicyKind::Random, false),
        ("k-Regular graph (Fig. 7)", PolicyKind::Regular, false),
        ("k-Closest graph (Fig. 8)", PolicyKind::Closest, false),
    ];

    for (title, policy, incremental) in graphs {
        // ---- Build the underlying overlay over the existing nodes. ----
        let mut game = Game::new(d.clone(), k, policy, seed);
        game.alive[n - 1] = false;
        if incremental {
            game.incremental_build(n - 1);
        } else {
            game.sweep();
        }
        let g: DiGraph = game.graph();
        let dist = apsp(&g);
        let alive = game.alive.clone();

        // Reference: BR with full knowledge.
        let w_full = br_on_sample(newcomer, &existing, &d, &dist, &alive, k, penalty);
        let c_full = realized_cost(newcomer, &w_full, &d, &dist, &existing, penalty);

        let mut series = vec![
            Series::new("k-Random"),
            Series::new("k-Regular"),
            Series::new("k-Closest"),
            Series::new("BR"),
            Series::new("BRtp"),
        ];
        for &m in &sample_sizes {
            let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); 5];
            for rep in 0..reps {
                let mut rng: StdRng = derive(seed ^ (rep as u64) << 17, title);
                let sample = random_sample(&existing, m, &mut rng);

                // k-Random on the sample.
                let mut pool = sample.clone();
                pool.shuffle(&mut rng);
                pool.truncate(k);
                ratios[0]
                    .push(realized_cost(newcomer, &pool, &d, &dist, &existing, penalty) / c_full);

                // k-Regular on the sample ring.
                let wreg = regular_on_sample(&sample, k);
                ratios[1]
                    .push(realized_cost(newcomer, &wreg, &d, &dist, &existing, penalty) / c_full);

                // k-Closest within the sample.
                let mut close = sample.clone();
                close.sort_by(|a, b| {
                    d.get(newcomer, *a)
                        .total_cmp(&d.get(newcomer, *b))
                        .then(a.cmp(b))
                });
                close.truncate(k);
                ratios[2]
                    .push(realized_cost(newcomer, &close, &d, &dist, &existing, penalty) / c_full);

                // BR on the random sample.
                let wbr = br_on_sample(newcomer, &sample, &d, &dist, &alive, k, penalty);
                ratios[3]
                    .push(realized_cost(newcomer, &wbr, &d, &dist, &existing, penalty) / c_full);

                // BR on the topology-biased sample (m' = 3m).
                let direct: Vec<f64> = d.row(newcomer.index()).to_vec();
                let biased = topology_biased_sample(&existing, m, 3 * m, r, &g, &direct, &mut rng);
                let wtp = br_on_sample(newcomer, &biased, &d, &dist, &alive, k, penalty);
                ratios[4]
                    .push(realized_cost(newcomer, &wtp, &d, &dist, &existing, penalty) / c_full);
            }
            for (idx, rs) in ratios.iter().enumerate() {
                series[idx].push_samples(m as f64, rs);
            }
        }
        let _ = stats::mean(&[0.0]);
        print_figure(
            &format!(
                "{title}: newcomer cost under sampling, n={}, k={k}, r={r}",
                n - 1
            ),
            "m",
            "newcomer cost / BR-no-sampling cost",
            &series,
        );
    }
}
