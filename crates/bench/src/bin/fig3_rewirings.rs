//! Figure 3 (all three panels): re-wiring behavior of BR and BR(ε).
//!
//! * left   — total re-wirings per epoch over time, for k ∈ {2,3,4,5,8};
//! * center — BR cost / full-mesh cost and mean re-wirings per epoch vs k;
//! * right  — the same for BR(ε = 0.1).

use egoist_bench::{epochs, print_expectation, print_figure, seeds, warmup, Series};
use egoist_core::policies::PolicyKind;
use egoist_core::sim::{full_mesh_reference, run, Metric, SimConfig};
use egoist_core::stats;

fn main() {
    print_expectation(
        "left: re-wiring rate decays fast to a k-dependent floor (minimal for \
         small k). center: cost ratio near 1 for all k while re-wirings grow \
         with k. right: BR(0.1) cuts re-wirings by an order of magnitude with \
         only marginal cost impact",
    );

    // ---- Left panel: time series. ----
    let ks = [2usize, 3, 4, 5, 8];
    let seed = seeds()[0];
    let mut ts_series: Vec<Series> = Vec::new();
    for &k in &ks {
        let mut cfg = SimConfig::baseline(k, PolicyKind::BestResponse, Metric::DelayPing, seed);
        cfg.epochs = epochs();
        cfg.warmup_epochs = 0;
        let res = run(cfg);
        let mut s = Series::new(format!("k={k}"));
        for (epoch, count) in res.rewirings_series().iter().enumerate() {
            s.push(epoch as f64, *count as f64);
        }
        ts_series.push(s);
    }
    print_figure(
        "Figure 3 (left): total re-wirings per epoch over time (BR)",
        "epoch",
        "re-wirings per epoch (whole overlay)",
        &ts_series,
    );

    // ---- Center and right panels. ----
    for (title, policy) in [
        (
            "Figure 3 (center): exact-gain BR — cost vs re-wirings",
            PolicyKind::BestResponse,
        ),
        (
            "Figure 3 (right): BR(0.1) — cost vs re-wirings",
            PolicyKind::EpsilonBestResponse { epsilon: 0.10 },
        ),
    ] {
        let ks = [2usize, 3, 4, 5, 6, 7, 8];
        let mut cost_series = Series::new("cost / full-mesh cost");
        let mut rw_series = Series::new("re-wirings per epoch");
        for &k in &ks {
            let mut cost_ratios = Vec::new();
            let mut rewires = Vec::new();
            for &seed in &seeds() {
                let mut cfg = SimConfig::baseline(k, policy, Metric::DelayPing, seed);
                cfg.epochs = epochs();
                cfg.warmup_epochs = warmup();
                let res = run(cfg.clone());
                let mesh = full_mesh_reference(&cfg);
                cost_ratios.push(res.mean_individual_cost(warmup()) / mesh);
                rewires.push(res.mean_rewirings(warmup()));
            }
            cost_series.push_samples(k as f64, &cost_ratios);
            rw_series.push_samples(k as f64, &rewires);
        }
        let _ = stats::mean(&[0.0]); // keep stats linked for doc parity
        print_figure(
            title,
            "k",
            "cost ratio | re-wirings/epoch",
            &[cost_series, rw_series],
        );
    }
}
