//! Figure 4: robustness to free riders that announce 2× inflated
//! out-link costs.
//!
//! * left  — one free rider, k ∈ 2..8: cost ratio (with cheating /
//!   honest) for the free rider itself and for the honest majority;
//! * right — k = 2, 0..16 free riders: the same two ratios.

use egoist_bench::{epochs, print_expectation, print_figure, seeds, warmup, Series};
use egoist_core::cheat::CheatConfig;
use egoist_core::policies::PolicyKind;
use egoist_core::sim::{run, Metric, SimConfig};
use egoist_core::stats;

/// Mean cost ratio (cheating run / honest run) for a set of nodes.
fn class_ratio(cheat: &[f64], honest: &[f64], members: impl Iterator<Item = usize>) -> f64 {
    let mut ratios = Vec::new();
    for i in members {
        if cheat[i].is_finite() && honest[i].is_finite() && honest[i] > 0.0 {
            ratios.push(cheat[i] / honest[i]);
        }
    }
    stats::mean(&ratios)
}

fn main() {
    print_expectation(
        "both panels hug 1.0 (within ±10-20%): inflating announced costs \
         barely helps or hurts anyone, even with a third of the population \
         cheating at k=2",
    );

    // ---- Left: one free rider, k sweep. ----
    let ks = [2usize, 3, 4, 5, 6, 7, 8];
    let mut fr_series = Series::new("Free rider");
    let mut honest_series = Series::new("Non free riders");
    for &k in &ks {
        let mut fr = Vec::new();
        let mut hn = Vec::new();
        for &seed in &seeds() {
            let mut cfg = SimConfig::baseline(k, PolicyKind::BestResponse, Metric::DelayPing, seed);
            cfg.epochs = epochs();
            cfg.warmup_epochs = warmup();
            let honest = run(cfg.clone()).per_node_mean_cost(warmup());
            cfg.cheat = CheatConfig::single(egoist_graph::NodeId(0));
            let cheat = run(cfg).per_node_mean_cost(warmup());
            fr.push(class_ratio(&cheat, &honest, std::iter::once(0)));
            hn.push(class_ratio(&cheat, &honest, 1..50));
        }
        fr_series.push_samples(k as f64, &fr);
        honest_series.push_samples(k as f64, &hn);
    }
    print_figure(
        "Figure 4 (left): one free rider (2x inflation), n=50",
        "k",
        "individual cost / cost without free rider",
        &[fr_series, honest_series],
    );

    // ---- Right: k=2, population sweep. ----
    let counts = [0usize, 2, 4, 6, 8, 10, 12, 14, 16];
    let mut fr_series = Series::new("Free riders");
    let mut honest_series = Series::new("Non free riders");
    for &count in &counts {
        let mut fr = Vec::new();
        let mut hn = Vec::new();
        for &seed in &seeds() {
            let mut cfg = SimConfig::baseline(2, PolicyKind::BestResponse, Metric::DelayPing, seed);
            cfg.epochs = epochs();
            cfg.warmup_epochs = warmup();
            let honest = run(cfg.clone()).per_node_mean_cost(warmup());
            cfg.cheat = CheatConfig::first_n(count, 2.0);
            let cheat = run(cfg).per_node_mean_cost(warmup());
            if count > 0 {
                fr.push(class_ratio(&cheat, &honest, 0..count));
            } else {
                fr.push(1.0);
            }
            hn.push(class_ratio(&cheat, &honest, count..50));
        }
        fr_series.push_samples(count as f64, &fr);
        honest_series.push_samples(count as f64, &hn);
    }
    print_figure(
        "Figure 4 (right): many free riders, n=50, k=2",
        "free riders",
        "individual cost / cost without free riders",
        &[fr_series, honest_series],
    );
}
