//! `perf_baseline` — the tracked performance trajectory of the epoch
//! route-state engine.
//!
//! Times best-response epoch stepping (delay metric, n ∈ {50, 200, 800})
//! and the closed-loop traffic engine under both route-state engines:
//!
//! * `baseline_wall_ms` — [`EngineMode::Recompute`]: announced matrix +
//!   from-scratch residual APSP every turn, pre-optimization BR
//!   greedy/local-search loops. A *conservative* stand-in for the
//!   pre-change implementation: it shares the (cheaper) epoch-granular
//!   underlay sampling and the current data-plane code, so it
//!   understates what the previous commit actually cost — the true
//!   pre-change binary measured ~28% slower than the oracle on the
//!   n=200 scenario on the same host (see EXPERIMENTS.md);
//! * `wall_ms` — [`EngineMode::Epoch`], shared snapshots + zero-copy
//!   residual views.
//!
//! Both engines are run on identical seeds in the same process and their
//! simulation outputs are fingerprinted; `outputs_identical` asserts the
//! speedup is a pure optimization. Results land in `BENCH_perf.json`
//! (schema `egoist-perf-baseline/v2`, insertion-ordered keys, so the
//! document layout is byte-deterministic; timings naturally vary).
//!
//! Schema v2 keeps every v1 field (the trajectory stays comparable) and
//! adds, per epoch-stepping scenario: `prev_wall_ms` (the prior PR's
//! committed `wall_ms`), per-phase wall time (`residual_ms` /
//! `solver_ms` / `absorb_ms`), and the engine's copy-vs-sweep ratios
//! from `RouteStats`.
//!
//! Per-phase timings are no longer private plumbing: the engine reports
//! into the `egoist-obs` registry (spans `core.epoch.turn.{residual,
//! solver,absorb}`) and this bench reads them back, so BENCH_perf.json
//! is a *view over the registry*. The registry is reset before each
//! timed run, making span totals absolute per scenario.
//!
//! Usage:
//!   perf_baseline [--quick] [--out PATH]      # measure and write
//!     [--metrics-out PATH]  # also dump the obs registry (egoist-obs/v1)
//!                           # as observed by the final scenario's run
//!     [--trace]             # flight recorder on; events JSON to stderr
//!   perf_baseline --overhead-gate             # instrumented-vs-disabled
//!     wall-time gate on the n=200 scenario (<3% or exit 1)
//!   perf_baseline --check PATH                # validate schema
//!   perf_baseline --check PATH --against GOLD # + fingerprint gate:
//!     every scenario of PATH whose (name, n, k, epochs) also appears in
//!     GOLD must carry an identical fingerprint — the CI regression gate
//!     against the committed BENCH_perf.json.

use egoist_core::policies::PolicyKind;
use egoist_core::sim::{EngineMode, Metric, SimConfig, SimResult, Simulator};
use egoist_core::snapshot::RouteStats;
use egoist_traffic::engine::{TrafficConfig, TrafficEngine};
use egoist_traffic::json::{array, num, JsonObject};
use std::time::Instant;

const SCHEMA: &str = "egoist-perf-baseline/v2";

/// Registry spans the per-phase breakdown is sourced from.
const RESIDUAL_SPAN: &str = "core.epoch.turn.residual";
const SOLVER_SPAN: &str = "core.epoch.turn.solver";
const ABSORB_SPAN: &str = "core.epoch.turn.absorb";

/// Total milliseconds accumulated in a registry span.
fn span_ms(name: &str) -> f64 {
    let (_count, ns) = egoist_obs::registry().span_value(name);
    ns as f64 / 1e6
}

/// `wall_ms` per scenario as committed by the previous PR (schema v1) —
/// the anchor the new numbers are compared against. Host-specific by
/// nature (like every timing in BENCH_perf.json): a PR that lands a new
/// baseline bumps these to the values it replaces, keeping the anchors
/// reviewable in-diff rather than mutated by every regeneration.
fn prev_wall_ms(name: &str) -> f64 {
    match name {
        "br_delay_n50" => 34.176238,
        "br_delay_n200" => 954.45421,
        "br_delay_n800" => 41433.060611,
        "br_traffic_n200" => 979.201908,
        _ => 0.0,
    }
}

/// FNV-1a over the bit patterns of a sample series — a cheap output
/// fingerprint that any divergence between engines will flip.
fn fingerprint_sim(r: &SimResult) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for s in &r.samples {
        eat(s.epoch as u64);
        eat(s.rewirings as u64);
        eat(s.alive as u64);
        for series in [&s.individual_cost, &s.efficiency, &s.bandwidth_utility] {
            for x in series.iter() {
                eat(x.to_bits());
            }
        }
    }
    h
}

fn fingerprint_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Per-phase breakdown of the epoch engine's wall time plus its
/// incremental-work counters (epoch-stepping scenarios only).
struct PhaseBreakdown {
    residual_ms: f64,
    solver_ms: f64,
    absorb_ms: f64,
    stats: RouteStats,
}

struct ScenarioResult {
    name: String,
    n: usize,
    k: usize,
    epochs: usize,
    baseline_wall_ms: f64,
    wall_ms: f64,
    rewirings: usize,
    outputs_identical: bool,
    fingerprint: u64,
    phases: Option<PhaseBreakdown>,
}

fn ratio(a: usize, b: usize) -> f64 {
    if a + b == 0 {
        0.0
    } else {
        a as f64 / (a + b) as f64
    }
}

impl ScenarioResult {
    fn to_json(&self) -> String {
        let mut obj = JsonObject::new()
            .u64("n", self.n as u64)
            .u64("k", self.k as u64)
            .u64("epochs", self.epochs as u64)
            .f64("baseline_wall_ms", self.baseline_wall_ms)
            .f64("wall_ms", self.wall_ms)
            .f64("speedup", self.baseline_wall_ms / self.wall_ms)
            .u64("rewirings", self.rewirings as u64)
            .bool("outputs_identical", self.outputs_identical)
            .str("fingerprint", &format!("{:016x}", self.fingerprint))
            .f64("prev_wall_ms", prev_wall_ms(&self.name));
        if let Some(ph) = &self.phases {
            obj = obj
                .f64("residual_ms", ph.residual_ms)
                .f64("solver_ms", ph.solver_ms)
                .f64("absorb_ms", ph.absorb_ms)
                .f64(
                    "residual_borrow_ratio",
                    ratio(ph.stats.residual_borrowed, ph.stats.residual_swept),
                )
                .f64(
                    "rewire_repair_ratio",
                    ratio(ph.stats.rewire_repaired, ph.stats.rewire_swept),
                );
        }
        obj.finish()
    }
}

fn sim_cfg(n: usize, k: usize, epochs: usize, engine: EngineMode) -> SimConfig {
    let mut c = SimConfig::baseline(k, PolicyKind::BestResponse, Metric::DelayPing, 42);
    c.n = n;
    c.epochs = epochs;
    c.warmup_epochs = epochs / 3;
    c.engine = engine;
    c
}

/// Time one full BR epoch-stepping run under `engine`, collecting the
/// per-phase breakdown from the obs registry (the residual/absorb spans
/// only fire under `Epoch`, so they read zero for `Recompute`). The
/// outer wall clock stays an `Instant`: it must keep ticking when the
/// `--overhead-gate` runs with instrumentation disabled.
fn time_sim(
    n: usize,
    k: usize,
    epochs: usize,
    engine: EngineMode,
) -> (f64, SimResult, PhaseBreakdown) {
    let cfg = sim_cfg(n, k, epochs, engine);
    egoist_obs::registry().reset();
    let t = Instant::now();
    let mut sim = Simulator::new(cfg.clone());
    let mut samples = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let rewirings = sim.run_epoch(epoch);
        samples.push(sim.measure(epoch, rewirings));
    }
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let phases = PhaseBreakdown {
        residual_ms: span_ms(RESIDUAL_SPAN),
        solver_ms: span_ms(SOLVER_SPAN),
        absorb_ms: span_ms(ABSORB_SPAN),
        stats: sim.route_stats(),
    };
    let result = SimResult {
        config_label: sim.config_label(),
        samples,
    };
    (wall_ms, result, phases)
}

fn epoch_stepping_scenario(n: usize, k: usize, epochs: usize) -> ScenarioResult {
    eprintln!("# br_delay_n{n}: oracle (Recompute) ...");
    let (baseline_ms, oracle, _) = time_sim(n, k, epochs, EngineMode::Recompute);
    eprintln!("#   {baseline_ms:.0} ms; epoch engine ...");
    let (wall_ms, fast, phases) = time_sim(n, k, epochs, EngineMode::Epoch);
    eprintln!("#   {wall_ms:.0} ms ({:.1}x)", baseline_ms / wall_ms);
    let rewirings: usize = fast.samples.iter().map(|s| s.rewirings).sum();
    let (fa, fo) = (fingerprint_sim(&fast), fingerprint_sim(&oracle));
    ScenarioResult {
        name: format!("br_delay_n{n}"),
        n,
        k,
        epochs,
        baseline_wall_ms: baseline_ms,
        wall_ms,
        rewirings,
        outputs_identical: fa == fo,
        fingerprint: fa,
        phases: Some(phases),
    }
}

fn traffic_scenario(n: usize, k: usize, epochs: usize) -> ScenarioResult {
    let base = |engine: EngineMode| {
        let mut cfg = TrafficConfig::new(n, k, PolicyKind::BestResponse, Metric::DelayPing, 42);
        cfg.sim.epochs = epochs;
        cfg.sim.warmup_epochs = epochs / 3;
        cfg.sim.engine = engine;
        cfg.flows_per_epoch = 2 * n;
        cfg
    };
    eprintln!("# br_traffic_n{n}: oracle (Recompute) ...");
    egoist_obs::registry().reset();
    let t = Instant::now();
    let oracle = TrafficEngine::run(&base(EngineMode::Recompute)).to_json();
    let baseline_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!("#   {baseline_ms:.0} ms; epoch engine ...");
    egoist_obs::registry().reset();
    let t = Instant::now();
    let fast_report = TrafficEngine::run(&base(EngineMode::Epoch));
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!("#   {wall_ms:.0} ms ({:.1}x)", baseline_ms / wall_ms);
    let fast = fast_report.to_json();
    ScenarioResult {
        name: format!("br_traffic_n{n}"),
        n,
        k,
        epochs,
        baseline_wall_ms: baseline_ms,
        wall_ms,
        rewirings: 0,
        outputs_identical: fast == oracle,
        fingerprint: fingerprint_str(&fast),
        phases: None,
    }
}

fn measure(quick: bool) -> String {
    let scenarios: Vec<ScenarioResult> = if quick {
        // The n=50 scenario runs the *full-mode* parameters so its
        // fingerprint is comparable against the committed
        // BENCH_perf.json (the CI regression gate); it is cheap enough.
        vec![
            epoch_stepping_scenario(50, 5, 8),
            epoch_stepping_scenario(200, 8, 2),
            traffic_scenario(50, 5, 4),
        ]
    } else {
        vec![
            epoch_stepping_scenario(50, 5, 8),
            epoch_stepping_scenario(200, 8, 4),
            epoch_stepping_scenario(800, 10, 2),
            traffic_scenario(200, 8, 4),
        ]
    };
    let mut body = JsonObject::new()
        .str("schema", SCHEMA)
        .str("mode", if quick { "quick" } else { "full" });
    let mut obj = JsonObject::new();
    for s in &scenarios {
        obj = obj.raw(&s.name, s.to_json());
    }
    body = body.raw("scenarios", obj.finish());
    let speedups: Vec<String> = scenarios
        .iter()
        .map(|s| num(s.baseline_wall_ms / s.wall_ms))
        .collect();
    body = body.raw("speedups", array(speedups));
    body.finish()
}

/// Fields every scenario entry must carry; `--check` fails when any
/// disappears (schema drift) or the schema tag changes. The per-phase
/// fields are epoch-stepping-only and therefore not counted here.
const REQUIRED_FIELDS: &[&str] = &[
    "\"n\":",
    "\"k\":",
    "\"epochs\":",
    "\"baseline_wall_ms\":",
    "\"wall_ms\":",
    "\"speedup\":",
    "\"rewirings\":",
    "\"outputs_identical\":",
    "\"fingerprint\":",
    "\"prev_wall_ms\":",
];

/// One scenario entry pulled back out of a written document.
struct ParsedScenario {
    name: String,
    n: u64,
    k: u64,
    epochs: u64,
    fingerprint: String,
}

fn field_u64(body: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let at = body.find(&tag)? + tag.len();
    let digits: String = body[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn field_str(body: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let at = body.find(&tag)? + tag.len();
    let end = body[at..].find('"')?;
    Some(body[at..at + end].to_string())
}

/// Pull the scenario entries out of a perf document. The document is
/// our own writer's output: the `scenarios` object nests exactly one
/// level of flat objects, so a brace scan is enough.
fn parse_scenarios(doc: &str) -> Result<Vec<ParsedScenario>, String> {
    let tag = "\"scenarios\":{";
    let start = doc.find(tag).ok_or("no scenarios object")? + tag.len();
    let mut rest = &doc[start..];
    let mut out = Vec::new();
    while rest.starts_with('"') {
        let name_end = rest[1..].find('"').ok_or("unterminated scenario name")? + 1;
        let name = rest[1..name_end].to_string();
        let body_start = name_end + 2; // skip `":`
        if !rest[body_start..].starts_with('{') {
            return Err(format!("scenario {name}: expected object"));
        }
        let body_end = rest[body_start..]
            .find('}')
            .ok_or("unterminated scenario object")?
            + body_start;
        let body = &rest[body_start..=body_end];
        out.push(ParsedScenario {
            n: field_u64(body, "n").ok_or(format!("scenario {name}: no n"))?,
            k: field_u64(body, "k").ok_or(format!("scenario {name}: no k"))?,
            epochs: field_u64(body, "epochs").ok_or(format!("scenario {name}: no epochs"))?,
            fingerprint: field_str(body, "fingerprint")
                .ok_or(format!("scenario {name}: no fingerprint"))?,
            name,
        });
        rest = &rest[body_end + 1..];
        match rest.chars().next() {
            Some(',') => rest = &rest[1..],
            _ => break,
        }
    }
    if out.is_empty() {
        return Err("no scenario entries".into());
    }
    Ok(out)
}

fn check(path: &str) -> Result<(), String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    if !doc.contains(&format!("\"schema\":{:?}", SCHEMA)) {
        return Err(format!("schema tag is not {SCHEMA}"));
    }
    if !doc.contains("\"scenarios\":{") {
        return Err("no scenarios object".into());
    }
    // Every scenario entry must carry every required field — a
    // document-wide substring test would let one drifted scenario hide
    // behind another, so fields are counted against the scenario count
    // (one `fingerprint` per scenario entry, by construction).
    let scenario_count = doc.matches("\"fingerprint\":").count();
    if scenario_count == 0 {
        return Err("no scenario entries".into());
    }
    for field in REQUIRED_FIELDS {
        let found = doc.matches(field).count();
        if found != scenario_count {
            return Err(format!(
                "field {field} appears {found}x for {scenario_count} scenarios"
            ));
        }
    }
    if doc.contains("\"outputs_identical\":false") {
        return Err("an engine comparison diverged (outputs_identical=false)".into());
    }
    Ok(())
}

/// The regression gate: every scenario of `path` whose
/// `(name, n, k, epochs)` also appears in `golden` must carry an
/// identical fingerprint — a drift means the engines' *outputs* changed,
/// not just their timing.
fn check_against(path: &str, golden: &str) -> Result<usize, String> {
    let new_doc = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let gold_doc = std::fs::read_to_string(golden).map_err(|e| format!("read {golden}: {e}"))?;
    let new = parse_scenarios(&new_doc)?;
    let gold = parse_scenarios(&gold_doc)?;
    let mut compared = 0;
    for s in &new {
        let Some(g) = gold
            .iter()
            .find(|g| g.name == s.name && g.n == s.n && g.k == s.k && g.epochs == s.epochs)
        else {
            continue;
        };
        if g.fingerprint != s.fingerprint {
            return Err(format!(
                "{}: fingerprint drifted from {} ({} vs {})",
                s.name, golden, s.fingerprint, g.fingerprint
            ));
        }
        compared += 1;
    }
    if compared == 0 {
        return Err(format!(
            "no comparable scenarios between {path} and {golden} — the gate checked nothing"
        ));
    }
    Ok(compared)
}

/// The CI overhead gate: the epoch engine's n=200 scenario, wall-timed
/// with instrumentation off and on (min of `reps` each, one warmup),
/// must agree within 3%. Guards the "zero cost when disabled" claim —
/// every instrument's fast path is one relaxed load, so the enabled run
/// is the only one paying `Instant::now()` and atomic adds.
fn overhead_gate() -> Result<String, String> {
    let reps = 3;
    let run = || {
        let cfg = sim_cfg(200, 8, 2, EngineMode::Epoch);
        let t = Instant::now();
        let mut sim = Simulator::new(cfg.clone());
        for epoch in 0..cfg.epochs {
            let rewirings = sim.run_epoch(epoch);
            std::hint::black_box(sim.measure(epoch, rewirings));
        }
        t.elapsed().as_secs_f64() * 1e3
    };
    // Interleave the arms so clock-frequency drift, page-cache warmup
    // and allocator state hit both equally; min-of-reps per arm.
    egoist_obs::disable();
    run(); // warmup
    let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        egoist_obs::disable();
        off = off.min(run());
        egoist_obs::enable();
        egoist_obs::registry().reset();
        on = on.min(run());
    }
    egoist_obs::disable();
    let rel = (on - off) / off;
    let line = format!(
        "overhead gate: disabled {off:.1} ms, instrumented {on:.1} ms ({:+.2}%)",
        rel * 100.0
    );
    if rel > 0.03 {
        Err(format!("{line} — exceeds the 3% budget"))
    } else {
        Ok(line)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--overhead-gate") {
        match overhead_gate() {
            Ok(line) => println!("{line}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "--check") {
        let path = args
            .get(pos + 1)
            .map(String::as_str)
            .unwrap_or("BENCH_perf.json");
        match check(path) {
            Ok(()) => {
                println!("{path}: schema ok");
            }
            Err(e) => {
                eprintln!("{path}: schema drift: {e}");
                std::process::exit(1);
            }
        }
        if let Some(gpos) = args.iter().position(|a| a == "--against") {
            let golden = args
                .get(gpos + 1)
                .map(String::as_str)
                .unwrap_or("BENCH_perf.json");
            match check_against(path, golden) {
                Ok(compared) => {
                    println!("{path}: {compared} fingerprint(s) match {golden}");
                }
                Err(e) => {
                    eprintln!("{path}: regression gate failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }
    if args.iter().any(|a| a == "--against") {
        eprintln!("--against only applies with --check NEW --against GOLD; refusing to measure");
        std::process::exit(2);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let trace = args.iter().any(|a| a == "--trace");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|p| args.get(p + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_perf.json".to_string());
    let metrics_out = args
        .iter()
        .position(|a| a == "--metrics-out")
        .and_then(|p| args.get(p + 1))
        .cloned();
    egoist_obs::enable();
    if trace {
        egoist_obs::enable_trace();
    }
    let doc = measure(quick);
    std::fs::write(&out, format!("{doc}\n")).expect("write BENCH_perf.json");
    println!("{doc}");
    if let Some(mpath) = metrics_out {
        let snapshot = egoist_obs::registry().to_json();
        std::fs::write(&mpath, format!("{snapshot}\n")).expect("write metrics");
        eprintln!("# metrics -> {mpath}");
    }
    if trace {
        eprintln!("{}", egoist_obs::registry().events_to_json());
    }
    check(&out).expect("self-written document must validate");
}
