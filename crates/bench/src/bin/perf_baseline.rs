//! `perf_baseline` — the tracked performance trajectory of the epoch
//! route-state engine.
//!
//! Times best-response epoch stepping (delay metric, n ∈ {50, 200, 800})
//! and the closed-loop traffic engine under both route-state engines:
//!
//! * `baseline_wall_ms` — [`EngineMode::Recompute`]: announced matrix +
//!   from-scratch residual APSP every turn, pre-optimization BR
//!   greedy/local-search loops. A *conservative* stand-in for the
//!   pre-change implementation: it shares the (cheaper) epoch-granular
//!   underlay sampling and the current data-plane code, so it
//!   understates what the previous commit actually cost — the true
//!   pre-change binary measured ~28% slower than the oracle on the
//!   n=200 scenario on the same host (see EXPERIMENTS.md);
//! * `wall_ms` — [`EngineMode::Epoch`], shared snapshots + incremental
//!   residual repair.
//!
//! Both engines are run on identical seeds in the same process and their
//! simulation outputs are fingerprinted; `outputs_identical` asserts the
//! speedup is a pure optimization. Results land in `BENCH_perf.json`
//! (schema `egoist-perf-baseline/v1`, insertion-ordered keys, so the
//! document layout is byte-deterministic; timings naturally vary).
//!
//! Usage:
//!   perf_baseline [--quick] [--out PATH]   # measure and write
//!   perf_baseline --check PATH             # validate schema, exit ≠ 0 on drift

use egoist_core::policies::PolicyKind;
use egoist_core::sim::{run, EngineMode, Metric, SimConfig, SimResult};
use egoist_traffic::engine::{TrafficConfig, TrafficEngine};
use egoist_traffic::json::{array, num, JsonObject};
use std::time::Instant;

const SCHEMA: &str = "egoist-perf-baseline/v1";

/// FNV-1a over the bit patterns of a sample series — a cheap output
/// fingerprint that any divergence between engines will flip.
fn fingerprint_sim(r: &SimResult) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for s in &r.samples {
        eat(s.epoch as u64);
        eat(s.rewirings as u64);
        eat(s.alive as u64);
        for series in [&s.individual_cost, &s.efficiency, &s.bandwidth_utility] {
            for x in series.iter() {
                eat(x.to_bits());
            }
        }
    }
    h
}

fn fingerprint_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

struct ScenarioResult {
    name: String,
    n: usize,
    k: usize,
    epochs: usize,
    baseline_wall_ms: f64,
    wall_ms: f64,
    rewirings: usize,
    outputs_identical: bool,
    fingerprint: u64,
}

impl ScenarioResult {
    fn to_json(&self) -> String {
        JsonObject::new()
            .u64("n", self.n as u64)
            .u64("k", self.k as u64)
            .u64("epochs", self.epochs as u64)
            .f64("baseline_wall_ms", self.baseline_wall_ms)
            .f64("wall_ms", self.wall_ms)
            .f64("speedup", self.baseline_wall_ms / self.wall_ms)
            .u64("rewirings", self.rewirings as u64)
            .bool("outputs_identical", self.outputs_identical)
            .str("fingerprint", &format!("{:016x}", self.fingerprint))
            .finish()
    }
}

fn sim_cfg(n: usize, k: usize, epochs: usize, engine: EngineMode) -> SimConfig {
    let mut c = SimConfig::baseline(k, PolicyKind::BestResponse, Metric::DelayPing, 42);
    c.n = n;
    c.epochs = epochs;
    c.warmup_epochs = epochs / 3;
    c.engine = engine;
    c
}

/// Time one full BR epoch-stepping run under `engine`.
fn time_sim(n: usize, k: usize, epochs: usize, engine: EngineMode) -> (f64, SimResult) {
    let cfg = sim_cfg(n, k, epochs, engine);
    let t = Instant::now();
    let result = run(cfg);
    (t.elapsed().as_secs_f64() * 1e3, result)
}

fn epoch_stepping_scenario(n: usize, k: usize, epochs: usize) -> ScenarioResult {
    eprintln!("# br_delay_n{n}: oracle (Recompute) ...");
    let (baseline_ms, oracle) = time_sim(n, k, epochs, EngineMode::Recompute);
    eprintln!("#   {baseline_ms:.0} ms; epoch engine ...");
    let (wall_ms, fast) = time_sim(n, k, epochs, EngineMode::Epoch);
    eprintln!("#   {wall_ms:.0} ms ({:.1}x)", baseline_ms / wall_ms);
    let rewirings: usize = fast.samples.iter().map(|s| s.rewirings).sum();
    let (fa, fo) = (fingerprint_sim(&fast), fingerprint_sim(&oracle));
    ScenarioResult {
        name: format!("br_delay_n{n}"),
        n,
        k,
        epochs,
        baseline_wall_ms: baseline_ms,
        wall_ms,
        rewirings,
        outputs_identical: fa == fo,
        fingerprint: fa,
    }
}

fn traffic_scenario(n: usize, k: usize, epochs: usize) -> ScenarioResult {
    let base = |engine: EngineMode| {
        let mut cfg = TrafficConfig::new(n, k, PolicyKind::BestResponse, Metric::DelayPing, 42);
        cfg.sim.epochs = epochs;
        cfg.sim.warmup_epochs = epochs / 3;
        cfg.sim.engine = engine;
        cfg.flows_per_epoch = 2 * n;
        cfg
    };
    eprintln!("# br_traffic_n{n}: oracle (Recompute) ...");
    let t = Instant::now();
    let oracle = TrafficEngine::run(&base(EngineMode::Recompute)).to_json();
    let baseline_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!("#   {baseline_ms:.0} ms; epoch engine ...");
    let t = Instant::now();
    let fast_report = TrafficEngine::run(&base(EngineMode::Epoch));
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!("#   {wall_ms:.0} ms ({:.1}x)", baseline_ms / wall_ms);
    let fast = fast_report.to_json();
    ScenarioResult {
        name: format!("br_traffic_n{n}"),
        n,
        k,
        epochs,
        baseline_wall_ms: baseline_ms,
        wall_ms,
        rewirings: 0,
        outputs_identical: fast == oracle,
        fingerprint: fingerprint_str(&fast),
    }
}

fn measure(quick: bool) -> String {
    let scenarios: Vec<ScenarioResult> = if quick {
        vec![
            epoch_stepping_scenario(50, 5, 3),
            epoch_stepping_scenario(200, 8, 2),
            traffic_scenario(50, 5, 4),
        ]
    } else {
        vec![
            epoch_stepping_scenario(50, 5, 8),
            epoch_stepping_scenario(200, 8, 4),
            epoch_stepping_scenario(800, 10, 2),
            traffic_scenario(200, 8, 4),
        ]
    };
    let mut body = JsonObject::new()
        .str("schema", SCHEMA)
        .str("mode", if quick { "quick" } else { "full" });
    let mut obj = JsonObject::new();
    for s in &scenarios {
        obj = obj.raw(&s.name, s.to_json());
    }
    body = body.raw("scenarios", obj.finish());
    let speedups: Vec<String> = scenarios
        .iter()
        .map(|s| num(s.baseline_wall_ms / s.wall_ms))
        .collect();
    body = body.raw("speedups", array(speedups));
    body.finish()
}

/// Fields every scenario entry must carry; `--check` fails when any
/// disappears (schema drift) or the schema tag changes.
const REQUIRED_FIELDS: &[&str] = &[
    "\"n\":",
    "\"k\":",
    "\"epochs\":",
    "\"baseline_wall_ms\":",
    "\"wall_ms\":",
    "\"speedup\":",
    "\"rewirings\":",
    "\"outputs_identical\":",
    "\"fingerprint\":",
];

fn check(path: &str) -> Result<(), String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    if !doc.contains(&format!("\"schema\":{:?}", SCHEMA)) {
        return Err(format!("schema tag is not {SCHEMA}"));
    }
    if !doc.contains("\"scenarios\":{") {
        return Err("no scenarios object".into());
    }
    // Every scenario entry must carry every required field — a
    // document-wide substring test would let one drifted scenario hide
    // behind another, so fields are counted against the scenario count
    // (one `fingerprint` per scenario entry, by construction).
    let scenario_count = doc.matches("\"fingerprint\":").count();
    if scenario_count == 0 {
        return Err("no scenario entries".into());
    }
    for field in REQUIRED_FIELDS {
        let found = doc.matches(field).count();
        if found != scenario_count {
            return Err(format!(
                "field {field} appears {found}x for {scenario_count} scenarios"
            ));
        }
    }
    if doc.contains("\"outputs_identical\":false") {
        return Err("an engine comparison diverged (outputs_identical=false)".into());
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--check") {
        let path = args
            .get(pos + 1)
            .map(String::as_str)
            .unwrap_or("BENCH_perf.json");
        match check(path) {
            Ok(()) => {
                println!("{path}: schema ok");
            }
            Err(e) => {
                eprintln!("{path}: schema drift: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|p| args.get(p + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_perf.json".to_string());
    let doc = measure(quick);
    std::fs::write(&out, format!("{doc}\n")).expect("write BENCH_perf.json");
    println!("{doc}");
    check(&out).expect("self-written document must validate");
}
