//! Figure 2 (right): node efficiency / BR efficiency vs churn rate
//! (n = 50, k = 5). The churn rate is measured from each generated trace
//! with the paper's statistic (fraction of the population changing state
//! per second).

use egoist_bench::{epochs, print_expectation, print_figure, seeds, warmup, Series};
use egoist_core::policies::PolicyKind;
use egoist_core::sim::{run, Metric, SimConfig};
use egoist_netsim::ChurnModel;

fn main() {
    print_expectation(
        "at low churn BR leads; as churn approaches ~1e-2 (a membership event \
         every couple of seconds) HybridBR overtakes BR, k-Closest stays level \
         with BR, and k-Random / k-Regular collapse",
    );

    let k = 5usize;
    // Timescale divisors spanning the paper's churn sweep.
    let divisors = [1.0f64, 5.0, 20.0, 80.0, 350.0];
    let policies = [
        ("k-Random", PolicyKind::Random),
        ("k-Regular", PolicyKind::Regular),
        ("k-Closest", PolicyKind::Closest),
        ("HybridBR", PolicyKind::HybridBestResponse { k2: 2 }),
    ];
    let mut series: Vec<Series> = policies.iter().map(|(l, _)| Series::new(*l)).collect();

    for &div in &divisors {
        let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
        let mut rates = Vec::new();
        for &seed in &seeds() {
            let mut model = ChurnModel::planetlab_like(50, seed);
            model.timescale_divisor = div;
            let horizon = epochs() as f64 * 60.0;
            let trace = model.generate(horizon);
            rates.push(trace.churn_rate());

            let mut cfg = SimConfig::baseline(k, PolicyKind::BestResponse, Metric::DelayPing, seed);
            cfg.epochs = epochs();
            cfg.warmup_epochs = warmup();
            cfg.churn = Some(trace);
            let br_eff = run(cfg.clone()).mean_efficiency(warmup());
            for (idx, (_, p)) in policies.iter().enumerate() {
                let mut pcfg = cfg.clone();
                pcfg.policy = *p;
                let eff = run(pcfg).mean_efficiency(warmup());
                ratios[idx].push(if br_eff > 0.0 { eff / br_eff } else { f64::NAN });
            }
        }
        let rate = egoist_core::stats::mean(&rates).max(1e-7);
        for (idx, r) in ratios.iter().enumerate() {
            series[idx].push_samples(rate, r);
        }
    }
    print_figure(
        "Figure 2 (right): parametrized churn, n=50, k=5",
        "churn",
        "node efficiency / BR efficiency",
        &series,
    );
}
