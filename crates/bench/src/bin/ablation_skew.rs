//! Ablation (§4.2, footnote 8): "using a uniform routing preference will
//! tend to deflate the advantage of BR neighbor selection … BR is capable
//! of leveraging skew in preference to its advantage."
//!
//! Sweeps Zipf preference skew and reports BR's advantage over k-Random
//! (with the §3.2 cycle fix-up applied to the heuristic overlay) — the
//! gap should widen as preferences concentrate, because BR shortens
//! routes to exactly the destinations each node cares about.

use egoist_bench::{print_expectation, print_figure, seeds, Series};
use egoist_core::cost::{disconnection_penalty, node_cost_from_dists, Preferences};
use egoist_core::game::Game;
use egoist_core::policies::PolicyKind;
use egoist_core::stats;
use egoist_graph::apsp::apsp;
use egoist_graph::connectivity::strongly_connected;
use egoist_graph::cycles::enforce_cycle;
use egoist_graph::{DiGraph, DistanceMatrix, NodeId};
use egoist_netsim::rng::derive;
use egoist_netsim::DelayModel;

fn mean_cost(g: &DiGraph, d: &DistanceMatrix, prefs: &Preferences) -> f64 {
    let n = d.len();
    let alive = vec![true; n];
    let penalty = disconnection_penalty(d);
    let dist = apsp(g);
    let costs: Vec<f64> = (0..n)
        .map(|i| {
            let row: Vec<f64> = (0..n).map(|j| dist.at(i, j)).collect();
            node_cost_from_dists(NodeId::from_index(i), &row, prefs, &alive, penalty)
        })
        .collect();
    stats::mean(&costs)
}

fn main() {
    print_expectation(
        "BR's advantage over k-Random grows with preference skew — uniform \
         preferences are the conservative case reported in the paper",
    );

    let k = 3usize;
    let exponents = [0.0f64, 0.5, 1.0, 1.5, 2.0];
    let mut series = Series::new("k-Random cost / BR cost");

    for &expo in &exponents {
        let mut ratios = Vec::new();
        for &seed in &seeds() {
            let d = DelayModel::planetlab_50(seed).base().clone();
            let members: Vec<NodeId> = (0..50).map(NodeId).collect();
            let prefs = if expo == 0.0 {
                Preferences::uniform(50)
            } else {
                let mut rng = derive(seed, "skew");
                Preferences::zipf(50, expo, &mut rng)
            };

            let mut br = Game::new(d.clone(), k, PolicyKind::BestResponse, seed);
            br.prefs = prefs.clone();
            br.run_to_convergence(12);

            let mut rnd = Game::new(d.clone(), k, PolicyKind::Random, seed);
            rnd.sweep();
            let mut g = rnd.graph();
            if !strongly_connected(&g, &members) {
                enforce_cycle(&mut g, &d, &members);
            }

            ratios.push(mean_cost(&g, &d, &prefs) / mean_cost(&br.graph(), &d, &prefs));
        }
        series.push_samples(expo, &ratios);
    }
    print_figure(
        "Ablation: preference skew amplifies BR's edge (n=50, k=3)",
        "zipf-exp",
        "k-Random cost / BR cost",
        &[series],
    );
}
