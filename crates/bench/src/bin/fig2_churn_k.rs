//! Figure 2 (left): node efficiency / BR efficiency vs k under
//! trace-driven churn (n = 50).

use egoist_bench::{epochs, print_expectation, print_figure, seeds, warmup, Series};
use egoist_core::policies::PolicyKind;
use egoist_core::sim::{run, Metric, SimConfig};
use egoist_netsim::ChurnModel;

fn main() {
    print_expectation(
        "BR stays best even under churn; HybridBR approaches BR as k grows \
         (the two donated links matter less); k-Closest is decisively better \
         than k-Random and k-Regular",
    );

    let ks = [3usize, 4, 5, 6, 7, 8];
    let policies = [
        ("k-Random", PolicyKind::Random),
        ("k-Regular", PolicyKind::Regular),
        ("k-Closest", PolicyKind::Closest),
        ("HybridBR", PolicyKind::HybridBestResponse { k2: 2 }),
    ];
    let mut series: Vec<Series> = policies.iter().map(|(l, _)| Series::new(*l)).collect();

    for &k in &ks {
        let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
        for &seed in &seeds() {
            // Trace-driven churn, rescaled so a 50-node overlay sees
            // steady join/leave activity within the horizon (the paper's
            // "typical PlanetLab churn" regime).
            let mut model = ChurnModel::planetlab_like(50, seed);
            model.timescale_divisor = 5.0;
            let horizon = epochs() as f64 * 60.0;
            let trace = model.generate(horizon);

            let mut cfg = SimConfig::baseline(k, PolicyKind::BestResponse, Metric::DelayPing, seed);
            cfg.epochs = epochs();
            cfg.warmup_epochs = warmup();
            cfg.churn = Some(trace);
            let br_eff = run(cfg.clone()).mean_efficiency(warmup());
            for (idx, (_, p)) in policies.iter().enumerate() {
                let mut pcfg = cfg.clone();
                pcfg.policy = *p;
                ratios[idx].push(run(pcfg).mean_efficiency(warmup()) / br_eff);
            }
        }
        for (idx, r) in ratios.iter().enumerate() {
            series[idx].push_samples(k as f64, r);
        }
    }
    print_figure(
        "Figure 2 (left): trace-driven churn, n=50",
        "k",
        "node efficiency / BR efficiency",
        &series,
    );
}
