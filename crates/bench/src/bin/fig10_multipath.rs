//! Figure 10: available-bandwidth gain of multipath transfer vs k.
//!
//! On a bandwidth-wired EGOIST overlay (n = 50), a source opens k
//! parallel sessions through its first-hop neighbors; the gain is
//! measured against the single direct IP session (which is subject to
//! the per-session peering-point rate cap). The upper series is the
//! max-flow bound where every peer allows redirection.

use egoist_bench::{fast, print_expectation, print_figure, seeds, Series};
use egoist_core::multipath::{average_gains, bandwidth_overlay};
use egoist_core::stats;
use egoist_graph::NodeId;
use egoist_netsim::BandwidthModel;

fn main() {
    print_expectation(
        "both series grow with k; parallel first-hop sessions reach roughly \
         2x-4x the direct path, while the all-peers max-flow bound climbs \
         toward ~6x-9x",
    );

    let n = if fast() { 16 } else { 50 };
    let ks = [2usize, 3, 4, 5, 6, 7, 8];
    let members: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();

    let mut parallel_series = Series::new("source establ. parallel connections");
    let mut bound_series = Series::new("peers allow multipath redirections");

    for &k in &ks {
        let mut parallel = Vec::new();
        let mut bound = Vec::new();
        for &seed in &seeds() {
            let bw = BandwidthModel::with_defaults(n, seed);
            let overlay = bandwidth_overlay(&bw, k, 2);
            let (p, b) = average_gains(&overlay, &bw, &members);
            parallel.push(stats::mean(&p));
            bound.push(stats::mean(&b));
        }
        parallel_series.push_samples(k as f64, &parallel);
        bound_series.push_samples(k as f64, &bound);
    }
    print_figure(
        "Figure 10: available bandwidth gain from multipath redirection, n=50",
        "k",
        "available bandwidth gain vs direct IP session",
        &[bound_series, parallel_series],
    );
}
