//! Figure 11: number of edge-disjoint overlay paths between source and
//! target vs k, on the delay-wired EGOIST overlay (n = 50).

use egoist_bench::{fast, print_expectation, print_figure, seeds, Series};
use egoist_core::game::Game;
use egoist_core::multipath::disjoint_path_counts;
use egoist_core::policies::PolicyKind;
use egoist_core::stats;
use egoist_graph::NodeId;
use egoist_netsim::DelayModel;

fn main() {
    print_expectation(
        "the number of disjoint paths grows roughly linearly with k \
         (≈ 1.5 at k=2 up to ≈ 5.5 at k=8)",
    );

    let n = if fast() { 16 } else { 50 };
    let ks = [2usize, 3, 4, 5, 6, 7, 8];
    let members: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();

    let mut series = Series::new("disjoint paths");
    for &k in &ks {
        let mut counts = Vec::new();
        for &seed in &seeds() {
            let d = if n == 50 {
                DelayModel::planetlab_50(seed).base().clone()
            } else {
                DelayModel::from_spec(
                    &egoist_netsim::PlanetLabSpec::uniform(egoist_netsim::Region::NorthAmerica, n),
                    &egoist_netsim::delay::DelayConfig::default(),
                    seed,
                )
                .base()
                .clone()
            };
            let mut game = Game::new(d, k, PolicyKind::BestResponse, seed);
            game.run_to_convergence(8);
            let overlay = game.graph();
            counts.push(stats::mean(&disjoint_path_counts(&overlay, &members)));
        }
        series.push_samples(k as f64, &counts);
    }
    print_figure(
        "Figure 11: edge-disjoint overlay paths, delay metric, n=50",
        "k",
        "number of disjoint paths",
        &[series],
    );
}
