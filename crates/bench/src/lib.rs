//! Shared harness utilities for the figure-reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one figure of the paper: it
//! sweeps the paper's x-axis, runs the simulator / game / protocol, and
//! prints one row per x-value with one column per series — the same
//! series the paper plots — plus the paper's qualitative expectation so
//! `EXPERIMENTS.md` can record paper-vs-measured directly.
//!
//! Environment knobs (all optional):
//!
//! * `EGOIST_SEEDS`  — comma-separated seeds (default `1,2,3`).
//! * `EGOIST_EPOCHS` — epochs per simulation (default 30).
//! * `EGOIST_FAST`   — set to `1` for a quick smoke run (one seed, few
//!   epochs); used by the integration tests.

use egoist_core::stats;

/// One plotted series: label plus `(x, mean, ci)` points.
#[derive(Clone, Debug)]
pub struct Series {
    pub label: String,
    pub points: Vec<(f64, f64, f64)>,
}

impl Series {
    /// Empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point from per-seed samples (mean ± 95% CI).
    pub fn push_samples(&mut self, x: f64, samples: &[f64]) {
        let (m, ci) = stats::mean_ci(samples);
        self.points.push((x, m, ci));
    }

    /// Append an exact point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y, 0.0));
    }
}

/// Print a figure as an aligned text table.
pub fn print_figure(title: &str, xlabel: &str, ylabel: &str, series: &[Series]) {
    println!("# {title}");
    println!("# x = {xlabel}; y = {ylabel}; value ± 95% CI over seeds/nodes");
    print!("{:>10}", xlabel);
    for s in series {
        print!("  {:>22}", s.label);
    }
    println!();
    // Collect the union of x values (series should share them).
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    for x in xs {
        print!("{x:>10.5}");
        for s in series {
            match s.points.iter().find(|p| (p.0 - x).abs() < 1e-12) {
                Some(&(_, y, ci)) if ci > 0.0 => print!("  {:>14.4} ±{:>6.3}", y, ci),
                Some(&(_, y, _)) => print!("  {:>22.4}", y),
                None => print!("  {:>22}", "-"),
            }
        }
        println!();
    }
    println!();
}

/// Experiment seeds from `EGOIST_SEEDS` (default `1,2,3`).
pub fn seeds() -> Vec<u64> {
    if fast() {
        return vec![1];
    }
    std::env::var("EGOIST_SEEDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 3])
}

/// Epochs per simulation from `EGOIST_EPOCHS` (default 30; 8 in fast
/// mode). Warmup is 1/3 of the horizon.
pub fn epochs() -> usize {
    if fast() {
        return 8;
    }
    std::env::var("EGOIST_EPOCHS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30)
}

/// Warmup epochs to drop from steady-state statistics.
pub fn warmup() -> usize {
    epochs() / 3
}

/// Quick smoke mode for tests.
pub fn fast() -> bool {
    std::env::var("EGOIST_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Print the paper's qualitative expectation for the figure, so that the
/// run output is self-documenting next to EXPERIMENTS.md.
pub fn print_expectation(text: &str) {
    println!("# paper expectation: {text}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accumulates_points() {
        let mut s = Series::new("BR");
        s.push_samples(2.0, &[1.0, 2.0, 3.0]);
        s.push(3.0, 5.0);
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.points[0].1, 2.0);
        assert!(s.points[0].2 > 0.0);
        assert_eq!(s.points[1], (3.0, 5.0, 0.0));
    }

    #[test]
    fn default_seeds_nonempty() {
        assert!(!seeds().is_empty());
    }

    #[test]
    fn print_does_not_panic_on_misaligned_series() {
        let mut a = Series::new("a");
        a.push(1.0, 2.0);
        let mut b = Series::new("b");
        b.push(2.0, 3.0);
        print_figure("test", "k", "cost", &[a, b]);
    }
}
