//! Criterion bench: one best-response wiring epoch, both route-state
//! engines.
//!
//! The quantity the epoch route-state engine optimizes is the wall time
//! of `Simulator::run_epoch` under BR — the per-epoch control-plane cost
//! that bounds every figure sweep and scaling experiment. `recompute/*`
//! is the straightforward per-turn oracle; `epoch_engine/*` is the
//! snapshot + incremental-repair path (identical outputs, pinned by
//! `tests/engine_equivalence.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egoist_core::policies::PolicyKind;
use egoist_core::sim::{EngineMode, Metric, SimConfig, Simulator};
use std::hint::black_box;

fn cfg(n: usize, engine: EngineMode) -> SimConfig {
    let mut c = SimConfig::baseline(5, PolicyKind::BestResponse, Metric::DelayPing, 7);
    c.n = n;
    c.epochs = 4;
    c.warmup_epochs = 1;
    c.engine = engine;
    c
}

/// A simulator warmed past the initial join storm, so the benched epoch
/// reflects steady-state dynamics rather than first wiring.
fn warmed(n: usize, engine: EngineMode) -> Simulator {
    let mut sim = Simulator::new(cfg(n, engine));
    for epoch in 0..2 {
        sim.run_epoch(epoch);
    }
    sim
}

fn bench_epoch_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_step_br_delay");
    group.sample_size(10);
    for n in [50usize, 200] {
        group.bench_with_input(BenchmarkId::new("recompute", n), &n, |b, &n| {
            let mut sim = warmed(n, EngineMode::Recompute);
            let mut epoch = 2;
            b.iter(|| {
                epoch += 1;
                black_box(sim.run_epoch(epoch))
            })
        });
        group.bench_with_input(BenchmarkId::new("epoch_engine", n), &n, |b, &n| {
            let mut sim = warmed(n, EngineMode::Epoch);
            let mut epoch = 2;
            b.iter(|| {
                epoch += 1;
                black_box(sim.run_epoch(epoch))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_epoch_step);
criterion_main!(benches);
