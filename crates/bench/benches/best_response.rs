//! Criterion bench: best-response computation cost.
//!
//! Validates §5's scaling claims: exact BR explodes combinatorially,
//! local search is polynomial but grows with n, and sampled BR (the §5
//! mechanism) keeps the per-re-wiring cost nearly flat as the overlay
//! grows. Also benches the HybridBR forced-members variant (ablation for
//! the §3.3 design).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egoist_core::cost::{disconnection_penalty, Preferences};
use egoist_core::policies::best_response::{BestResponse, BrInstance};
use egoist_core::policies::{PolicyKind, WiringContext};
use egoist_core::sampling::random_sample;
use egoist_core::wiring::Wiring;
use egoist_graph::apsp::apsp;
use egoist_graph::{DistanceMatrix, NodeId};
use egoist_netsim::delay::{DelayConfig, DelayModel};
use egoist_netsim::rng::derive;
use egoist_netsim::{PlanetLabSpec, Region};
use std::hint::black_box;

struct Fixture {
    residual: DistanceMatrix,
    candidates: Vec<NodeId>,
    direct: Vec<f64>,
    prefs: Preferences,
    alive: Vec<bool>,
    penalty: f64,
}

fn fixture(n: usize, k: usize) -> Fixture {
    let d = DelayModel::from_spec(
        &PlanetLabSpec::uniform(Region::NorthAmerica, n),
        &DelayConfig::default(),
        1,
    )
    .base()
    .clone();
    // A circulant wiring as the residual overlay.
    let mut w = Wiring::empty(n);
    for i in 0..n {
        let mut neigh = Vec::new();
        for o in 1..=k {
            neigh.push(NodeId::from_index((i + o) % n));
        }
        w.rewire(NodeId::from_index(i), neigh);
    }
    let alive = vec![true; n];
    let residual = apsp(&w.residual_graph(NodeId(0), &d, &alive));
    Fixture {
        candidates: (1..n).map(NodeId::from_index).collect(),
        direct: d.row(0).to_vec(),
        prefs: Preferences::uniform(n),
        penalty: disconnection_penalty(&d),
        residual,
        alive,
    }
}

impl Fixture {
    fn ctx<'a>(&'a self, k: usize, candidates: &'a [NodeId]) -> WiringContext<'a> {
        WiringContext {
            node: NodeId(0),
            k,
            candidates,
            direct: &self.direct,
            residual: egoist_core::ResidualView::dense(&self.residual),
            prefs: &self.prefs,
            alive: &self.alive,
            penalty: self.penalty,
            current: &[],
        }
    }
}

fn bench_best_response(c: &mut Criterion) {
    let k = 3;
    let mut group = c.benchmark_group("best_response");
    group.sample_size(20);
    for n in [20usize, 50, 100, 295] {
        let f = fixture(n, k);
        group.bench_with_input(BenchmarkId::new("local_search", n), &n, |b, _| {
            let mut solver = BestResponse::local_search();
            b.iter(|| {
                let ctx = f.ctx(k, &f.candidates);
                black_box(solver.solve(&ctx))
            })
        });
        // Sampled BR: m = 16 candidates regardless of n (§5).
        group.bench_with_input(BenchmarkId::new("sampled_m16", n), &n, |b, _| {
            let mut solver = BestResponse::local_search();
            let mut rng = derive(2, "bench-sample");
            let sample = random_sample(&f.candidates, 16, &mut rng);
            b.iter(|| {
                let ctx = f.ctx(k, &sample);
                black_box(solver.solve(&ctx))
            })
        });
    }
    // Exact BR only at small n (combinatorial).
    for n in [12usize, 16, 20] {
        let f = fixture(n, k);
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            let mut solver = BestResponse::exact();
            b.iter(|| {
                let ctx = f.ctx(k, &f.candidates);
                black_box(solver.solve(&ctx))
            })
        });
    }
    group.finish();
}

fn bench_hybrid_ablation(c: &mut Criterion) {
    // Ablation: cost of forcing k2 donated links into the local search.
    let mut group = c.benchmark_group("hybrid_forced_members");
    group.sample_size(20);
    let f = fixture(50, 5);
    for k2 in [0usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(k2), &k2, |b, &k2| {
            let ctx = f.ctx(5, &f.candidates);
            let inst = BrInstance::build(&ctx);
            let forced: Vec<usize> = (0..k2).collect();
            b.iter(|| {
                let init = inst.greedy(5, &forced);
                black_box(inst.local_search(5, init, &forced, 64))
            })
        });
    }
    group.finish();
}

fn bench_membership_mask(c: &mut Criterion) {
    // The satellite micro-opt plus the pruned swap scan: the shipped
    // `greedy`/`local_search` track membership in boolean masks, abort
    // hopeless accumulations early and bound-filter swap pairs;
    // `*_reference` are the pre-optimization loops (`Vec::contains`,
    // full scans) the Recompute oracle still runs. Decisions are
    // bit-identical; only the wall time differs, and the gap widens
    // with |cand|.
    let mut group = c.benchmark_group("membership_mask");
    group.sample_size(10);
    for n in [200usize, 256, 400] {
        let k = 8;
        let f = fixture(n, k);
        let ctx = f.ctx(k, &f.candidates);
        let inst = BrInstance::build(&ctx);
        group.bench_with_input(BenchmarkId::new("masked_greedy", n), &n, |b, _| {
            b.iter(|| black_box(inst.greedy(k, &[])))
        });
        group.bench_with_input(BenchmarkId::new("greedy_reference", n), &n, |b, _| {
            b.iter(|| black_box(inst.greedy_reference(k, &[])))
        });
        // Full local search at |cand| ≥ 200 — the hot path the masks
        // and the pruned scan actually serve inside the simulator.
        group.bench_with_input(BenchmarkId::new("local_search", n), &n, |b, _| {
            b.iter(|| {
                let init = inst.greedy(k, &[]);
                black_box(inst.local_search(k, init, &[], 64))
            })
        });
        group.bench_with_input(BenchmarkId::new("local_search_reference", n), &n, |b, _| {
            b.iter(|| {
                let init = inst.greedy_reference(k, &[]);
                black_box(inst.local_search_reference(k, init, &[], 64))
            })
        });
    }
    group.finish();
}

fn bench_full_sweep(c: &mut Criterion) {
    // One full round-robin sweep of the 50-node game, per policy.
    let mut group = c.benchmark_group("game_sweep_n50");
    group.sample_size(10);
    let d = DelayModel::planetlab_50(3).base().clone();
    for (label, kind) in [
        ("best_response", PolicyKind::BestResponse),
        (
            "epsilon_br",
            PolicyKind::EpsilonBestResponse { epsilon: 0.1 },
        ),
        ("k_closest", PolicyKind::Closest),
        ("k_random", PolicyKind::Random),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut game = egoist_core::game::Game::new(d.clone(), 3, kind, 7);
                black_box(game.sweep())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_best_response,
    bench_hybrid_ablation,
    bench_membership_mask,
    bench_full_sweep
);
criterion_main!(benches);
