//! Criterion bench: graph substrate scaling (Dijkstra, APSP, widest
//! paths, max-flow, disjoint paths) on EGOIST-shaped overlays
//! (n nodes, out-degree k = 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egoist_graph::apsp::{apsp, floyd_warshall};
use egoist_graph::dijkstra::dijkstra;
use egoist_graph::disjoint::edge_disjoint_paths;
use egoist_graph::maxflow::max_flow;
use egoist_graph::widest::widest_paths;
use egoist_graph::{DiGraph, NodeId};
use egoist_netsim::delay::{DelayConfig, DelayModel};
use egoist_netsim::{PlanetLabSpec, Region};
use std::hint::black_box;

fn overlay(n: usize, k: usize) -> DiGraph {
    let d = DelayModel::from_spec(
        &PlanetLabSpec::uniform(Region::NorthAmerica, n),
        &DelayConfig::default(),
        1,
    )
    .base()
    .clone();
    let mut g = DiGraph::new(n);
    for i in 0..n {
        for o in 1..=k {
            let j = (i + o * (n / (k + 1)).max(1)) % n;
            if i != j {
                g.add_edge(NodeId::from_index(i), NodeId::from_index(j), d.at(i, j));
            }
        }
    }
    g
}

fn bench_shortest_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("shortest_paths");
    for n in [50usize, 150, 295] {
        let g = overlay(n, 5);
        group.bench_with_input(BenchmarkId::new("dijkstra", n), &n, |b, _| {
            b.iter(|| black_box(dijkstra(&g, NodeId(0))))
        });
        group.bench_with_input(BenchmarkId::new("apsp", n), &n, |b, _| {
            b.iter(|| black_box(apsp(&g)))
        });
    }
    // Floyd–Warshall only at moderate n (O(n^3)).
    let g = overlay(50, 5);
    group.bench_function("floyd_warshall/50", |b| {
        b.iter(|| black_box(floyd_warshall(&g)))
    });
    group.finish();
}

fn bench_bandwidth_algos(c: &mut Criterion) {
    let mut group = c.benchmark_group("bandwidth_algos");
    for n in [50usize, 150] {
        let g = overlay(n, 5);
        group.bench_with_input(BenchmarkId::new("widest_paths", n), &n, |b, _| {
            b.iter(|| black_box(widest_paths(&g, NodeId(0))))
        });
        group.bench_with_input(BenchmarkId::new("max_flow", n), &n, |b, _| {
            b.iter(|| black_box(max_flow(&g, NodeId(0), NodeId::from_index(n - 1))))
        });
        group.bench_with_input(BenchmarkId::new("edge_disjoint", n), &n, |b, _| {
            b.iter(|| {
                black_box(edge_disjoint_paths(
                    &g,
                    NodeId(0),
                    NodeId::from_index(n - 1),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shortest_paths, bench_bandwidth_algos);
criterion_main!(benches);
