//! Criterion bench: sampling mechanisms (§5) — random vs topology-biased
//! sample construction, and the `b_ij` ranking ingredients (radius-r
//! neighborhoods). Ablation over the radius r, the design knob the paper
//! fixes at 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egoist_core::sampling::{neighborhood, random_sample, rank, topology_biased_sample};
use egoist_graph::{DiGraph, NodeId};
use egoist_netsim::rng::derive;
use std::hint::black_box;

/// A 295-node, k=3 circulant-ish overlay.
fn overlay(n: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    for i in 0..n {
        for o in [1usize, 7, 31] {
            let j = (i + o) % n;
            if i != j {
                g.add_edge(
                    NodeId::from_index(i),
                    NodeId::from_index(j),
                    1.0 + (o as f64),
                );
            }
        }
    }
    g
}

fn bench_sampling(c: &mut Criterion) {
    let n = 295;
    let g = overlay(n);
    let candidates: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
    let direct = vec![10.0; n];

    let mut group = c.benchmark_group("sampling");
    group.bench_function("random_m16", |b| {
        let mut rng = derive(1, "s");
        b.iter(|| black_box(random_sample(&candidates, 16, &mut rng)))
    });
    for r in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::new("topology_biased_m16_r", r), &r, |b, &r| {
            let mut rng = derive(1, "t");
            b.iter(|| {
                black_box(topology_biased_sample(
                    &candidates,
                    16,
                    48,
                    r,
                    &g,
                    &direct,
                    &mut rng,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("neighborhood_r", r), &r, |b, &r| {
            b.iter(|| black_box(neighborhood(&g, NodeId(0), r)))
        });
    }
    group.bench_function("rank_single", |b| {
        b.iter(|| black_box(rank(&g, NodeId(0), 2, &direct)))
    });
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
