//! Criterion bench: wire-codec throughput (LSA encode/decode, ping
//! frames) and LSDB apply/graph-snapshot costs — the per-message work
//! every EGOIST node does on its hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use egoist_graph::NodeId;
use egoist_proto::codec::{decode, encode};
use egoist_proto::lsdb::Lsdb;
use egoist_proto::message::{LinkEntry, LinkStateAnnouncement, Message};
use std::hint::black_box;

fn lsa(origin: u32, seq: u64, k: usize) -> LinkStateAnnouncement {
    LinkStateAnnouncement {
        origin: NodeId(origin),
        seq,
        links: (0..k)
            .map(|i| LinkEntry {
                neighbor: NodeId((origin + 1 + i as u32) % 300),
                cost: 10.0 + i as f32,
            })
            .collect(),
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    for k in [2usize, 8, 32] {
        let msg = Message::LinkState {
            lsa: lsa(1, 42, k),
            ttl: 2,
        };
        let frame = encode(&msg);
        group.throughput(Throughput::Bytes(frame.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode_lsa", k), &k, |b, _| {
            b.iter(|| black_box(encode(&msg)))
        });
        group.bench_with_input(BenchmarkId::new("decode_lsa", k), &k, |b, _| {
            b.iter(|| black_box(decode(&frame).unwrap()))
        });
    }
    let ping = Message::Ping {
        from: NodeId(3),
        nonce: 0xABCD,
        hb: false,
    };
    let ping_frame = encode(&ping);
    group.bench_function("encode_ping", |b| b.iter(|| black_box(encode(&ping))));
    group.bench_function("decode_ping", |b| {
        b.iter(|| black_box(decode(&ping_frame).unwrap()))
    });
    group.finish();
}

fn bench_lsdb(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsdb");
    for n in [50usize, 295] {
        group.bench_with_input(BenchmarkId::new("apply_all", n), &n, |b, &n| {
            b.iter(|| {
                let mut db = Lsdb::new(70.0);
                for i in 0..n {
                    db.apply(lsa(i as u32, 1, 5), 0.0);
                }
                black_box(db.len())
            })
        });
        let mut db = Lsdb::new(70.0);
        for i in 0..n {
            db.apply(lsa(i as u32, 1, 5), 0.0);
        }
        group.bench_with_input(BenchmarkId::new("graph_snapshot", n), &n, |b, &n| {
            b.iter(|| black_box(db.graph(n)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec, bench_lsdb);
criterion_main!(benches);
