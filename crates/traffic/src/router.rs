//! The flow router: announced-shortest-path forwarding with an optional
//! edge-disjoint multipath mode.
//!
//! Routing consumes *announced* costs — the overlay graph as the
//! link-state protocol disseminated it — while every realized quantity
//! (latency, capacity) uses *true* underlay state. That mirrors the
//! announced/true split of `egoist_core::cost` and is what makes the
//! closed loop meaningful: wiring and routing react to announcements,
//! announcements lag the congestion traffic creates.

use crate::capacity::CapacityLedger;
use crate::demand::Flow;
use egoist_graph::csr::{path_from_parents, successive_disjoint_paths, NO_PARENT};
use egoist_graph::disjoint::edge_disjoint_paths;
use egoist_graph::{CsrGraph, DiGraph, DijkstraWorkspace, DistanceMatrix, NodeId};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Obs handles for the data plane, resolved lazily once and shared by
/// every routing policy (shortest-path, backpressure, delay-aware) and
/// the AIMD controller. Everything recorded here is a simulated
/// quantity (Mbps, simulated ms), so the exported values are
/// deterministic per seed. Registering the whole set on first resolve
/// means any traffic run exports every instrument — including the
/// queue/backlog/rate signals at zero when their policy is off — which
/// is what `metrics_check`'s x-required-instruments gate expects.
pub(crate) struct TrafficObs {
    pub(crate) route: egoist_obs::Timer,
    pub(crate) flows_offered: egoist_obs::Counter,
    pub(crate) flows_admitted: egoist_obs::Counter,
    pub(crate) flows_dropped: egoist_obs::Counter,
    pub(crate) rate_increase: egoist_obs::Counter,
    pub(crate) rate_decrease: egoist_obs::Counter,
    pub(crate) latency_ms: egoist_obs::Histogram,
    pub(crate) stretch: egoist_obs::Histogram,
    pub(crate) link_utilization: egoist_obs::Histogram,
    pub(crate) queue_depth: egoist_obs::Histogram,
    pub(crate) backlog: egoist_obs::Histogram,
}

pub(crate) fn traffic_obs() -> &'static TrafficObs {
    static OBS: OnceLock<TrafficObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = egoist_obs::registry();
        TrafficObs {
            route: r.timer("traffic.route"),
            flows_offered: r.counter("traffic.flows.offered"),
            flows_admitted: r.counter("traffic.flows.admitted"),
            flows_dropped: r.counter("traffic.flows.dropped"),
            rate_increase: r.counter("traffic.rate.increase"),
            rate_decrease: r.counter("traffic.rate.decrease"),
            latency_ms: r.histogram("traffic.flow_latency_ms"),
            stretch: r.histogram("traffic.flow_stretch"),
            link_utilization: r.histogram("traffic.link_utilization"),
            queue_depth: r.histogram("traffic.queue.depth"),
            backlog: r.histogram("traffic.backpressure.backlog"),
        }
    })
}

/// Router tuning.
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    /// Maximum paths per flow (1 = single announced-shortest path;
    /// > 1 splits over up to that many edge-disjoint paths, the §6
    /// > multipath application applied to bulk flows).
    pub max_paths: usize,
    /// Per-hop processing delay in ms per unit of true node load —
    /// the term that couples flow latency to the Load metric.
    pub proc_ms_per_load: f64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            max_paths: 1,
            proc_ms_per_load: 2.0,
        }
    }
}

/// One flow's routing outcome.
#[derive(Clone, Debug)]
pub struct RoutedFlow {
    pub flow: Flow,
    /// Mbps actually carried (0 when unroutable or starved).
    pub delivered_mbps: f64,
    /// Delivered-weighted mean end-to-end latency (ms); NaN when
    /// nothing was delivered.
    pub latency_ms: f64,
    /// Propagation-only path stretch vs. the direct underlay path;
    /// NaN when undelivered.
    pub stretch: f64,
    /// Number of paths used.
    pub paths_used: usize,
}

/// Aggregate outcome of routing one epoch's flows.
#[derive(Clone, Debug)]
pub struct RouteOutcome {
    pub flows: Vec<RoutedFlow>,
    pub offered_mbps: f64,
    pub delivered_mbps: f64,
    /// Row-major `n × n` carried traffic (Mbps) for bandwidth feedback.
    pub consumed: Vec<f64>,
    /// Per-node transmitted traffic (Mbps) for load feedback.
    pub forwarded: Vec<f64>,
    /// Committed-path switches this epoch (delay-aware policy only;
    /// always 0 for the stateless path routers and backpressure).
    pub route_changes: usize,
}

impl RouteOutcome {
    /// Delivered / offered (1.0 when nothing was offered).
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered_mbps <= 0.0 {
            1.0
        } else {
            self.delivered_mbps / self.offered_mbps
        }
    }

    /// Latencies of flows that delivered anything (ms).
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.flows
            .iter()
            .filter(|f| f.delivered_mbps > 0.0)
            .map(|f| f.latency_ms)
            .collect()
    }

    /// Stretches of delivered flows.
    pub fn stretches(&self) -> Vec<f64> {
        self.flows
            .iter()
            .filter(|f| f.delivered_mbps > 0.0 && f.stretch.is_finite())
            .map(|f| f.stretch)
            .collect()
    }
}

/// Everything the router reads for one epoch.
pub struct RouteInputs<'a> {
    /// The overlay wired by the control plane, edges carrying announced
    /// costs (routing state).
    pub overlay: &'a DiGraph,
    /// True per-pair propagation delays (ms).
    pub true_delays: &'a DistanceMatrix,
    /// True instantaneous per-node load.
    pub node_load: &'a [f64],
    /// Unloaded per-pair link capacity (Mbps).
    pub capacity: &'a DistanceMatrix,
}

/// FNV-1a fingerprint of the overlay's structure and weights. Cheap
/// (one pass over the edge list) and order-sensitive, which is fine:
/// `DiGraph` iteration order is itself deterministic.
fn overlay_fingerprint(g: &DiGraph) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    };
    eat(&(g.len() as u64).to_le_bytes());
    for (u, v, w) in g.edges() {
        eat(&u.0.to_le_bytes());
        eat(&v.0.to_le_bytes());
        eat(&w.to_bits().to_le_bytes());
    }
    h
}

/// Multipath disjoint path sets per (src, dst) pair.
type PairPaths = HashMap<(u32, u32), Vec<Vec<NodeId>>>;

/// The router. Holds the cross-epoch multipath cache, so it is stateful
/// (one instance per engine run).
#[derive(Clone, Debug, Default)]
pub struct FlowRouter {
    pub cfg: RouterConfig,
    /// Multipath disjoint path sets, keyed by `(epoch, overlay
    /// fingerprint)`: a rewire or churn event changes the fingerprint
    /// and a new epoch changes the key, so a stale path set can never
    /// be served — the cache only survives *within* one epoch's calls
    /// over one overlay.
    mp_cache: Option<(u64, u64, PairPaths)>,
}

impl FlowRouter {
    pub fn new(cfg: RouterConfig) -> Self {
        FlowRouter {
            cfg,
            mp_cache: None,
        }
    }

    /// Realized latency of `path`: true propagation per hop plus load-
    /// proportional processing at every relay and the destination's
    /// receive path (the source's own stack is free — it paces itself).
    fn path_latency_ms(&self, path: &[NodeId], inp: &RouteInputs<'_>) -> f64 {
        let mut ms = 0.0;
        for w in path.windows(2) {
            ms += inp.true_delays.get(w[0], w[1]);
            ms += self.cfg.proc_ms_per_load * inp.node_load[w[1].index()];
        }
        ms
    }

    /// Propagation-only delay of `path`.
    fn path_propagation_ms(path: &[NodeId], inp: &RouteInputs<'_>) -> f64 {
        path.windows(2)
            .map(|w| inp.true_delays.get(w[0], w[1]))
            .sum()
    }

    /// Route one epoch's flows in order, metering them into capacity.
    ///
    /// Path computation is shared across flows: flows are grouped by
    /// source and single-path mode runs exactly one workspace Dijkstra
    /// per *distinct* source on a CSR copy of the overlay; multipath
    /// mode caches the edge-disjoint path set per `(src, dst)` pair
    /// (paths depend only on the overlay, not on ledger state, so the
    /// cache cannot change admission results). The multipath cache is
    /// keyed by `(epoch, overlay fingerprint)` and lives on the router,
    /// so repeat calls within an epoch reuse it while any rewire or
    /// churn event (new fingerprint) or epoch boundary discards it.
    /// Flows are still metered into capacity strictly in their
    /// original order.
    pub fn route(&mut self, epoch: u64, flows: &[Flow], inp: &RouteInputs<'_>) -> RouteOutcome {
        let obs = traffic_obs();
        let _span = obs.route.start();
        let n = inp.overlay.len();
        let mut ledger = CapacityLedger::new(inp.capacity);
        let offered: f64 = flows.iter().map(|f| f.rate_mbps).sum();

        let csr = CsrGraph::from_digraph(inp.overlay);
        let mut ws = DijkstraWorkspace::new(n);

        // Group by source: one SSSP per distinct source, up front.
        let mut per_source: Vec<Option<(Vec<f64>, Vec<u32>)>> = vec![None; n];
        if self.cfg.max_paths <= 1 {
            for flow in flows {
                let s = flow.src.index();
                if per_source[s].is_none() {
                    let mut dist = vec![f64::INFINITY; n];
                    let mut parent = vec![NO_PARENT; n];
                    ws.sssp_into(&csr, flow.src.0, None, &mut dist, &mut parent);
                    per_source[s] = Some((dist, parent));
                }
            }
        }
        // Multipath: disjoint path sets per distinct pair, taken from
        // the epoch-keyed cache when epoch and overlay both match.
        let overlay_fp = if self.cfg.max_paths > 1 {
            overlay_fingerprint(inp.overlay)
        } else {
            0
        };
        let mut pair_paths: PairPaths = match self.mp_cache.take() {
            Some((e, fp, map)) if self.cfg.max_paths > 1 && e == epoch && fp == overlay_fp => map,
            _ => HashMap::new(),
        };
        let mut disabled = vec![false; csr.edge_count()];

        let mut routed = Vec::with_capacity(flows.len());
        let mut delivered_total = 0.0;
        let (mut admitted, mut dropped) = (0u64, 0u64);
        for &flow in flows {
            let paths: Vec<Vec<NodeId>> = if self.cfg.max_paths <= 1 {
                let (dist, parent) = per_source[flow.src.index()]
                    .as_ref()
                    .expect("per-source SSSP precomputed above");
                path_from_parents(
                    parent,
                    flow.src.0,
                    flow.dst.0,
                    dist[flow.dst.index()].is_finite(),
                )
                .into_iter()
                .collect()
            } else {
                pair_paths
                    .entry((flow.src.0, flow.dst.0))
                    .or_insert_with(|| {
                        let want = self.cfg.max_paths.min(edge_disjoint_paths(
                            inp.overlay,
                            flow.src,
                            flow.dst,
                        ));
                        successive_disjoint_paths(
                            &csr,
                            flow.src.0,
                            flow.dst.0,
                            want,
                            &mut ws,
                            &mut disabled,
                        )
                    })
                    .clone()
            };

            if paths.is_empty() {
                dropped += 1;
                routed.push(RoutedFlow {
                    flow,
                    delivered_mbps: 0.0,
                    latency_ms: f64::NAN,
                    stretch: f64::NAN,
                    paths_used: 0,
                });
                continue;
            }

            // Fill paths cheapest-first; each takes what its bottleneck
            // allows until the flow's rate is placed.
            let mut remaining = flow.rate_mbps;
            let mut delivered = 0.0;
            let mut weighted_latency = 0.0;
            let mut weighted_prop = 0.0;
            let mut used = 0;
            for path in &paths {
                if remaining <= 0.0 {
                    break;
                }
                let got = ledger.admit(path, remaining);
                if got > 0.0 {
                    delivered += got;
                    remaining -= got;
                    weighted_latency += got * self.path_latency_ms(path, inp);
                    weighted_prop += got * Self::path_propagation_ms(path, inp);
                    used += 1;
                }
            }

            let (latency_ms, stretch) = if delivered > 0.0 {
                let lat = weighted_latency / delivered;
                let direct = inp.true_delays.get(flow.src, flow.dst);
                let prop = weighted_prop / delivered;
                let stretch = if direct > 0.0 {
                    prop / direct
                } else {
                    f64::NAN
                };
                admitted += 1;
                obs.latency_ms.observe(lat);
                if stretch.is_finite() {
                    obs.stretch.observe(stretch);
                }
                (lat, stretch)
            } else {
                dropped += 1;
                (f64::NAN, f64::NAN)
            };
            delivered_total += delivered;
            routed.push(RoutedFlow {
                flow,
                delivered_mbps: delivered,
                latency_ms,
                stretch,
                paths_used: used,
            });
        }

        obs.flows_offered.add(flows.len() as u64);
        obs.flows_admitted.add(admitted);
        obs.flows_dropped.add(dropped);
        if egoist_obs::is_enabled() {
            // Utilization of every link that carried traffic this epoch.
            let consumed = ledger.consumed_matrix();
            for i in 0..n {
                for j in 0..n {
                    let used = consumed[i * n + j];
                    let cap = inp.capacity.at(i, j);
                    if used > 0.0 && cap > 0.0 {
                        obs.link_utilization.observe(used / cap);
                    }
                }
            }
        }

        if self.cfg.max_paths > 1 {
            self.mp_cache = Some((epoch, overlay_fp, pair_paths));
        }

        RouteOutcome {
            flows: routed,
            offered_mbps: offered,
            delivered_mbps: delivered_total,
            consumed: ledger.consumed_matrix().to_vec(),
            forwarded: ledger.forwarded_per_node().to_vec(),
            route_changes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-node line 0→1→2→3 with a costly shortcut 0→3.
    fn line_overlay() -> DiGraph {
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        g.add_edge(NodeId(2), NodeId(3), 1.0);
        g.add_edge(NodeId(0), NodeId(3), 10.0);
        g
    }

    fn inputs<'a>(
        overlay: &'a DiGraph,
        delays: &'a DistanceMatrix,
        loads: &'a [f64],
        cap: &'a DistanceMatrix,
    ) -> RouteInputs<'a> {
        RouteInputs {
            overlay,
            true_delays: delays,
            node_load: loads,
            capacity: cap,
        }
    }

    #[test]
    fn follows_announced_shortest_path() {
        let overlay = line_overlay();
        let delays = DistanceMatrix::off_diagonal(4, 5.0);
        let loads = [0.0; 4];
        let cap = DistanceMatrix::off_diagonal(4, 1000.0);
        let mut r = FlowRouter::default();
        let out = r.route(
            0,
            &[Flow {
                src: NodeId(0),
                dst: NodeId(3),
                rate_mbps: 10.0,
            }],
            &inputs(&overlay, &delays, &loads, &cap),
        );
        // Announced-shortest is the 3-hop line (cost 3 < 10): 3 × 5 ms.
        assert_eq!(out.flows[0].delivered_mbps, 10.0);
        assert!((out.flows[0].latency_ms - 15.0).abs() < 1e-9);
        assert!((out.flows[0].stretch - 3.0).abs() < 1e-9);
    }

    #[test]
    fn hot_relay_inflates_latency() {
        let overlay = line_overlay();
        let delays = DistanceMatrix::off_diagonal(4, 5.0);
        let cap = DistanceMatrix::off_diagonal(4, 1000.0);
        let cool = [0.0, 0.0, 0.0, 0.0];
        let hot = [0.0, 20.0, 0.0, 0.0]; // relay v1 is slammed
        let mut r = FlowRouter::default();
        let f = [Flow {
            src: NodeId(0),
            dst: NodeId(3),
            rate_mbps: 1.0,
        }];
        let lat_cool = r
            .route(0, &f, &inputs(&overlay, &delays, &cool, &cap))
            .flows[0]
            .latency_ms;
        let lat_hot = r.route(0, &f, &inputs(&overlay, &delays, &hot, &cap)).flows[0].latency_ms;
        assert!(
            lat_hot > lat_cool + 30.0,
            "20 load × 2 ms = 40 ms extra: {lat_cool} vs {lat_hot}"
        );
    }

    #[test]
    fn capacity_starvation_reduces_delivery() {
        let overlay = line_overlay();
        let delays = DistanceMatrix::off_diagonal(4, 5.0);
        let loads = [0.0; 4];
        let cap = DistanceMatrix::off_diagonal(4, 8.0);
        let mut r = FlowRouter::default();
        let out = r.route(
            0,
            &[
                Flow {
                    src: NodeId(0),
                    dst: NodeId(2),
                    rate_mbps: 6.0,
                },
                Flow {
                    src: NodeId(0),
                    dst: NodeId(2),
                    rate_mbps: 6.0,
                },
            ],
            &inputs(&overlay, &delays, &loads, &cap),
        );
        // The shared 0→1 link caps the pair at 8 Mbps total.
        assert_eq!(out.flows[0].delivered_mbps, 6.0);
        assert_eq!(out.flows[1].delivered_mbps, 2.0);
        assert!((out.delivery_ratio() - 8.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn unroutable_flow_counts_as_undelivered() {
        let mut overlay = DiGraph::new(3);
        overlay.add_edge(NodeId(0), NodeId(1), 1.0);
        let delays = DistanceMatrix::off_diagonal(3, 5.0);
        let loads = [0.0; 3];
        let cap = DistanceMatrix::off_diagonal(3, 100.0);
        let out = FlowRouter::default().route(
            0,
            &[Flow {
                src: NodeId(0),
                dst: NodeId(2),
                rate_mbps: 4.0,
            }],
            &inputs(&overlay, &delays, &loads, &cap),
        );
        assert_eq!(out.flows[0].delivered_mbps, 0.0);
        assert!(out.flows[0].latency_ms.is_nan());
        assert_eq!(out.delivery_ratio(), 0.0);
    }

    #[test]
    fn multipath_exceeds_single_path_on_bottleneck() {
        // Diamond: 0→1→3 and 0→2→3, each path 10 Mbps.
        let mut overlay = DiGraph::new(4);
        overlay.add_edge(NodeId(0), NodeId(1), 1.0);
        overlay.add_edge(NodeId(1), NodeId(3), 1.0);
        overlay.add_edge(NodeId(0), NodeId(2), 2.0);
        overlay.add_edge(NodeId(2), NodeId(3), 2.0);
        let delays = DistanceMatrix::off_diagonal(4, 5.0);
        let loads = [0.0; 4];
        let cap = DistanceMatrix::off_diagonal(4, 10.0);
        let f = [Flow {
            src: NodeId(0),
            dst: NodeId(3),
            rate_mbps: 18.0,
        }];
        let mut single = FlowRouter::new(RouterConfig {
            max_paths: 1,
            ..Default::default()
        });
        let mut multi = FlowRouter::new(RouterConfig {
            max_paths: 2,
            ..Default::default()
        });
        let inp = inputs(&overlay, &delays, &loads, &cap);
        assert_eq!(single.route(0, &f, &inp).delivered_mbps, 10.0);
        assert_eq!(multi.route(0, &f, &inp).delivered_mbps, 18.0);
        let out = multi.route(0, &f, &inp);
        assert_eq!(out.flows[0].paths_used, 2);
    }

    #[test]
    fn forwarded_and_consumed_feed_back() {
        let overlay = line_overlay();
        let delays = DistanceMatrix::off_diagonal(4, 5.0);
        let loads = [0.0; 4];
        let cap = DistanceMatrix::off_diagonal(4, 100.0);
        let out = FlowRouter::default().route(
            0,
            &[Flow {
                src: NodeId(0),
                dst: NodeId(3),
                rate_mbps: 9.0,
            }],
            &inputs(&overlay, &delays, &loads, &cap),
        );
        assert_eq!(out.forwarded, vec![9.0, 9.0, 9.0, 0.0]);
        let n = 4;
        assert_eq!(out.consumed[n + 2], 9.0); // 1→2
    }
}
