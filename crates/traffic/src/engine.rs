//! The closed-loop engine: control plane and data plane, epoch by epoch.
//!
//! Each epoch:
//!
//! 1. the control plane runs its staggered re-wiring turns
//!    ([`Simulator::run_epoch`]) — policies consume announced costs,
//!    which (with feedback on) already reflect last epoch's traffic;
//! 2. the demand generator emits this epoch's flows over the alive
//!    population;
//! 3. the router forwards them along announced-shortest overlay paths,
//!    metering into true link capacity and charging true per-hop delay
//!    plus load-proportional processing;
//! 4. carried traffic is fed back into the underlay (induced load,
//!    consumed bandwidth) — the congestion best response reacts to next
//!    epoch;
//! 5. the epoch is measured (control-plane sample + traffic report).

use crate::backpressure::BackpressureConfig;
use crate::demand::{DemandGenerator, WorkloadKind};
use crate::feedback::{self, AimdConfig, AimdController, FeedbackConfig};
use crate::policy::{DataPolicyKind, DelayAwareConfig};
use crate::report::TrafficReport;
use crate::router::{RouteInputs, RouterConfig};
use egoist_core::policies::PolicyKind;
use egoist_core::sim::{Metric, SimConfig, Simulator};
use egoist_graph::DistanceMatrix;

/// Smoothing factor for the observed demand matrix fed to
/// traffic-aware wiring (per-epoch EWMA over offered rates).
const DEMAND_EWMA_ALPHA: f64 = 0.3;

/// Everything one traffic experiment needs.
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// Control-plane configuration (nodes, policy, metric, epochs…).
    pub sim: SimConfig,
    pub workload: WorkloadKind,
    /// Offered load per epoch (Mbps).
    pub offered_mbps: f64,
    /// Flows per epoch.
    pub flows_per_epoch: usize,
    pub router: RouterConfig,
    pub feedback: FeedbackConfig,
    /// Which data-plane routing policy carries the flows. The default
    /// ([`DataPolicyKind::ShortestPath`]) reproduces the pre-policy
    /// engine byte for byte.
    pub data_policy: DataPolicyKind,
    /// Backpressure tuning (used when `data_policy` is `Backpressure`).
    pub backpressure: BackpressureConfig,
    /// Delay-aware tuning (used when `data_policy` is `DelayAware`).
    pub delay_aware: DelayAwareConfig,
    /// Per-flow AIMD congestion control (off by default).
    pub aimd: AimdConfig,
}

impl TrafficConfig {
    /// A compact default: uniform workload, closed loop, single-path
    /// routing, 150 Mbps offered over 32 flows (a load a k-regular
    /// overlay of PlanetLab-like access links can mostly carry; raise
    /// `offered_mbps` to study saturation).
    pub fn new(n: usize, k: usize, policy: PolicyKind, metric: Metric, seed: u64) -> Self {
        let mut sim = SimConfig::baseline(k, policy, metric, seed);
        sim.n = n;
        sim.epochs = 12;
        sim.warmup_epochs = 4;
        TrafficConfig {
            sim,
            workload: WorkloadKind::Uniform,
            offered_mbps: 150.0,
            flows_per_epoch: 32,
            router: RouterConfig::default(),
            feedback: FeedbackConfig::default(),
            data_policy: DataPolicyKind::ShortestPath,
            backpressure: BackpressureConfig::default(),
            delay_aware: DelayAwareConfig::default(),
            aimd: AimdConfig::default(),
        }
    }
}

/// Runs a [`TrafficConfig`] to completion.
pub struct TrafficEngine;

impl TrafficEngine {
    /// Run the experiment and produce its report.
    pub fn run(cfg: &TrafficConfig) -> TrafficReport {
        let mut sim = Simulator::new(cfg.sim.clone());
        let n = cfg.sim.n;
        let demand = DemandGenerator::new(
            cfg.workload,
            n,
            cfg.offered_mbps,
            cfg.flows_per_epoch,
            cfg.sim.seed,
            sim.delays().base(),
        );
        let mut policy =
            cfg.data_policy
                .instantiate(n, cfg.router, cfg.backpressure, cfg.delay_aware);
        let mut aimd = AimdController::new(cfg.aimd);
        // Traffic-aware wiring: maintain an EWMA of the offered demand
        // matrix and feed it to the control plane, which blends it into
        // the BR preference weights. The feed is a no-op for every
        // other wiring policy, so default runs are untouched.
        let traffic_aware = matches!(cfg.sim.policy, PolicyKind::TrafficAware { .. });
        let mut demand_ewma = vec![0.0f64; n * n];
        let epoch_timer = egoist_obs::registry().timer("traffic.epoch");
        let mut report = TrafficReport::new(
            sim.config_label(),
            demand.kind().label().to_string(),
            cfg.sim.seed,
            cfg.feedback.enabled,
            cfg.sim.warmup_epochs,
        );
        if cfg.data_policy != DataPolicyKind::ShortestPath {
            report.data_policy = Some(cfg.data_policy.label().to_string());
        }

        for epoch in 0..cfg.sim.epochs {
            let _epoch_span = epoch_timer.start();
            let rewirings = sim.run_epoch(epoch);

            let flows = demand.generate(epoch, sim.alive());
            if traffic_aware {
                for v in demand_ewma.iter_mut() {
                    *v *= 1.0 - DEMAND_EWMA_ALPHA;
                }
                for f in &flows {
                    demand_ewma[f.src.index() * n + f.dst.index()] +=
                        DEMAND_EWMA_ALPHA * f.rate_mbps;
                }
                // Seen at the *next* epoch's re-wiring turns — demand
                // observations lag one epoch, like every other sensor.
                sim.set_observed_demand(&demand_ewma);
            }
            let flows = aimd.shape(&flows);
            // Zero-copy read path: borrow the announced matrix from the
            // live route snapshot when one exists (bit-identical to
            // recomputing it) instead of materializing a fresh one.
            let announced = sim.announced_view();
            // Routing is additive shortest-path; under the bandwidth
            // metric announced costs are capacities, so invert them to
            // make fat links cheap.
            let inverted;
            let routing_costs: &DistanceMatrix = if cfg.sim.metric == Metric::Bandwidth {
                inverted = DistanceMatrix::from_fn(n, |i, j| 1.0 / (announced.at(i, j) + 1e-6));
                &inverted
            } else {
                &announced
            };
            let overlay = sim.wiring().to_graph(routing_costs, sim.alive());
            let true_delays = sim.delays().current();
            let node_load: Vec<f64> = (0..n).map(|i| sim.loads().instantaneous(i)).collect();
            let capacity =
                DistanceMatrix::from_fn(n, |i, j| sim.bandwidths().unloaded_available(i, j));
            let inputs = RouteInputs {
                overlay: &overlay,
                true_delays: &true_delays,
                node_load: &node_load,
                capacity: &capacity,
            };
            let outcome = policy.route_epoch(epoch as u64, &flows, &inputs);
            aimd.update(&outcome);

            // Closed loop: next epoch's sensors and probes see this.
            feedback::apply(&mut sim, &outcome, &cfg.feedback);

            let sample = sim.measure(epoch, rewirings);
            report.record(&outcome, &sample);
        }
        report
    }
}

/// One point of an offered-load sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    pub data_policy: DataPolicyKind,
    pub offered_mbps: f64,
    pub report: TrafficReport,
}

/// Sweep offered load × data policy over one base configuration — the
/// single code path shared by the `traffic_workloads --sweep` mode and
/// the `policy_race` bench bin. Points are produced in deterministic
/// order: policies outer, loads inner.
pub fn sweep_offered(
    base: &TrafficConfig,
    loads: &[f64],
    policies: &[DataPolicyKind],
) -> Vec<SweepPoint> {
    let mut points = Vec::with_capacity(loads.len() * policies.len());
    for &data_policy in policies {
        for &offered_mbps in loads {
            let mut cfg = base.clone();
            cfg.data_policy = data_policy;
            cfg.offered_mbps = offered_mbps;
            points.push(SweepPoint {
                data_policy,
                offered_mbps,
                report: TrafficEngine::run(&cfg),
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(policy: PolicyKind, metric: Metric, seed: u64) -> TrafficConfig {
        let mut cfg = TrafficConfig::new(16, 3, policy, metric, seed);
        cfg.sim.epochs = 8;
        cfg.sim.warmup_epochs = 3;
        cfg.flows_per_epoch = 24;
        cfg
    }

    #[test]
    fn br_overlay_carries_most_of_the_offered_load() {
        // Light load: losses are the weak access links' (lognormal
        // tail), not routing — the ratio plateaus near 0.78 on this
        // underlay seed regardless of policy.
        let mut cfg = quick(PolicyKind::BestResponse, Metric::DelayPing, 2);
        cfg.offered_mbps = 40.0;
        let r = TrafficEngine::run(&cfg);
        assert!(
            r.summary.delivery_ratio > 0.7,
            "BR should carry most traffic: {}",
            r.summary.delivery_ratio
        );
        assert!(r.summary.p99_latency_ms.is_finite());
        assert!(r.summary.mean_stretch >= 1.0 - 1e-9);
    }

    #[test]
    fn br_latency_beats_random_on_delay_metric() {
        let br = TrafficEngine::run(&quick(PolicyKind::BestResponse, Metric::DelayPing, 2));
        let rnd = TrafficEngine::run(&quick(PolicyKind::Random, Metric::DelayPing, 2));
        assert!(
            br.summary.p50_latency_ms < rnd.summary.p50_latency_ms,
            "selfish wiring should carry flows faster: BR {} vs Random {}",
            br.summary.p50_latency_ms,
            rnd.summary.p50_latency_ms
        );
        assert!(
            br.summary.mean_stretch < rnd.summary.mean_stretch,
            "BR paths should stretch less: {} vs {}",
            br.summary.mean_stretch,
            rnd.summary.mean_stretch
        );
    }

    #[test]
    fn same_seed_bit_identical_report() {
        let cfg = quick(PolicyKind::BestResponse, Metric::Load, 5);
        let a = TrafficEngine::run(&cfg).to_json();
        let b = TrafficEngine::run(&cfg).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TrafficEngine::run(&quick(PolicyKind::BestResponse, Metric::DelayPing, 1));
        let b = TrafficEngine::run(&quick(PolicyKind::BestResponse, Metric::DelayPing, 2));
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn closed_loop_changes_the_run() {
        let mut open = quick(PolicyKind::BestResponse, Metric::Load, 3);
        open.feedback.enabled = false;
        let mut closed = open.clone();
        closed.feedback.enabled = true;
        let ro = TrafficEngine::run(&open);
        let rc = TrafficEngine::run(&closed);
        assert_ne!(
            ro.to_json(),
            rc.to_json(),
            "feedback must alter measured behavior"
        );
    }

    #[test]
    fn multipath_delivers_at_least_single_path_under_pressure() {
        let mut single = quick(PolicyKind::BestResponse, Metric::DelayPing, 4);
        single.offered_mbps = 4000.0; // pressure the links
        let mut multi = single.clone();
        multi.router.max_paths = 3;
        let rs = TrafficEngine::run(&single);
        let rm = TrafficEngine::run(&multi);
        assert!(
            rm.summary.delivered_mbps >= rs.summary.delivered_mbps * 0.99,
            "multipath {} vs single {}",
            rm.summary.delivered_mbps,
            rs.summary.delivered_mbps
        );
    }

    #[test]
    fn data_policies_same_seed_bit_identical() {
        for dp in DataPolicyKind::all() {
            let mut cfg = quick(PolicyKind::BestResponse, Metric::DelayPing, 11);
            cfg.data_policy = dp;
            cfg.offered_mbps = 900.0;
            let a = TrafficEngine::run(&cfg).to_json();
            let b = TrafficEngine::run(&cfg).to_json();
            assert_eq!(a, b, "{dp:?} must be deterministic");
        }
    }

    #[test]
    fn non_default_policy_labels_its_report() {
        let mut cfg = quick(PolicyKind::BestResponse, Metric::DelayPing, 3);
        cfg.data_policy = DataPolicyKind::Backpressure;
        let r = TrafficEngine::run(&cfg);
        assert_eq!(r.data_policy.as_deref(), Some("backpressure"));
        assert!(r.to_json().contains("\"data_policy\":\"backpressure\""));
        assert!(r.summary.delivered_mbps > 0.0);
    }

    #[test]
    fn aimd_shapes_offered_load_under_saturation() {
        let mut cfg = quick(PolicyKind::BestResponse, Metric::DelayPing, 4);
        cfg.offered_mbps = 5000.0; // far beyond capacity
        let baseline = TrafficEngine::run(&cfg);
        cfg.aimd.enabled = true;
        let shaped = TrafficEngine::run(&cfg);
        // AIMD backs senders off, so less is offered into the network…
        let last = shaped.epochs.last().unwrap();
        assert!(
            last.offered_mbps < 5000.0 * 0.9,
            "AIMD should shape offered load: {}",
            last.offered_mbps
        );
        // …and the delivery ratio of what *is* sent improves.
        assert!(
            shaped.summary.delivery_ratio > baseline.summary.delivery_ratio,
            "shaped {} vs one-shot {}",
            shaped.summary.delivery_ratio,
            baseline.summary.delivery_ratio
        );
    }

    #[test]
    fn sweep_covers_grid_in_order() {
        let mut base = quick(PolicyKind::BestResponse, Metric::DelayPing, 5);
        base.sim.epochs = 4;
        base.sim.warmup_epochs = 1;
        let pts = sweep_offered(
            &base,
            &[50.0, 500.0],
            &[DataPolicyKind::ShortestPath, DataPolicyKind::Backpressure],
        );
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].data_policy, DataPolicyKind::ShortestPath);
        assert_eq!(pts[0].offered_mbps, 50.0);
        assert_eq!(pts[3].data_policy, DataPolicyKind::Backpressure);
        assert_eq!(pts[3].offered_mbps, 500.0);
        for p in &pts {
            assert!(p.report.summary.delivered_mbps > 0.0);
        }
    }

    #[test]
    fn all_workloads_run_on_all_core_policies() {
        for kind in WorkloadKind::all() {
            for policy in [
                PolicyKind::BestResponse,
                PolicyKind::Random,
                PolicyKind::Closest,
            ] {
                let mut cfg = quick(policy, Metric::DelayPing, 6);
                cfg.sim.epochs = 4;
                cfg.sim.warmup_epochs = 1;
                cfg.workload = kind;
                let r = TrafficEngine::run(&cfg);
                assert_eq!(r.epochs.len(), 4, "{kind:?}/{policy:?}");
                assert!(r.summary.delivered_mbps > 0.0, "{kind:?}/{policy:?}");
            }
        }
    }
}
