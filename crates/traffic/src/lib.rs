//! # egoist-traffic — a closed-loop data-plane workload engine
//!
//! The EGOIST paper argues that selfishly-wired overlays *carry traffic*
//! better — lower delay, higher bottleneck bandwidth, graceful load
//! behavior (§4–§5) — yet a control-plane simulation alone only measures
//! static graph costs. This crate makes traffic actually flow:
//!
//! * [`demand`] — deterministic flow-level demand generators: uniform
//!   all-pairs, Zipf/gravity hot-spots, broadcast/gossip fan-out and
//!   CDN-style client→origin pulls. All conserve a configured offered
//!   load per epoch and derive their randomness from
//!   `egoist_netsim::rng`, so a seed pins the whole workload.
//! * [`router`] — forwards each flow along the *announced*-shortest
//!   overlay path (what link-state routing actually computes), with an
//!   optional multipath mode that splits a flow over edge-disjoint
//!   paths; charges realized per-hop propagation delay plus per-hop
//!   processing delay proportional to true node load.
//! * [`capacity`] — the ledger that meters flows into finite link
//!   capacity and accounts per-node forwarded traffic.
//! * [`feedback`] — the closed loop: carried traffic is charged back
//!   into the underlay's [`egoist_netsim::LoadModel`] (induced load) and
//!   [`egoist_netsim::BandwidthModel`] (consumed capacity), so next
//!   epoch's announcements — EWMA load, bandwidth probes — react to the
//!   congestion the overlay itself created, and best-response rewiring
//!   routes around it.
//! * [`policy`] — the [`policy::RoutingPolicy`] trait and its three
//!   implementations: the shortest-path router above, per-destination
//!   [`backpressure`] (differential-backlog forwarding over [`queue`]
//!   fluid queues — throughput-optimal, latency-oblivious) and a
//!   delay-aware variant that augments announced edge weights with a
//!   smoothed queuing-delay estimate and only re-routes past a
//!   hysteresis margin (bounded flapping).
//! * [`engine`] — drives an `egoist_core::sim::Simulator` epoch by epoch
//!   (control plane), routes the epoch's flows (data plane) through the
//!   configured policy with optional AIMD per-flow shaping
//!   ([`feedback::AimdController`]), applies feedback, and measures.
//!   [`engine::sweep_offered`] sweeps offered load × policy grids — the
//!   single code path shared by the `policy_race` and
//!   `traffic_workloads --sweep` binaries.
//! * [`report`] — the [`report::TrafficReport`] metrics sink:
//!   throughput, delivery ratio, p50/p99 flow latency, path stretch vs.
//!   the direct underlay path — exported as JSON (via [`json`], a small
//!   vendored writer, since the build environment has no serde).
//!
//! ```
//! use egoist_traffic::demand::WorkloadKind;
//! use egoist_traffic::engine::{TrafficConfig, TrafficEngine};
//! use egoist_core::policies::PolicyKind;
//! use egoist_core::sim::Metric;
//!
//! let mut cfg = TrafficConfig::new(16, 3, PolicyKind::BestResponse, Metric::Load, 7);
//! cfg.sim.epochs = 6;
//! cfg.sim.warmup_epochs = 2;
//! cfg.workload = WorkloadKind::Gravity { exponent: 1.0 };
//! let report = TrafficEngine::run(&cfg);
//! assert!(report.summary.delivered_mbps > 0.0);
//! assert!(report.to_json().starts_with('{'));
//! ```

pub mod backpressure;
pub mod capacity;
pub mod demand;
pub mod engine;
pub mod feedback;
pub mod json;
pub mod policy;
pub mod queue;
pub mod report;
pub mod router;

pub use backpressure::{BackpressureConfig, BackpressureEngine};
pub use demand::{DemandGenerator, Flow, WorkloadKind};
pub use engine::{sweep_offered, SweepPoint, TrafficConfig, TrafficEngine};
pub use feedback::{AimdConfig, AimdController};
pub use policy::{DataPolicyKind, DelayAwareConfig, RoutingPolicy};
pub use report::TrafficReport;
pub use router::{FlowRouter, RouteOutcome};

#[cfg(test)]
mod proptests;
