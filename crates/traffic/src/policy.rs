//! The data-plane routing policy abstraction.
//!
//! Three ways to turn one epoch's flows into carried traffic:
//!
//! * [`DataPolicyKind::ShortestPath`] — the original announced-shortest
//!   path router ([`FlowRouter`]), optionally multipath. One-shot
//!   admission against the capacity ledger.
//! * [`DataPolicyKind::Backpressure`] — per-destination-queue
//!   differential-backlog forwarding ([`crate::backpressure`]):
//!   throughput-optimal, path-free, pays for it in queueing delay.
//! * [`DataPolicyKind::DelayAware`] — shortest path over announced cost
//!   **plus** a smoothed per-link queuing-delay estimate, with
//!   hysteresis on path switches (Jonglez et al., arXiv:1403.3488):
//!   a flow's path changes only when the alternative is at least
//!   `hysteresis` relatively cheaper — with both paths evaluated under
//!   the flow's own induced queue, so an idle alternative can't look
//!   spuriously cheap — which kills route flapping on saturated links.
//!   Route changes are counted into [`RouteOutcome::route_changes`].
//!
//! All three implement [`RoutingPolicy`] and are driven identically by
//! the engine, so benches sweep them through one code path.

use crate::backpressure::{BackpressureConfig, BackpressureEngine};
use crate::capacity::CapacityLedger;
use crate::demand::Flow;
use crate::router::{FlowRouter, RouteInputs, RouteOutcome, RoutedFlow, RouterConfig};
use egoist_graph::csr::{path_from_parents, NO_PARENT};
use egoist_graph::{CsrGraph, DiGraph, DijkstraWorkspace, NodeId};
use std::collections::HashMap;

/// One epoch of routing under some policy. Implementations may keep
/// cross-epoch state (queues, smoothed delay estimates, remembered
/// paths) but must stay deterministic: same construction + same call
/// sequence → bit-identical outcomes.
pub trait RoutingPolicy {
    fn label(&self) -> &'static str;
    fn route_epoch(&mut self, epoch: u64, flows: &[Flow], inp: &RouteInputs<'_>) -> RouteOutcome;
}

/// Which data-plane policy the engine runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DataPolicyKind {
    /// Announced-shortest-path (the pre-existing router). The default:
    /// report bytes and perf fingerprints are pinned to it.
    #[default]
    ShortestPath,
    /// Differential-backlog forwarding with per-destination queues.
    Backpressure,
    /// Smoothed queuing-delay metric with switch hysteresis.
    DelayAware,
}

impl DataPolicyKind {
    pub fn label(self) -> &'static str {
        match self {
            DataPolicyKind::ShortestPath => "spf",
            DataPolicyKind::Backpressure => "backpressure",
            DataPolicyKind::DelayAware => "delay-aware",
        }
    }

    pub fn all() -> [DataPolicyKind; 3] {
        [
            DataPolicyKind::ShortestPath,
            DataPolicyKind::Backpressure,
            DataPolicyKind::DelayAware,
        ]
    }

    /// Build the policy object for an `n`-node run.
    pub fn instantiate(
        self,
        n: usize,
        router: RouterConfig,
        bp: BackpressureConfig,
        da: DelayAwareConfig,
    ) -> Box<dyn RoutingPolicy + Send> {
        match self {
            DataPolicyKind::ShortestPath => Box::new(ShortestPathPolicy {
                router: FlowRouter::new(router),
            }),
            DataPolicyKind::Backpressure => Box::new(BackpressurePolicy {
                engine: BackpressureEngine::new(n, bp, router.proc_ms_per_load),
            }),
            DataPolicyKind::DelayAware => Box::new(DelayAwarePolicy::new(n, da, router)),
        }
    }
}

/// The existing router behind the trait.
pub struct ShortestPathPolicy {
    pub router: FlowRouter,
}

impl RoutingPolicy for ShortestPathPolicy {
    fn label(&self) -> &'static str {
        "spf"
    }

    fn route_epoch(&mut self, epoch: u64, flows: &[Flow], inp: &RouteInputs<'_>) -> RouteOutcome {
        self.router.route(epoch, flows, inp)
    }
}

/// Backpressure behind the trait.
pub struct BackpressurePolicy {
    pub engine: BackpressureEngine,
}

impl RoutingPolicy for BackpressurePolicy {
    fn label(&self) -> &'static str {
        "backpressure"
    }

    fn route_epoch(&mut self, _epoch: u64, flows: &[Flow], inp: &RouteInputs<'_>) -> RouteOutcome {
        self.engine.route_epoch(flows, inp)
    }
}

/// Delay-aware tuning.
#[derive(Clone, Copy, Debug)]
pub struct DelayAwareConfig {
    /// Weight of the smoothed queuing-delay estimate in the routing
    /// cost (`w' = announced + delay_weight · q̂`).
    pub delay_weight: f64,
    /// Relative-improvement threshold for switching paths: keep the
    /// current path unless the best alternative costs less than
    /// `(1 − hysteresis) ×` the current one. 0 disables hysteresis.
    pub hysteresis: f64,
    /// EWMA smoothing factor for the per-link queuing estimate.
    pub ewma_alpha: f64,
    /// Cap on the per-link queuing estimate (ms) — keeps the M/M/1
    /// blow-up `ρ/(1−ρ)` finite at saturation.
    pub max_queue_ms: f64,
}

impl Default for DelayAwareConfig {
    fn default() -> Self {
        DelayAwareConfig {
            delay_weight: 1.0,
            hysteresis: 0.15,
            ewma_alpha: 0.3,
            max_queue_ms: 50.0,
        }
    }
}

/// Shortest-path routing on `announced + smoothed queuing delay`, with
/// switch hysteresis. Keeps per-link EWMA estimates and each pair's
/// current path across epochs.
pub struct DelayAwarePolicy {
    n: usize,
    cfg: DelayAwareConfig,
    router_cfg: RouterConfig,
    /// Smoothed queuing-delay estimate per directed pair (ms), dense.
    ewma_ms: Vec<f64>,
    /// The path each (src, dst) pair is currently committed to.
    current_paths: HashMap<(u32, u32), Vec<NodeId>>,
    /// Lifetime route-change count (steady-state flapping observable).
    pub route_changes_total: u64,
}

impl DelayAwarePolicy {
    pub fn new(n: usize, cfg: DelayAwareConfig, router_cfg: RouterConfig) -> Self {
        DelayAwarePolicy {
            n,
            cfg,
            router_cfg,
            ewma_ms: vec![0.0; n * n],
            current_paths: HashMap::new(),
            route_changes_total: 0,
        }
    }

    #[inline]
    fn q_est(&self, u: NodeId, v: NodeId) -> f64 {
        self.ewma_ms[u.index() * self.n + v.index()]
    }

    /// The queuing delay `rate` Mbps would induce by itself on a link of
    /// capacity `cap` (same capped M/M/1 shape as the measured estimate).
    fn q_self(&self, rate: f64, cap: f64) -> f64 {
        if cap <= 0.0 {
            return self.cfg.max_queue_ms;
        }
        let rho = (rate / cap).min(0.95);
        (rho / (1.0 - rho)).min(self.cfg.max_queue_ms)
    }

    /// Switch-decision cost of `path` for a flow of `rate` Mbps: per hop,
    /// announced weight plus `delay_weight · max(q̂, q_self)`. Flooring
    /// the measured estimate with the flow's *own* induced queue is what
    /// kills ping-ponging — an idle alternative's estimate decays toward
    /// zero, but it would saturate the moment the flow moved there, and
    /// this cost says so up front. `None` when an edge no longer exists
    /// (rewire/churn invalidated the path).
    fn switch_cost(&self, path: &[NodeId], inp: &RouteInputs<'_>, rate: f64) -> Option<f64> {
        let mut cost = 0.0;
        for w in path.windows(2) {
            let base = inp.overlay.edge_cost(w[0], w[1])?;
            let q = self
                .q_est(w[0], w[1])
                .max(self.q_self(rate, inp.capacity.get(w[0], w[1])));
            cost += base + self.cfg.delay_weight * q;
        }
        Some(cost)
    }

    /// Realized latency: true propagation + load-proportional processing
    /// (as the other policies charge) + the smoothed queuing estimate on
    /// every hop — the delay the metric itself predicts.
    fn realized_latency_ms(&self, path: &[NodeId], inp: &RouteInputs<'_>) -> f64 {
        let mut ms = 0.0;
        for w in path.windows(2) {
            ms += inp.true_delays.get(w[0], w[1]);
            ms += self.router_cfg.proc_ms_per_load * inp.node_load[w[1].index()];
            ms += self.q_est(w[0], w[1]);
        }
        ms
    }
}

impl RoutingPolicy for DelayAwarePolicy {
    fn label(&self) -> &'static str {
        "delay-aware"
    }

    fn route_epoch(&mut self, _epoch: u64, flows: &[Flow], inp: &RouteInputs<'_>) -> RouteOutcome {
        let n = self.n;
        debug_assert_eq!(inp.overlay.len(), n);

        // Overlay with queuing-adjusted edge weights.
        let mut adjusted = DiGraph::new(n);
        for (u, v, w) in inp.overlay.edges() {
            adjusted.add_edge(u, v, w + self.cfg.delay_weight * self.q_est(u, v));
        }
        let csr = CsrGraph::from_digraph(&adjusted);
        let mut ws = DijkstraWorkspace::new(n);

        // One SSSP per distinct source (computed lazily, like FlowRouter).
        let mut per_source: Vec<Option<(Vec<f64>, Vec<u32>)>> = vec![None; n];
        let mut route_changes = 0u64;
        // Path decision per distinct pair, in first-seen flow order.
        let mut chosen: HashMap<(u32, u32), Option<Vec<NodeId>>> = HashMap::new();
        for flow in flows {
            let key = (flow.src.0, flow.dst.0);
            if chosen.contains_key(&key) {
                continue;
            }
            if per_source[flow.src.index()].is_none() {
                let mut dist = vec![f64::INFINITY; n];
                let mut parent = vec![NO_PARENT; n];
                ws.sssp_into(&csr, flow.src.0, None, &mut dist, &mut parent);
                per_source[flow.src.index()] = Some((dist, parent));
            }
            let (dist, parent) = per_source[flow.src.index()].as_ref().unwrap();
            let candidate = path_from_parents(
                parent,
                flow.src.0,
                flow.dst.0,
                dist[flow.dst.index()].is_finite(),
            );
            let decision = match (self.current_paths.get(&key), candidate) {
                (None, cand) => cand, // first sighting: adopt, not a change
                (Some(old), None) => {
                    // No route at all this epoch; drop the commitment.
                    let _ = old;
                    self.current_paths.remove(&key);
                    None
                }
                (Some(old), Some(cand)) => {
                    match self.switch_cost(old, inp, flow.rate_mbps) {
                        // Old path broken by rewire/churn: forced switch
                        // (not flapping — the route was taken away).
                        None => Some(cand),
                        Some(old_cost) => {
                            let cand_cost = self
                                .switch_cost(&cand, inp, flow.rate_mbps)
                                .unwrap_or(f64::INFINITY);
                            if cand != *old && cand_cost < old_cost * (1.0 - self.cfg.hysteresis) {
                                route_changes += 1;
                                Some(cand)
                            } else {
                                Some(old.clone())
                            }
                        }
                    }
                }
            };
            if let Some(p) = &decision {
                self.current_paths.insert(key, p.clone());
            }
            chosen.insert(key, decision);
        }
        self.route_changes_total += route_changes;

        // Admission in original flow order, against the capacity ledger.
        let obs = crate::router::traffic_obs();
        let mut ledger = CapacityLedger::new(inp.capacity);
        let offered: f64 = flows.iter().map(|f| f.rate_mbps).sum();
        let mut routed = Vec::with_capacity(flows.len());
        let mut delivered_total = 0.0;
        let (mut admitted, mut dropped) = (0u64, 0u64);
        for &flow in flows {
            let path = chosen
                .get(&(flow.src.0, flow.dst.0))
                .and_then(|p| p.as_ref());
            let Some(path) = path else {
                dropped += 1;
                routed.push(RoutedFlow {
                    flow,
                    delivered_mbps: 0.0,
                    latency_ms: f64::NAN,
                    stretch: f64::NAN,
                    paths_used: 0,
                });
                continue;
            };
            let got = ledger.admit(path, flow.rate_mbps);
            let (latency_ms, stretch) = if got > 0.0 {
                let lat = self.realized_latency_ms(path, inp);
                let direct = inp.true_delays.get(flow.src, flow.dst);
                let prop: f64 = path
                    .windows(2)
                    .map(|w| inp.true_delays.get(w[0], w[1]))
                    .sum();
                let stretch = if direct > 0.0 {
                    prop / direct
                } else {
                    f64::NAN
                };
                admitted += 1;
                obs.latency_ms.observe(lat);
                if stretch.is_finite() {
                    obs.stretch.observe(stretch);
                }
                (lat, stretch)
            } else {
                dropped += 1;
                (f64::NAN, f64::NAN)
            };
            delivered_total += got;
            routed.push(RoutedFlow {
                flow,
                delivered_mbps: got,
                latency_ms,
                stretch,
                paths_used: usize::from(got > 0.0),
            });
        }
        obs.flows_offered.add(flows.len() as u64);
        obs.flows_admitted.add(admitted);
        obs.flows_dropped.add(dropped);

        // Update the per-link queuing estimate from this epoch's
        // realized utilization: M/M/1-style ρ/(1−ρ), capped, smoothed.
        let consumed = ledger.consumed_matrix();
        let alpha = self.cfg.ewma_alpha;
        for (u, v, _) in inp.overlay.edges() {
            let cap = inp.capacity.get(u, v);
            let idx = u.index() * n + v.index();
            let raw = if cap > 0.0 {
                let rho = (consumed[idx] / cap).min(0.95);
                (rho / (1.0 - rho)).min(self.cfg.max_queue_ms)
            } else {
                self.cfg.max_queue_ms
            };
            self.ewma_ms[idx] = alpha * raw + (1.0 - alpha) * self.ewma_ms[idx];
        }

        RouteOutcome {
            flows: routed,
            offered_mbps: offered,
            delivered_mbps: delivered_total,
            consumed: consumed.to_vec(),
            forwarded: ledger.forwarded_per_node().to_vec(),
            route_changes: route_changes as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egoist_graph::DistanceMatrix;

    fn diamond() -> DiGraph {
        // Two parallel 2-hop routes 0→1→3 (cheap) and 0→2→3 (pricier).
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(3), 1.0);
        g.add_edge(NodeId(0), NodeId(2), 1.2);
        g.add_edge(NodeId(2), NodeId(3), 1.2);
        g
    }

    fn inputs<'a>(
        overlay: &'a DiGraph,
        delays: &'a DistanceMatrix,
        loads: &'a [f64],
        cap: &'a DistanceMatrix,
    ) -> RouteInputs<'a> {
        RouteInputs {
            overlay,
            true_delays: delays,
            node_load: loads,
            capacity: cap,
        }
    }

    #[test]
    fn hysteresis_prevents_flapping_on_saturated_link() {
        let overlay = diamond();
        let delays = DistanceMatrix::off_diagonal(4, 5.0);
        let loads = [0.0; 4];
        // The cheap path saturates: 10 Mbps links, 9.5 Mbps flow → the
        // queuing estimate on 0→1 climbs every epoch.
        let cap = DistanceMatrix::off_diagonal(4, 10.0);
        let flows = [Flow {
            src: NodeId(0),
            dst: NodeId(3),
            rate_mbps: 9.5,
        }];
        let inp = inputs(&overlay, &delays, &loads, &cap);
        let run = |hysteresis: f64| {
            let mut p = DelayAwarePolicy::new(
                4,
                DelayAwareConfig {
                    hysteresis,
                    ..Default::default()
                },
                RouterConfig::default(),
            );
            for e in 0..24 {
                p.route_epoch(e, &flows, &inp);
            }
            p.route_changes_total
        };
        let with = run(0.25);
        let without = run(0.0);
        assert!(
            with <= without,
            "hysteresis must not flap more: {with} vs {without}"
        );
        assert!(with <= 2, "bounded route changes with hysteresis: {with}");
    }

    #[test]
    fn broken_path_is_replaced_without_counting_as_flap() {
        let mut overlay = diamond();
        let delays = DistanceMatrix::off_diagonal(4, 5.0);
        let loads = [0.0; 4];
        let cap = DistanceMatrix::off_diagonal(4, 100.0);
        let flows = [Flow {
            src: NodeId(0),
            dst: NodeId(3),
            rate_mbps: 1.0,
        }];
        let mut p = DelayAwarePolicy::new(4, DelayAwareConfig::default(), RouterConfig::default());
        let out = p.route_epoch(0, &flows, &inputs(&overlay, &delays, &loads, &cap));
        assert!(out.delivered_mbps > 0.0);
        // Rewire: the committed 0→1→3 route disappears.
        overlay.remove_edge(NodeId(0), NodeId(1));
        let out = p.route_epoch(1, &flows, &inputs(&overlay, &delays, &loads, &cap));
        assert!(out.delivered_mbps > 0.0, "must re-route via 0→2→3");
        assert_eq!(out.route_changes, 0, "forced switch is not flapping");
    }

    #[test]
    fn deterministic_across_runs() {
        let overlay = diamond();
        let delays = DistanceMatrix::off_diagonal(4, 5.0);
        let loads = [0.3; 4];
        let cap = DistanceMatrix::off_diagonal(4, 12.0);
        let flows = [
            Flow {
                src: NodeId(0),
                dst: NodeId(3),
                rate_mbps: 9.0,
            },
            Flow {
                src: NodeId(1),
                dst: NodeId(3),
                rate_mbps: 4.0,
            },
        ];
        let run = || {
            let mut p =
                DelayAwarePolicy::new(4, DelayAwareConfig::default(), RouterConfig::default());
            let mut sig = Vec::new();
            for e in 0..10 {
                let out = p.route_epoch(e, &flows, &inputs(&overlay, &delays, &loads, &cap));
                sig.push((
                    out.delivered_mbps.to_bits(),
                    out.flows[0].latency_ms.to_bits(),
                    out.route_changes,
                ));
            }
            sig
        };
        assert_eq!(run(), run());
    }
}
