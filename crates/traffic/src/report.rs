//! The traffic metrics sink.
//!
//! Collects per-epoch data-plane outcomes alongside the control plane's
//! epoch samples and summarizes the steady state: throughput, delivery
//! ratio, p50/p99 flow latency, mean path stretch. Exported as JSON so
//! experiment binaries can emit machine-readable comparisons.

use crate::json::{array, JsonObject};
use crate::router::RouteOutcome;
use egoist_core::sim::EpochSample;
use egoist_core::stats;

/// One epoch's traffic measurements.
#[derive(Clone, Debug)]
pub struct EpochTraffic {
    pub epoch: usize,
    pub offered_mbps: f64,
    pub delivered_mbps: f64,
    pub delivery_ratio: f64,
    /// Flow-latency percentiles within this epoch (ms; NaN if nothing
    /// was delivered).
    pub p50_latency_ms: f64,
    pub p99_latency_ms: f64,
    pub mean_stretch: f64,
    pub rewirings: usize,
    pub alive: usize,
    /// Committed-path switches this epoch (delay-aware data policy;
    /// always 0 otherwise).
    pub route_changes: usize,
    /// Latencies of every delivered flow (kept so the summary can take
    /// percentiles over flows, not over epoch aggregates).
    latencies_ms: Vec<f64>,
    stretches: Vec<f64>,
}

/// Steady-state summary (warmup epochs dropped).
#[derive(Clone, Debug, Default)]
pub struct TrafficSummary {
    pub offered_mbps: f64,
    pub delivered_mbps: f64,
    pub delivery_ratio: f64,
    pub p50_latency_ms: f64,
    pub p99_latency_ms: f64,
    pub mean_stretch: f64,
    pub mean_rewirings: f64,
    pub flows_measured: usize,
    /// Total route changes over steady epochs (flapping observable).
    pub route_changes: usize,
}

/// The full report for one (policy, workload, seed) run.
#[derive(Clone, Debug)]
pub struct TrafficReport {
    /// Control-plane configuration label (policy, k, metric, n).
    pub config_label: String,
    pub workload: String,
    pub seed: u64,
    pub closed_loop: bool,
    pub warmup_epochs: usize,
    /// Data-plane policy label when a non-default policy ran; `None`
    /// keeps the serialized document byte-identical to the pre-policy
    /// format (the perf fingerprints hash these bytes).
    pub data_policy: Option<String>,
    pub epochs: Vec<EpochTraffic>,
    pub summary: TrafficSummary,
}

impl TrafficReport {
    pub fn new(
        config_label: String,
        workload: String,
        seed: u64,
        closed_loop: bool,
        warmup_epochs: usize,
    ) -> Self {
        TrafficReport {
            config_label,
            workload,
            seed,
            closed_loop,
            warmup_epochs,
            data_policy: None,
            epochs: Vec::new(),
            summary: TrafficSummary::default(),
        }
    }

    /// Record one epoch's routing outcome and control-plane sample.
    pub fn record(&mut self, outcome: &RouteOutcome, sample: &EpochSample) {
        let latencies = outcome.latencies_ms();
        let stretches = outcome.stretches();
        self.epochs.push(EpochTraffic {
            epoch: sample.epoch,
            offered_mbps: outcome.offered_mbps,
            delivered_mbps: outcome.delivered_mbps,
            delivery_ratio: outcome.delivery_ratio(),
            p50_latency_ms: stats::percentile(&latencies, 50.0),
            p99_latency_ms: stats::percentile(&latencies, 99.0),
            mean_stretch: stats::mean(&stretches),
            rewirings: sample.rewirings,
            alive: sample.alive,
            route_changes: outcome.route_changes,
            latencies_ms: latencies,
            stretches,
        });
        self.refresh_summary();
    }

    fn steady(&self) -> impl Iterator<Item = &EpochTraffic> {
        let warmup = self.warmup_epochs;
        self.epochs.iter().filter(move |e| e.epoch >= warmup)
    }

    fn refresh_summary(&mut self) {
        let offered: Vec<f64> = self.steady().map(|e| e.offered_mbps).collect();
        let delivered: Vec<f64> = self.steady().map(|e| e.delivered_mbps).collect();
        let all_lat: Vec<f64> = self
            .steady()
            .flat_map(|e| e.latencies_ms.iter().copied())
            .collect();
        let all_stretch: Vec<f64> = self
            .steady()
            .flat_map(|e| e.stretches.iter().copied())
            .collect();
        let rewirings: Vec<f64> = self.steady().map(|e| e.rewirings as f64).collect();
        let route_changes: usize = self.steady().map(|e| e.route_changes).sum();
        let offered_mean = stats::mean(&offered);
        let delivered_mean = stats::mean(&delivered);
        self.summary = TrafficSummary {
            offered_mbps: offered_mean,
            delivered_mbps: delivered_mean,
            delivery_ratio: if offered_mean > 0.0 {
                delivered_mean / offered_mean
            } else {
                1.0
            },
            p50_latency_ms: stats::percentile(&all_lat, 50.0),
            p99_latency_ms: stats::percentile(&all_lat, 99.0),
            mean_stretch: stats::mean(&all_stretch),
            mean_rewirings: stats::mean(&rewirings),
            flows_measured: all_lat.len(),
            route_changes,
        };
    }

    /// Serialize the whole report (stable field order, deterministic
    /// float formatting — same run, byte-identical document).
    pub fn to_json(&self) -> String {
        // A non-default data policy adds its fields; the default emits
        // the exact legacy byte layout (perf fingerprints pin it).
        let extended = self.data_policy.is_some();
        let epochs = array(self.epochs.iter().map(|e| {
            let mut o = JsonObject::new()
                .u64("epoch", e.epoch as u64)
                .f64("offered_mbps", e.offered_mbps)
                .f64("delivered_mbps", e.delivered_mbps)
                .f64("delivery_ratio", e.delivery_ratio)
                .f64("p50_latency_ms", e.p50_latency_ms)
                .f64("p99_latency_ms", e.p99_latency_ms)
                .f64("mean_stretch", e.mean_stretch)
                .u64("rewirings", e.rewirings as u64)
                .u64("alive", e.alive as u64);
            if extended {
                o = o.u64("route_changes", e.route_changes as u64);
            }
            o.finish()
        }));
        let mut summary = JsonObject::new()
            .f64("offered_mbps", self.summary.offered_mbps)
            .f64("delivered_mbps", self.summary.delivered_mbps)
            .f64("delivery_ratio", self.summary.delivery_ratio)
            .f64("p50_latency_ms", self.summary.p50_latency_ms)
            .f64("p99_latency_ms", self.summary.p99_latency_ms)
            .f64("mean_stretch", self.summary.mean_stretch)
            .f64("mean_rewirings", self.summary.mean_rewirings)
            .u64("flows_measured", self.summary.flows_measured as u64);
        if extended {
            summary = summary.u64("route_changes", self.summary.route_changes as u64);
        }
        let mut top = JsonObject::new()
            .str("config", &self.config_label)
            .str("workload", &self.workload);
        if let Some(dp) = &self.data_policy {
            top = top.str("data_policy", dp);
        }
        top.u64("seed", self.seed)
            .bool("closed_loop", self.closed_loop)
            .u64("warmup_epochs", self.warmup_epochs as u64)
            .raw("summary", summary.finish())
            .raw("epochs", epochs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::Flow;
    use crate::router::RoutedFlow;
    use egoist_graph::NodeId;

    fn outcome(latencies: &[f64]) -> RouteOutcome {
        let flows: Vec<RoutedFlow> = latencies
            .iter()
            .map(|&l| RoutedFlow {
                flow: Flow {
                    src: NodeId(0),
                    dst: NodeId(1),
                    rate_mbps: 1.0,
                },
                delivered_mbps: 1.0,
                latency_ms: l,
                stretch: 1.5,
                paths_used: 1,
            })
            .collect();
        let n = latencies.len() as f64;
        RouteOutcome {
            flows,
            offered_mbps: n,
            delivered_mbps: n,
            consumed: vec![0.0; 4],
            forwarded: vec![0.0; 2],
            route_changes: 0,
        }
    }

    fn sample(epoch: usize) -> egoist_core::sim::EpochSample {
        egoist_core::sim::EpochSample {
            epoch,
            individual_cost: vec![1.0, 1.0],
            efficiency: vec![0.5, 0.5],
            bandwidth_utility: vec![f64::NAN, f64::NAN],
            rewirings: 1,
            alive: 2,
        }
    }

    #[test]
    fn summary_skips_warmup_and_pools_flows() {
        let mut r = TrafficReport::new("BR".into(), "uniform".into(), 1, true, 1);
        r.record(&outcome(&[100.0, 100.0]), &sample(0)); // warmup
        r.record(&outcome(&[10.0, 20.0]), &sample(1));
        r.record(&outcome(&[30.0, 40.0]), &sample(2));
        assert_eq!(r.summary.flows_measured, 4);
        assert!((r.summary.p50_latency_ms - 25.0).abs() < 1e-9);
        assert!((r.summary.delivery_ratio - 1.0).abs() < 1e-9);
        assert!((r.summary.mean_stretch - 1.5).abs() < 1e-9);
    }

    #[test]
    fn json_is_stable_and_contains_sections() {
        let mut r = TrafficReport::new("BR".into(), "cdn".into(), 7, false, 0);
        r.record(&outcome(&[5.0]), &sample(0));
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"workload\":\"cdn\""));
        assert!(a.contains("\"summary\":{"));
        assert!(a.contains("\"epochs\":[{"));
        assert!(a.contains("\"closed_loop\":false"));
    }

    #[test]
    fn data_policy_fields_only_appear_when_set() {
        let mut legacy = TrafficReport::new("BR".into(), "uniform".into(), 1, true, 0);
        legacy.record(&outcome(&[5.0]), &sample(0));
        let legacy_json = legacy.to_json();
        assert!(!legacy_json.contains("data_policy"));
        assert!(!legacy_json.contains("route_changes"));

        let mut ext = legacy.clone();
        ext.data_policy = Some("delay-aware".to_string());
        let ext_json = ext.to_json();
        assert!(ext_json.contains("\"data_policy\":\"delay-aware\""));
        assert!(ext_json.contains("\"route_changes\":0"));
        // The legacy serialization is a strict byte-subsequence concern:
        // removing the new fields must give back the old document.
        ext.data_policy = None;
        assert_eq!(ext.to_json(), legacy_json);
    }

    #[test]
    fn empty_epoch_yields_nan_latency_null_json() {
        let mut r = TrafficReport::new("BR".into(), "uniform".into(), 1, true, 0);
        let mut o = outcome(&[]);
        o.offered_mbps = 0.0;
        o.delivered_mbps = 0.0;
        r.record(&o, &sample(0));
        assert!(r.summary.p99_latency_ms.is_nan());
        assert!(r.to_json().contains("\"p99_latency_ms\":null"));
    }
}
