//! Per-destination fluid queues — the state backpressure routing runs on.
//!
//! Each node holds one queue per destination (a *commodity* in the
//! backpressure literature). Traffic is modeled as fluid: a queue cell
//! stores the backlog volume plus two mass accumulators that travel
//! with the fluid — accrued latency mass (ms · Mbps, waiting time plus
//! per-hop propagation/processing) and propagation-only mass (for path
//! stretch). Moving fluid carries a proportional share of both masses,
//! so the mean latency of whatever finally drains at the destination is
//! exact under the fluid approximation, with no per-packet state.
//!
//! All operations are plain f64 arithmetic over dense `n × n` arrays in
//! fixed index order — two same-seed runs produce bit-identical queues.

use egoist_graph::NodeId;

/// Fluid in motion: a withdrawn parcel and the mass it carries.
#[derive(Clone, Copy, Debug, Default)]
pub struct Parcel {
    /// Volume (Mbps-equivalents of this epoch).
    pub amount: f64,
    /// Accrued latency mass (ms · volume): waiting + hops so far.
    pub lat_mass: f64,
    /// Propagation-only mass (ms · volume).
    pub prop_mass: f64,
}

impl Parcel {
    /// Charge a per-unit hop cost onto the parcel (link traversal).
    pub fn charge_hop(&mut self, latency_ms: f64, prop_ms: f64) {
        self.lat_mass += self.amount * latency_ms;
        self.prop_mass += self.amount * prop_ms;
    }
}

/// Dense per-(node, destination) fluid queues.
#[derive(Clone, Debug)]
pub struct QueueBank {
    n: usize,
    backlog: Vec<f64>,
    lat_mass: Vec<f64>,
    prop_mass: Vec<f64>,
}

impl QueueBank {
    pub fn new(n: usize) -> Self {
        QueueBank {
            n,
            backlog: vec![0.0; n * n],
            lat_mass: vec![0.0; n * n],
            prop_mass: vec![0.0; n * n],
        }
    }

    #[inline]
    fn idx(&self, node: NodeId, dest: NodeId) -> usize {
        node.index() * self.n + dest.index()
    }

    /// Backlog of commodity `dest` queued at `node`.
    pub fn backlog(&self, node: NodeId, dest: NodeId) -> f64 {
        self.backlog[self.idx(node, dest)]
    }

    /// Total queued volume at `node` across all commodities.
    pub fn node_depth(&self, node: NodeId) -> f64 {
        let base = node.index() * self.n;
        self.backlog[base..base + self.n].iter().sum()
    }

    /// Total queued volume across the whole bank.
    pub fn total_backlog(&self) -> f64 {
        self.backlog.iter().sum()
    }

    /// Inject fresh source traffic (zero accrued mass).
    pub fn inject(&mut self, node: NodeId, dest: NodeId, amount: f64) {
        let i = self.idx(node, dest);
        self.backlog[i] += amount;
    }

    /// Withdraw up to `amount` of commodity `dest` from `node`,
    /// carrying the proportional share of its accrued mass.
    pub fn withdraw(&mut self, node: NodeId, dest: NodeId, amount: f64) -> Parcel {
        let i = self.idx(node, dest);
        let have = self.backlog[i];
        if have <= 0.0 || amount <= 0.0 {
            return Parcel::default();
        }
        if amount >= have {
            // Drain the cell exactly — no residue from float division.
            let p = Parcel {
                amount: have,
                lat_mass: self.lat_mass[i],
                prop_mass: self.prop_mass[i],
            };
            self.backlog[i] = 0.0;
            self.lat_mass[i] = 0.0;
            self.prop_mass[i] = 0.0;
            return p;
        }
        let share = amount / have;
        let p = Parcel {
            amount,
            lat_mass: self.lat_mass[i] * share,
            prop_mass: self.prop_mass[i] * share,
        };
        self.backlog[i] -= amount;
        self.lat_mass[i] -= p.lat_mass;
        self.prop_mass[i] -= p.prop_mass;
        p
    }

    /// Deposit a parcel into `node`'s queue for `dest`.
    pub fn deposit(&mut self, node: NodeId, dest: NodeId, p: Parcel) {
        let i = self.idx(node, dest);
        self.backlog[i] += p.amount;
        self.lat_mass[i] += p.lat_mass;
        self.prop_mass[i] += p.prop_mass;
    }

    /// One slot of waiting: every queued unit accrues `slot_ms` of
    /// latency (propagation mass is untouched — waiting is not distance).
    pub fn age(&mut self, slot_ms: f64) {
        for i in 0..self.backlog.len() {
            if self.backlog[i] > 0.0 {
                self.lat_mass[i] += self.backlog[i] * slot_ms;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn withdraw_carries_proportional_mass() {
        let mut q = QueueBank::new(4);
        q.inject(NodeId(0), NodeId(3), 10.0);
        q.age(2.0); // 10 units wait 2 ms → 20 ms·unit of mass
        let p = q.withdraw(NodeId(0), NodeId(3), 4.0);
        assert!((p.amount - 4.0).abs() < 1e-12);
        assert!((p.lat_mass - 8.0).abs() < 1e-12, "{}", p.lat_mass);
        assert!((q.backlog(NodeId(0), NodeId(3)) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn full_withdraw_drains_exactly() {
        let mut q = QueueBank::new(3);
        q.inject(NodeId(1), NodeId(2), 7.5);
        q.age(1.0);
        let p = q.withdraw(NodeId(1), NodeId(2), 100.0);
        assert_eq!(p.amount, 7.5);
        assert_eq!(q.backlog(NodeId(1), NodeId(2)), 0.0);
        assert_eq!(q.total_backlog(), 0.0);
    }

    #[test]
    fn transfer_conserves_volume_and_mass() {
        let mut q = QueueBank::new(3);
        q.inject(NodeId(0), NodeId(2), 8.0);
        q.age(3.0);
        let before_mass = 8.0 * 3.0;
        let mut p = q.withdraw(NodeId(0), NodeId(2), 5.0);
        p.charge_hop(4.0, 4.0); // 5 units × 4 ms hop
        q.deposit(NodeId(1), NodeId(2), p);
        assert!((q.total_backlog() - 8.0).abs() < 1e-12);
        let got = q.withdraw(NodeId(1), NodeId(2), 5.0);
        // 5/8 of the waiting mass plus the hop charge.
        let want = before_mass * 5.0 / 8.0 + 5.0 * 4.0;
        assert!(
            (got.lat_mass - want).abs() < 1e-9,
            "{} vs {want}",
            got.lat_mass
        );
        assert!((got.prop_mass - 20.0).abs() < 1e-9);
    }

    #[test]
    fn node_depth_sums_commodities() {
        let mut q = QueueBank::new(4);
        q.inject(NodeId(2), NodeId(0), 1.5);
        q.inject(NodeId(2), NodeId(3), 2.5);
        assert!((q.node_depth(NodeId(2)) - 4.0).abs() < 1e-12);
    }
}
