//! Differential-backlog (backpressure) forwarding over the overlay.
//!
//! Rai–Singh–Modiano (arXiv:1612.05537) show a backpressure scheme run
//! purely on overlay nodes is throughput-optimal: instead of committing
//! each flow to one precomputed path, every node keeps one queue per
//! destination and each overlay link forwards the commodity with the
//! largest backlog differential `Q_i(d) − Q_j(d)`. Traffic finds every
//! usable path automatically, so delivered throughput approaches the
//! overlay's multi-commodity capacity — at the price of queueing delay.
//!
//! This implementation is a slotted fluid simulation per epoch:
//!
//! * each epoch is divided into [`BackpressureConfig::slots`] service
//!   slots; a link `(i, j)` may move at most `capacity/slots` per slot;
//! * within a slot a link serves commodities by descending differential
//!   (ties broken toward the smallest destination id — deterministic),
//!   until the slot capacity is spent or no differential is positive;
//! * a per-link **virtual queue** tracks what the link moved last slot
//!   and is subtracted from the differential, so a link that just
//!   committed fluid does not immediately over-commit again
//!   (the overlay-tunnel pacing of the paper, collapsed to one scalar);
//! * queued fluid ages by `slot_ms` per slot (waiting cost) and parcels
//!   are charged true propagation plus load-proportional processing per
//!   hop, so reported latencies are comparable with the path routers';
//! * queues persist across epochs — bounded backlog under a fixed
//!   admissible load *is* the stability property the proptests pin.
//!
//! Everything iterates in fixed order (edge list order, ascending
//! destination id), so two same-seed runs are bit-identical.

use crate::demand::Flow;
use crate::queue::QueueBank;
use crate::router::{RouteInputs, RouteOutcome, RoutedFlow};
use egoist_graph::NodeId;
use std::collections::HashMap;

const EPS: f64 = 1e-9;

/// Backpressure tuning.
#[derive(Clone, Copy, Debug)]
pub struct BackpressureConfig {
    /// Service slots per epoch (more slots = finer fluid granularity,
    /// more work). Each link moves at most `capacity/slots` per slot.
    pub slots: usize,
    /// Simulated waiting cost per slot (ms): fluid still queued at the
    /// end of a slot accrues this much latency.
    pub slot_ms: f64,
}

impl Default for BackpressureConfig {
    fn default() -> Self {
        BackpressureConfig {
            slots: 16,
            slot_ms: 4.0,
        }
    }
}

/// The per-run backpressure state: per-destination queues plus per-link
/// virtual queues, persistent across epochs.
#[derive(Debug)]
pub struct BackpressureEngine {
    n: usize,
    cfg: BackpressureConfig,
    /// Per-hop processing delay per unit of true node load (shared with
    /// the path routers so latencies are comparable).
    proc_ms_per_load: f64,
    queues: QueueBank,
    /// Volume each link committed in its previous service slot.
    link_vq: HashMap<(u32, u32), f64>,
}

impl BackpressureEngine {
    pub fn new(n: usize, cfg: BackpressureConfig, proc_ms_per_load: f64) -> Self {
        BackpressureEngine {
            n,
            cfg,
            proc_ms_per_load,
            queues: QueueBank::new(n),
            link_vq: HashMap::new(),
        }
    }

    /// Total fluid queued anywhere — the stability observable.
    pub fn total_backlog(&self) -> f64 {
        self.queues.total_backlog()
    }

    /// Run one epoch of slotted backpressure forwarding.
    pub fn route_epoch(&mut self, flows: &[Flow], inp: &RouteInputs<'_>) -> RouteOutcome {
        let n = self.n;
        debug_assert_eq!(inp.overlay.len(), n);
        let slots = self.cfg.slots.max(1);

        // Deterministic edge list: DiGraph iteration order (by source
        // node, then adjacency order). Per-slot capacity and hop costs
        // are fixed for the epoch.
        struct Link {
            src: NodeId,
            dst: NodeId,
            cap_slot: f64,
            hop_lat: f64,
            hop_prop: f64,
        }
        let links: Vec<Link> = inp
            .overlay
            .edges()
            .filter_map(|(u, v, _)| {
                let cap = inp.capacity.get(u, v);
                if cap <= 0.0 {
                    return None;
                }
                let prop = inp.true_delays.get(u, v);
                Some(Link {
                    src: u,
                    dst: v,
                    cap_slot: cap / slots as f64,
                    hop_lat: prop + self.proc_ms_per_load * inp.node_load[v.index()],
                    hop_prop: prop,
                })
            })
            .collect();

        // Per-destination accounting for this epoch.
        let mut injected = vec![0.0f64; n];
        let mut delivered = vec![0.0f64; n];
        let mut del_lat = vec![0.0f64; n];
        let mut del_prop = vec![0.0f64; n];
        let mut consumed = vec![0.0f64; n * n];
        let mut forwarded = vec![0.0f64; n];
        for f in flows {
            injected[f.dst.index()] += f.rate_mbps;
        }

        for _slot in 0..slots {
            // Source injection: each flow feeds its destination queue.
            for f in flows {
                self.queues.inject(f.src, f.dst, f.rate_mbps / slots as f64);
            }

            // Link service, in fixed edge order.
            for link in &links {
                let vq = *self.link_vq.get(&(link.src.0, link.dst.0)).unwrap_or(&0.0);
                let mut cap_rem = link.cap_slot;
                let mut sent = 0.0;
                while cap_rem > EPS {
                    // Commodity with the largest positive differential;
                    // strict `>` keeps ties on the smallest id.
                    let mut best: Option<(usize, f64)> = None;
                    for d in 0..n {
                        let q_i = self.queues.backlog(link.src, NodeId(d as u32));
                        if q_i <= EPS {
                            continue;
                        }
                        let q_j = if d == link.dst.index() {
                            0.0
                        } else {
                            self.queues.backlog(link.dst, NodeId(d as u32))
                        };
                        let w = q_i - q_j - vq;
                        if w > EPS && best.map(|(_, bw)| w > bw).unwrap_or(true) {
                            best = Some((d, w));
                        }
                    }
                    let Some((d, _)) = best else { break };
                    let dest = NodeId(d as u32);
                    let avail = self.queues.backlog(link.src, dest);
                    let x = avail.min(cap_rem);
                    let mut parcel = self.queues.withdraw(link.src, dest, x);
                    if parcel.amount <= 0.0 {
                        break;
                    }
                    parcel.charge_hop(link.hop_lat, link.hop_prop);
                    if link.dst == dest {
                        delivered[d] += parcel.amount;
                        del_lat[d] += parcel.lat_mass;
                        del_prop[d] += parcel.prop_mass;
                    } else {
                        self.queues.deposit(link.dst, dest, parcel);
                    }
                    consumed[link.src.index() * n + link.dst.index()] += parcel.amount;
                    forwarded[link.src.index()] += parcel.amount;
                    sent += parcel.amount;
                    cap_rem -= x;
                }
                self.link_vq.insert((link.src.0, link.dst.0), sent);
            }

            self.queues.age(self.cfg.slot_ms);
        }

        // Attribute per-destination deliveries back to flows,
        // proportionally to each flow's share of the commodity injected
        // this epoch (backlog drain beyond that stays unattributed but
        // still counts toward delivered throughput).
        let obs = crate::router::traffic_obs();
        let mut routed = Vec::with_capacity(flows.len());
        let (mut admitted, mut dropped) = (0u64, 0u64);
        for &flow in flows {
            let d = flow.dst.index();
            let frac = if injected[d] > 0.0 {
                (delivered[d] / injected[d]).min(1.0)
            } else {
                0.0
            };
            let got = flow.rate_mbps * frac;
            let (latency_ms, stretch) = if got > 0.0 && delivered[d] > 0.0 {
                let lat = del_lat[d] / delivered[d];
                let direct = inp.true_delays.get(flow.src, flow.dst);
                let prop = del_prop[d] / delivered[d];
                let stretch = if direct > 0.0 {
                    prop / direct
                } else {
                    f64::NAN
                };
                admitted += 1;
                obs.latency_ms.observe(lat);
                if stretch.is_finite() {
                    obs.stretch.observe(stretch);
                }
                (lat, stretch)
            } else {
                dropped += 1;
                (f64::NAN, f64::NAN)
            };
            routed.push(RoutedFlow {
                flow,
                delivered_mbps: got,
                latency_ms,
                stretch,
                paths_used: 0,
            });
        }

        obs.flows_offered.add(flows.len() as u64);
        obs.flows_admitted.add(admitted);
        obs.flows_dropped.add(dropped);
        if egoist_obs::is_enabled() {
            for i in 0..n {
                let node = NodeId(i as u32);
                obs.queue_depth.observe(self.queues.node_depth(node));
                for d in 0..n {
                    let b = self.queues.backlog(node, NodeId(d as u32));
                    if b > 0.0 {
                        obs.backlog.observe(b);
                    }
                }
            }
        }

        RouteOutcome {
            flows: routed,
            offered_mbps: flows.iter().map(|f| f.rate_mbps).sum(),
            delivered_mbps: delivered.iter().sum(),
            consumed,
            forwarded,
            route_changes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egoist_graph::{DiGraph, DistanceMatrix};

    fn inputs<'a>(
        overlay: &'a DiGraph,
        delays: &'a DistanceMatrix,
        loads: &'a [f64],
        cap: &'a DistanceMatrix,
    ) -> RouteInputs<'a> {
        RouteInputs {
            overlay,
            true_delays: delays,
            node_load: loads,
            capacity: cap,
        }
    }

    #[test]
    fn admissible_line_drains_to_bounded_backlog() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        let delays = DistanceMatrix::off_diagonal(3, 5.0);
        let loads = [0.0; 3];
        let cap = DistanceMatrix::off_diagonal(3, 100.0);
        let mut bp = BackpressureEngine::new(3, BackpressureConfig::default(), 2.0);
        let flows = [Flow {
            src: NodeId(0),
            dst: NodeId(2),
            rate_mbps: 20.0,
        }];
        let mut last = 0.0;
        for _ in 0..8 {
            let out = bp.route_epoch(&flows, &inputs(&g, &delays, &loads, &cap));
            last = out.delivered_mbps;
        }
        // Steady state: deliveries match the offered rate and backlog
        // stays bounded (a couple of epochs of fluid in flight, tops).
        assert!(
            (last - 20.0).abs() < 2.0,
            "steady delivery ≈ offered: {last}"
        );
        assert!(bp.total_backlog() < 60.0, "{}", bp.total_backlog());
    }

    #[test]
    fn overload_delivers_at_capacity_and_queues_grow() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        let delays = DistanceMatrix::off_diagonal(2, 5.0);
        let loads = [0.0; 2];
        let cap = DistanceMatrix::off_diagonal(2, 10.0);
        let mut bp = BackpressureEngine::new(2, BackpressureConfig::default(), 2.0);
        let flows = [Flow {
            src: NodeId(0),
            dst: NodeId(1),
            rate_mbps: 30.0,
        }];
        let inp = inputs(&g, &delays, &loads, &cap);
        let out1 = bp.route_epoch(&flows, &inp);
        let b1 = bp.total_backlog();
        let out2 = bp.route_epoch(&flows, &inp);
        let b2 = bp.total_backlog();
        assert!(out1.delivered_mbps <= 10.0 + 1e-6);
        assert!(out2.delivered_mbps <= 10.0 + 1e-6);
        assert!(b2 > b1, "inadmissible load must grow backlog: {b1} → {b2}");
    }

    #[test]
    fn uses_both_diamond_paths_beyond_single_path_capacity() {
        // Diamond 0→{1,2}→3, each link 10 Mbps: single-path tops out at
        // 10, backpressure should push toward 20.
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(0), NodeId(2), 1.0);
        g.add_edge(NodeId(1), NodeId(3), 1.0);
        g.add_edge(NodeId(2), NodeId(3), 1.0);
        let delays = DistanceMatrix::off_diagonal(4, 5.0);
        let loads = [0.0; 4];
        let cap = DistanceMatrix::off_diagonal(4, 10.0);
        let mut bp = BackpressureEngine::new(4, BackpressureConfig::default(), 2.0);
        let flows = [Flow {
            src: NodeId(0),
            dst: NodeId(3),
            rate_mbps: 18.0,
        }];
        let mut last = 0.0;
        for _ in 0..10 {
            last = bp
                .route_epoch(&flows, &inputs(&g, &delays, &loads, &cap))
                .delivered_mbps;
        }
        assert!(last > 14.0, "backpressure should exceed one path: {last}");
    }

    #[test]
    fn same_inputs_bit_identical() {
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        g.add_edge(NodeId(1), NodeId(3), 1.0);
        let delays = DistanceMatrix::off_diagonal(4, 5.0);
        let loads = [0.0, 1.0, 0.0, 2.0];
        let cap = DistanceMatrix::off_diagonal(4, 25.0);
        let flows = [
            Flow {
                src: NodeId(0),
                dst: NodeId(2),
                rate_mbps: 9.0,
            },
            Flow {
                src: NodeId(0),
                dst: NodeId(3),
                rate_mbps: 9.0,
            },
        ];
        let run = || {
            let mut bp = BackpressureEngine::new(4, BackpressureConfig::default(), 2.0);
            let mut sig = Vec::new();
            for _ in 0..5 {
                let out = bp.route_epoch(&flows, &inputs(&g, &delays, &loads, &cap));
                sig.push((
                    out.delivered_mbps.to_bits(),
                    out.flows[0].latency_ms.to_bits(),
                ));
            }
            (sig, bp.total_backlog().to_bits())
        };
        assert_eq!(run(), run());
    }
}
