//! The closed loop: charge carried traffic back into the underlay.
//!
//! The paper's load metric gestures at traffic-induced congestion but
//! the control-plane simulator never exercises it. With feedback
//! enabled, each epoch's routed traffic becomes (a) induced CPU load on
//! every transmitting node — which the EWMA load sensor picks up over
//! the following epochs, steering Load-metric best responses away from
//! hot relays — and (b) consumed link bandwidth — which probe-based
//! bandwidth wiring sees as shrunken availability.

use crate::router::RouteOutcome;
use egoist_core::sim::Simulator;

/// Feedback scaling.
#[derive(Clone, Copy, Debug)]
pub struct FeedbackConfig {
    /// Whether carried traffic is charged into the underlay at all.
    pub enabled: bool,
    /// CPU load units per forwarded Mbps (loadavg-like: 0.02 means a
    /// node forwarding 500 Mbps adds 10 to its load).
    pub load_per_mbps: f64,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            enabled: true,
            load_per_mbps: 0.02,
        }
    }
}

/// Apply one epoch's traffic into the simulator's underlay models.
/// With feedback disabled this *clears* any previous charge, so an
/// open-loop engine on the same `Simulator` type stays truly open.
pub fn apply(sim: &mut Simulator, outcome: &RouteOutcome, cfg: &FeedbackConfig) {
    if !cfg.enabled {
        sim.loads_mut().clear_induced();
        sim.bandwidths_mut().clear_consumed();
        return;
    }
    let induced: Vec<f64> = outcome
        .forwarded
        .iter()
        .map(|mbps| mbps * cfg.load_per_mbps)
        .collect();
    sim.loads_mut().set_induced(&induced);
    sim.bandwidths_mut().set_consumed(&outcome.consumed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::Flow;
    use crate::router::RoutedFlow;
    use egoist_core::policies::PolicyKind;
    use egoist_core::sim::{Metric, SimConfig, Simulator};
    use egoist_graph::NodeId;

    fn outcome(n: usize) -> RouteOutcome {
        let mut consumed = vec![0.0; n * n];
        consumed[1] = 50.0; // 0→1 carries 50 Mbps
        let mut forwarded = vec![0.0; n];
        forwarded[0] = 50.0;
        RouteOutcome {
            flows: vec![RoutedFlow {
                flow: Flow {
                    src: NodeId(0),
                    dst: NodeId(1),
                    rate_mbps: 50.0,
                },
                delivered_mbps: 50.0,
                latency_ms: 5.0,
                stretch: 1.0,
                paths_used: 1,
            }],
            offered_mbps: 50.0,
            delivered_mbps: 50.0,
            consumed,
            forwarded,
        }
    }

    fn sim(n: usize) -> Simulator {
        let mut cfg = SimConfig::baseline(2, PolicyKind::Random, Metric::Load, 3);
        cfg.n = n;
        cfg.epochs = 2;
        cfg.warmup_epochs = 0;
        Simulator::new(cfg)
    }

    #[test]
    fn enabled_feedback_charges_load_and_bandwidth() {
        let mut s = sim(6);
        let base_load = s.loads().instantaneous(0);
        let base_bw = s.bandwidths().available(0, 1);
        apply(&mut s, &outcome(6), &FeedbackConfig::default());
        assert!((s.loads().instantaneous(0) - (base_load + 1.0)).abs() < 1e-9);
        assert!(s.bandwidths().available(0, 1) <= (base_bw - 50.0).max(0.0) + 1e-9);
    }

    #[test]
    fn disabled_feedback_clears_previous_charge() {
        let mut s = sim(6);
        apply(&mut s, &outcome(6), &FeedbackConfig::default());
        apply(
            &mut s,
            &outcome(6),
            &FeedbackConfig {
                enabled: false,
                load_per_mbps: 0.02,
            },
        );
        assert_eq!(s.loads().induced(0), 0.0);
        assert_eq!(s.bandwidths().consumed(0, 1), 0.0);
    }
}
