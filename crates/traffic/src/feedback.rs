//! The closed loop: charge carried traffic back into the underlay.
//!
//! The paper's load metric gestures at traffic-induced congestion but
//! the control-plane simulator never exercises it. With feedback
//! enabled, each epoch's routed traffic becomes (a) induced CPU load on
//! every transmitting node — which the EWMA load sensor picks up over
//! the following epochs, steering Load-metric best responses away from
//! hot relays — and (b) consumed link bandwidth — which probe-based
//! bandwidth wiring sees as shrunken availability.

use crate::demand::Flow;
use crate::router::RouteOutcome;
use egoist_core::sim::Simulator;
use std::collections::HashMap;

/// Feedback scaling.
#[derive(Clone, Copy, Debug)]
pub struct FeedbackConfig {
    /// Whether carried traffic is charged into the underlay at all.
    pub enabled: bool,
    /// CPU load units per forwarded Mbps (loadavg-like: 0.02 means a
    /// node forwarding 500 Mbps adds 10 to its load).
    pub load_per_mbps: f64,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            enabled: true,
            load_per_mbps: 0.02,
        }
    }
}

/// Apply one epoch's traffic into the simulator's underlay models.
/// With feedback disabled this *clears* any previous charge, so an
/// open-loop engine on the same `Simulator` type stays truly open.
pub fn apply(sim: &mut Simulator, outcome: &RouteOutcome, cfg: &FeedbackConfig) {
    if !cfg.enabled {
        sim.loads_mut().clear_induced();
        sim.bandwidths_mut().clear_consumed();
        return;
    }
    let induced: Vec<f64> = outcome
        .forwarded
        .iter()
        .map(|mbps| mbps * cfg.load_per_mbps)
        .collect();
    sim.loads_mut().set_induced(&induced);
    sim.bandwidths_mut().set_consumed(&outcome.consumed);
}

/// AIMD congestion-control tuning.
///
/// With AIMD on, each `(src, dst)` pair keeps a sending-rate limit that
/// replaces one-shot admission: requested rates are shaped to the limit
/// before routing, the limit grows additively while the ledger delivers
/// everything, and it is cut multiplicatively when delivery falls short
/// — TCP-friendly probing of whatever capacity the ledger actually has.
/// Disabled by default so the pinned report bytes are untouched.
#[derive(Clone, Copy, Debug)]
pub struct AimdConfig {
    pub enabled: bool,
    /// Additive increase per fully-delivered epoch (Mbps).
    pub increase_mbps: f64,
    /// Multiplicative decrease factor on shortfall (0 < β < 1).
    pub decrease_factor: f64,
    /// Rate floor — a pair never drops below this (Mbps).
    pub floor_mbps: f64,
    /// Relative shortfall tolerated before cutting (delivered ≥
    /// requested · (1 − tolerance) counts as success).
    pub loss_tolerance: f64,
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig {
            enabled: false,
            increase_mbps: 2.0,
            decrease_factor: 0.5,
            floor_mbps: 1.0,
            loss_tolerance: 0.02,
        }
    }
}

/// The per-pair AIMD state machine.
#[derive(Debug)]
pub struct AimdController {
    cfg: AimdConfig,
    /// Current rate limit per (src, dst) pair.
    limits: HashMap<(u32, u32), f64>,
    pub increases: u64,
    pub decreases: u64,
}

impl AimdController {
    pub fn new(cfg: AimdConfig) -> Self {
        AimdController {
            cfg,
            limits: HashMap::new(),
            increases: 0,
            decreases: 0,
        }
    }

    /// Shape this epoch's flows to the current limits. A pair's first
    /// sighting seeds its limit at the requested rate (no slow start —
    /// epochs are coarse), so the first epoch is unshaped. Identity
    /// when disabled.
    pub fn shape(&mut self, flows: &[Flow]) -> Vec<Flow> {
        if !self.cfg.enabled {
            return flows.to_vec();
        }
        flows
            .iter()
            .map(|f| {
                let limit = *self.limits.entry((f.src.0, f.dst.0)).or_insert(f.rate_mbps);
                Flow {
                    rate_mbps: f.rate_mbps.min(limit),
                    ..*f
                }
            })
            .collect()
    }

    /// Fold one epoch's delivery results back into the limits.
    pub fn update(&mut self, outcome: &RouteOutcome) {
        if !self.cfg.enabled {
            return;
        }
        let obs = crate::router::traffic_obs();
        for rf in &outcome.flows {
            let key = (rf.flow.src.0, rf.flow.dst.0);
            let Some(limit) = self.limits.get_mut(&key) else {
                continue;
            };
            let requested = rf.flow.rate_mbps;
            if rf.delivered_mbps + 1e-9 < requested * (1.0 - self.cfg.loss_tolerance) {
                *limit = (*limit * self.cfg.decrease_factor).max(self.cfg.floor_mbps);
                self.decreases += 1;
                obs.rate_decrease.add(1);
            } else {
                *limit += self.cfg.increase_mbps;
                self.increases += 1;
                obs.rate_increase.add(1);
            }
        }
    }

    /// Current limit for a pair (None until first sighting).
    pub fn limit(&self, src: u32, dst: u32) -> Option<f64> {
        self.limits.get(&(src, dst)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RoutedFlow;
    use egoist_core::policies::PolicyKind;
    use egoist_core::sim::{Metric, SimConfig, Simulator};
    use egoist_graph::NodeId;

    fn outcome(n: usize) -> RouteOutcome {
        let mut consumed = vec![0.0; n * n];
        consumed[1] = 50.0; // 0→1 carries 50 Mbps
        let mut forwarded = vec![0.0; n];
        forwarded[0] = 50.0;
        RouteOutcome {
            flows: vec![RoutedFlow {
                flow: Flow {
                    src: NodeId(0),
                    dst: NodeId(1),
                    rate_mbps: 50.0,
                },
                delivered_mbps: 50.0,
                latency_ms: 5.0,
                stretch: 1.0,
                paths_used: 1,
            }],
            offered_mbps: 50.0,
            delivered_mbps: 50.0,
            consumed,
            forwarded,
            route_changes: 0,
        }
    }

    fn one_flow_outcome(requested: f64, delivered: f64) -> RouteOutcome {
        RouteOutcome {
            flows: vec![RoutedFlow {
                flow: Flow {
                    src: NodeId(0),
                    dst: NodeId(1),
                    rate_mbps: requested,
                },
                delivered_mbps: delivered,
                latency_ms: 5.0,
                stretch: 1.0,
                paths_used: 1,
            }],
            offered_mbps: requested,
            delivered_mbps: delivered,
            consumed: vec![0.0; 4],
            forwarded: vec![0.0; 2],
            route_changes: 0,
        }
    }

    fn sim(n: usize) -> Simulator {
        let mut cfg = SimConfig::baseline(2, PolicyKind::Random, Metric::Load, 3);
        cfg.n = n;
        cfg.epochs = 2;
        cfg.warmup_epochs = 0;
        Simulator::new(cfg)
    }

    #[test]
    fn enabled_feedback_charges_load_and_bandwidth() {
        let mut s = sim(6);
        let base_load = s.loads().instantaneous(0);
        let base_bw = s.bandwidths().available(0, 1);
        apply(&mut s, &outcome(6), &FeedbackConfig::default());
        assert!((s.loads().instantaneous(0) - (base_load + 1.0)).abs() < 1e-9);
        assert!(s.bandwidths().available(0, 1) <= (base_bw - 50.0).max(0.0) + 1e-9);
    }

    #[test]
    fn disabled_feedback_clears_previous_charge() {
        let mut s = sim(6);
        apply(&mut s, &outcome(6), &FeedbackConfig::default());
        apply(
            &mut s,
            &outcome(6),
            &FeedbackConfig {
                enabled: false,
                load_per_mbps: 0.02,
            },
        );
        assert_eq!(s.loads().induced(0), 0.0);
        assert_eq!(s.bandwidths().consumed(0, 1), 0.0);
    }

    #[test]
    fn aimd_disabled_is_identity() {
        let mut c = AimdController::new(AimdConfig::default());
        let flows = vec![Flow {
            src: NodeId(0),
            dst: NodeId(1),
            rate_mbps: 40.0,
        }];
        let shaped = c.shape(&flows);
        assert_eq!(shaped[0].rate_mbps, 40.0);
        c.update(&one_flow_outcome(40.0, 1.0));
        assert_eq!(c.limit(0, 1), None);
        assert_eq!((c.increases, c.decreases), (0, 0));
    }

    #[test]
    fn aimd_cuts_on_shortfall_and_probes_back_up() {
        let cfg = AimdConfig {
            enabled: true,
            ..Default::default()
        };
        let mut c = AimdController::new(cfg);
        let flows = vec![Flow {
            src: NodeId(0),
            dst: NodeId(1),
            rate_mbps: 40.0,
        }];
        // First epoch: unshaped, but only 10 of 40 Mbps got through.
        let shaped = c.shape(&flows);
        assert_eq!(shaped[0].rate_mbps, 40.0);
        c.update(&one_flow_outcome(shaped[0].rate_mbps, 10.0));
        assert_eq!(c.limit(0, 1), Some(20.0));
        // Second epoch: shaped to 20, still short → 10.
        let shaped = c.shape(&flows);
        assert_eq!(shaped[0].rate_mbps, 20.0);
        c.update(&one_flow_outcome(shaped[0].rate_mbps, 10.0));
        assert_eq!(c.limit(0, 1), Some(10.0));
        // Third epoch: 10 fits → additive increase.
        let shaped = c.shape(&flows);
        assert_eq!(shaped[0].rate_mbps, 10.0);
        c.update(&one_flow_outcome(shaped[0].rate_mbps, 10.0));
        assert_eq!(c.limit(0, 1), Some(12.0));
        assert_eq!((c.increases, c.decreases), (1, 2));
    }

    #[test]
    fn aimd_respects_floor() {
        let cfg = AimdConfig {
            enabled: true,
            floor_mbps: 4.0,
            ..Default::default()
        };
        let mut c = AimdController::new(cfg);
        let flows = vec![Flow {
            src: NodeId(0),
            dst: NodeId(1),
            rate_mbps: 5.0,
        }];
        for _ in 0..6 {
            let shaped = c.shape(&flows);
            c.update(&one_flow_outcome(shaped[0].rate_mbps, 0.0));
        }
        assert_eq!(c.limit(0, 1), Some(4.0));
    }
}
