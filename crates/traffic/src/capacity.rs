//! Link-capacity ledger: meters flows into finite directed-link
//! capacity and accounts what each node forwards.

use egoist_graph::{DistanceMatrix, NodeId};

/// Tracks residual capacity per directed overlay link while an epoch's
/// flows are being placed, plus the two feedback aggregates the closed
/// loop charges back into the underlay: per-pair carried traffic and
/// per-node forwarded traffic.
#[derive(Clone, Debug)]
pub struct CapacityLedger {
    n: usize,
    residual: Vec<f64>,
    consumed: Vec<f64>,
    /// Mbps of traffic each node transmits (as source or forwarder) —
    /// the CPU-load proxy for the Load feedback.
    forwarded: Vec<f64>,
}

impl CapacityLedger {
    /// Start an epoch from the underlay's unloaded per-pair capacity.
    pub fn new(capacity: &DistanceMatrix) -> Self {
        let n = capacity.len();
        let mut residual = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    residual[i * n + j] = capacity.at(i, j).max(0.0);
                }
            }
        }
        CapacityLedger {
            n,
            residual,
            consumed: vec![0.0; n * n],
            forwarded: vec![0.0; n],
        }
    }

    /// Residual capacity of the directed pair.
    pub fn residual(&self, u: NodeId, v: NodeId) -> f64 {
        self.residual[u.index() * self.n + v.index()]
    }

    /// The bottleneck residual along `path` (∞ for an empty/1-node path).
    pub fn bottleneck(&self, path: &[NodeId]) -> f64 {
        path.windows(2)
            .map(|w| self.residual(w[0], w[1]))
            .fold(f64::INFINITY, f64::min)
    }

    /// Admit up to `rate` Mbps along `path`, limited by the bottleneck
    /// residual. Returns the admitted rate; every hop's residual is
    /// drawn down and every transmitting node (all but the destination)
    /// is charged the forwarded traffic.
    pub fn admit(&mut self, path: &[NodeId], rate: f64) -> f64 {
        if path.len() < 2 || rate <= 0.0 {
            return 0.0;
        }
        let admitted = rate.min(self.bottleneck(path));
        if admitted <= 0.0 {
            return 0.0;
        }
        for w in path.windows(2) {
            let idx = w[0].index() * self.n + w[1].index();
            self.residual[idx] = (self.residual[idx] - admitted).max(0.0);
            self.consumed[idx] += admitted;
            self.forwarded[w[0].index()] += admitted;
        }
        admitted
    }

    /// Row-major `n × n` carried-traffic matrix (Mbps), the shape
    /// [`egoist_netsim::BandwidthModel::set_consumed`] expects.
    pub fn consumed_matrix(&self) -> &[f64] {
        &self.consumed
    }

    /// Per-node transmitted traffic (Mbps).
    pub fn forwarded_per_node(&self) -> &[f64] {
        &self.forwarded
    }

    /// Total carried traffic summed over links (Mbps × hops).
    pub fn total_link_mbps(&self) -> f64 {
        self.consumed.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(cap: f64) -> CapacityLedger {
        CapacityLedger::new(&DistanceMatrix::off_diagonal(4, cap))
    }

    #[test]
    fn admit_draws_down_every_hop() {
        let mut l = ledger(100.0);
        let path = [NodeId(0), NodeId(1), NodeId(2)];
        assert_eq!(l.admit(&path, 30.0), 30.0);
        assert_eq!(l.residual(NodeId(0), NodeId(1)), 70.0);
        assert_eq!(l.residual(NodeId(1), NodeId(2)), 70.0);
        assert_eq!(l.residual(NodeId(2), NodeId(3)), 100.0);
    }

    #[test]
    fn admission_capped_by_bottleneck() {
        let mut l = ledger(100.0);
        l.admit(&[NodeId(0), NodeId(1)], 90.0);
        // 0→1 has 10 left; a flow of 50 through it gets 10.
        let got = l.admit(&[NodeId(0), NodeId(1), NodeId(3)], 50.0);
        assert_eq!(got, 10.0);
        assert_eq!(l.residual(NodeId(0), NodeId(1)), 0.0);
        assert_eq!(l.residual(NodeId(1), NodeId(3)), 90.0);
    }

    #[test]
    fn forwarded_charges_all_but_destination() {
        let mut l = ledger(100.0);
        l.admit(&[NodeId(0), NodeId(1), NodeId(2)], 20.0);
        assert_eq!(l.forwarded_per_node(), &[20.0, 20.0, 0.0, 0.0]);
    }

    #[test]
    fn consumed_matrix_mirrors_admissions() {
        let mut l = ledger(100.0);
        l.admit(&[NodeId(0), NodeId(2)], 15.0);
        l.admit(&[NodeId(0), NodeId(2)], 5.0);
        assert_eq!(l.consumed_matrix()[2], 20.0); // row 0, col 2
        assert_eq!(l.total_link_mbps(), 20.0);
    }

    #[test]
    fn saturated_path_admits_zero() {
        let mut l = ledger(10.0);
        l.admit(&[NodeId(0), NodeId(1)], 10.0);
        assert_eq!(l.admit(&[NodeId(0), NodeId(1)], 1.0), 0.0);
    }
}
