//! Flow-level demand generators.
//!
//! Every generator emits, per epoch, a deterministic set of [`Flow`]s
//! whose rates sum *exactly* to the configured offered load (equal split
//! over however many flows the epoch produces), so workloads of
//! different shapes are directly comparable and the conservation
//! property is machine-checkable (see `proptests.rs`).

use egoist_graph::{DistanceMatrix, NodeId};
use egoist_netsim::rng::derive_indexed;
use rand::rngs::StdRng;
use rand::Rng;

/// One unidirectional flow demand: `rate_mbps` from `src` to `dst` for
/// the duration of the epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Flow {
    pub src: NodeId,
    pub dst: NodeId,
    pub rate_mbps: f64,
}

/// The workload shapes of the evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorkloadKind {
    /// Uniform all-pairs: every flow picks an independent uniform
    /// (src, dst) pair — the paper's uniform-preference baseline.
    Uniform,
    /// Zipf/gravity hot-spots: per-node popularity `w_i ∝ 1/rank_i^θ`
    /// over a seed-fixed permutation; `P(src=i, dst=j) ∝ w_i · w_j`.
    Gravity { exponent: f64 },
    /// Broadcast/gossip fan-out: a few sources per epoch each push the
    /// same content to many destinations.
    Broadcast { sources: usize },
    /// CDN-style pulls: a fixed origin set; each client pulls from its
    /// nearest origin by underlay delay.
    Cdn { origins: usize },
}

impl WorkloadKind {
    /// Stable label for reports and RNG stream derivation.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadKind::Uniform => "uniform",
            WorkloadKind::Gravity { .. } => "gravity",
            WorkloadKind::Broadcast { .. } => "broadcast",
            WorkloadKind::Cdn { .. } => "cdn",
        }
    }

    /// All four shapes, for sweep experiments.
    pub fn all() -> [WorkloadKind; 4] {
        [
            WorkloadKind::Uniform,
            WorkloadKind::Gravity { exponent: 1.0 },
            WorkloadKind::Broadcast { sources: 2 },
            WorkloadKind::Cdn { origins: 2 },
        ]
    }
}

/// A seeded generator for one workload over an `n`-node population.
#[derive(Clone, Debug)]
pub struct DemandGenerator {
    kind: WorkloadKind,
    n: usize,
    offered_mbps: f64,
    flows_per_epoch: usize,
    seed: u64,
    /// Gravity popularity weights (uniform 1.0 for other kinds).
    weights: Vec<f64>,
    /// CDN: per client, the origins ordered nearest-first by underlay
    /// delay — failover walks this list to the first alive origin.
    origin_pref: Vec<Vec<NodeId>>,
}

impl DemandGenerator {
    /// Build a generator. `base_delays` is the static underlay delay
    /// matrix, used only by the CDN workload to assign clients to their
    /// nearest origin.
    pub fn new(
        kind: WorkloadKind,
        n: usize,
        offered_mbps: f64,
        flows_per_epoch: usize,
        seed: u64,
        base_delays: &DistanceMatrix,
    ) -> Self {
        assert!(n >= 2, "need at least two nodes for traffic");
        assert!(offered_mbps > 0.0, "offered load must be positive");
        assert!(flows_per_epoch > 0, "need at least one flow per epoch");

        let mut weights = vec![1.0; n];
        if let WorkloadKind::Gravity { exponent } = kind {
            // Seed-fixed popularity permutation: rank r → weight 1/(r+1)^θ.
            let mut order: Vec<usize> = (0..n).collect();
            let mut rng = derive_indexed(seed, "traffic-gravity-perm", 0);
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for (rank, &node) in order.iter().enumerate() {
                weights[node] = 1.0 / ((rank + 1) as f64).powf(exponent);
            }
        }

        let mut origin_pref = vec![Vec::new(); n];
        if let WorkloadKind::Cdn { origins: m } = kind {
            let m = m.clamp(1, n - 1);
            // Origins: the m nodes with the lowest mean outgoing delay —
            // well-connected sites, as a CDN operator would choose.
            let mut by_centrality: Vec<usize> = (0..n).collect();
            let mean_out = |i: usize| -> f64 {
                let row = base_delays.row(i);
                row.iter().sum::<f64>() / (n - 1).max(1) as f64
            };
            by_centrality.sort_by(|&a, &b| mean_out(a).total_cmp(&mean_out(b)).then(a.cmp(&b)));
            let origins: Vec<NodeId> = by_centrality[..m]
                .iter()
                .map(|&i| NodeId::from_index(i))
                .collect();
            for (i, pref) in origin_pref.iter_mut().enumerate() {
                let mut ranked = origins.clone();
                ranked.sort_by(|&a, &b| {
                    base_delays
                        .at(a.index(), i)
                        .total_cmp(&base_delays.at(b.index(), i))
                        .then(a.cmp(&b))
                });
                *pref = ranked;
            }
        }

        DemandGenerator {
            kind,
            n,
            offered_mbps,
            flows_per_epoch,
            seed,
            weights,
            origin_pref,
        }
    }

    /// The workload shape.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// Offered load per epoch (Mbps); every epoch's flows sum to this.
    pub fn offered_mbps(&self) -> f64 {
        self.offered_mbps
    }

    /// Weighted pick over alive nodes; `exclude` removes one candidate.
    fn pick_weighted(&self, alive: &[NodeId], exclude: Option<NodeId>, rng: &mut StdRng) -> NodeId {
        let total: f64 = alive
            .iter()
            .filter(|&&v| Some(v) != exclude)
            .map(|v| self.weights[v.index()])
            .sum();
        let mut target = rng.random_range(0.0..1.0) * total;
        for &v in alive {
            if Some(v) == exclude {
                continue;
            }
            target -= self.weights[v.index()];
            if target <= 0.0 {
                return v;
            }
        }
        // Numeric tail: return the last eligible node.
        *alive
            .iter()
            .rev()
            .find(|&&v| Some(v) != exclude)
            .expect("at least two alive nodes")
    }

    /// Generate this epoch's flows over the currently-alive population.
    /// Returns an empty set when fewer than two nodes are alive.
    pub fn generate(&self, epoch: usize, alive: &[bool]) -> Vec<Flow> {
        let alive_ids: Vec<NodeId> = (0..self.n)
            .filter(|&i| alive[i])
            .map(NodeId::from_index)
            .collect();
        if alive_ids.len() < 2 {
            return Vec::new();
        }
        let mut rng = derive_indexed(self.seed, self.kind.label(), epoch as u64);
        let pairs: Vec<(NodeId, NodeId)> = match self.kind {
            WorkloadKind::Uniform => (0..self.flows_per_epoch)
                .map(|_| {
                    let s = alive_ids[rng.random_range(0..alive_ids.len())];
                    let t = loop {
                        let t = alive_ids[rng.random_range(0..alive_ids.len())];
                        if t != s {
                            break t;
                        }
                    };
                    (s, t)
                })
                .collect(),
            WorkloadKind::Gravity { .. } => (0..self.flows_per_epoch)
                .map(|_| {
                    let s = self.pick_weighted(&alive_ids, None, &mut rng);
                    let t = self.pick_weighted(&alive_ids, Some(s), &mut rng);
                    (s, t)
                })
                .collect(),
            WorkloadKind::Broadcast { sources } => {
                let m = sources.clamp(1, alive_ids.len() - 1);
                // This epoch's broadcasters rotate deterministically.
                let mut pool = alive_ids.clone();
                for i in (1..pool.len()).rev() {
                    let j = rng.random_range(0..=i);
                    pool.swap(i, j);
                }
                let sources: Vec<NodeId> = pool[..m].to_vec();
                let fanout = (self.flows_per_epoch / m).max(1);
                let mut pairs = Vec::new();
                for &s in &sources {
                    for _ in 0..fanout {
                        let t = loop {
                            let t = alive_ids[rng.random_range(0..alive_ids.len())];
                            if t != s {
                                break t;
                            }
                        };
                        pairs.push((s, t));
                    }
                }
                pairs
            }
            WorkloadKind::Cdn { .. } => (0..self.flows_per_epoch)
                .filter_map(|_| {
                    let client = alive_ids[rng.random_range(0..alive_ids.len())];
                    // Nearest *alive* origin: walk the client's
                    // delay-ranked origin list past any dead entries.
                    let origin = self.origin_pref[client.index()]
                        .iter()
                        .copied()
                        .find(|o| alive[o.index()])?;
                    if origin == client {
                        // Origins serve locally: no overlay flow.
                        None
                    } else {
                        Some((origin, client))
                    }
                })
                .collect(),
        };
        if pairs.is_empty() {
            return Vec::new();
        }
        // Equal split conserves offered load exactly regardless of how
        // many flows the shape produced.
        let rate = self.offered_mbps / pairs.len() as f64;
        pairs
            .into_iter()
            .map(|(src, dst)| Flow {
                src,
                dst,
                rate_mbps: rate,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delays(n: usize) -> DistanceMatrix {
        DistanceMatrix::from_fn(n, |i, j| 5.0 + ((i * 7 + j * 3) % 40) as f64)
    }

    fn total(flows: &[Flow]) -> f64 {
        flows.iter().map(|f| f.rate_mbps).sum()
    }

    #[test]
    fn all_kinds_conserve_offered_load() {
        let d = delays(12);
        for kind in WorkloadKind::all() {
            let g = DemandGenerator::new(kind, 12, 400.0, 24, 1, &d);
            for epoch in 0..5 {
                let flows = g.generate(epoch, &[true; 12]);
                assert!(
                    (total(&flows) - 400.0).abs() < 1e-9,
                    "{} epoch {epoch}: {}",
                    kind.label(),
                    total(&flows)
                );
            }
        }
    }

    #[test]
    fn same_seed_same_flows() {
        let d = delays(10);
        let a = DemandGenerator::new(WorkloadKind::Uniform, 10, 100.0, 16, 9, &d);
        let b = DemandGenerator::new(WorkloadKind::Uniform, 10, 100.0, 16, 9, &d);
        assert_eq!(a.generate(3, &[true; 10]), b.generate(3, &[true; 10]));
    }

    #[test]
    fn epochs_differ() {
        let d = delays(10);
        let g = DemandGenerator::new(WorkloadKind::Uniform, 10, 100.0, 16, 9, &d);
        assert_ne!(g.generate(0, &[true; 10]), g.generate(1, &[true; 10]));
    }

    #[test]
    fn gravity_concentrates_traffic() {
        let d = delays(20);
        let g = DemandGenerator::new(
            WorkloadKind::Gravity { exponent: 1.4 },
            20,
            1000.0,
            64,
            3,
            &d,
        );
        let mut per_node = [0.0; 20];
        for epoch in 0..20 {
            for f in g.generate(epoch, &[true; 20]) {
                per_node[f.src.index()] += f.rate_mbps;
                per_node[f.dst.index()] += f.rate_mbps;
            }
        }
        let max = per_node.iter().cloned().fold(0.0, f64::max);
        let min = per_node.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min.max(1e-9) > 4.0, "hot spot expected: {min}..{max}");
    }

    #[test]
    fn broadcast_uses_few_sources() {
        let d = delays(16);
        let g = DemandGenerator::new(WorkloadKind::Broadcast { sources: 2 }, 16, 100.0, 32, 5, &d);
        let flows = g.generate(0, &[true; 16]);
        let mut sources: Vec<NodeId> = flows.iter().map(|f| f.src).collect();
        sources.sort_unstable();
        sources.dedup();
        assert_eq!(sources.len(), 2);
    }

    #[test]
    fn cdn_flows_originate_at_origins() {
        let d = delays(16);
        let g = DemandGenerator::new(WorkloadKind::Cdn { origins: 3 }, 16, 100.0, 32, 5, &d);
        let flows = g.generate(0, &[true; 16]);
        assert!(!flows.is_empty());
        let mut origins: Vec<NodeId> = flows.iter().map(|f| f.src).collect();
        origins.sort_unstable();
        origins.dedup();
        assert!(origins.len() <= 3, "at most 3 origins: {origins:?}");
    }

    #[test]
    fn dead_nodes_never_appear() {
        let d = delays(10);
        let mut alive = [true; 10];
        alive[3] = false;
        alive[7] = false;
        for kind in WorkloadKind::all() {
            let g = DemandGenerator::new(kind, 10, 50.0, 20, 2, &d);
            for f in g.generate(4, &alive) {
                assert!(alive[f.src.index()] && alive[f.dst.index()], "{kind:?}");
                assert_ne!(f.src, f.dst);
            }
        }
    }

    #[test]
    fn cdn_failover_goes_to_next_nearest_alive_origin() {
        // Origins end up being {0, 1, 2} (smallest mean out-delay).
        // Client 5 ranks them by delay: 2 (5ms) < 1 (10ms) < 0 (50ms).
        // With origin 2 dead, its flows must come from 1 — not from the
        // lowest-id alive origin 0.
        let d = DistanceMatrix::from_fn(6, |i, j| match (i, j) {
            (0, 5) => 50.0,
            (1, 5) => 10.0,
            (2, 5) => 5.0,
            (0, _) => 8.0,
            (1, _) => 9.0,
            (2, _) => 10.0,
            _ => 100.0,
        });
        let g = DemandGenerator::new(WorkloadKind::Cdn { origins: 3 }, 6, 60.0, 32, 4, &d);
        let mut alive = [true; 6];
        alive[2] = false;
        let mut saw_client5 = false;
        for epoch in 0..6 {
            for f in g.generate(epoch, &alive) {
                if f.dst == NodeId(5) {
                    saw_client5 = true;
                    assert_eq!(
                        f.src,
                        NodeId(1),
                        "failover must pick the next-nearest alive origin"
                    );
                }
            }
        }
        assert!(saw_client5, "client 5 never drew a flow; weak test setup");
    }

    #[test]
    fn single_survivor_yields_no_flows() {
        let d = delays(4);
        let mut alive = [false; 4];
        alive[1] = true;
        let g = DemandGenerator::new(WorkloadKind::Uniform, 4, 50.0, 8, 2, &d);
        assert!(g.generate(0, &alive).is_empty());
    }
}
