//! A minimal JSON writer.
//!
//! The build environment has no crates.io access, so instead of serde
//! this crate serializes its reports with a tiny hand-rolled writer.
//! Output is deterministic: field order is insertion order and floats
//! use Rust's shortest-roundtrip formatting, so the same report always
//! produces the byte-identical document (the property the determinism
//! test pins).

/// Escape and quote a JSON string.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float as a JSON number; non-finite values become `null`.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// A JSON array from already-serialized items.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// Insertion-ordered JSON object builder.
#[derive(Default)]
pub struct JsonObject {
    parts: Vec<String>,
}

impl JsonObject {
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Add a field whose value is already serialized JSON.
    pub fn raw(mut self, key: &str, value: impl Into<String>) -> Self {
        self.parts.push(format!("{}:{}", string(key), value.into()));
        self
    }

    pub fn str(self, key: &str, value: &str) -> Self {
        let v = string(value);
        self.raw(key, v)
    }

    pub fn f64(self, key: &str, value: f64) -> Self {
        let v = num(value);
        self.raw(key, v)
    }

    pub fn u64(self, key: &str, value: u64) -> Self {
        self.raw(key, value.to_string())
    }

    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    pub fn finish(self) -> String {
        format!("{{{}}}", self.parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_preserves_insertion_order() {
        let j = JsonObject::new()
            .str("name", "uniform")
            .u64("epochs", 8)
            .f64("ratio", 0.5)
            .bool("closed_loop", true)
            .finish();
        assert_eq!(
            j,
            r#"{"name":"uniform","epochs":8,"ratio":0.5,"closed_loop":true}"#
        );
    }

    #[test]
    fn strings_escape_control_and_quotes() {
        assert_eq!(string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(2.5), "2.5");
        assert_eq!(num(1.0), "1.0");
    }

    #[test]
    fn arrays_join_items() {
        assert_eq!(array([num(1.0), num(2.5)]), "[1.0,2.5]");
        assert_eq!(array(Vec::<String>::new()), "[]");
    }

    #[test]
    fn output_parses_as_json_ish() {
        // Sanity: balanced braces and no trailing commas.
        let j = JsonObject::new()
            .raw("arr", array([JsonObject::new().u64("x", 1).finish()]))
            .finish();
        assert_eq!(j, r#"{"arr":[{"x":1}]}"#);
    }
}
