//! Property tests for the data plane.

use crate::backpressure::{BackpressureConfig, BackpressureEngine};
use crate::capacity::CapacityLedger;
use crate::demand::{DemandGenerator, Flow, WorkloadKind};
use crate::engine::{TrafficConfig, TrafficEngine};
use crate::policy::DataPolicyKind;
use crate::router::RouteInputs;
use egoist_core::policies::PolicyKind;
use egoist_core::sim::Metric;
use egoist_graph::{DiGraph, DistanceMatrix, NodeId};
use proptest::prelude::*;

fn delays(n: usize) -> DistanceMatrix {
    DistanceMatrix::from_fn(n, |i, j| 1.0 + ((i * 13 + j * 5) % 37) as f64)
}

fn kind_from(idx: usize) -> WorkloadKind {
    WorkloadKind::all()[idx % 4]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generator conserves total offered load exactly (equal
    /// split), for any population size, seed, epoch and shape.
    #[test]
    fn demand_conserves_offered_load(
        n in 2usize..24,
        kind_idx in 0usize..4,
        seed in 0u64..500,
        epoch in 0usize..20,
        offered in 1.0f64..5000.0,
    ) {
        let g = DemandGenerator::new(kind_from(kind_idx), n, offered, 16, seed, &delays(n));
        let flows = g.generate(epoch, &vec![true; n]);
        prop_assert!(!flows.is_empty());
        let total: f64 = flows.iter().map(|f| f.rate_mbps).sum();
        prop_assert!(
            (total - offered).abs() < 1e-6 * offered.max(1.0),
            "{}: offered {offered}, emitted {total}",
            kind_from(kind_idx).label()
        );
    }

    /// Conservation also holds under partial aliveness (or the epoch is
    /// empty when fewer than two nodes are up), and flows never touch
    /// dead endpoints.
    #[test]
    fn demand_respects_aliveness(
        n in 2usize..16,
        kind_idx in 0usize..4,
        seed in 0u64..200,
        dead_mask in 0u32..65536,
    ) {
        let alive: Vec<bool> = (0..n).map(|i| dead_mask & (1 << i) == 0).collect();
        let n_alive = alive.iter().filter(|a| **a).count();
        let g = DemandGenerator::new(kind_from(kind_idx), n, 100.0, 12, seed, &delays(n));
        let flows = g.generate(0, &alive);
        if n_alive < 2 {
            prop_assert!(flows.is_empty());
        } else {
            for f in &flows {
                prop_assert!(alive[f.src.index()]);
                prop_assert!(alive[f.dst.index()]);
                prop_assert!(f.src != f.dst);
            }
            if !flows.is_empty() {
                let total: f64 = flows.iter().map(|f| f.rate_mbps).sum();
                prop_assert!((total - 100.0).abs() < 1e-6);
            }
        }
    }

    /// Generators are pure functions of (seed, epoch, aliveness).
    #[test]
    fn demand_is_deterministic(
        n in 2usize..16,
        kind_idx in 0usize..4,
        seed in 0u64..200,
        epoch in 0usize..10,
    ) {
        let d = delays(n);
        let a = DemandGenerator::new(kind_from(kind_idx), n, 64.0, 8, seed, &d);
        let b = DemandGenerator::new(kind_from(kind_idx), n, 64.0, 8, seed, &d);
        prop_assert_eq!(
            a.generate(epoch, &vec![true; n]),
            b.generate(epoch, &vec![true; n])
        );
    }

    /// The capacity ledger never goes negative and conserves admitted
    /// traffic into the consumed matrix.
    #[test]
    fn ledger_conserves_and_stays_nonnegative(
        cap in 1.0f64..100.0,
        rates in proptest::collection::vec(0.1f64..50.0, 1..20),
    ) {
        let n = 5;
        let mut ledger = CapacityLedger::new(&DistanceMatrix::off_diagonal(n, cap));
        let path = [NodeId(0), NodeId(1), NodeId(2)];
        let mut admitted_total = 0.0;
        for r in rates {
            admitted_total += ledger.admit(&path, r);
        }
        prop_assert!(admitted_total <= cap + 1e-9, "admitted {admitted_total} > cap {cap}");
        prop_assert!(ledger.residual(NodeId(0), NodeId(1)) >= -1e-12);
        // Each of the 2 hops carries the admitted total.
        prop_assert!((ledger.total_link_mbps() - 2.0 * admitted_total).abs() < 1e-6);
        let fwd = ledger.forwarded_per_node();
        prop_assert!((fwd[0] - admitted_total).abs() < 1e-9);
        prop_assert!((fwd[1] - admitted_total).abs() < 1e-9);
        prop_assert_eq!(fwd[2], 0.0);
    }

    /// Backpressure stability: under a strictly admissible load (link
    /// capacity comfortably above the offered rate) total backlog must
    /// settle to a bounded level instead of growing without bound, and
    /// steady-state deliveries must approach the offered rate.
    #[test]
    fn backpressure_backlog_bounded_under_admissible_load(
        n in 3usize..9,
        rate in 1.0f64..20.0,
        hops in 1usize..5,
    ) {
        let mut g = DiGraph::new(n);
        for i in 0..n {
            g.add_edge(NodeId(i as u32), NodeId(((i + 1) % n) as u32), 1.0);
        }
        let d = delays(n);
        let loads = vec![0.0; n];
        let cap = DistanceMatrix::off_diagonal(n, rate * 2.0 + 10.0);
        let inp = RouteInputs {
            overlay: &g,
            true_delays: &d,
            node_load: &loads,
            capacity: &cap,
        };
        let flows = [Flow {
            src: NodeId(0),
            dst: NodeId(hops.min(n - 1) as u32),
            rate_mbps: rate,
        }];
        let mut bp = BackpressureEngine::new(n, BackpressureConfig::default(), 2.0);
        let mut last = 0.0;
        for _ in 0..10 {
            last = bp.route_epoch(&flows, &inp).delivered_mbps;
        }
        let b1 = bp.total_backlog();
        for _ in 0..10 {
            last = bp.route_epoch(&flows, &inp).delivered_mbps;
        }
        let b2 = bp.total_backlog();
        prop_assert!(last > rate * 0.7, "steady delivery {last} ≪ offered {rate}");
        prop_assert!(
            b2 < rate * (n as f64 + 4.0),
            "backlog {b2} unbounded for rate {rate} on {n} nodes"
        );
        prop_assert!(
            b2 < b1 + 0.2 * rate,
            "backlog still growing after settling: {b1} → {b2}"
        );
    }

    /// Policy determinism end to end: every data policy run through the
    /// full closed-loop engine is a pure function of its configuration —
    /// two same-seed runs serialize byte-identically.
    #[test]
    fn data_policies_are_pure_functions_of_seed(
        n in 6usize..14,
        seed in 0u64..64,
        policy_idx in 0usize..3,
        offered in 50.0f64..800.0,
    ) {
        let mut cfg = TrafficConfig::new(n, 3, PolicyKind::BestResponse, Metric::DelayPing, seed);
        cfg.sim.epochs = 4;
        cfg.sim.warmup_epochs = 1;
        cfg.flows_per_epoch = 10;
        cfg.offered_mbps = offered;
        cfg.data_policy = DataPolicyKind::all()[policy_idx];
        prop_assert_eq!(
            TrafficEngine::run(&cfg).to_json(),
            TrafficEngine::run(&cfg).to_json()
        );
    }
}
