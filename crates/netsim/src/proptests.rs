//! Property tests for the underlay models.

use crate::churn::{ChurnModel, ChurnTrace, Durations, NodeProfile};
use crate::delay::{DelayConfig, DelayModel};
use crate::fault::{FaultConfig, FaultInjector, FaultPlan, Verdict};
use crate::planetlab::{PlanetLabSpec, Region};
use crate::rng::derive;
use crate::topo::{barabasi_albert_delays, waxman_delays, BaConfig, WaxmanConfig};
use egoist_graph::NodeId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Delay matrices are always positive off-diagonal, zero on the
    /// diagonal, and stay positive under arbitrary jitter evolution.
    #[test]
    fn delays_stay_positive(seed in 0u64..500, steps in 0usize..20) {
        let spec = PlanetLabSpec::uniform(Region::Europe, 12);
        let mut m = DelayModel::from_spec(&spec, &DelayConfig::default(), seed);
        let mut rng = derive(seed, "prop-adv");
        for _ in 0..steps {
            m.advance(60.0, &mut rng);
        }
        for i in 0..12 {
            for j in 0..12 {
                if i == j {
                    prop_assert_eq!(m.delay(i, j), 0.0);
                } else {
                    prop_assert!(m.delay(i, j) > 0.0);
                }
            }
        }
    }

    /// Churn traces keep a consistent membership state machine: alive_at
    /// never returns duplicates, and the population never exceeds n.
    #[test]
    fn churn_membership_is_consistent(seed in 0u64..200, divisor in 1.0f64..500.0) {
        let mut model = ChurnModel::planetlab_like(15, seed);
        model.timescale_divisor = divisor;
        let trace = model.generate(1800.0);
        for t in [0.0, 450.0, 900.0, 1799.0] {
            let alive = trace.alive_at(t);
            prop_assert!(alive.len() <= 15);
            let mut s = alive.clone();
            s.sort_unstable();
            s.dedup();
            prop_assert_eq!(s.len(), alive.len());
        }
        prop_assert!(trace.churn_rate() >= 0.0);
    }

    /// Higher timescale divisors never reduce the number of churn events.
    #[test]
    fn churn_rate_monotone_in_divisor(seed in 0u64..100) {
        let rate = |div: f64| {
            let mut m = ChurnModel::homogeneous(
                20,
                NodeProfile {
                    on: Durations::Exponential { mean: 3600.0 },
                    off: Durations::Exponential { mean: 600.0 },
                },
                seed,
            );
            m.timescale_divisor = div;
            m.generate(7200.0).churn_rate()
        };
        let (lo, hi) = (rate(1.0), rate(60.0));
        prop_assert!(hi >= lo, "divisor 60 rate {hi} < divisor 1 rate {lo}");
    }

    /// The fault injector conserves frames: passed + dropped + corrupted
    /// + rate_limited equals the number processed, and with no faults
    /// configured everything passes untouched.
    #[test]
    fn fault_injector_accounts_every_frame(
        seed in 0u64..200,
        drop in 0.0f64..1.0,
        corrupt in 0.0f64..1.0,
        frames in 1usize..200,
    ) {
        let cfg = FaultConfig { drop_chance: drop, corrupt_chance: corrupt, ..Default::default() };
        let mut inj = FaultInjector::new(cfg, seed);
        let mut buf = vec![0xA5u8; 16];
        for t in 0..frames {
            let _ = inj.process(t as f64, &mut buf);
        }
        prop_assert_eq!(
            inj.passed + inj.dropped + inj.corrupted + inj.rate_limited,
            frames as u64
        );
    }

    /// Clean injectors never mutate payloads.
    #[test]
    fn clean_injector_never_mutates(seed in 0u64..100, data in proptest::collection::vec(any::<u8>(), 1..64)) {
        let mut inj = FaultInjector::new(FaultConfig::default(), seed);
        let mut buf = data.clone();
        let v = inj.process(0.0, &mut buf);
        prop_assert_eq!(v, Verdict::Pass);
        prop_assert_eq!(buf, data);
    }

    /// Synthetic topologies always produce fully finite, positive delay
    /// matrices (the connectivity fix-up works for any density).
    #[test]
    fn topologies_are_connected(seed in 0u64..50, alpha in 0.02f64..0.8, m in 1usize..4) {
        let w = waxman_delays(20, &WaxmanConfig { alpha, ..Default::default() }, seed);
        let b = barabasi_albert_delays(20, &BaConfig { edges_per_node: m, ..Default::default() }, seed);
        for d in [&w, &b] {
            for i in 0..20 {
                for j in 0..20 {
                    if i != j {
                        prop_assert!(d.at(i, j).is_finite() && d.at(i, j) > 0.0);
                    }
                }
            }
        }
    }

    /// Same seed + config + plan ⇒ identical verdict sequence, across
    /// every verdict class (drop, corrupt, duplicate, reorder, jitter,
    /// partition/storm cuts). The adversarial fleet harness's
    /// bit-reproducible reports rest on this.
    #[test]
    fn fault_plan_verdicts_are_deterministic(
        seed in 0u64..200,
        drop in 0.0f64..0.4,
        dup in 0.0f64..0.4,
        reorder in 0.0f64..0.4,
        jitter in 0.0f64..0.4,
        frames in 1usize..300,
    ) {
        let cfg = FaultConfig {
            drop_chance: drop,
            corrupt_chance: 0.1,
            duplicate_chance: dup,
            reorder_chance: reorder,
            jitter_chance: jitter,
            ..Default::default()
        };
        let plan = FaultPlan::new()
            .partition(20.0, 50.0, vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]])
            .churn_storm(60.0, 120.0, (0..4).map(NodeId).collect(), 15.0, 0.3)
            .loss(130.0, 160.0, 0.8)
            .duplicate(130.0, 160.0, 0.5)
            .reorder(130.0, 160.0, 0.5, 30.0)
            .jitter(130.0, 160.0, 0.5, 8.0);
        let run = || {
            let mut inj = FaultInjector::with_plan(cfg, Some(plan.clone()), seed);
            let mut verdicts = Vec::with_capacity(frames);
            for t in 0..frames {
                let now = t as f64 * 0.7;
                let from = NodeId((t % 4) as u32);
                let to = NodeId(((t + 1) % 4) as u32);
                let mut buf = vec![0x5Au8; 16];
                verdicts.push(inj.process_addressed(now, from, to, &mut buf));
            }
            (verdicts, inj.cut, inj.duplicated, inj.reordered, inj.jittered)
        };
        prop_assert_eq!(run(), run());
    }

    /// A plan-free injector behaves identically through the addressed
    /// and address-blind entry points: wiring the plan machinery in must
    /// not perturb legacy verdict streams.
    #[test]
    fn addressed_and_blind_paths_agree_without_plan(
        seed in 0u64..200,
        drop in 0.0f64..0.9,
        frames in 1usize..200,
    ) {
        let cfg = FaultConfig { drop_chance: drop, corrupt_chance: 0.2, ..Default::default() };
        let mut blind = FaultInjector::new(cfg, seed);
        let mut addressed = FaultInjector::new(cfg, seed);
        for t in 0..frames {
            let mut a = vec![0xC3u8; 8];
            let mut b = a.clone();
            let va = blind.process(t as f64, &mut a);
            let vb = addressed.process_addressed(t as f64, NodeId(5), NodeId(6), &mut b);
            prop_assert_eq!(va, vb);
            prop_assert_eq!(&a, &b);
        }
    }

    /// Trace slicing covers every event exactly once.
    #[test]
    fn events_between_partitions(seed in 0u64..100) {
        let model = ChurnModel::planetlab_like(10, seed);
        let trace: ChurnTrace = model.generate(3600.0);
        let cuts = [0.0, 700.0, 1800.0, 2500.0, 3600.0];
        let mut total = 0;
        for w in cuts.windows(2) {
            total += trace.events_between(w[0], w[1]).len();
        }
        prop_assert_eq!(total, trace.events.len());
    }
}
