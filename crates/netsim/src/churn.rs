//! Node churn: ON/OFF processes, traces, and the paper's churn statistic.
//!
//! §4.4: "The ON/OFF periods we use in our experiments are derived from
//! real data sets of the churn observed for PlanetLab nodes \[17\], with
//! adjustments to the timescale to control the intensity of churn."
//!
//! The churn rate is defined (following \[17\]) as
//!
//! ```text
//! Churn = (1/T) Σ_events |U_{i-1} Δ U_i| / max(|U_{i-1}|, |U_i|)
//! ```
//!
//! where `U_i` is the membership set after event `i` and `Δ` the symmetric
//! difference. A churn of 0.01 on n = 50 means one join/leave every two
//! seconds.

use crate::rng::derive_indexed;
use egoist_graph::NodeId;
use rand::Rng;
use rand_distr::{Distribution, Exp, Pareto};

/// A membership change.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnEvent {
    /// Simulation time (s).
    pub at: f64,
    pub node: NodeId,
    /// `true` = node turns ON (joins), `false` = turns OFF (leaves).
    pub up: bool,
}

/// Session/intersession length distributions.
#[derive(Clone, Copy, Debug)]
pub enum Durations {
    /// Exponential with the given mean (s).
    Exponential { mean: f64 },
    /// Pareto with scale (minimum, s) and shape; heavy-tailed sessions are
    /// what PlanetLab host-availability data shows.
    Pareto { scale: f64, shape: f64 },
}

impl Durations {
    fn sample(&self, rng: &mut impl Rng) -> f64 {
        match *self {
            Durations::Exponential { mean } => Exp::new(1.0 / mean.max(1e-9))
                .expect("positive rate")
                .sample(rng),
            Durations::Pareto { scale, shape } => {
                Pareto::new(scale, shape).expect("valid pareto").sample(rng)
            }
        }
    }
}

/// Per-node churn profile.
#[derive(Clone, Debug)]
pub struct NodeProfile {
    pub on: Durations,
    pub off: Durations,
}

/// Alternating-renewal churn generator for a population of `n` nodes.
#[derive(Clone, Debug)]
pub struct ChurnModel {
    profiles: Vec<NodeProfile>,
    /// Divide all durations by this to intensify churn (the paper's
    /// "adjustments to the timescale"). 1.0 = natural timescale.
    pub timescale_divisor: f64,
    seed: u64,
}

impl ChurnModel {
    /// Homogeneous population.
    pub fn homogeneous(n: usize, profile: NodeProfile, seed: u64) -> Self {
        ChurnModel {
            profiles: vec![profile; n],
            timescale_divisor: 1.0,
            seed,
        }
    }

    /// PlanetLab-like heterogeneous population: most nodes are stable
    /// (Pareto sessions with a multi-hour scale), a minority are flappy.
    /// This is the synthetic stand-in for the trace of \[17\].
    pub fn planetlab_like(n: usize, seed: u64) -> Self {
        let profiles = (0..n)
            .map(|i| {
                // Deterministic mix: every 5th node is flappy.
                if i % 5 == 4 {
                    NodeProfile {
                        on: Durations::Pareto {
                            scale: 600.0,
                            shape: 1.3,
                        },
                        off: Durations::Exponential { mean: 300.0 },
                    }
                } else {
                    NodeProfile {
                        on: Durations::Pareto {
                            scale: 7200.0,
                            shape: 1.6,
                        },
                        off: Durations::Exponential { mean: 600.0 },
                    }
                }
            })
            .collect();
        ChurnModel {
            profiles,
            timescale_divisor: 1.0,
            seed,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Generate the ON/OFF event trace over `[0, horizon]` seconds.
    /// All nodes start ON at t = 0 (they join the overlay at the start of
    /// the experiment), then alternate OFF/ON.
    pub fn generate(&self, horizon: f64) -> ChurnTrace {
        let mut events = Vec::new();
        for (i, prof) in self.profiles.iter().enumerate() {
            let mut rng = derive_indexed(self.seed, "churn-node", i as u64);
            let mut t = 0.0;
            let mut up = true;
            loop {
                let dur = if up {
                    prof.on.sample(&mut rng)
                } else {
                    prof.off.sample(&mut rng)
                } / self.timescale_divisor;
                t += dur.max(1e-6);
                if t >= horizon {
                    break;
                }
                up = !up;
                events.push(ChurnEvent {
                    at: t,
                    node: NodeId::from_index(i),
                    up,
                });
            }
        }
        events.sort_by(|a, b| a.at.total_cmp(&b.at));
        ChurnTrace {
            n: self.len(),
            horizon,
            events,
        }
    }
}

/// A concrete (replayable) churn trace.
#[derive(Clone, Debug)]
pub struct ChurnTrace {
    pub n: usize,
    pub horizon: f64,
    pub events: Vec<ChurnEvent>,
}

impl ChurnTrace {
    /// A trace with no churn at all.
    pub fn none(n: usize, horizon: f64) -> Self {
        ChurnTrace {
            n,
            horizon,
            events: Vec::new(),
        }
    }

    /// Membership (ON set) at time `t`, assuming everyone starts ON.
    pub fn alive_at(&self, t: f64) -> Vec<NodeId> {
        let mut up = vec![true; self.n];
        for e in &self.events {
            if e.at > t {
                break;
            }
            up[e.node.index()] = e.up;
        }
        (0..self.n)
            .filter(|&i| up[i])
            .map(NodeId::from_index)
            .collect()
    }

    /// The paper's churn-rate statistic over the whole horizon.
    ///
    /// Each single join/leave event contributes `1 / max(|U_prev|, |U_new|)`
    /// and the sum is divided by the horizon (units: fraction of the
    /// population changing state per second).
    pub fn churn_rate(&self) -> f64 {
        if self.horizon <= 0.0 {
            return 0.0;
        }
        let mut up = vec![true; self.n];
        let mut cur = self.n;
        let mut sum = 0.0;
        for e in &self.events {
            let was = up[e.node.index()];
            if was == e.up {
                continue; // redundant event
            }
            let prev = cur;
            up[e.node.index()] = e.up;
            cur = if e.up { cur + 1 } else { cur - 1 };
            let denom = prev.max(cur);
            if denom > 0 {
                sum += 1.0 / denom as f64;
            }
        }
        sum / self.horizon
    }

    /// Events within `(from, to]` — the per-epoch slice the simulator
    /// consumes.
    pub fn events_between(&self, from: f64, to: f64) -> &[ChurnEvent] {
        let lo = self.events.partition_point(|e| e.at <= from);
        let hi = self.events.partition_point(|e| e.at <= to);
        &self.events[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_churn_trace_keeps_everyone_alive() {
        let t = ChurnTrace::none(10, 1000.0);
        assert_eq!(t.alive_at(500.0).len(), 10);
        assert_eq!(t.churn_rate(), 0.0);
    }

    #[test]
    fn generated_events_are_sorted_and_alternating() {
        let m = ChurnModel::planetlab_like(20, 1);
        let trace = m.generate(24.0 * 3600.0);
        for w in trace.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        // Per node: first event is a leave (they start ON).
        for i in 0..20 {
            let first = trace
                .events
                .iter()
                .find(|e| e.node == NodeId::from_index(i));
            if let Some(e) = first {
                assert!(!e.up, "first event for a node starting ON must be OFF");
            }
        }
    }

    #[test]
    fn timescale_divisor_intensifies_churn() {
        let mut slow = ChurnModel::planetlab_like(30, 7);
        slow.timescale_divisor = 1.0;
        let mut fast = ChurnModel::planetlab_like(30, 7);
        fast.timescale_divisor = 50.0;
        let h = 12.0 * 3600.0;
        let r_slow = slow.generate(h).churn_rate();
        let r_fast = fast.generate(h).churn_rate();
        assert!(
            r_fast > 5.0 * r_slow,
            "divisor 50 should raise churn a lot: {r_slow} vs {r_fast}"
        );
    }

    #[test]
    fn churn_rate_matches_hand_computation() {
        // n=4, two events: one leave at t=10 (1/4), one join at t=20 (1/4),
        // horizon 100 → (0.25+0.25)/100 = 0.005.
        let trace = ChurnTrace {
            n: 4,
            horizon: 100.0,
            events: vec![
                ChurnEvent {
                    at: 10.0,
                    node: NodeId(1),
                    up: false,
                },
                ChurnEvent {
                    at: 20.0,
                    node: NodeId(1),
                    up: true,
                },
            ],
        };
        assert!((trace.churn_rate() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn alive_at_respects_events() {
        let trace = ChurnTrace {
            n: 3,
            horizon: 100.0,
            events: vec![
                ChurnEvent {
                    at: 10.0,
                    node: NodeId(2),
                    up: false,
                },
                ChurnEvent {
                    at: 50.0,
                    node: NodeId(2),
                    up: true,
                },
            ],
        };
        assert_eq!(trace.alive_at(5.0).len(), 3);
        assert_eq!(trace.alive_at(30.0), vec![NodeId(0), NodeId(1)]);
        assert_eq!(trace.alive_at(60.0).len(), 3);
    }

    #[test]
    fn events_between_slices_correctly() {
        let m = ChurnModel::planetlab_like(10, 2);
        let trace = m.generate(3600.0);
        let all: usize = trace.events.len();
        let a = trace.events_between(0.0, 1800.0).len();
        let b = trace.events_between(1800.0, 3600.0).len();
        assert_eq!(a + b, all);
    }

    #[test]
    fn determinism() {
        let a = ChurnModel::planetlab_like(15, 5).generate(7200.0);
        let b = ChurnModel::planetlab_like(15, 5).generate(7200.0);
        assert_eq!(a.events, b.events);
    }
}
