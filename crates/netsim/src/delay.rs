//! Synthetic one-way link delays with realistic structure and dynamics.
//!
//! Construction (all seeded):
//!
//! 1. **Propagation**: sites are placed on a plane calibrated in
//!    "milliseconds" ([`crate::planetlab`]); the propagation component of
//!    `d_ij` is the Euclidean distance.
//! 2. **Access penalty**: each node draws a lognormal access-link penalty
//!    added to *all* its adjacent links; a configurable fraction of nodes
//!    is "congested" with a large penalty. This produces the
//!    triangle-inequality violations that make overlay routing (and BR
//!    neighbor selection) profitable — without them a full mesh of direct
//!    paths would always win and every policy would look alike.
//! 3. **Asymmetry**: each directed pair gets an independent multiplicative
//!    factor, honoring §2.1's `d_ij ≠ d_ji`.
//! 4. **Dynamics**: each directed pair carries an Ornstein–Uhlenbeck jitter
//!    process; [`DelayModel::advance`] evolves it, so consecutive epochs see
//!    correlated but drifting delays (the reason BR keeps re-wiring in
//!    Fig. 3).

use crate::planetlab::PlanetLabSpec;
use crate::rng::{derive, derive_indexed};
use egoist_graph::DistanceMatrix;
use rand::Rng;
use rand_distr::{Distribution, LogNormal, Normal};

/// Tuning knobs for the delay generator.
#[derive(Clone, Debug)]
pub struct DelayConfig {
    /// Fraction of nodes with a congested access link.
    pub congested_fraction: f64,
    /// Penalty (ms, one-way) added per congested endpoint.
    pub congested_penalty: f64,
    /// Lognormal μ/σ of the regular access penalty (ms).
    pub access_mu: f64,
    pub access_sigma: f64,
    /// Max relative asymmetry between `d_ij` and `d_ji` (e.g. 0.15 → ±15%).
    pub asymmetry: f64,
    /// OU mean-reversion rate (1/s) of per-pair jitter.
    pub jitter_theta: f64,
    /// OU stationary standard deviation as a fraction of the base delay.
    pub jitter_rel_sigma: f64,
    /// Hard floor for any one-way delay (ms).
    pub min_delay: f64,
    /// Multiplier on inter-region distances (region centers move apart,
    /// intra-region spreads stay put). Raises the intercontinental /
    /// intracontinental contrast that makes random long links expensive.
    pub geo_scale: f64,
}

impl Default for DelayConfig {
    fn default() -> Self {
        DelayConfig {
            congested_fraction: 0.15,
            congested_penalty: 100.0,
            access_mu: 1.2, // exp(1.2) ≈ 3.3 ms median access penalty
            access_sigma: 1.0,
            asymmetry: 0.15,
            jitter_theta: 1.0 / 120.0, // ~2 min correlation time
            jitter_rel_sigma: 0.10,
            min_delay: 0.2,
            geo_scale: 1.0,
        }
    }
}

/// One Ornstein–Uhlenbeck state per directed pair.
#[derive(Clone, Debug)]
struct OuJitter {
    /// Current deviation (ms) around the base delay.
    x: f64,
    /// Stationary σ (ms).
    sigma: f64,
}

/// The delay substrate: a base matrix plus evolving jitter.
#[derive(Clone, Debug)]
pub struct DelayModel {
    base: DistanceMatrix,
    jitter: Vec<OuJitter>,
    cfg: DelayConfig,
    n: usize,
    /// Simulation time (s) the jitter has been advanced to.
    pub now: f64,
}

impl DelayModel {
    /// Build the paper's 50-node PlanetLab-like delay space.
    pub fn planetlab_50(seed: u64) -> Self {
        Self::from_spec(&PlanetLabSpec::paper_50(), &DelayConfig::default(), seed)
    }

    /// Build the 295-site space for the sampling study (§5).
    pub fn planetlab_295(seed: u64) -> Self {
        Self::from_spec(&PlanetLabSpec::paper_295(), &DelayConfig::default(), seed)
    }

    /// Build from an arbitrary roster and config.
    pub fn from_spec(spec: &PlanetLabSpec, cfg: &DelayConfig, seed: u64) -> Self {
        let n = spec.n();
        let mut rng = derive(seed, "delay-base");
        let mut pts = spec.place(&mut rng);
        // Pull region centers apart without widening the regions
        // themselves: p = center·scale + (p − center).
        for (p, region) in pts.iter_mut().zip(spec.regions()) {
            let (cx, cy) = region.center();
            p.0 += cx * (cfg.geo_scale - 1.0);
            p.1 += cy * (cfg.geo_scale - 1.0);
        }

        // Per-node access penalties.
        let access_dist =
            LogNormal::new(cfg.access_mu, cfg.access_sigma).expect("valid lognormal parameters");
        let mut access: Vec<f64> = (0..n).map(|_| access_dist.sample(&mut rng)).collect();
        let n_congested = ((n as f64) * cfg.congested_fraction).round() as usize;
        // Deterministically congest the nodes with the highest draw order:
        // pick indices via the rng to avoid biasing particular regions.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            idx.swap(i, j);
        }
        for &i in idx.iter().take(n_congested) {
            access[i] += cfg.congested_penalty;
        }

        let base = DistanceMatrix::from_fn(n, |i, j| {
            let (xi, yi) = pts[i];
            let (xj, yj) = pts[j];
            let prop = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
            let mut pair_rng = derive_indexed(seed, "delay-pair", (i * n + j) as u64);
            let asym = 1.0 + pair_rng.random_range(-cfg.asymmetry..cfg.asymmetry);
            ((prop + access[i] + access[j]) * asym).max(cfg.min_delay)
        });

        let jitter = (0..n * n)
            .map(|p| {
                let b = base.at(p / n, p % n);
                OuJitter {
                    x: 0.0,
                    sigma: b * cfg.jitter_rel_sigma,
                }
            })
            .collect();

        DelayModel {
            base,
            jitter,
            cfg: cfg.clone(),
            n,
            now: 0.0,
        }
    }

    /// Build directly from an explicit base matrix (e.g. imported trace).
    pub fn from_matrix(base: DistanceMatrix, cfg: DelayConfig) -> Self {
        let n = base.len();
        let jitter = (0..n * n)
            .map(|p| OuJitter {
                x: 0.0,
                sigma: base.at(p / n, p % n) * cfg.jitter_rel_sigma,
            })
            .collect();
        DelayModel {
            base,
            jitter,
            cfg,
            n,
            now: 0.0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the model is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The static base matrix (no jitter).
    pub fn base(&self) -> &DistanceMatrix {
        &self.base
    }

    /// Advance the jitter processes by `dt` seconds (exact OU transition).
    pub fn advance(&mut self, dt: f64, rng: &mut impl Rng) {
        if dt <= 0.0 {
            return;
        }
        let theta = self.cfg.jitter_theta;
        let decay = (-theta * dt).exp();
        let std_scale = (1.0 - decay * decay).sqrt();
        let normal = Normal::new(0.0, 1.0).expect("unit normal");
        for j in &mut self.jitter {
            j.x = j.x * decay + j.sigma * std_scale * normal.sample(rng);
        }
        self.now += dt;
    }

    /// The current one-way delay of the directed pair `(i, j)` in ms.
    pub fn delay(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        (self.base.at(i, j) + self.jitter[i * self.n + j].x).max(self.cfg.min_delay)
    }

    /// Snapshot of the full current delay matrix.
    pub fn current(&self) -> DistanceMatrix {
        DistanceMatrix::from_fn(self.n, |i, j| self.delay(i, j))
    }

    /// RTT between `i` and `j` (sum of the two one-way delays) — what a
    /// ping measurement sees before halving.
    pub fn rtt(&self, i: usize, j: usize) -> f64 {
        self.delay(i, j) + self.delay(j, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive;

    #[test]
    fn deterministic_construction() {
        let a = DelayModel::planetlab_50(3).current();
        let b = DelayModel::planetlab_50(3).current();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = DelayModel::planetlab_50(3).current();
        let b = DelayModel::planetlab_50(4).current();
        assert_ne!(a, b);
    }

    #[test]
    fn delays_positive_and_asymmetric() {
        let m = DelayModel::planetlab_50(7);
        let d = m.current();
        let mut asym = 0usize;
        for i in 0..50 {
            for j in 0..50 {
                if i == j {
                    assert_eq!(d.at(i, j), 0.0);
                } else {
                    assert!(d.at(i, j) > 0.0);
                    if (d.at(i, j) - d.at(j, i)).abs() > 1e-9 {
                        asym += 1;
                    }
                }
            }
        }
        assert!(asym > 1000, "delays should be broadly asymmetric ({asym})");
    }

    #[test]
    fn intercontinental_exceeds_intracontinental_on_average() {
        let m = DelayModel::planetlab_50(11);
        let d = m.base();
        // Nodes 0..30 NA, 30..41 EU per roster order.
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in 0..30 {
            for j in 0..30 {
                if i != j {
                    intra.push(d.at(i, j));
                }
            }
            for j in 30..41 {
                inter.push(d.at(i, j));
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&inter) > 1.5 * avg(&intra),
            "NA–EU {} vs NA–NA {}",
            avg(&inter),
            avg(&intra)
        );
    }

    #[test]
    fn jitter_moves_but_stays_near_base() {
        let mut m = DelayModel::planetlab_50(5);
        let before = m.delay(0, 1);
        let mut rng = derive(5, "advance");
        for _ in 0..50 {
            m.advance(60.0, &mut rng);
        }
        let after = m.delay(0, 1);
        assert_ne!(before, after);
        let base = m.base().at(0, 1);
        assert!(
            (after - base).abs() < base,
            "jitter exploded: base {base}, now {after}"
        );
    }

    #[test]
    fn advance_zero_dt_is_noop() {
        let mut m = DelayModel::planetlab_50(5);
        let before = m.current();
        m.advance(0.0, &mut derive(5, "a"));
        assert_eq!(before, m.current());
    }

    #[test]
    fn triangle_violations_exist() {
        // Congested access links must create pairs where a detour beats
        // the direct path — the raison d'être of overlay routing.
        let m = DelayModel::planetlab_50(2);
        let d = m.base();
        let n = d.len();
        let mut violations = 0usize;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                for k in 0..n {
                    if k != i && k != j && d.at(i, k) + d.at(k, j) < d.at(i, j) - 1e-9 {
                        violations += 1;
                        break;
                    }
                }
            }
        }
        assert!(
            violations > n,
            "expected widespread TIVs, found {violations}"
        );
    }

    #[test]
    fn rtt_is_sum_of_oneways() {
        let m = DelayModel::planetlab_50(2);
        assert!((m.rtt(1, 2) - (m.delay(1, 2) + m.delay(2, 1))).abs() < 1e-12);
    }
}
