//! Message-level fault injection for protocol testing.
//!
//! Modeled on the fault injectors that ship with smoltcp's examples:
//! probabilistic drop, single-octet corruption, and a token-bucket rate
//! limiter. The protocol crate's `SimTransport` runs every frame through a
//! [`FaultInjector`], which is how the test suite exercises loss of
//! link-state announcements, heartbeat timeouts and corrupt-frame
//! rejection deterministically.

use crate::rng::derive;
use rand::rngs::StdRng;
use rand::Rng;

/// What happened to a frame passed through the injector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver untouched.
    Pass,
    /// Drop silently.
    Drop,
    /// Deliver, but one octet was flipped.
    Corrupted,
}

/// Configuration for a [`FaultInjector`].
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Probability a frame is dropped.
    pub drop_chance: f64,
    /// Probability a frame has one octet corrupted.
    pub corrupt_chance: f64,
    /// Token bucket capacity (frames); `None` disables rate limiting.
    pub bucket_capacity: Option<u32>,
    /// Token refill per second.
    pub refill_per_sec: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            bucket_capacity: None,
            refill_per_sec: 0.0,
        }
    }
}

impl FaultConfig {
    /// A lossy link (the smoltcp docs' suggested starting point is 15%).
    pub fn lossy(drop_chance: f64) -> Self {
        FaultConfig {
            drop_chance,
            ..Default::default()
        }
    }
}

/// Deterministic fault injector.
#[derive(Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: StdRng,
    tokens: f64,
    last_refill: f64,
    /// Counters for observability in tests and the overhead report.
    pub passed: u64,
    pub dropped: u64,
    pub corrupted: u64,
    pub rate_limited: u64,
}

impl FaultInjector {
    /// Build with a derived RNG stream.
    pub fn new(cfg: FaultConfig, seed: u64) -> Self {
        let tokens = cfg.bucket_capacity.map(|c| c as f64).unwrap_or(0.0);
        FaultInjector {
            cfg,
            rng: derive(seed, "fault"),
            tokens,
            last_refill: 0.0,
            passed: 0,
            dropped: 0,
            corrupted: 0,
            rate_limited: 0,
        }
    }

    /// Process one frame at simulation time `now`; may mutate it in place.
    pub fn process(&mut self, now: f64, frame: &mut [u8]) -> Verdict {
        if let Some(cap) = self.cfg.bucket_capacity {
            // Refill.
            let dt = (now - self.last_refill).max(0.0);
            self.tokens = (self.tokens + dt * self.cfg.refill_per_sec).min(cap as f64);
            self.last_refill = now;
            if self.tokens < 1.0 {
                self.rate_limited += 1;
                return Verdict::Drop;
            }
            self.tokens -= 1.0;
        }
        if self.cfg.drop_chance > 0.0 && self.rng.random_range(0.0..1.0) < self.cfg.drop_chance {
            self.dropped += 1;
            return Verdict::Drop;
        }
        if self.cfg.corrupt_chance > 0.0
            && !frame.is_empty()
            && self.rng.random_range(0.0..1.0) < self.cfg.corrupt_chance
        {
            let idx = self.rng.random_range(0..frame.len());
            let bit = self.rng.random_range(0..8u32);
            frame[idx] ^= 1 << bit;
            self.corrupted += 1;
            return Verdict::Corrupted;
        }
        self.passed += 1;
        Verdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_injector_passes_everything() {
        let mut f = FaultInjector::new(FaultConfig::default(), 1);
        let mut frame = vec![0u8; 32];
        for t in 0..100 {
            assert_eq!(f.process(t as f64, &mut frame), Verdict::Pass);
        }
        assert_eq!(f.passed, 100);
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let mut f = FaultInjector::new(FaultConfig::lossy(0.3), 2);
        let mut frame = vec![0u8; 8];
        let mut drops = 0;
        for t in 0..2000 {
            if f.process(t as f64, &mut frame) == Verdict::Drop {
                drops += 1;
            }
        }
        let rate = drops as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "observed drop rate {rate}");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let cfg = FaultConfig {
            corrupt_chance: 1.0,
            ..Default::default()
        };
        let mut f = FaultInjector::new(cfg, 3);
        let orig = vec![0xAAu8; 16];
        let mut frame = orig.clone();
        assert_eq!(f.process(0.0, &mut frame), Verdict::Corrupted);
        let flipped: u32 = orig
            .iter()
            .zip(&frame)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn token_bucket_limits_burst() {
        let cfg = FaultConfig {
            bucket_capacity: Some(4),
            refill_per_sec: 1.0,
            ..Default::default()
        };
        let mut f = FaultInjector::new(cfg, 4);
        let mut frame = vec![0u8; 4];
        // Burst of 10 at t=0: only 4 pass.
        let passed = (0..10)
            .filter(|_| f.process(0.0, &mut frame) == Verdict::Pass)
            .count();
        assert_eq!(passed, 4);
        // After 3 seconds, 3 tokens refilled.
        let passed2 = (0..10)
            .filter(|_| f.process(3.0, &mut frame) == Verdict::Pass)
            .count();
        assert_eq!(passed2, 3);
        assert_eq!(f.rate_limited, 13);
    }

    #[test]
    fn determinism() {
        let run = |seed| {
            let mut f = FaultInjector::new(FaultConfig::lossy(0.5), seed);
            let mut frame = vec![0u8; 4];
            (0..64)
                .map(|t| f.process(t as f64, &mut frame) == Verdict::Drop)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
