//! Message-level fault injection for protocol testing.
//!
//! Modeled on the fault injectors that ship with smoltcp's examples:
//! probabilistic drop, single-octet corruption, and a token-bucket rate
//! limiter — extended with duplication, reordering, delay jitter, and a
//! time-windowed [`FaultPlan`] schedule (named-group partitions that cut
//! and later heal, bursty correlated churn storms, per-window loss/jitter
//! boosts). The protocol crate's `SimTransport` runs every frame through
//! a [`FaultInjector`], which is how the test suite exercises loss of
//! link-state announcements, heartbeat timeouts, corrupt-frame rejection
//! and full partition/heal cycles deterministically.
//!
//! # Determinism
//!
//! Verdicts are a pure function of `(seed, config, plan, call sequence)`:
//! the RNG is consumed in a fixed order (drop, corrupt, duplicate,
//! reorder, jitter) and each draw is gated on its chance being non-zero,
//! so enabling a new fault class never perturbs the stream of an
//! existing one. Partition/churn-storm cuts are closed-form in `now` and
//! consume no randomness at all. `netsim::proptests` pins the property.

use crate::churn::{ChurnEvent, ChurnTrace};
use crate::rng::derive;
use egoist_graph::NodeId;
use rand::rngs::StdRng;
use rand::Rng;

/// What happened to a frame passed through the injector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver untouched.
    Pass,
    /// Drop silently.
    Drop,
    /// Deliver, but one octet was flipped.
    Corrupted,
    /// Drop because an active fault window cuts the sender/receiver pair
    /// (partition, or one endpoint is churned OFF).
    Cut,
    /// Deliver twice: the original on time, an echo `extra_us` later.
    Duplicate { extra_us: u32 },
    /// Deliver with `extra_us` of additional one-way latency.
    Delayed { extra_us: u32 },
    /// Deliver held back `extra_us` — long enough to arrive behind
    /// frames sent after it (reordering).
    Reordered { extra_us: u32 },
}

/// Configuration for a [`FaultInjector`].
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Probability a frame is dropped.
    pub drop_chance: f64,
    /// Probability a frame has one octet corrupted.
    pub corrupt_chance: f64,
    /// Probability a frame is delivered twice.
    pub duplicate_chance: f64,
    /// Probability a frame is held back long enough to reorder.
    pub reorder_chance: f64,
    /// Probability a frame picks up extra latency.
    pub jitter_chance: f64,
    /// Maximum extra latency (ms) for jittered frames and duplicate
    /// echoes.
    pub jitter_ms: f64,
    /// Maximum hold-back (ms) for reordered frames.
    pub reorder_hold_ms: f64,
    /// Token bucket capacity (frames); `None` disables rate limiting.
    pub bucket_capacity: Option<u32>,
    /// Token refill per second.
    pub refill_per_sec: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            duplicate_chance: 0.0,
            reorder_chance: 0.0,
            jitter_chance: 0.0,
            jitter_ms: 5.0,
            reorder_hold_ms: 50.0,
            bucket_capacity: None,
            refill_per_sec: 0.0,
        }
    }
}

impl FaultConfig {
    /// A lossy link (the smoltcp docs' suggested starting point is 15%).
    pub fn lossy(drop_chance: f64) -> Self {
        FaultConfig {
            drop_chance,
            ..Default::default()
        }
    }
}

/// One scheduled fault class, active on `[from, to)`.
#[derive(Clone, Debug)]
pub enum WindowFault {
    /// Named node groups that can only talk within their own group while
    /// the window is open. Nodes listed in no group implicitly belong to
    /// group 0 (the "main" side — infrastructure like a bootstrap
    /// service stays reachable from it).
    Partition { groups: Vec<Vec<NodeId>> },
    /// Bursty correlated ON/OFF churn: the listed nodes flap in four
    /// staggered waves; each node is OFF for `off_fraction` of every
    /// `period` seconds. Frames to or from an OFF node are cut.
    ChurnStorm {
        nodes: Vec<NodeId>,
        period: f64,
        off_fraction: f64,
    },
    /// Extra drop probability while the window is open (combined with
    /// the base config by `max`).
    Loss { chance: f64 },
    /// Extra latency jitter while the window is open.
    Jitter { chance: f64, max_ms: f64 },
    /// Frame duplication while the window is open.
    Duplicate { chance: f64 },
    /// Frame reordering while the window is open.
    Reorder { chance: f64, hold_ms: f64 },
}

impl WindowFault {
    /// Stable label for events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            WindowFault::Partition { .. } => "partition",
            WindowFault::ChurnStorm { .. } => "churn_storm",
            WindowFault::Loss { .. } => "loss",
            WindowFault::Jitter { .. } => "jitter",
            WindowFault::Duplicate { .. } => "duplicate",
            WindowFault::Reorder { .. } => "reorder",
        }
    }
}

/// A fault class scheduled on a time window.
#[derive(Clone, Debug)]
pub struct FaultWindow {
    /// Window opens (inclusive, seconds).
    pub from: f64,
    /// Window closes / heals (exclusive, seconds).
    pub to: f64,
    pub fault: WindowFault,
}

impl FaultWindow {
    fn active(&self, now: f64) -> bool {
        now >= self.from && now < self.to
    }
}

/// Number of staggered churn-storm waves.
const STORM_WAVES: usize = 4;

fn storm_phase(slot: usize, period: f64) -> f64 {
    period * (slot % STORM_WAVES) as f64 / STORM_WAVES as f64
}

fn storm_off(window: &FaultWindow, slot: usize, period: f64, off_fraction: f64, now: f64) -> bool {
    if !window.active(now) || off_fraction <= 0.0 || period <= 0.0 {
        return false;
    }
    let local = now - window.from + storm_phase(slot, period);
    local.rem_euclid(period) < off_fraction * period
}

/// A deterministic schedule of fault windows.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    pub windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan (no scheduled faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    fn push(mut self, from: f64, to: f64, fault: WindowFault) -> Self {
        assert!(to > from, "fault window must have positive length");
        self.windows.push(FaultWindow { from, to, fault });
        self
    }

    /// Schedule a partition of the named groups on `[from, to)`.
    pub fn partition(self, from: f64, to: f64, groups: Vec<Vec<NodeId>>) -> Self {
        self.push(from, to, WindowFault::Partition { groups })
    }

    /// Schedule a churn storm over `nodes` on `[from, to)`.
    pub fn churn_storm(
        self,
        from: f64,
        to: f64,
        nodes: Vec<NodeId>,
        period: f64,
        off_fraction: f64,
    ) -> Self {
        self.push(
            from,
            to,
            WindowFault::ChurnStorm {
                nodes,
                period,
                off_fraction,
            },
        )
    }

    /// Schedule an extra-loss window.
    pub fn loss(self, from: f64, to: f64, chance: f64) -> Self {
        self.push(from, to, WindowFault::Loss { chance })
    }

    /// Schedule a latency-jitter window.
    pub fn jitter(self, from: f64, to: f64, chance: f64, max_ms: f64) -> Self {
        self.push(from, to, WindowFault::Jitter { chance, max_ms })
    }

    /// Schedule a duplication window.
    pub fn duplicate(self, from: f64, to: f64, chance: f64) -> Self {
        self.push(from, to, WindowFault::Duplicate { chance })
    }

    /// Schedule a reordering window.
    pub fn reorder(self, from: f64, to: f64, chance: f64, hold_ms: f64) -> Self {
        self.push(from, to, WindowFault::Reorder { chance, hold_ms })
    }

    /// Is the node churned OFF by an active storm window at `now`?
    pub fn node_off(&self, now: f64, node: NodeId) -> bool {
        self.windows.iter().any(|w| match &w.fault {
            WindowFault::ChurnStorm {
                nodes,
                period,
                off_fraction,
            } => nodes
                .iter()
                .position(|&x| x == node)
                .is_some_and(|slot| storm_off(w, slot, *period, *off_fraction, now)),
            _ => false,
        })
    }

    /// Does an active window cut the directed pair `(from, to)` at `now`?
    pub fn cuts(&self, now: f64, from: NodeId, to: NodeId) -> bool {
        self.windows.iter().any(|w| {
            if !w.active(now) {
                return false;
            }
            match &w.fault {
                WindowFault::Partition { groups } => {
                    let side =
                        |id: NodeId| groups.iter().position(|g| g.contains(&id)).unwrap_or(0);
                    side(from) != side(to)
                }
                WindowFault::ChurnStorm {
                    nodes,
                    period,
                    off_fraction,
                } => [from, to].iter().any(|id| {
                    nodes
                        .iter()
                        .position(|x| x == id)
                        .is_some_and(|slot| storm_off(w, slot, *period, *off_fraction, now))
                }),
                _ => false,
            }
        })
    }

    /// Effective (plan-boosted) chances at `now`, combined with a base
    /// config by `max`.
    fn effective(&self, now: f64, base: &FaultConfig) -> FaultConfig {
        let mut eff = *base;
        for w in self.windows.iter().filter(|w| w.active(now)) {
            match &w.fault {
                WindowFault::Loss { chance } => eff.drop_chance = eff.drop_chance.max(*chance),
                WindowFault::Jitter { chance, max_ms } => {
                    eff.jitter_chance = eff.jitter_chance.max(*chance);
                    eff.jitter_ms = eff.jitter_ms.max(*max_ms);
                }
                WindowFault::Duplicate { chance } => {
                    eff.duplicate_chance = eff.duplicate_chance.max(*chance)
                }
                WindowFault::Reorder { chance, hold_ms } => {
                    eff.reorder_chance = eff.reorder_chance.max(*chance);
                    eff.reorder_hold_ms = eff.reorder_hold_ms.max(*hold_ms);
                }
                WindowFault::Partition { .. } | WindowFault::ChurnStorm { .. } => {}
            }
        }
        eff
    }

    /// Project the plan's membership effects into a core-layer
    /// [`ChurnTrace`] over ids `0..n`: partitioned minority groups are
    /// OFF for their window (as seen from group 0, the main component),
    /// and churn-storm flaps become explicit ON/OFF events. This is what
    /// lets the pure `Simulator` replay the same scenario the live fleet
    /// ran, engine-equivalence gate included.
    pub fn churn_trace(&self, n: usize, horizon: f64) -> ChurnTrace {
        let mut events = Vec::new();
        let mut push = |at: f64, node: NodeId, up: bool| {
            if at > 0.0 && at < horizon && node.index() < n {
                events.push(ChurnEvent { at, node, up });
            }
        };
        for w in &self.windows {
            match &w.fault {
                WindowFault::Partition { groups } => {
                    for g in groups.iter().skip(1) {
                        for &node in g {
                            push(w.from, node, false);
                            push(w.to, node, true);
                        }
                    }
                }
                WindowFault::ChurnStorm {
                    nodes,
                    period,
                    off_fraction,
                } => {
                    if *period <= 0.0 || *off_fraction <= 0.0 {
                        continue;
                    }
                    let off_len = off_fraction * period;
                    for (slot, &node) in nodes.iter().enumerate() {
                        let phase = storm_phase(slot, *period);
                        let len = w.to - w.from;
                        let mut m = 0.0f64;
                        loop {
                            // OFF interval in window-local time:
                            // [m·period − phase, same + off_len).
                            let start = m * period - phase;
                            if start >= len {
                                break;
                            }
                            let end = (start + off_len).min(len);
                            if end > 0.0 {
                                push(w.from + start.max(0.0), node, false);
                                push(w.from + end, node, true);
                            }
                            m += 1.0;
                        }
                    }
                }
                _ => {}
            }
        }
        events.sort_by(|a, b| {
            a.at.total_cmp(&b.at)
                .then(a.node.cmp(&b.node))
                .then(a.up.cmp(&b.up))
        });
        ChurnTrace { n, horizon, events }
    }
}

/// Obs handles for the injector (no-ops unless `egoist_obs::enable`).
struct FaultObs {
    window_open: egoist_obs::Counter,
    window_heal: egoist_obs::Counter,
    cut: egoist_obs::Counter,
    dropped: egoist_obs::Counter,
    duplicated: egoist_obs::Counter,
    reordered: egoist_obs::Counter,
    jittered: egoist_obs::Counter,
}

fn fault_obs() -> &'static FaultObs {
    use std::sync::OnceLock;
    static OBS: OnceLock<FaultObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = egoist_obs::registry();
        FaultObs {
            window_open: r.counter("netsim.fault.window_open"),
            window_heal: r.counter("netsim.fault.window_heal"),
            cut: r.counter("netsim.fault.cut"),
            dropped: r.counter("netsim.fault.dropped"),
            duplicated: r.counter("netsim.fault.duplicated"),
            reordered: r.counter("netsim.fault.reordered"),
            jittered: r.counter("netsim.fault.jittered"),
        }
    })
}

/// Deterministic fault injector.
#[derive(Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    plan: Option<FaultPlan>,
    /// Last observed open/closed state per plan window, for edge events.
    window_open: Vec<bool>,
    rng: StdRng,
    tokens: f64,
    last_refill: f64,
    /// Counters for observability in tests and the overhead report.
    pub passed: u64,
    pub dropped: u64,
    pub corrupted: u64,
    pub rate_limited: u64,
    pub cut: u64,
    pub duplicated: u64,
    pub reordered: u64,
    pub jittered: u64,
}

impl FaultInjector {
    /// Build with a derived RNG stream.
    pub fn new(cfg: FaultConfig, seed: u64) -> Self {
        Self::with_plan(cfg, None, seed)
    }

    /// Build with a scheduled fault plan on top of the base config.
    pub fn with_plan(cfg: FaultConfig, plan: Option<FaultPlan>, seed: u64) -> Self {
        let tokens = cfg.bucket_capacity.map(|c| c as f64).unwrap_or(0.0);
        let window_open = vec![false; plan.as_ref().map_or(0, |p| p.windows.len())];
        FaultInjector {
            cfg,
            plan,
            window_open,
            rng: derive(seed, "fault"),
            tokens,
            last_refill: 0.0,
            passed: 0,
            dropped: 0,
            corrupted: 0,
            rate_limited: 0,
            cut: 0,
            duplicated: 0,
            reordered: 0,
            jittered: 0,
        }
    }

    /// The scheduled plan, if any.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// Flight-recorder edges for windows opening/healing at `now`.
    fn note_window_edges(&mut self, now: f64) {
        let Some(plan) = &self.plan else { return };
        for (i, w) in plan.windows.iter().enumerate() {
            let open = w.active(now);
            if open == self.window_open[i] {
                continue;
            }
            self.window_open[i] = open;
            let obs = fault_obs();
            if open {
                obs.window_open.inc();
            } else {
                obs.window_heal.inc();
            }
            egoist_obs::event_at(
                (now.max(0.0) * 1e9) as u64,
                if open {
                    "netsim.fault.open"
                } else {
                    "netsim.fault.heal"
                },
                &[
                    ("window", (i as u64).into()),
                    ("kind", w.fault.label().into()),
                ],
            );
        }
    }

    /// Process one frame at simulation time `now`; may mutate it in place.
    /// Address-blind variant (no partition/storm cuts apply).
    pub fn process(&mut self, now: f64, frame: &mut [u8]) -> Verdict {
        self.process_addressed(now, NodeId(u32::MAX), NodeId(u32::MAX), frame)
    }

    /// Process one addressed frame at simulation time `now`.
    pub fn process_addressed(
        &mut self,
        now: f64,
        from: NodeId,
        to: NodeId,
        frame: &mut [u8],
    ) -> Verdict {
        self.note_window_edges(now);
        if let Some(plan) = &self.plan {
            if plan.cuts(now, from, to) {
                self.cut += 1;
                fault_obs().cut.inc();
                return Verdict::Cut;
            }
        }
        if let Some(cap) = self.cfg.bucket_capacity {
            // Refill.
            let dt = (now - self.last_refill).max(0.0);
            self.tokens = (self.tokens + dt * self.cfg.refill_per_sec).min(cap as f64);
            self.last_refill = now;
            if self.tokens < 1.0 {
                self.rate_limited += 1;
                return Verdict::Drop;
            }
            self.tokens -= 1.0;
        }
        let eff = match &self.plan {
            Some(plan) => plan.effective(now, &self.cfg),
            None => self.cfg,
        };
        if eff.drop_chance > 0.0 && self.rng.random_range(0.0..1.0) < eff.drop_chance {
            self.dropped += 1;
            fault_obs().dropped.inc();
            return Verdict::Drop;
        }
        if eff.corrupt_chance > 0.0
            && !frame.is_empty()
            && self.rng.random_range(0.0..1.0) < eff.corrupt_chance
        {
            let idx = self.rng.random_range(0..frame.len());
            let bit = self.rng.random_range(0..8u32);
            frame[idx] ^= 1 << bit;
            self.corrupted += 1;
            return Verdict::Corrupted;
        }
        if eff.duplicate_chance > 0.0 && self.rng.random_range(0.0..1.0) < eff.duplicate_chance {
            let extra_us = (self.rng.random_range(0.0..eff.jitter_ms.max(1.0)) * 1000.0) as u32;
            self.duplicated += 1;
            fault_obs().duplicated.inc();
            return Verdict::Duplicate { extra_us };
        }
        if eff.reorder_chance > 0.0 && self.rng.random_range(0.0..1.0) < eff.reorder_chance {
            let hold = eff.reorder_hold_ms.max(1.0);
            let extra_us = (self.rng.random_range(hold * 0.5..hold) * 1000.0) as u32;
            self.reordered += 1;
            fault_obs().reordered.inc();
            return Verdict::Reordered { extra_us };
        }
        if eff.jitter_chance > 0.0 && self.rng.random_range(0.0..1.0) < eff.jitter_chance {
            let extra_us = (self.rng.random_range(0.0..eff.jitter_ms.max(0.001)) * 1000.0) as u32;
            self.jittered += 1;
            fault_obs().jittered.inc();
            return Verdict::Delayed { extra_us };
        }
        self.passed += 1;
        Verdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_injector_passes_everything() {
        let mut f = FaultInjector::new(FaultConfig::default(), 1);
        let mut frame = vec![0u8; 32];
        for t in 0..100 {
            assert_eq!(f.process(t as f64, &mut frame), Verdict::Pass);
        }
        assert_eq!(f.passed, 100);
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let mut f = FaultInjector::new(FaultConfig::lossy(0.3), 2);
        let mut frame = vec![0u8; 8];
        let mut drops = 0;
        for t in 0..2000 {
            if f.process(t as f64, &mut frame) == Verdict::Drop {
                drops += 1;
            }
        }
        let rate = drops as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "observed drop rate {rate}");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let cfg = FaultConfig {
            corrupt_chance: 1.0,
            ..Default::default()
        };
        let mut f = FaultInjector::new(cfg, 3);
        let orig = vec![0xAAu8; 16];
        let mut frame = orig.clone();
        assert_eq!(f.process(0.0, &mut frame), Verdict::Corrupted);
        let flipped: u32 = orig
            .iter()
            .zip(&frame)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn token_bucket_limits_burst() {
        let cfg = FaultConfig {
            bucket_capacity: Some(4),
            refill_per_sec: 1.0,
            ..Default::default()
        };
        let mut f = FaultInjector::new(cfg, 4);
        let mut frame = vec![0u8; 4];
        // Burst of 10 at t=0: only 4 pass.
        let passed = (0..10)
            .filter(|_| f.process(0.0, &mut frame) == Verdict::Pass)
            .count();
        assert_eq!(passed, 4);
        // After 3 seconds, 3 tokens refilled.
        let passed2 = (0..10)
            .filter(|_| f.process(3.0, &mut frame) == Verdict::Pass)
            .count();
        assert_eq!(passed2, 3);
        assert_eq!(f.rate_limited, 13);
    }

    #[test]
    fn determinism() {
        let run = |seed| {
            let mut f = FaultInjector::new(FaultConfig::lossy(0.5), seed);
            let mut frame = vec![0u8; 4];
            (0..64)
                .map(|t| f.process(t as f64, &mut frame) == Verdict::Drop)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn partition_cuts_cross_group_frames_then_heals() {
        let plan = FaultPlan::new().partition(
            10.0,
            20.0,
            vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]],
        );
        let mut f = FaultInjector::with_plan(FaultConfig::default(), Some(plan), 5);
        let mut frame = vec![0u8; 4];
        // Before the window: everything passes.
        assert_eq!(
            f.process_addressed(5.0, NodeId(0), NodeId(2), &mut frame),
            Verdict::Pass
        );
        // During: cross-group cut, intra-group pass. Unlisted ids side
        // with group 0.
        assert_eq!(
            f.process_addressed(15.0, NodeId(0), NodeId(2), &mut frame),
            Verdict::Cut
        );
        assert_eq!(
            f.process_addressed(15.0, NodeId(2), NodeId(3), &mut frame),
            Verdict::Pass
        );
        assert_eq!(
            f.process_addressed(15.0, NodeId(0), NodeId(1000), &mut frame),
            Verdict::Pass
        );
        assert_eq!(
            f.process_addressed(15.0, NodeId(2), NodeId(1000), &mut frame),
            Verdict::Cut
        );
        // After the heal: everything passes again.
        assert_eq!(
            f.process_addressed(25.0, NodeId(0), NodeId(2), &mut frame),
            Verdict::Pass
        );
        assert_eq!(f.cut, 2);
    }

    #[test]
    fn churn_storm_flaps_nodes_deterministically() {
        let nodes: Vec<NodeId> = (0..8).map(NodeId).collect();
        let plan = FaultPlan::new().churn_storm(0.0, 100.0, nodes, 20.0, 0.25);
        // Node 0 (wave 0): OFF on [0,5), [20,25), ...
        assert!(plan.node_off(1.0, NodeId(0)));
        assert!(!plan.node_off(6.0, NodeId(0)));
        assert!(plan.node_off(21.0, NodeId(0)));
        // Node 1 (wave 1, phase 5): OFF on [15,20), [35,40), ...
        assert!(!plan.node_off(1.0, NodeId(1)));
        assert!(plan.node_off(16.0, NodeId(1)));
        // Outside the window nobody is off.
        assert!(!plan.node_off(150.0, NodeId(0)));
        // cuts() mirrors node_off on either endpoint: nodes 0 and 4 are
        // both wave 0 (OFF on [0,5)), node 1 is wave 1.
        assert!(plan.cuts(1.0, NodeId(1), NodeId(0)));
        assert!(plan.cuts(1.0, NodeId(0), NodeId(1)));
        assert!(!plan.cuts(6.0, NodeId(0), NodeId(4)));
    }

    #[test]
    fn churn_trace_matches_node_off_closed_form() {
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        let plan = FaultPlan::new()
            .churn_storm(30.0, 90.0, nodes, 20.0, 0.3)
            .partition(
                100.0,
                130.0,
                vec![vec![NodeId(0)], vec![NodeId(4), NodeId(5)]],
            );
        let trace = plan.churn_trace(6, 200.0);
        // The trace's membership at sample times must agree with the
        // plan's closed-form OFF predicate (partition: groups beyond 0
        // count as OFF).
        for t in [0.0, 31.0, 40.0, 55.0, 89.0, 95.0, 101.0, 129.0, 140.0] {
            let alive = trace.alive_at(t);
            for i in 0..6 {
                let id = NodeId::from_index(i);
                let partitioned = (100.0..130.0).contains(&t) && (i == 4 || i == 5);
                let expect_off = plan.node_off(t, id) || partitioned;
                assert_eq!(
                    !alive.contains(&id),
                    expect_off,
                    "node {i} at t={t}: alive set {alive:?}"
                );
            }
        }
    }

    #[test]
    fn window_loss_applies_only_inside_window() {
        let plan = FaultPlan::new().loss(10.0, 20.0, 1.0);
        let mut f = FaultInjector::with_plan(FaultConfig::default(), Some(plan), 6);
        let mut frame = vec![0u8; 4];
        assert_eq!(f.process(5.0, &mut frame), Verdict::Pass);
        assert_eq!(f.process(15.0, &mut frame), Verdict::Drop);
        assert_eq!(f.process(25.0, &mut frame), Verdict::Pass);
    }

    #[test]
    fn duplicate_reorder_jitter_verdicts_fire() {
        let cfg = FaultConfig {
            duplicate_chance: 1.0,
            ..Default::default()
        };
        let mut f = FaultInjector::new(cfg, 7);
        let mut frame = vec![0u8; 4];
        assert!(matches!(
            f.process(0.0, &mut frame),
            Verdict::Duplicate { .. }
        ));
        let cfg = FaultConfig {
            reorder_chance: 1.0,
            reorder_hold_ms: 40.0,
            ..Default::default()
        };
        let mut f = FaultInjector::new(cfg, 8);
        match f.process(0.0, &mut frame) {
            Verdict::Reordered { extra_us } => {
                assert!((20_000..=40_000).contains(&extra_us), "hold {extra_us}us")
            }
            v => panic!("expected reorder, got {v:?}"),
        }
        let cfg = FaultConfig {
            jitter_chance: 1.0,
            jitter_ms: 10.0,
            ..Default::default()
        };
        let mut f = FaultInjector::new(cfg, 9);
        match f.process(0.0, &mut frame) {
            Verdict::Delayed { extra_us } => assert!(extra_us < 10_000),
            v => panic!("expected jitter, got {v:?}"),
        }
        assert_eq!(f.jittered, 1);
    }
}
