//! Node rosters mirroring the paper's PlanetLab deployments.
//!
//! §4.2: "We deployed Egoist on n = 50 PlanetLab nodes (30 in North
//! America, 11 in Europe, 7 in Asia, 1 in South America, and 1 in
//! Oceania)." §5 uses a 295-site all-pairs ping trace. The specs here
//! reproduce those populations; geographic placement feeds the delay
//! model.

use rand::Rng;

/// Continent-scale region of a site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Region {
    NorthAmerica,
    Europe,
    Asia,
    SouthAmerica,
    Oceania,
}

impl Region {
    /// All regions, in roster order.
    pub const ALL: [Region; 5] = [
        Region::NorthAmerica,
        Region::Europe,
        Region::Asia,
        Region::SouthAmerica,
        Region::Oceania,
    ];

    /// Nominal center of the region on the synthetic delay plane
    /// (coordinates in "propagation milliseconds": Euclidean distance
    /// between two points approximates the one-way propagation delay of a
    /// direct IP path between them).
    pub fn center(self) -> (f64, f64) {
        match self {
            // NA and EU form an overlapping low-delay core (coast-to-coast
            // US spread is comparable to the transatlantic gap, as in real
            // PlanetLab RTT data); Asia / South America / Oceania sit in a
            // genuinely far tail.
            Region::NorthAmerica => (0.0, 0.0),
            Region::Europe => (55.0, 0.0),
            Region::Asia => (135.0, -15.0),
            Region::SouthAmerica => (65.0, -80.0),
            Region::Oceania => (160.0, -65.0),
        }
    }

    /// Radius of the region's site disk (intra-region spread, ms).
    pub fn radius(self) -> f64 {
        match self {
            Region::NorthAmerica => 24.0,
            Region::Europe => 13.0,
            Region::Asia => 22.0,
            Region::SouthAmerica => 8.0,
            Region::Oceania => 8.0,
        }
    }
}

/// Roster of sites for an experiment: how many nodes in each region.
#[derive(Clone, Debug)]
pub struct PlanetLabSpec {
    pub counts: Vec<(Region, usize)>,
}

impl PlanetLabSpec {
    /// The paper's 50-node deployment (§4.2).
    pub fn paper_50() -> Self {
        PlanetLabSpec {
            counts: vec![
                (Region::NorthAmerica, 30),
                (Region::Europe, 11),
                (Region::Asia, 7),
                (Region::SouthAmerica, 1),
                (Region::Oceania, 1),
            ],
        }
    }

    /// The 295-site roster of the sampling study (§5), with the same
    /// regional mix scaled up (PlanetLab was ~60% NA / ~25% EU / ~12% Asia
    /// in 2007).
    pub fn paper_295() -> Self {
        PlanetLabSpec {
            counts: vec![
                (Region::NorthAmerica, 175),
                (Region::Europe, 75),
                (Region::Asia, 35),
                (Region::SouthAmerica, 5),
                (Region::Oceania, 5),
            ],
        }
    }

    /// An arbitrary single-region roster (useful in unit tests).
    pub fn uniform(region: Region, n: usize) -> Self {
        PlanetLabSpec {
            counts: vec![(region, n)],
        }
    }

    /// Total node count.
    pub fn n(&self) -> usize {
        self.counts.iter().map(|&(_, c)| c).sum()
    }

    /// Region of each node id, in id order.
    pub fn regions(&self) -> Vec<Region> {
        let mut v = Vec::with_capacity(self.n());
        for &(r, c) in &self.counts {
            v.extend(std::iter::repeat_n(r, c));
        }
        v
    }

    /// Place each site uniformly inside its region disk.
    pub fn place(&self, rng: &mut impl Rng) -> Vec<(f64, f64)> {
        let mut pts = Vec::with_capacity(self.n());
        for &(region, count) in &self.counts {
            let (cx, cy) = region.center();
            let rad = region.radius();
            for _ in 0..count {
                // Uniform in disk via sqrt radius.
                let theta = rng.random_range(0.0..std::f64::consts::TAU);
                let r = rad * rng.random_range(0.0f64..1.0).sqrt();
                pts.push((cx + r * theta.cos(), cy + r * theta.sin()));
            }
        }
        pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive;

    #[test]
    fn paper_50_matches_paper_counts() {
        let s = PlanetLabSpec::paper_50();
        assert_eq!(s.n(), 50);
        let regs = s.regions();
        assert_eq!(
            regs.iter().filter(|&&r| r == Region::NorthAmerica).count(),
            30
        );
        assert_eq!(regs.iter().filter(|&&r| r == Region::Europe).count(), 11);
        assert_eq!(regs.iter().filter(|&&r| r == Region::Asia).count(), 7);
    }

    #[test]
    fn paper_295_totals() {
        assert_eq!(PlanetLabSpec::paper_295().n(), 295);
    }

    #[test]
    fn placement_stays_in_disk() {
        let s = PlanetLabSpec::paper_50();
        let mut rng = derive(1, "place");
        let pts = s.place(&mut rng);
        assert_eq!(pts.len(), 50);
        for (i, r) in s.regions().into_iter().enumerate() {
            let (cx, cy) = r.center();
            let (x, y) = pts[i];
            let d = ((x - cx).powi(2) + (y - cy).powi(2)).sqrt();
            assert!(d <= r.radius() + 1e-9, "site {i} escaped its region");
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let s = PlanetLabSpec::paper_50();
        let a = s.place(&mut derive(9, "p"));
        let b = s.place(&mut derive(9, "p"));
        assert_eq!(a, b);
    }

    #[test]
    fn inter_region_distances_exceed_intra() {
        // Region centers are farther apart than any intra-region spread.
        let (na, eu) = (Region::NorthAmerica.center(), Region::Europe.center());
        let d = ((na.0 - eu.0).powi(2) + (na.1 - eu.1).powi(2)).sqrt();
        assert!(d > 2.0 * Region::NorthAmerica.radius());
    }
}
