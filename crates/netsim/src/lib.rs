//! PlanetLab-like underlay simulator for the EGOIST reproduction.
//!
//! The paper evaluates EGOIST on 50 live PlanetLab nodes (and a 295-site
//! all-pairs ping trace for the sampling study). Neither the testbed nor
//! the original traces are available, so this crate synthesizes the
//! *relevant structure* of that environment — see `DESIGN.md` §2 for the
//! substitution argument. Everything is seeded and deterministic.
//!
//! Components:
//!
//! * [`delay`] — geo-clustered one-way link delays with access-link
//!   penalties (triangle-inequality violations) and per-pair
//!   Ornstein–Uhlenbeck jitter; this replaces live `ping` / all-pairs
//!   traces.
//! * [`planetlab`] — node rosters matching the paper's site distribution
//!   (30 NA, 11 EU, 7 Asia, 1 SA, 1 Oceania for `n = 50`; 295 sites for
//!   the sampling study).
//! * [`bandwidth`] — per-node access capacities plus cross-traffic dynamics;
//!   the pathChirp estimator is modeled as a noisy probe with ~2% overhead.
//! * [`load`] — heavy-tailed, mean-reverting per-node CPU load with an
//!   EWMA sensor (the paper's 1-minute `loadavg` average).
//! * [`churn`] — ON/OFF renewal processes, trace generation/replay and the
//!   paper's churn-rate statistic (§4.4).
//! * [`events`] — a tiny deterministic discrete-event queue used to stagger
//!   re-wiring epochs (`T/n` average spacing, §4.2).
//! * [`fault`] — message-level fault injection (drop, corrupt, rate-limit,
//!   duplicate, reorder, delay jitter) plus the time-windowed
//!   [`fault::FaultPlan`] schedule of partitions, churn storms and
//!   loss/jitter bursts that drives the adversarial fleet harness.
//! * [`rng`] — seed-derivation helpers so every subsystem gets an
//!   independent deterministic stream.
//! * [`topo`] — BRITE-style Waxman and Barabási–Albert synthetic
//!   topologies (the §5 alternative underlays).

pub mod bandwidth;
pub mod churn;
pub mod delay;
pub mod events;
pub mod fault;
pub mod load;
pub mod planetlab;
pub mod rng;
pub mod topo;

pub use bandwidth::BandwidthModel;
pub use churn::{ChurnModel, ChurnTrace};
pub use delay::DelayModel;
pub use fault::{FaultConfig, FaultInjector, FaultPlan, FaultWindow, WindowFault};
pub use load::LoadModel;
pub use planetlab::{PlanetLabSpec, Region};

#[cfg(test)]
mod proptests;
