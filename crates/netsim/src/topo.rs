//! Synthetic router-level topologies (the paper's "synthetic topologies
//! from BRITE and real AS topologies", §5).
//!
//! The sampling experiments were validated on three underlay families:
//! PlanetLab delays, BRITE-generated topologies, and AS graphs. BRITE's
//! two classic router-level models are implemented here:
//!
//! * **Waxman** — nodes uniform in a plane, edge probability
//!   `α·exp(−d/(β·L))`; delays are Euclidean distances along
//!   shortest paths.
//! * **Barabási–Albert** — preferential attachment; produces the
//!   heavy-tailed degree distribution of AS-level graphs.
//!
//! Both produce a [`DistanceMatrix`] of pairwise delays (shortest paths
//! over the generated router graph), directly usable wherever the
//! PlanetLab generator is.

use crate::rng::derive;
use egoist_graph::apsp::apsp;
use egoist_graph::{DiGraph, DistanceMatrix, NodeId};
use rand::Rng;

/// Waxman model parameters.
#[derive(Clone, Debug)]
pub struct WaxmanConfig {
    /// Edge-probability scale `α` (higher = denser).
    pub alpha: f64,
    /// Distance decay `β` (higher = more long edges).
    pub beta: f64,
    /// Plane side length in "milliseconds".
    pub side: f64,
}

impl Default for WaxmanConfig {
    fn default() -> Self {
        WaxmanConfig {
            alpha: 0.4,
            beta: 0.25,
            side: 100.0,
        }
    }
}

/// Generate a Waxman router graph and return the pairwise shortest-path
/// delay matrix. The graph is forced connected by linking each isolated
/// component head to its nearest already-connected node.
pub fn waxman_delays(n: usize, cfg: &WaxmanConfig, seed: u64) -> DistanceMatrix {
    let mut rng = derive(seed, "waxman");
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| {
            (
                rng.random_range(0.0..cfg.side),
                rng.random_range(0.0..cfg.side),
            )
        })
        .collect();
    let dist = |a: usize, b: usize| -> f64 {
        let (xa, ya) = pts[a];
        let (xb, yb) = pts[b];
        ((xa - xb).powi(2) + (ya - yb).powi(2)).sqrt()
    };
    let l = (2.0f64).sqrt() * cfg.side;
    let mut g = DiGraph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = dist(i, j);
            let p = cfg.alpha * (-d / (cfg.beta * l)).exp();
            if rng.random_range(0.0..1.0) < p {
                g.add_edge(NodeId::from_index(i), NodeId::from_index(j), d.max(0.1));
                g.add_edge(NodeId::from_index(j), NodeId::from_index(i), d.max(0.1));
            }
        }
    }
    connect_components(&mut g, &pts);
    apsp(&g)
}

/// Barabási–Albert model parameters.
#[derive(Clone, Debug)]
pub struct BaConfig {
    /// Edges added per new node (`m` in the BA model).
    pub edges_per_node: usize,
    /// Base per-hop delay (ms) assigned to every router link.
    pub hop_delay: f64,
    /// Extra per-link jitter as a fraction of `hop_delay`.
    pub jitter: f64,
}

impl Default for BaConfig {
    fn default() -> Self {
        BaConfig {
            edges_per_node: 2,
            hop_delay: 12.0,
            jitter: 0.5,
        }
    }
}

/// Generate a Barabási–Albert graph and return the pairwise
/// shortest-path delay matrix (per-hop delays with jitter, as AS-level
/// hops are roughly uniform in cost).
pub fn barabasi_albert_delays(n: usize, cfg: &BaConfig, seed: u64) -> DistanceMatrix {
    let m = cfg.edges_per_node.max(1);
    let mut rng = derive(seed, "ba");
    let mut g = DiGraph::new(n);
    // Target list where each node appears once per incident edge —
    // sampling uniformly from it is preferential attachment.
    let mut stubs: Vec<usize> = Vec::new();
    let seedlings = (m + 1).min(n);
    for i in 0..seedlings {
        for j in 0..seedlings {
            if i < j {
                let d = link_delay(cfg, &mut rng);
                g.add_edge(NodeId::from_index(i), NodeId::from_index(j), d);
                g.add_edge(NodeId::from_index(j), NodeId::from_index(i), d);
                stubs.push(i);
                stubs.push(j);
            }
        }
    }
    for v in seedlings..n {
        let mut chosen: Vec<usize> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 100 * m {
            guard += 1;
            let pick = stubs[rng.random_range(0..stubs.len())];
            if pick != v && !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        for &t in &chosen {
            let d = link_delay(cfg, &mut rng);
            g.add_edge(NodeId::from_index(v), NodeId::from_index(t), d);
            g.add_edge(NodeId::from_index(t), NodeId::from_index(v), d);
            stubs.push(v);
            stubs.push(t);
        }
    }
    apsp(&g)
}

fn link_delay(cfg: &BaConfig, rng: &mut impl Rng) -> f64 {
    if cfg.jitter <= 0.0 {
        return cfg.hop_delay;
    }
    cfg.hop_delay * (1.0 + rng.random_range(0.0..cfg.jitter))
}

/// Make an undirected-ish graph connected: attach every unreachable node
/// to its geometrically nearest reachable one.
fn connect_components(g: &mut DiGraph, pts: &[(f64, f64)]) {
    let n = g.len();
    if n == 0 {
        return;
    }
    loop {
        let reach = egoist_graph::connectivity::reachable_from(g, NodeId(0));
        let Some(orphan) = (0..n).find(|&i| !reach[i]) else {
            return;
        };
        // Nearest reachable node.
        let mut best = None;
        let mut best_d = f64::INFINITY;
        for i in 0..n {
            if reach[i] {
                let d = ((pts[i].0 - pts[orphan].0).powi(2) + (pts[i].1 - pts[orphan].1).powi(2))
                    .sqrt();
                if d < best_d {
                    best_d = d;
                    best = Some(i);
                }
            }
        }
        let anchor = best.expect("node 0 is always reachable");
        g.add_edge(
            NodeId::from_index(orphan),
            NodeId::from_index(anchor),
            best_d.max(0.1),
        );
        g.add_edge(
            NodeId::from_index(anchor),
            NodeId::from_index(orphan),
            best_d.max(0.1),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waxman_matrix_is_finite_and_symmetricish() {
        let d = waxman_delays(60, &WaxmanConfig::default(), 1);
        assert_eq!(d.len(), 60);
        for i in 0..60 {
            for j in 0..60 {
                if i != j {
                    assert!(d.at(i, j).is_finite(), "({i},{j}) unreachable");
                    assert!(d.at(i, j) > 0.0);
                    // Bidirectional links → symmetric shortest paths.
                    assert!((d.at(i, j) - d.at(j, i)).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn waxman_respects_triangle_inequality_of_shortest_paths() {
        let d = waxman_delays(40, &WaxmanConfig::default(), 2);
        for i in 0..40 {
            for j in 0..40 {
                for k in 0..40 {
                    if i != j && j != k && i != k {
                        assert!(d.at(i, k) <= d.at(i, j) + d.at(j, k) + 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn ba_matrix_is_finite_and_hop_structured() {
        let cfg = BaConfig::default();
        let d = barabasi_albert_delays(80, &cfg, 3);
        let mut max = 0.0f64;
        for i in 0..80 {
            for j in 0..80 {
                if i != j {
                    assert!(d.at(i, j).is_finite());
                    max = max.max(d.at(i, j));
                }
            }
        }
        // Small-world: diameter a handful of hops.
        assert!(
            max < 10.0 * cfg.hop_delay * (1.0 + cfg.jitter),
            "BA diameter too large: {max}"
        );
    }

    #[test]
    fn ba_has_heavy_tail_hubs() {
        // Rebuild the graph logic indirectly: hubs make many pairwise
        // distances equal to 2 hops. Check the distance distribution has
        // a strong mode at ≤ 2 hops.
        let cfg = BaConfig {
            jitter: 0.0,
            ..Default::default()
        };
        let d = barabasi_albert_delays(100, &cfg, 4);
        let mut two_hops = 0;
        let mut three_hops = 0;
        let mut total = 0;
        for i in 0..100 {
            for j in 0..100 {
                if i != j {
                    total += 1;
                    if d.at(i, j) <= 2.0 * cfg.hop_delay + 1e-9 {
                        two_hops += 1;
                    }
                    if d.at(i, j) <= 3.0 * cfg.hop_delay + 1e-9 {
                        three_hops += 1;
                    }
                }
            }
        }
        assert!(
            two_hops as f64 > 0.15 * total as f64,
            "preferential attachment should give a dense 2-hop core: {two_hops}/{total}"
        );
        assert!(
            three_hops as f64 > 0.55 * total as f64,
            "BA graphs are small worlds: {three_hops}/{total} within 3 hops"
        );
    }

    #[test]
    fn generators_are_deterministic() {
        let a = waxman_delays(30, &WaxmanConfig::default(), 9);
        let b = waxman_delays(30, &WaxmanConfig::default(), 9);
        assert_eq!(a, b);
        let c = barabasi_albert_delays(30, &BaConfig::default(), 9);
        let e = barabasi_albert_delays(30, &BaConfig::default(), 9);
        assert_eq!(c, e);
    }

    #[test]
    fn sparse_waxman_still_connected() {
        let cfg = WaxmanConfig {
            alpha: 0.05,
            beta: 0.05,
            side: 200.0,
        };
        let d = waxman_delays(50, &cfg, 5);
        for i in 0..50 {
            for j in 0..50 {
                if i != j {
                    assert!(d.at(i, j).is_finite(), "fix-up must connect ({i},{j})");
                }
            }
        }
    }
}
