//! A minimal deterministic discrete-event queue.
//!
//! EGOIST nodes are *not* synchronized: with wiring epoch `T` and `n`
//! nodes, "on average a re-wiring by some Egoist node occurs every `T/n`
//! seconds" (§4.2). The epoch simulator uses this queue to interleave
//! staggered per-node re-wiring events, churn events, and metric-drift
//! ticks in one global time order. Ties break by insertion sequence, so
//! runs are exactly reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at `at` seconds carrying a payload.
#[derive(Clone, Debug)]
struct Scheduled<E> {
    at: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: earliest time first, then FIFO on sequence.
        other
            .at
            .total_cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic event queue with a simulation clock.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedule `payload` at absolute time `at` (must not be in the past).
    pub fn schedule_at(&mut self, at: f64, payload: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Schedule `payload` after `delay` seconds.
    pub fn schedule_in(&mut self, delay: f64, payload: E) {
        self.schedule_at(self.now + delay.max(0.0), payload);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|s| {
            self.now = s.at;
            (s.at, s.payload)
        })
    }

    /// Peek at the next event time without advancing.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(3.0, "c");
        q.schedule_at(1.0, "a");
        q.schedule_at(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule_at(1.0, 1);
        q.schedule_at(1.0, 2);
        q.schedule_at(1.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(5.0, ());
        assert_eq!(q.now(), 0.0);
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, 5.0);
        assert_eq!(q.now(), 5.0);
        q.schedule_in(2.5, ());
        assert_eq!(q.peek_time(), Some(7.5));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(1.0, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
