//! Available-bandwidth model and pathChirp-like estimator.
//!
//! §4.1 uses pathChirp to estimate per-link available bandwidth and routes
//! on maximum-bottleneck paths. The structural facts the experiment needs:
//!
//! * bandwidth is limited primarily by **access links** (PlanetLab sites
//!   had 10–1000 Mbps access, heavily shared), so the available bandwidth
//!   of overlay link `i → j` is ≈ `min(up_i, down_j)` scaled by transient
//!   cross-traffic;
//! * distributions are roughly **lognormal** across sites;
//! * estimates are noisy (pathChirp reports within ~10–20% of truth) and
//!   probing costs ≈ 2% of the measured bandwidth (§4.3).
//!
//! The paper's multipath application (§6.1) exploits *session-level rate
//! limits at AS peering points*: one session through one peering point gets
//! at most the peering cap, while distinct first-hop neighbors behind
//! different peering points multiply throughput. We model this with a
//! per-session cap: a *direct* transfer `i → j` gets
//! `min(session_cap_i, avail(i,j))`, while the overlay path through a
//! neighbor behind a different access uses that neighbor's own session.

use crate::rng::{derive, derive_indexed};
use egoist_graph::DistanceMatrix;
use rand::Rng;
use rand_distr::{Distribution, LogNormal, Normal};

/// Tuning knobs for the bandwidth model.
#[derive(Clone, Debug)]
pub struct BandwidthConfig {
    /// Lognormal μ of access capacity in ln(Mbps). exp(4.0) ≈ 55 Mbps.
    pub capacity_mu: f64,
    /// Lognormal σ of access capacity.
    pub capacity_sigma: f64,
    /// Cap on access capacity (Mbps).
    pub capacity_cap: f64,
    /// OU mean-reversion rate (1/s) of the cross-traffic utilization.
    pub theta: f64,
    /// OU stationary σ of utilization (in logit-ish space, see below).
    pub sigma: f64,
    /// Mean fraction of capacity available (1 − average utilization).
    pub mean_avail_fraction: f64,
    /// Relative std-dev of a single pathChirp estimate.
    pub probe_noise: f64,
    /// Fraction of session caps relative to access capacity: models the
    /// per-session rate limit at peering points (§6.1).
    pub session_cap_fraction: f64,
}

impl Default for BandwidthConfig {
    fn default() -> Self {
        BandwidthConfig {
            capacity_mu: 4.0,
            capacity_sigma: 1.0,
            capacity_cap: 1000.0,
            theta: 1.0 / 150.0,
            sigma: 0.35,
            mean_avail_fraction: 0.6,
            probe_noise: 0.10,
            session_cap_fraction: 0.35,
        }
    }
}

/// The bandwidth substrate.
#[derive(Clone, Debug)]
pub struct BandwidthModel {
    /// Uplink capacity per node (Mbps).
    up: Vec<f64>,
    /// Downlink capacity per node (Mbps).
    down: Vec<f64>,
    /// Per-directed-pair OU state for the availability fraction.
    util_x: Vec<f64>,
    /// Overlay traffic currently carried on each directed pair (Mbps),
    /// charged by `egoist-traffic`; reduces what probes and routing see —
    /// the closed loop's bandwidth side.
    consumed: Vec<f64>,
    cfg: BandwidthConfig,
    n: usize,
    pub now: f64,
}

impl BandwidthModel {
    /// Build with lognormal access capacities.
    pub fn new(n: usize, cfg: &BandwidthConfig, seed: u64) -> Self {
        let dist = LogNormal::new(cfg.capacity_mu, cfg.capacity_sigma).expect("valid lognormal");
        let mut rng = derive(seed, "bw-caps");
        let up: Vec<f64> = (0..n)
            .map(|_| dist.sample(&mut rng).min(cfg.capacity_cap))
            .collect();
        let down: Vec<f64> = (0..n)
            .map(|_| dist.sample(&mut rng).min(cfg.capacity_cap))
            .collect();
        BandwidthModel {
            up,
            down,
            util_x: vec![0.0; n * n],
            consumed: vec![0.0; n * n],
            cfg: cfg.clone(),
            n,
            now: 0.0,
        }
    }

    /// Default-config model.
    pub fn with_defaults(n: usize, seed: u64) -> Self {
        Self::new(n, &BandwidthConfig::default(), seed)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Advance the cross-traffic processes by `dt` seconds.
    pub fn advance(&mut self, dt: f64, rng: &mut impl Rng) {
        if dt <= 0.0 {
            return;
        }
        let decay = (-self.cfg.theta * dt).exp();
        let std_scale = self.cfg.sigma * (1.0 - decay * decay).sqrt();
        let normal = Normal::new(0.0, 1.0).expect("unit normal");
        for x in &mut self.util_x {
            *x = *x * decay + std_scale * normal.sample(rng);
        }
        self.now += dt;
    }

    /// Fraction of the pair's capacity currently available, in (0, 1).
    fn avail_fraction(&self, i: usize, j: usize) -> f64 {
        // Squash mean + OU deviation through a logistic to stay in (0,1).
        let m = self.cfg.mean_avail_fraction;
        let bias = (m / (1.0 - m)).ln();
        let z = bias + self.util_x[i * self.n + j];
        1.0 / (1.0 + (-z).exp())
    }

    /// True available bandwidth (Mbps) of the direct path `i → j`:
    /// cross-traffic-scaled capacity minus carried overlay traffic.
    pub fn available(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return f64::INFINITY;
        }
        let raw = self.up[i].min(self.down[j]) * self.avail_fraction(i, j);
        (raw - self.consumed[i * self.n + j]).max(0.0)
    }

    /// Available bandwidth ignoring carried overlay traffic (the raw
    /// capacity the traffic engine allocates from).
    pub fn unloaded_available(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return f64::INFINITY;
        }
        self.up[i].min(self.down[j]) * self.avail_fraction(i, j)
    }

    /// Replace the carried-traffic matrix (row-major `n × n`, Mbps).
    pub fn set_consumed(&mut self, consumed: &[f64]) {
        assert_eq!(consumed.len(), self.n * self.n, "consumed matrix size");
        debug_assert!(consumed.iter().all(|c| c.is_finite() && *c >= 0.0));
        self.consumed.copy_from_slice(consumed);
    }

    /// Carried overlay traffic on the directed pair (Mbps).
    pub fn consumed(&self, i: usize, j: usize) -> f64 {
        self.consumed[i * self.n + j]
    }

    /// Drop all carried traffic (open-loop operation).
    pub fn clear_consumed(&mut self) {
        self.consumed.fill(0.0);
    }

    /// Snapshot matrix of true available bandwidths (0 on the diagonal so
    /// it can double as an edge-capacity matrix).
    pub fn available_matrix(&self) -> DistanceMatrix {
        DistanceMatrix::from_fn(self.n, |i, j| self.available(i, j))
    }

    /// One pathChirp estimate: truth times multiplicative noise. `seq`
    /// decorrelates successive probes deterministically.
    pub fn probe(&self, i: usize, j: usize, seed: u64, seq: u64) -> f64 {
        let truth = self.available(i, j);
        let mut rng = derive_indexed(seed, "bw-probe", seq ^ ((i * self.n + j) as u64) << 20);
        let noise = Normal::new(0.0, self.cfg.probe_noise).expect("noise sigma");
        (truth * (1.0 + noise.sample(&mut rng))).max(0.0)
    }

    /// Probe traffic injected for one estimate (Mbit): ≈2% of the measured
    /// bandwidth over a 1-second chirp train (§4.3's "less than 2%").
    pub fn probe_cost_mbit(&self, i: usize, j: usize) -> f64 {
        0.02 * self.available(i, j)
    }

    /// Per-session rate cap of source `i` (peering-point shaping, §6.1).
    pub fn session_cap(&self, i: usize) -> f64 {
        self.up[i] * self.cfg.session_cap_fraction
    }

    /// Bandwidth a *single session* from `i` to `j` over the direct IP path
    /// achieves: limited by both the path and the per-session cap.
    pub fn direct_session_bandwidth(&self, i: usize, j: usize) -> f64 {
        self.available(i, j).min(self.session_cap(i))
    }

    /// Uplink capacity accessor (used by multipath analysis).
    pub fn up_capacity(&self, i: usize) -> f64 {
        self.up[i]
    }

    /// Downlink capacity accessor.
    pub fn down_capacity(&self, i: usize) -> f64 {
        self.down[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_are_heterogeneous_and_bounded() {
        let m = BandwidthModel::with_defaults(50, 1);
        let max = (0..50).map(|i| m.up_capacity(i)).fold(f64::MIN, f64::max);
        let min = (0..50).map(|i| m.up_capacity(i)).fold(f64::MAX, f64::min);
        assert!(max <= 1000.0);
        assert!(max / min > 5.0, "expected spread, got {min}..{max}");
    }

    #[test]
    fn available_below_capacity() {
        let m = BandwidthModel::with_defaults(20, 2);
        for i in 0..20 {
            for j in 0..20 {
                if i != j {
                    assert!(m.available(i, j) <= m.up_capacity(i).min(m.down_capacity(j)));
                    assert!(m.available(i, j) > 0.0);
                }
            }
        }
    }

    #[test]
    fn probe_is_noisy_but_unbiased_ish() {
        let m = BandwidthModel::with_defaults(5, 3);
        let truth = m.available(0, 1);
        let est: Vec<f64> = (0..200).map(|s| m.probe(0, 1, 3, s)).collect();
        let mean = est.iter().sum::<f64>() / est.len() as f64;
        assert!(
            (mean - truth).abs() / truth < 0.05,
            "mean {mean} vs {truth}"
        );
        assert!(est.iter().any(|&e| (e - truth).abs() / truth > 0.02));
    }

    #[test]
    fn session_cap_below_uplink() {
        let m = BandwidthModel::with_defaults(10, 4);
        for i in 0..10 {
            assert!(m.session_cap(i) < m.up_capacity(i));
            for j in 0..10 {
                if i != j {
                    assert!(m.direct_session_bandwidth(i, j) <= m.session_cap(i));
                }
            }
        }
    }

    #[test]
    fn dynamics_move_availability() {
        let mut m = BandwidthModel::with_defaults(10, 5);
        let before = m.available(0, 1);
        let mut rng = derive(5, "adv");
        for _ in 0..20 {
            m.advance(60.0, &mut rng);
        }
        assert_ne!(before, m.available(0, 1));
    }

    #[test]
    fn probe_cost_is_two_percent() {
        let m = BandwidthModel::with_defaults(5, 6);
        let c = m.probe_cost_mbit(0, 1);
        assert!((c - 0.02 * m.available(0, 1)).abs() < 1e-12);
    }

    #[test]
    fn determinism() {
        let a = BandwidthModel::with_defaults(10, 7).available_matrix();
        let b = BandwidthModel::with_defaults(10, 7).available_matrix();
        assert_eq!(a, b);
    }

    #[test]
    fn consumed_traffic_reduces_availability_and_probes() {
        let mut m = BandwidthModel::with_defaults(6, 8);
        let before = m.available(0, 1);
        let mut consumed = vec![0.0; 36];
        consumed[1] = before * 0.5;
        m.set_consumed(&consumed);
        assert!((m.available(0, 1) - before * 0.5).abs() < 1e-9);
        assert_eq!(m.unloaded_available(0, 1), before);
        assert_eq!(m.consumed(0, 1), before * 0.5);
        // Saturating the pair floors availability at zero.
        consumed[1] = before * 10.0;
        m.set_consumed(&consumed);
        assert_eq!(m.available(0, 1), 0.0);
        assert!(m.probe(0, 1, 8, 0) <= 1e-9, "probe of a saturated link");
        m.clear_consumed();
        assert_eq!(m.available(0, 1), before);
    }
}
