//! Per-node CPU load with PlanetLab-like heterogeneity and dynamics.
//!
//! §4.1: "we allow the use of a variation of the delay metric in which all
//! outgoing links from a node are assigned the same cost, which is set to
//! be equal to the measured load of the node … an exponentially-weighted
//! moving average of that load calculated over a given interval (taken to
//! be 1 minute)."
//!
//! §4.2 attributes k-Closest's failure on this metric to "the high variance
//! in node load on PlanetLab", so the model needs (a) a heavy-tailed
//! cross-section — some nodes are persistently slammed — and (b) strong
//! temporal variance, so that last epoch's cheapest neighbor is often not
//! this epoch's. We use a mean-reverting (Ornstein–Uhlenbeck) process in
//! log space around a Pareto-distributed per-node baseline.

use crate::rng::{derive, derive_indexed};
use rand::Rng;
use rand_distr::{Distribution, Normal, Pareto};

/// Tuning knobs for the load model.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Pareto scale (minimum baseline load).
    pub pareto_scale: f64,
    /// Pareto shape (smaller = heavier tail).
    pub pareto_shape: f64,
    /// Cap on baseline load (PlanetLab loadavg rarely exceeded ~30).
    pub baseline_cap: f64,
    /// OU mean reversion rate (1/s) in log-load space.
    pub theta: f64,
    /// OU stationary σ in log-load space.
    pub sigma: f64,
    /// EWMA smoothing constant per sampling interval (the 1-minute
    /// sensor).
    pub ewma_alpha: f64,
    /// The sensor's sampling interval in seconds. [`LoadModel::advance`]
    /// scales the smoothing constant to the elapsed time, so the sensor
    /// responds at the same rate whether the simulator advances it in
    /// one epoch-sized step or many small ones.
    pub ewma_interval_secs: f64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            pareto_scale: 0.4,
            pareto_shape: 1.2,
            baseline_cap: 25.0,
            theta: 1.0 / 180.0, // ~3 min correlation time
            sigma: 0.7,
            ewma_alpha: 0.3,
            // The deployed sensor samples continuously (every staggered
            // turn ≈ 2 s at n = 32, T = 60 s); over one epoch that
            // compounds to near-complete convergence, which this
            // interval preserves for epoch-sized advances.
            ewma_interval_secs: 2.0,
        }
    }
}

/// Per-node load state.
#[derive(Clone, Debug)]
struct NodeLoad {
    /// log of the baseline (stationary mean of the OU process).
    log_base: f64,
    /// Current OU deviation in log space.
    x: f64,
    /// EWMA sensor state (what `loadavg` reports).
    ewma: f64,
}

/// The node-load substrate.
#[derive(Clone, Debug)]
pub struct LoadModel {
    nodes: Vec<NodeLoad>,
    cfg: LoadConfig,
    /// Externally-induced load per node (e.g. overlay traffic forwarding
    /// work charged by `egoist-traffic`). Added on top of the background
    /// OU process; the EWMA sensor sees it, so announced load costs react
    /// to carried traffic — the closed loop.
    induced: Vec<f64>,
    pub now: f64,
}

impl LoadModel {
    /// Build with per-node heavy-tailed baselines.
    pub fn new(n: usize, cfg: &LoadConfig, seed: u64) -> Self {
        let pareto =
            Pareto::new(cfg.pareto_scale, cfg.pareto_shape).expect("valid pareto parameters");
        let nodes: Vec<NodeLoad> = (0..n)
            .map(|i| {
                let mut rng = derive_indexed(seed, "load-node", i as u64);
                let base = pareto.sample(&mut rng).min(cfg.baseline_cap);
                NodeLoad {
                    log_base: base.ln(),
                    x: 0.0,
                    ewma: base,
                }
            })
            .collect();
        LoadModel {
            induced: vec![0.0; nodes.len()],
            nodes,
            cfg: cfg.clone(),
            now: 0.0,
        }
    }

    /// Default-config model.
    pub fn with_defaults(n: usize, seed: u64) -> Self {
        Self::new(n, &LoadConfig::default(), seed)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Advance the load processes by `dt` seconds and refresh the EWMA
    /// sensors, with the smoothing constant scaled to the elapsed
    /// sampling intervals (`α_dt = 1 − (1 − α)^(dt / interval)`), so the
    /// sensor's response rate is independent of the advance step size.
    pub fn advance(&mut self, dt: f64, rng: &mut impl Rng) {
        if dt <= 0.0 {
            return;
        }
        let decay = (-self.cfg.theta * dt).exp();
        let std_scale = self.cfg.sigma * (1.0 - decay * decay).sqrt();
        let normal = Normal::new(0.0, 1.0).expect("unit normal");
        let alpha =
            1.0 - (1.0 - self.cfg.ewma_alpha).powf(dt / self.cfg.ewma_interval_secs.max(1e-9));
        for (i, nl) in self.nodes.iter_mut().enumerate() {
            nl.x = nl.x * decay + std_scale * normal.sample(rng);
            let instant = (nl.log_base + nl.x).exp() + self.induced[i];
            nl.ewma = alpha * instant + (1.0 - alpha) * nl.ewma;
        }
        self.now += dt;
    }

    /// Instantaneous (true) load of node `i`: background process plus any
    /// externally induced load.
    pub fn instantaneous(&self, i: usize) -> f64 {
        (self.nodes[i].log_base + self.nodes[i].x).exp() + self.induced[i]
    }

    /// Replace the externally-induced per-node load (length must be `n`).
    /// The EWMA sensor picks it up on subsequent [`LoadModel::advance`]
    /// calls, so announcements lag truth exactly like the real sensor.
    pub fn set_induced(&mut self, induced: &[f64]) {
        assert_eq!(induced.len(), self.nodes.len(), "induced load length");
        debug_assert!(induced.iter().all(|l| l.is_finite() && *l >= 0.0));
        self.induced.copy_from_slice(induced);
    }

    /// Externally-induced load of node `i`.
    pub fn induced(&self, i: usize) -> f64 {
        self.induced[i]
    }

    /// Drop all induced load (open-loop operation).
    pub fn clear_induced(&mut self) {
        self.induced.fill(0.0);
    }

    /// The EWMA-sensed load of node `i` (what EGOIST announces).
    pub fn sensed(&self, i: usize) -> f64 {
        self.nodes[i].ewma
    }

    /// All sensed loads.
    pub fn sensed_all(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.sensed(i)).collect()
    }

    /// Deterministic helper used by tests/benches: a fresh model advanced
    /// `steps × dt` with its own derived RNG.
    pub fn warmed(n: usize, seed: u64, steps: usize, dt: f64) -> Self {
        let mut m = Self::with_defaults(n, seed);
        let mut rng = derive(seed, "load-warm");
        for _ in 0..steps {
            m.advance(dt, &mut rng);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_are_heterogeneous() {
        let m = LoadModel::with_defaults(50, 1);
        let loads: Vec<f64> = (0..50).map(|i| m.sensed(i)).collect();
        let max = loads.iter().cloned().fold(f64::MIN, f64::max);
        let min = loads.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min > 5.0,
            "heavy tail expected: min {min:.3}, max {max:.3}"
        );
    }

    #[test]
    fn loads_stay_positive() {
        let m = LoadModel::warmed(20, 2, 100, 60.0);
        for i in 0..20 {
            assert!(m.sensed(i) > 0.0);
            assert!(m.instantaneous(i) > 0.0);
        }
    }

    #[test]
    fn temporal_variance_is_substantial() {
        let mut m = LoadModel::with_defaults(10, 3);
        let mut rng = crate::rng::derive(3, "t");
        let before = m.sensed_all();
        for _ in 0..30 {
            m.advance(60.0, &mut rng);
        }
        let after = m.sensed_all();
        let moved = before
            .iter()
            .zip(&after)
            .filter(|(a, b)| ((*a - *b).abs() / *a) > 0.10)
            .count();
        assert!(moved >= 5, "only {moved}/10 nodes moved >10%");
    }

    #[test]
    fn ewma_lags_instantaneous() {
        // After one step the sensor is a blend, not the raw value.
        let mut m = LoadModel::with_defaults(5, 4);
        let mut rng = crate::rng::derive(4, "t");
        let sensed0 = m.sensed(0);
        m.advance(60.0, &mut rng);
        let inst = m.instantaneous(0);
        let sensed1 = m.sensed(0);
        if (inst - sensed0).abs() > 1e-9 {
            assert!(
                (sensed1 - inst).abs() < (inst - sensed0).abs() + 1e-9,
                "EWMA should move toward instantaneous"
            );
        }
    }

    #[test]
    fn determinism() {
        let a = LoadModel::warmed(10, 9, 10, 60.0).sensed_all();
        let b = LoadModel::warmed(10, 9, 10, 60.0).sensed_all();
        assert_eq!(a, b);
    }

    #[test]
    fn induced_load_raises_truth_immediately_and_sensor_with_lag() {
        let mut m = LoadModel::with_defaults(4, 5);
        let mut rng = crate::rng::derive(5, "ind");
        let base = m.instantaneous(2);
        let sensed0 = m.sensed(2);
        let mut induced = vec![0.0; 4];
        induced[2] = 10.0;
        m.set_induced(&induced);
        // Truth jumps at once; the EWMA sensor has not sampled yet.
        assert!((m.instantaneous(2) - (base + 10.0)).abs() < 1e-9);
        assert_eq!(m.sensed(2), sensed0);
        // After a few sampling intervals the sensor converges upward.
        for _ in 0..12 {
            m.advance(60.0, &mut rng);
        }
        assert!(
            m.sensed(2) > sensed0 + 5.0,
            "sensor should approach induced load: {} vs {}",
            m.sensed(2),
            sensed0
        );
        let with_traffic = m.instantaneous(2);
        m.clear_induced();
        assert!((with_traffic - m.instantaneous(2) - 10.0).abs() < 1e-9);
        assert_eq!(m.induced(2), 0.0);
    }
}
