//! Deterministic seed derivation.
//!
//! Every stochastic subsystem (delay jitter, load, churn, fault injection,
//! policy randomization) draws from its own `StdRng` derived from one
//! experiment seed plus a stream label, so changing one subsystem's
//! consumption pattern never perturbs another's sequence — a prerequisite
//! for reproducible figures.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer — a good 64→64 bit mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive an independent RNG for (`seed`, `stream`).
pub fn derive(seed: u64, stream: &str) -> StdRng {
    let mut h = seed;
    for b in stream.as_bytes() {
        h = mix(h ^ (*b as u64));
    }
    StdRng::seed_from_u64(mix(h))
}

/// Derive an independent RNG for (`seed`, `stream`, numeric `index`)
/// (per-node or per-pair streams).
pub fn derive_indexed(seed: u64, stream: &str, index: u64) -> StdRng {
    let mut h = seed ^ mix(index.wrapping_mul(0xA24B_AED4_963E_E407));
    for b in stream.as_bytes() {
        h = mix(h ^ (*b as u64));
    }
    StdRng::seed_from_u64(mix(h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = derive(7, "delay");
        let mut b = derive(7, "delay");
        for _ in 0..8 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = derive(7, "delay");
        let mut b = derive(7, "load");
        let va: Vec<u64> = (0..4).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_indices_differ() {
        let mut a = derive_indexed(7, "node", 0);
        let mut b = derive_indexed(7, "node", 1);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = derive(1, "x");
        let mut b = derive(2, "x");
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }
}
