//! Reachability and connectivity predicates.

use crate::graph::DiGraph;
use crate::types::NodeId;
use std::collections::VecDeque;

/// Set of nodes reachable from `source` by directed paths (including
/// `source` itself), ignoring edge costs.
pub fn reachable_from(g: &DiGraph, source: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.len()];
    let mut queue = VecDeque::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for e in g.out_edges(u) {
            if !seen[e.to.index()] {
                seen[e.to.index()] = true;
                queue.push_back(e.to);
            }
        }
    }
    seen
}

/// True when every node in `members` can reach every other node in
/// `members` by directed paths. (Kosaraju-style double BFS from one
/// member — sufficient for the single-SCC test.)
pub fn strongly_connected(g: &DiGraph, members: &[NodeId]) -> bool {
    if members.len() <= 1 {
        return true;
    }
    let start = members[0];
    let fwd = reachable_from(g, start);
    if members.iter().any(|m| !fwd[m.index()]) {
        return false;
    }
    let bwd = reachable_from(&g.reversed(), start);
    members.iter().all(|m| bwd[m.index()])
}

/// True when the *undirected* version of the graph connects all `members`.
/// (The paper's k-Random/k-Closest "connected" check before enforcing a
/// cycle treats wires as usable in either direction for connectivity
/// purposes; routing still respects direction.)
pub fn weakly_connected(g: &DiGraph, members: &[NodeId]) -> bool {
    if members.len() <= 1 {
        return true;
    }
    let mut und = DiGraph::new(g.len());
    for (a, b, c) in g.edges() {
        und.add_edge(a, b, c);
        und.add_edge(b, a, c);
    }
    let seen = reachable_from(&und, members[0]);
    members.iter().all(|m| seen[m.index()])
}

/// Fraction of ordered alive pairs `(i, j)`, `i ≠ j`, with a directed path
/// `i → j`. 1.0 for a strongly connected overlay.
pub fn pairwise_reachability(g: &DiGraph, members: &[NodeId]) -> f64 {
    let m = members.len();
    if m <= 1 {
        return 1.0;
    }
    let mut ok = 0usize;
    for &i in members {
        let seen = reachable_from(g, i);
        for &j in members {
            if i != j && seen[j.index()] {
                ok += 1;
            }
        }
    }
    ok as f64 / (m * (m - 1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn directed_line_is_weak_not_strong() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        let all = ids(&[0, 1, 2]);
        assert!(weakly_connected(&g, &all));
        assert!(!strongly_connected(&g, &all));
    }

    #[test]
    fn ring_is_strong() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        g.add_edge(NodeId(2), NodeId(0), 1.0);
        assert!(strongly_connected(&g, &ids(&[0, 1, 2])));
    }

    #[test]
    fn membership_subset_only_checked() {
        // Node 2 is isolated, but we only ask about {0, 1}.
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(0), 1.0);
        assert!(strongly_connected(&g, &ids(&[0, 1])));
        assert!(!strongly_connected(&g, &ids(&[0, 1, 2])));
    }

    #[test]
    fn pairwise_reachability_fraction() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        // Reachable ordered pairs: 0→1, 0→2, 1→2 of 6.
        let frac = pairwise_reachability(&g, &ids(&[0, 1, 2]));
        assert!((frac - 0.5).abs() < 1e-12);
    }

    #[test]
    fn singleton_trivially_connected() {
        let g = DiGraph::new(1);
        assert!(strongly_connected(&g, &ids(&[0])));
        assert!(weakly_connected(&g, &ids(&[0])));
        assert_eq!(pairwise_reachability(&g, &ids(&[0])), 1.0);
    }
}
