//! Minimum spanning tree (Prim) over the symmetrized cost matrix.
//!
//! §3.3 discusses Young et al.'s k-MST backbone as the centralized
//! alternative to EGOIST's id-offset cycles. We implement MST so the bench
//! suite can compare backbone construction costs and resilience, exactly the
//! trade-off the paper argues about ("using k-MST … is problematic, as it
//! must always be updated").

use crate::matrix::DistanceMatrix;
use crate::types::NodeId;

/// Undirected MST edges over `members`, using symmetrized costs
/// `(d_ij + d_ji)/2`. Returns `members.len() − 1` edges for a connected
/// (finite-cost) instance.
pub fn mst_edges(d: &DistanceMatrix, members: &[NodeId]) -> Vec<(NodeId, NodeId)> {
    let m = members.len();
    if m < 2 {
        return Vec::new();
    }
    let sym = |a: NodeId, b: NodeId| 0.5 * (d.get(a, b) + d.get(b, a));
    let mut in_tree = vec![false; m];
    let mut best_cost = vec![f64::INFINITY; m];
    let mut best_link: Vec<usize> = vec![0; m];
    let mut edges = Vec::with_capacity(m - 1);

    in_tree[0] = true;
    for r in 1..m {
        best_cost[r] = sym(members[0], members[r]);
        best_link[r] = 0;
    }
    for _ in 1..m {
        // Cheapest fringe vertex.
        let mut pick = None;
        let mut pick_cost = f64::INFINITY;
        for r in 0..m {
            if !in_tree[r] && best_cost[r] < pick_cost {
                pick_cost = best_cost[r];
                pick = Some(r);
            }
        }
        let Some(r) = pick else { break }; // disconnected (infinite costs)
        in_tree[r] = true;
        edges.push((members[best_link[r]], members[r]));
        for s in 0..m {
            if !in_tree[s] {
                let c = sym(members[r], members[s]);
                if c < best_cost[s] {
                    best_cost[s] = c;
                    best_link[s] = r;
                }
            }
        }
    }
    edges
}

/// Total symmetrized weight of an edge list.
pub fn tree_weight(d: &DistanceMatrix, edges: &[(NodeId, NodeId)]) -> f64 {
    edges
        .iter()
        .map(|&(a, b)| 0.5 * (d.get(a, b) + d.get(b, a)))
        .sum()
}

/// `k` edge-disjoint-ish spanning backbones built greedily: compute an MST,
/// inflate the used edges' costs, repeat. This is the "interleaved spanning
/// trees" flavor of backbone used as a baseline against HybridBR cycles.
pub fn k_mst_backbone(
    d: &DistanceMatrix,
    members: &[NodeId],
    k: usize,
) -> Vec<Vec<(NodeId, NodeId)>> {
    let mut work = d.clone();
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        let t = mst_edges(&work, members);
        if t.is_empty() {
            break;
        }
        for &(a, b) in &t {
            let inflated = work.get(a, b) * 16.0 + 1.0;
            work.set(a, b, inflated);
            let inflated_rev = work.get(b, a) * 16.0 + 1.0;
            work.set(b, a, inflated_rev);
        }
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::strongly_connected;
    use crate::graph::DiGraph;

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn mst_has_m_minus_one_edges() {
        let d = DistanceMatrix::from_fn(5, |i, j| ((i + 2) * (j + 3) % 7 + 1) as f64);
        let e = mst_edges(&d, &ids(5));
        assert_eq!(e.len(), 4);
    }

    #[test]
    fn mst_picks_cheap_edges_on_line_metric() {
        // Points on a line at 0, 1, 2, 10: MST must use the three adjacent
        // gaps (1 + 1 + 8), never 0–10 plus others.
        let pos = [0.0f64, 1.0, 2.0, 10.0];
        let d = DistanceMatrix::from_fn(4, |i, j| (pos[i] - pos[j]).abs());
        let e = mst_edges(&d, &ids(4));
        assert!((tree_weight(&d, &e) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mst_as_bidirectional_graph_is_strongly_connected() {
        let d = DistanceMatrix::from_fn(6, |i, j| ((i * 5 + j * 3) % 11 + 1) as f64);
        let members = ids(6);
        let mut g = DiGraph::new(6);
        for (a, b) in mst_edges(&d, &members) {
            g.add_edge(a, b, d.get(a, b));
            g.add_edge(b, a, d.get(b, a));
        }
        assert!(strongly_connected(&g, &members));
    }

    #[test]
    fn k_mst_trees_differ() {
        let d = DistanceMatrix::from_fn(6, |i, j| ((i * 7 + j * 2) % 13 + 1) as f64);
        let trees = k_mst_backbone(&d, &ids(6), 2);
        assert_eq!(trees.len(), 2);
        let w0 = tree_weight(&d, &trees[0]);
        let w1 = tree_weight(&d, &trees[1]);
        // Second tree avoids (inflated) first-tree edges, so it is no
        // cheaper under the original metric.
        assert!(w1 >= w0 - 1e-9);
        assert_ne!(trees[0], trees[1]);
    }

    #[test]
    fn tiny_member_sets() {
        let d = DistanceMatrix::off_diagonal(3, 1.0);
        assert!(mst_edges(&d, &[NodeId(1)]).is_empty());
        assert!(mst_edges(&d, &[]).is_empty());
    }
}
