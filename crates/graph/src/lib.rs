//! Directed weighted graph algorithms for the EGOIST overlay routing system.
//!
//! This crate is the graph substrate of the EGOIST reproduction. It provides
//! exactly the algorithmic machinery the paper's evaluation relies on:
//!
//! * [`DiGraph`] — a directed, weighted adjacency-list graph keyed by
//!   [`NodeId`], the representation of an overlay wiring `S`.
//! * [`DistanceMatrix`] — dense `n × n` cost matrices (link delays,
//!   announced costs, available bandwidth).
//! * [`dijkstra`] / [`apsp`] — single-source and all-pairs shortest paths,
//!   the routing layer of Definition 1 (`d_S(v_i, v_j)`).
//! * [`widest`] — maximum-bottleneck-bandwidth paths (the modified Dijkstra
//!   of §4.1 used for the available-bandwidth cost metric).
//! * [`maxflow`] — Dinic's max-flow, the "all peers allow multipath
//!   redirection" upper bound of Fig. 10.
//! * [`disjoint`] — edge-disjoint path counting (Fig. 11) via unit-capacity
//!   max-flow.
//! * [`cycles`] — the id-offset bidirectional cycles used by HybridBR's
//!   donated-link backbone (§3.3) and the "enforce a cycle" connectivity
//!   fix-up of k-Random / k-Closest (§3.2).
//! * [`connectivity`] — reachability and strong/weak connectivity tests.
//! * [`efficiency`] — the Efficiency metric of §4.4 (reciprocal shortest
//!   distance, zero when disconnected).
//! * [`mst`] — Prim's minimum spanning tree, implemented as the k-MST
//!   backbone baseline the paper contrasts HybridBR against.
//!
//! All algorithms are deterministic and panic-free on well-formed inputs;
//! costs are `f64` with `f64::INFINITY` meaning "no edge / unreachable"
//! (the paper's `M >> n` sentinel is a *finite* penalty applied by the
//! policy layer in `egoist-core`, not here).

pub mod apsp;
pub mod connectivity;
pub mod csr;
pub mod cycles;
pub mod dijkstra;
pub mod disjoint;
pub mod efficiency;
pub mod graph;
pub mod matrix;
pub mod maxflow;
pub mod mst;
pub mod types;
pub mod widest;

pub use csr::{CsrApsp, CsrGraph, DijkstraWorkspace};
pub use graph::DiGraph;
pub use matrix::DistanceMatrix;
pub use types::NodeId;

#[cfg(test)]
mod proptests;
