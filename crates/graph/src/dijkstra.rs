//! Single-source shortest paths (Dijkstra with a binary heap).
//!
//! Overlay routing in EGOIST is plain shortest-path routing over the
//! selfishly constructed topology (§1, footnote 1) — so Dijkstra over the
//! wiring graph *is* the routing protocol's path computation.

use crate::graph::DiGraph;
use crate::types::{Cost, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a single-source shortest path computation.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    pub source: NodeId,
    /// `dist[j]` = cost of the shortest directed path `source → j`
    /// (`f64::INFINITY` when unreachable, `0` for the source itself).
    pub dist: Vec<Cost>,
    /// `parent[j]` = predecessor of `j` on that path (`None` for the source
    /// and unreachable nodes).
    pub parent: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// Reconstruct the node sequence `source → … → target`, or `None` when
    /// the target is unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        if !self.dist[target.index()].is_finite() {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        if cur != self.source {
            return None;
        }
        path.reverse();
        Some(path)
    }

    /// The next hop from the source toward `target` (routing-table entry),
    /// or `None` when unreachable or `target == source`.
    pub fn next_hop(&self, target: NodeId) -> Option<NodeId> {
        let p = self.path_to(target)?;
        p.get(1).copied()
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: Cost,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost: reverse the comparison. Costs are never NaN
        // (asserted at insertion), so total_cmp is safe and total.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra from `source` over non-negative edge costs.
///
/// # Panics
/// Debug-panics if an edge has negative or NaN cost; link delays, loads and
/// announced costs are all non-negative by construction.
pub fn dijkstra(g: &DiGraph, source: NodeId) -> ShortestPaths {
    let n = g.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::with_capacity(n);

    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: source.0,
    });

    while let Some(HeapEntry { cost, node }) = heap.pop() {
        let u = node as usize;
        if settled[u] {
            continue;
        }
        settled[u] = true;
        for e in g.out_edges(NodeId(node)) {
            debug_assert!(
                e.cost >= 0.0 && !e.cost.is_nan(),
                "negative/NaN edge cost {} on {}→{}",
                e.cost,
                node,
                e.to
            );
            if !e.cost.is_finite() {
                continue;
            }
            let v = e.to.index();
            let nd = cost + e.cost;
            if nd < dist[v] {
                dist[v] = nd;
                parent[v] = Some(NodeId(node));
                heap.push(HeapEntry {
                    cost: nd,
                    node: e.to.0,
                });
            }
        }
    }

    ShortestPaths {
        source,
        dist,
        parent,
    }
}

/// Shortest-path distance for a single pair (convenience wrapper).
pub fn distance(g: &DiGraph, from: NodeId, to: NodeId) -> Cost {
    dijkstra(g, from).dist[to.index()]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 →1→ 1 →1→ 2, plus a direct 0→2 edge of cost 5 (detour wins).
    fn line_with_shortcut() -> DiGraph {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        g.add_edge(NodeId(0), NodeId(2), 5.0);
        g
    }

    #[test]
    fn prefers_cheaper_two_hop_path() {
        let sp = dijkstra(&line_with_shortcut(), NodeId(0));
        assert_eq!(sp.dist[2], 2.0);
        assert_eq!(
            sp.path_to(NodeId(2)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        let sp = dijkstra(&g, NodeId(0));
        assert!(sp.dist[2].is_infinite());
        assert!(sp.path_to(NodeId(2)).is_none());
        assert!(sp.next_hop(NodeId(2)).is_none());
    }

    #[test]
    fn direction_matters() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        assert_eq!(distance(&g, NodeId(0), NodeId(1)), 1.0);
        assert!(distance(&g, NodeId(1), NodeId(0)).is_infinite());
    }

    #[test]
    fn next_hop_is_first_edge_of_path() {
        let sp = dijkstra(&line_with_shortcut(), NodeId(0));
        assert_eq!(sp.next_hop(NodeId(2)), Some(NodeId(1)));
        assert_eq!(sp.next_hop(NodeId(1)), Some(NodeId(1)));
        assert_eq!(sp.next_hop(NodeId(0)), None);
    }

    #[test]
    fn zero_cost_edges_are_fine() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 0.0);
        g.add_edge(NodeId(1), NodeId(2), 0.0);
        let sp = dijkstra(&g, NodeId(0));
        assert_eq!(sp.dist[2], 0.0);
    }

    #[test]
    fn infinite_edges_are_skipped() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId(0), NodeId(1), f64::INFINITY);
        let sp = dijkstra(&g, NodeId(0));
        assert!(sp.dist[1].is_infinite());
    }

    #[test]
    fn source_distance_zero() {
        let g = line_with_shortcut();
        let sp = dijkstra(&g, NodeId(1));
        assert_eq!(sp.dist[1], 0.0);
        assert_eq!(sp.path_to(NodeId(1)).unwrap(), vec![NodeId(1)]);
    }
}
