//! All-pairs shortest paths.
//!
//! A newcomer in EGOIST "obtains the pair-wise distance function `d_{G−i}`
//! by running an all-pairs shortest path algorithm on `G−i`" (§3.1). For the
//! sparse wirings EGOIST produces (`m ≈ n·k`, `k ≪ n`) repeated Dijkstra is
//! asymptotically better than Floyd–Warshall; both are provided and
//! cross-checked in tests.

use crate::dijkstra::dijkstra;
use crate::graph::DiGraph;
use crate::matrix::DistanceMatrix;
use crate::types::NodeId;

/// All-pairs shortest path distances via `n` Dijkstra runs.
/// `result.get(i, j)` = `d_S(v_i, v_j)`; infinite when unreachable.
pub fn apsp(g: &DiGraph) -> DistanceMatrix {
    let n = g.len();
    let mut out = DistanceMatrix::filled(n, f64::INFINITY);
    for i in 0..n {
        let sp = dijkstra(g, NodeId::from_index(i));
        for (j, &d) in sp.dist.iter().enumerate() {
            out.set_at(i, j, d);
        }
    }
    out
}

/// All-pairs shortest paths via Floyd–Warshall (dense `O(n^3)`).
/// Primarily a test oracle for [`apsp`]; also faster for near-complete
/// graphs such as the full mesh.
pub fn floyd_warshall(g: &DiGraph) -> DistanceMatrix {
    let n = g.len();
    let mut d = DistanceMatrix::filled(n, f64::INFINITY);
    for i in 0..n {
        d.set_at(i, i, 0.0);
    }
    for (from, to, cost) in g.edges() {
        if cost < d.get(from, to) {
            d.set(from, to, cost);
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = d.at(i, k);
            if !dik.is_finite() {
                continue;
            }
            for j in 0..n {
                let via = dik + d.at(k, j);
                if via < d.at(i, j) {
                    d.set_at(i, j, via);
                }
            }
        }
    }
    d
}

/// Shortest-path distances from every node *to* a fixed target, computed as
/// one workspace sweep on the reversed CSR graph. Used by the
/// topology-biased sampling ranking, which needs distances toward candidate
/// neighborhoods.
pub fn distances_to(g: &DiGraph, target: NodeId) -> Vec<f64> {
    crate::csr::distances_to_csr(&crate::csr::CsrGraph::from_digraph(g), target.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for i in 0..n {
            g.add_edge(NodeId::from_index(i), NodeId::from_index((i + 1) % n), 1.0);
        }
        g
    }

    #[test]
    fn apsp_on_directed_ring() {
        let d = apsp(&ring(5));
        // Going "forward" only: distance i→j = (j - i) mod 5.
        assert_eq!(d.at(0, 1), 1.0);
        assert_eq!(d.at(0, 4), 4.0);
        assert_eq!(d.at(4, 0), 1.0);
        assert_eq!(d.at(3, 2), 4.0);
    }

    #[test]
    fn apsp_matches_floyd_warshall() {
        let mut g = ring(6);
        g.add_edge(NodeId(0), NodeId(3), 1.5);
        g.add_edge(NodeId(2), NodeId(5), 0.5);
        let a = apsp(&g);
        let f = floyd_warshall(&g);
        for i in 0..6 {
            for j in 0..6 {
                let (x, y) = (a.at(i, j), f.at(i, j));
                assert!(
                    (x - y).abs() < 1e-9 || (x.is_infinite() && y.is_infinite()),
                    "mismatch at ({i},{j}): {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn disconnected_pairs_infinite() {
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(2), NodeId(3), 1.0);
        let d = apsp(&g);
        assert!(d.at(0, 2).is_infinite());
        assert!(d.at(1, 3).is_infinite());
        assert_eq!(d.at(2, 3), 1.0);
    }

    #[test]
    fn distances_to_matches_apsp_column() {
        let mut g = ring(5);
        g.add_edge(NodeId(1), NodeId(4), 0.25);
        let d = apsp(&g);
        let col = distances_to(&g, NodeId(4));
        for (i, &c) in col.iter().enumerate() {
            assert!((c - d.at(i, 4)).abs() < 1e-12);
        }
    }
}
