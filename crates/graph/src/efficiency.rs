//! The Efficiency metric of §4.4.
//!
//! Under churn the overlay can disconnect, making average distance
//! ill-defined, so the paper switches to Efficiency:
//!
//! > the Efficiency `ε_ij` between node `i` and `j` is inversely
//! > proportional to the shortest communication distance `d_ij` when `i`
//! > and `j` are connected. If there is no path, `ε_ij = 0`. The Efficiency
//! > of node `i` is `ε_i = (1/(n−1)) Σ_{j≠i} ε_ij`.

use crate::dijkstra::dijkstra;
use crate::graph::DiGraph;
use crate::types::NodeId;

/// Per-node efficiency `ε_i` of node `i` with respect to the destination set
/// `targets` (usually the alive nodes, excluding `i`). The `n − 1`
/// normalizer is the number of *targets considered*, matching the paper's
/// fixed-population formula.
pub fn node_efficiency(g: &DiGraph, i: NodeId, targets: &[NodeId]) -> f64 {
    let others: Vec<NodeId> = targets.iter().copied().filter(|&t| t != i).collect();
    if others.is_empty() {
        return 0.0;
    }
    let sp = dijkstra(g, i);
    let mut sum = 0.0;
    for &j in &others {
        let d = sp.dist[j.index()];
        if d.is_finite() && d > 0.0 {
            sum += 1.0 / d;
        } else if d == 0.0 {
            // Coincident nodes (zero measured delay): count as the maximum
            // efficiency contribution of 1 per unit distance-floor.
            sum += 1.0;
        }
    }
    sum / others.len() as f64
}

/// Mean efficiency over all `members`.
pub fn mean_efficiency(g: &DiGraph, members: &[NodeId]) -> f64 {
    if members.is_empty() {
        return 0.0;
    }
    let total: f64 = members
        .iter()
        .map(|&i| node_efficiency(g, i, members))
        .sum();
    total / members.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn disconnected_pair_contributes_zero() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 2.0);
        let eff = node_efficiency(&g, NodeId(0), &ids(&[0, 1, 2]));
        // Only j=1 reachable with d=2 → (1/2)/2 targets = 0.25.
        assert!((eff - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fully_connected_unit_ring() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(0), 1.0);
        assert!((mean_efficiency(&g, &ids(&[0, 1])) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn closer_is_more_efficient() {
        let mut near = DiGraph::new(2);
        near.add_edge(NodeId(0), NodeId(1), 1.0);
        let mut far = DiGraph::new(2);
        far.add_edge(NodeId(0), NodeId(1), 10.0);
        let e_near = node_efficiency(&near, NodeId(0), &ids(&[0, 1]));
        let e_far = node_efficiency(&far, NodeId(0), &ids(&[0, 1]));
        assert!(e_near > e_far);
    }

    #[test]
    fn empty_targets_zero() {
        let g = DiGraph::new(1);
        assert_eq!(node_efficiency(&g, NodeId(0), &[NodeId(0)]), 0.0);
        assert_eq!(mean_efficiency(&g, &[]), 0.0);
    }

    #[test]
    fn mean_efficiency_of_directed_line() {
        // 0→1→2 with unit costs; node 2 reaches nobody.
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        let members = ids(&[0, 1, 2]);
        // ε_0 = (1/1 + 1/2)/2 = 0.75; ε_1 = (0 + 1)/2 = 0.5; ε_2 = 0.
        let m = mean_efficiency(&g, &members);
        assert!((m - (0.75 + 0.5) / 3.0).abs() < 1e-12);
    }
}
