//! Maximum flow (Dinic's algorithm).
//!
//! Fig. 10's "peers allow multipath redirections" series is the theoretical
//! maximum available bandwidth when the total usable bandwidth between a
//! source and target "becomes equal to a max-flow from v_i to v_j" (§6.1).
//! Unit-capacity max-flow also counts edge-disjoint paths (Fig. 11); see
//! [`crate::disjoint`].

use crate::graph::DiGraph;
use crate::types::NodeId;

#[derive(Clone, Debug)]
struct FlowEdge {
    to: usize,
    rev: usize, // index of the reverse edge in adj[to]
    cap: f64,
}

/// Residual flow network built from a [`DiGraph`] whose edge costs are
/// interpreted as capacities.
pub struct FlowNetwork {
    adj: Vec<Vec<FlowEdge>>,
}

impl FlowNetwork {
    /// Build a flow network from `g`, treating each edge cost as capacity.
    /// Infinite capacities are clamped to a large finite value so the
    /// algorithm terminates.
    pub fn from_graph(g: &DiGraph) -> Self {
        const CAP_CLAMP: f64 = 1e15;
        let mut net = FlowNetwork {
            adj: vec![Vec::new(); g.len()],
        };
        for (from, to, cost) in g.edges() {
            let cap = if cost.is_finite() { cost } else { CAP_CLAMP };
            net.add_edge(from.index(), to.index(), cap.max(0.0));
        }
        net
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: f64) {
        let rev_from = self.adj[to].len();
        let rev_to = self.adj[from].len();
        self.adj[from].push(FlowEdge {
            to,
            rev: rev_from,
            cap,
        });
        self.adj[to].push(FlowEdge {
            to: from,
            rev: rev_to,
            cap: 0.0,
        });
    }

    /// BFS level graph; returns `None` if `t` is unreachable.
    fn levels(&self, s: usize, t: usize) -> Option<Vec<i32>> {
        let mut level = vec![-1; self.adj.len()];
        let mut queue = std::collections::VecDeque::new();
        level[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for e in &self.adj[u] {
                if e.cap > 1e-12 && level[e.to] < 0 {
                    level[e.to] = level[u] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        if level[t] < 0 {
            None
        } else {
            Some(level)
        }
    }

    fn dfs(&mut self, u: usize, t: usize, pushed: f64, level: &[i32], iter: &mut [usize]) -> f64 {
        if u == t {
            return pushed;
        }
        while iter[u] < self.adj[u].len() {
            let (to, cap, rev) = {
                let e = &self.adj[u][iter[u]];
                (e.to, e.cap, e.rev)
            };
            if cap > 1e-12 && level[to] == level[u] + 1 {
                let d = self.dfs(to, t, pushed.min(cap), level, iter);
                if d > 1e-12 {
                    self.adj[u][iter[u]].cap -= d;
                    self.adj[to][rev].cap += d;
                    return d;
                }
            }
            iter[u] += 1;
        }
        0.0
    }

    /// Maximum `s → t` flow (Dinic). Consumes residual capacity, so call on
    /// a fresh network per query.
    pub fn max_flow(&mut self, s: NodeId, t: NodeId) -> f64 {
        let (s, t) = (s.index(), t.index());
        if s == t {
            return f64::INFINITY;
        }
        let mut flow = 0.0;
        while let Some(level) = self.levels(s, t) {
            let mut iter = vec![0usize; self.adj.len()];
            loop {
                let f = self.dfs(s, t, f64::INFINITY, &level, &mut iter);
                if f <= 1e-12 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }
}

/// Max-flow between one pair on a capacity graph (edge cost = capacity).
pub fn max_flow(g: &DiGraph, s: NodeId, t: NodeId) -> f64 {
    FlowNetwork::from_graph(g).max_flow(s, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_diamond() {
        // s=0, t=3; two disjoint unit paths → flow 2.
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(0), NodeId(2), 1.0);
        g.add_edge(NodeId(1), NodeId(3), 1.0);
        g.add_edge(NodeId(2), NodeId(3), 1.0);
        assert!((max_flow(&g, NodeId(0), NodeId(3)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_limits_flow() {
        // 0→1 cap 10, 1→2 cap 3.
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 10.0);
        g.add_edge(NodeId(1), NodeId(2), 3.0);
        assert!((max_flow(&g, NodeId(0), NodeId(2)) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn cross_edge_increases_flow() {
        // The textbook example where the cross edge enables extra flow.
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 2.0);
        g.add_edge(NodeId(0), NodeId(2), 2.0);
        g.add_edge(NodeId(1), NodeId(3), 1.0);
        g.add_edge(NodeId(2), NodeId(3), 3.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        assert!((max_flow(&g, NodeId(0), NodeId(3)) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_flow_zero() {
        let g = DiGraph::new(2);
        assert_eq!(max_flow(&g, NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn flow_at_most_out_capacity() {
        let mut g = DiGraph::new(5);
        for j in 1..4 {
            g.add_edge(NodeId(0), NodeId(j), 1.5);
            g.add_edge(NodeId(j), NodeId(4), 10.0);
        }
        assert!((max_flow(&g, NodeId(0), NodeId(4)) - 4.5).abs() < 1e-9);
    }

    #[test]
    fn fractional_capacities() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 0.75);
        g.add_edge(NodeId(1), NodeId(2), 0.5);
        g.add_edge(NodeId(0), NodeId(2), 0.25);
        assert!((max_flow(&g, NodeId(0), NodeId(2)) - 0.75).abs() < 1e-9);
    }
}
