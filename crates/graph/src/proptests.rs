//! Property-based tests tying the graph algorithms to each other.

use crate::apsp::{apsp, floyd_warshall};
use crate::connectivity::{pairwise_reachability, strongly_connected};
use crate::cycles::{backbone_edges, enforce_cycle};
use crate::dijkstra::dijkstra;
use crate::disjoint::{edge_disjoint_paths, vertex_disjoint_paths};
use crate::graph::DiGraph;
use crate::matrix::DistanceMatrix;
use crate::maxflow::max_flow;
use crate::types::NodeId;
use crate::widest::widest_paths;
use proptest::prelude::*;

/// Random sparse directed graph with positive costs.
fn arb_graph(max_n: usize) -> impl Strategy<Value = DiGraph> {
    (2usize..max_n).prop_flat_map(|n| {
        let edge = (0..n, 0..n, 1u32..100u32);
        proptest::collection::vec(edge, 0..n * 3).prop_map(move |edges| {
            let mut g = DiGraph::new(n);
            for (a, b, c) in edges {
                if a != b {
                    g.add_edge(NodeId::from_index(a), NodeId::from_index(b), c as f64);
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dijkstra distances satisfy the triangle inequality over relaxed
    /// edges: d(s,v) ≤ d(s,u) + w(u,v) for every edge (u,v).
    #[test]
    fn dijkstra_is_stable_under_relaxation(g in arb_graph(12)) {
        let sp = dijkstra(&g, NodeId(0));
        for (u, v, w) in g.edges() {
            let du = sp.dist[u.index()];
            let dv = sp.dist[v.index()];
            if du.is_finite() {
                prop_assert!(dv <= du + w + 1e-9,
                    "edge {u}→{v} (w={w}) violates relaxation: d(u)={du}, d(v)={dv}");
            }
        }
    }

    /// Repeated-Dijkstra APSP agrees with Floyd–Warshall everywhere.
    #[test]
    fn apsp_equals_floyd_warshall(g in arb_graph(10)) {
        let a = apsp(&g);
        let f = floyd_warshall(&g);
        for i in 0..g.len() {
            for j in 0..g.len() {
                let (x, y) = (a.at(i, j), f.at(i, j));
                prop_assert!(
                    (x.is_infinite() && y.is_infinite()) || (x - y).abs() < 1e-6,
                    "({i},{j}): {x} vs {y}"
                );
            }
        }
    }

    /// Paths reported by Dijkstra have exactly the reported cost.
    #[test]
    fn dijkstra_path_cost_matches_dist(g in arb_graph(12)) {
        let sp = dijkstra(&g, NodeId(0));
        for j in 0..g.len() {
            if let Some(path) = sp.path_to(NodeId::from_index(j)) {
                let mut c = 0.0;
                for w in path.windows(2) {
                    c += g.edge_cost(w[0], w[1]).unwrap();
                }
                prop_assert!((c - sp.dist[j]).abs() < 1e-9);
            }
        }
    }

    /// Widest path width equals the minimum edge bandwidth along the
    /// reported path, and no single edge out of the source is wider than
    /// the best width to its endpoint.
    #[test]
    fn widest_path_is_consistent(g in arb_graph(12)) {
        let wp = widest_paths(&g, NodeId(0));
        for j in 1..g.len() {
            if let Some(path) = wp.path_to(NodeId::from_index(j)) {
                let mut w = f64::INFINITY;
                for win in path.windows(2) {
                    w = w.min(g.edge_cost(win[0], win[1]).unwrap());
                }
                prop_assert!((w - wp.width[j]).abs() < 1e-9);
            }
        }
        for e in g.out_edges(NodeId(0)) {
            prop_assert!(wp.width[e.to.index()] >= e.cost - 1e-9);
        }
    }

    /// Max-flow is bounded by both total out-capacity of s and the
    /// bottleneck width times the number of edge-disjoint paths... the
    /// simple sound bound: flow ≤ Σ out-capacities and flow ≥ widest single
    /// path bottleneck (when finite).
    #[test]
    fn max_flow_bounds(g in arb_graph(10)) {
        let s = NodeId(0);
        let t = NodeId::from_index(g.len() - 1);
        if s == t { return Ok(()); }
        let f = max_flow(&g, s, t);
        let out_cap: f64 = g.out_edges(s).iter().map(|e| e.cost).sum();
        prop_assert!(f <= out_cap + 1e-6);
        let w = widest_paths(&g, s).width[t.index()];
        if w > 0.0 && w.is_finite() {
            prop_assert!(f >= w - 1e-6, "flow {f} < single widest path {w}");
        }
    }

    /// Edge-disjoint ≥ vertex-disjoint, and both are 0 iff unreachable.
    #[test]
    fn disjoint_path_hierarchy(g in arb_graph(10)) {
        let s = NodeId(0);
        let t = NodeId::from_index(g.len() - 1);
        if s == t { return Ok(()); }
        let e = edge_disjoint_paths(&g, s, t);
        let v = vertex_disjoint_paths(&g, s, t);
        prop_assert!(e >= v);
        let reach = crate::connectivity::reachable_from(&g, s)[t.index()];
        prop_assert_eq!(e > 0, reach);
    }

    /// Enforcing a cycle always produces a strongly connected overlay.
    #[test]
    fn enforced_cycle_connects(g in arb_graph(10)) {
        let n = g.len();
        let d = DistanceMatrix::off_diagonal(n, 1.0);
        let members: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let mut g = g;
        enforce_cycle(&mut g, &d, &members);
        prop_assert!(strongly_connected(&g, &members));
        prop_assert!((pairwise_reachability(&g, &members) - 1.0).abs() < 1e-12);
    }

    /// The HybridBR backbone with any even k2 ≥ 2 is strongly connected and
    /// each node donates at most k2 out-links per cycle pair.
    #[test]
    fn backbone_is_connected(n in 3usize..20, k2 in 1usize..4) {
        let k2 = k2 * 2;
        let members: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let edges = backbone_edges(&members, k2);
        let mut g = DiGraph::new(n);
        for (a, b) in &edges {
            g.add_edge(*a, *b, 1.0);
        }
        prop_assert!(strongly_connected(&g, &members));
        for &m in &members {
            prop_assert!(g.out_degree(m) <= k2.min(n - 1) + k2 / 2,
                "node {m} donates {} links for k2={k2}", g.out_degree(m));
        }
    }
}
