//! Dense `n × n` cost matrices.
//!
//! A [`DistanceMatrix`] stores the pairwise quantity `d_ij` of the paper:
//! the cost of a *potential direct overlay link* from `v_i` to `v_j`
//! (one-way delay, announced cost, or available bandwidth depending on the
//! metric in play). Matrices are directed — `d_ij != d_ji` in general, as
//! §2.1 stresses.

use crate::types::{Cost, NodeId};

/// Dense row-major `n × n` matrix of directed pairwise costs.
#[derive(Clone, Debug, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<Cost>,
}

impl DistanceMatrix {
    /// A matrix with every entry (including the diagonal) set to `fill`.
    pub fn filled(n: usize, fill: Cost) -> Self {
        DistanceMatrix {
            n,
            data: vec![fill; n * n],
        }
    }

    /// A matrix with zero diagonal and `fill` off-diagonal.
    pub fn off_diagonal(n: usize, fill: Cost) -> Self {
        let mut m = Self::filled(n, fill);
        for i in 0..n {
            m.data[i * n + i] = 0.0;
        }
        m
    }

    /// Build from a closure over index pairs; the diagonal is forced to 0.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> Cost) -> Self {
        let mut m = Self::filled(n, 0.0);
        for i in 0..n {
            for j in 0..n {
                m.data[i * n + j] = if i == j { 0.0 } else { f(i, j) };
            }
        }
        m
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Cost of the directed pair `(i, j)`.
    #[inline]
    pub fn get(&self, i: NodeId, j: NodeId) -> Cost {
        self.data[i.index() * self.n + j.index()]
    }

    /// Cost by raw indices (hot loops).
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> Cost {
        self.data[i * self.n + j]
    }

    /// Set the directed pair `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: NodeId, j: NodeId, c: Cost) {
        self.data[i.index() * self.n + j.index()] = c;
    }

    /// Set by raw indices.
    #[inline]
    pub fn set_at(&mut self, i: usize, j: usize, c: Cost) {
        self.data[i * self.n + j] = c;
    }

    /// Row `i` as a slice (costs from `i` to every node).
    #[inline]
    pub fn row(&self, i: usize) -> &[Cost] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Row `i` as a mutable slice (bulk writes in hot loops).
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [Cost] {
        &mut self.data[i * self.n..(i + 1) * self.n]
    }

    /// Swap the backing row-major storage with `other` (lengths must
    /// match) — zero-copy buffer rotation for hot loops.
    pub fn swap_raw(&mut self, other: &mut Vec<Cost>) {
        assert_eq!(other.len(), self.data.len(), "swap_raw length mismatch");
        std::mem::swap(&mut self.data, other);
    }

    /// Apply `f` to every off-diagonal entry in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(usize, usize, Cost) -> Cost) {
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    let c = self.data[i * self.n + j];
                    self.data[i * self.n + j] = f(i, j, c);
                }
            }
        }
    }

    /// Mean of all finite off-diagonal entries; `None` if there are none.
    pub fn mean_off_diagonal(&self) -> Option<Cost> {
        let mut sum = 0.0;
        let mut cnt = 0usize;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j && self.data[i * self.n + j].is_finite() {
                    sum += self.data[i * self.n + j];
                    cnt += 1;
                }
            }
        }
        if cnt == 0 {
            None
        } else {
            Some(sum / cnt as f64)
        }
    }

    /// Restrict the matrix to the sub-population `keep` (in the given
    /// order), renumbering nodes densely. Used by the sampling machinery
    /// of §5 to scale down the BR input.
    pub fn submatrix(&self, keep: &[NodeId]) -> DistanceMatrix {
        let m = keep.len();
        let mut out = DistanceMatrix::filled(m, 0.0);
        for (a, &i) in keep.iter().enumerate() {
            for (b, &j) in keep.iter().enumerate() {
                out.data[a * m + b] = self.get(i, j);
            }
        }
        out
    }

    /// Symmetrize: replace `d_ij` and `d_ji` with their average. Useful for
    /// constructing RTT/2 style one-way estimates from round trips.
    pub fn symmetrized(&self) -> DistanceMatrix {
        DistanceMatrix::from_fn(self.n, |i, j| 0.5 * (self.at(i, j) + self.at(j, i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_get_set() {
        let mut m = DistanceMatrix::off_diagonal(3, 5.0);
        assert_eq!(m.get(NodeId(0), NodeId(0)), 0.0);
        assert_eq!(m.get(NodeId(0), NodeId(2)), 5.0);
        m.set(NodeId(0), NodeId(2), 7.5);
        assert_eq!(m.get(NodeId(0), NodeId(2)), 7.5);
        // Directedness: the reverse entry is untouched.
        assert_eq!(m.get(NodeId(2), NodeId(0)), 5.0);
    }

    #[test]
    fn from_fn_zeroes_diagonal() {
        let m = DistanceMatrix::from_fn(4, |i, j| (i * 10 + j) as f64);
        for i in 0..4 {
            assert_eq!(m.at(i, i), 0.0);
        }
        assert_eq!(m.at(1, 3), 13.0);
    }

    #[test]
    fn submatrix_renumbers() {
        let m = DistanceMatrix::from_fn(4, |i, j| (i * 10 + j) as f64);
        let s = m.submatrix(&[NodeId(3), NodeId(1)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.at(0, 1), 31.0);
        assert_eq!(s.at(1, 0), 13.0);
    }

    #[test]
    fn mean_skips_infinite() {
        let mut m = DistanceMatrix::off_diagonal(3, 2.0);
        m.set(NodeId(0), NodeId(1), f64::INFINITY);
        let mean = m.mean_off_diagonal().unwrap();
        assert!((mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_none_when_all_infinite() {
        let m = DistanceMatrix::off_diagonal(2, f64::INFINITY);
        assert!(m.mean_off_diagonal().is_none());
    }

    #[test]
    fn symmetrized_averages_pairs() {
        let mut m = DistanceMatrix::off_diagonal(2, 0.0);
        m.set(NodeId(0), NodeId(1), 10.0);
        m.set(NodeId(1), NodeId(0), 20.0);
        let s = m.symmetrized();
        assert_eq!(s.get(NodeId(0), NodeId(1)), 15.0);
        assert_eq!(s.get(NodeId(1), NodeId(0)), 15.0);
    }

    #[test]
    fn row_matches_entries() {
        let m = DistanceMatrix::from_fn(3, |i, j| (i + j) as f64);
        assert_eq!(m.row(1), &[1.0, 0.0, 3.0]);
    }
}
