//! Connectivity cycles.
//!
//! Two uses in the paper:
//!
//! 1. §3.2 — "if the resulting graph is not connected, we enforce a cycle"
//!    for k-Random and k-Closest.
//! 2. §3.3 — HybridBR's connectivity backbone: each node donates `k2` links
//!    and the system builds `k2/2` **bidirectional cycles** from id offsets;
//!    node `i` connects to `i ± offset (mod n)` so the cycles survive churn
//!    with simple local repairs.

use crate::graph::DiGraph;
use crate::matrix::DistanceMatrix;
use crate::types::NodeId;

/// Edges of the identity cycle `0 → 1 → … → n−1 → 0` restricted to `alive`
/// members (the cycle skips dead nodes, exactly the §3.3 repair rule where
/// `v_n` disconnects from `v_1` to splice in `v_{n+1}`).
pub fn ring_edges(alive: &[NodeId]) -> Vec<(NodeId, NodeId)> {
    let m = alive.len();
    if m < 2 {
        return Vec::new();
    }
    let mut sorted: Vec<NodeId> = alive.to_vec();
    sorted.sort_unstable();
    (0..m).map(|i| (sorted[i], sorted[(i + 1) % m])).collect()
}

/// The donated-link backbone of HybridBR: `k2/2` bidirectional cycles.
///
/// For each of the `k2/2` offsets `o`, every alive node (by *rank* in the
/// sorted alive set) connects to the nodes `rank ± o` — i.e. each cycle
/// contributes two directed edges per node. Offsets are chosen as
/// `1, 1 + ⌊m/(c+1)⌋, …` to spread the chords around the ring, mirroring
/// the k-Regular offset recipe.
pub fn backbone_edges(alive: &[NodeId], k2: usize) -> Vec<(NodeId, NodeId)> {
    let m = alive.len();
    let cycles = k2 / 2;
    if m < 2 || cycles == 0 {
        return Vec::new();
    }
    let mut sorted: Vec<NodeId> = alive.to_vec();
    sorted.sort_unstable();
    let mut out = Vec::with_capacity(2 * cycles * m);
    for c in 0..cycles {
        // First cycle is the unit ring; later ones use spread offsets.
        let offset = if c == 0 {
            1
        } else {
            (1 + c * m.div_ceil(cycles + 1)).min(m - 1).max(1)
        };
        for r in 0..m {
            let fwd = sorted[(r + offset) % m];
            let bwd = sorted[(r + m - offset % m) % m];
            let me = sorted[r];
            if fwd != me {
                out.push((me, fwd));
            }
            if bwd != me {
                out.push((me, bwd));
            }
        }
    }
    out.sort_unstable_by_key(|&(a, b)| (a.0, b.0));
    out.dedup();
    out
}

/// Add the identity ring over `alive` to `g` with costs from `d`
/// (the §3.2 "enforce a cycle" fix-up).
pub fn enforce_cycle(g: &mut DiGraph, d: &DistanceMatrix, alive: &[NodeId]) {
    for (a, b) in ring_edges(alive) {
        g.add_edge(a, b, d.get(a, b));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::strongly_connected;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn ring_edges_wrap_around() {
        let e = ring_edges(&ids(&[0, 1, 2, 3]));
        assert_eq!(
            e,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(3)),
                (NodeId(3), NodeId(0)),
            ]
        );
    }

    #[test]
    fn ring_skips_dead_nodes() {
        let e = ring_edges(&ids(&[5, 1, 9]));
        assert_eq!(
            e,
            vec![
                (NodeId(1), NodeId(5)),
                (NodeId(5), NodeId(9)),
                (NodeId(9), NodeId(1)),
            ]
        );
    }

    #[test]
    fn ring_of_one_or_zero_is_empty() {
        assert!(ring_edges(&ids(&[3])).is_empty());
        assert!(ring_edges(&[]).is_empty());
    }

    #[test]
    fn backbone_k2_2_is_bidirectional_ring() {
        let alive = ids(&[0, 1, 2, 3, 4]);
        let edges = backbone_edges(&alive, 2);
        // Each node gets forward and backward unit-ring edges: 2 per node.
        assert_eq!(edges.len(), 10);
        let mut g = DiGraph::new(5);
        for (a, b) in edges {
            g.add_edge(a, b, 1.0);
        }
        assert!(strongly_connected(&g, &alive));
        // Bidirectionality.
        assert!(g.has_edge(NodeId(0), NodeId(1)) && g.has_edge(NodeId(1), NodeId(0)));
    }

    #[test]
    fn backbone_higher_k2_adds_chords() {
        let alive: Vec<NodeId> = (0..12).map(NodeId).collect();
        let e2 = backbone_edges(&alive, 2).len();
        let e4 = backbone_edges(&alive, 4).len();
        assert!(e4 > e2, "k2=4 must add a second cycle ({e4} vs {e2})");
        let mut g = DiGraph::new(12);
        for (a, b) in backbone_edges(&alive, 4) {
            g.add_edge(a, b, 1.0);
        }
        assert!(strongly_connected(&g, &alive));
    }

    #[test]
    fn enforce_cycle_connects_disconnected_graph() {
        let d = DistanceMatrix::off_diagonal(4, 1.0);
        let mut g = DiGraph::new(4);
        let alive = ids(&[0, 1, 2, 3]);
        assert!(!strongly_connected(&g, &alive));
        enforce_cycle(&mut g, &d, &alive);
        assert!(strongly_connected(&g, &alive));
    }
}
