//! Core identifier and cost types shared across the EGOIST workspace.

use std::fmt;

/// Identifier of an overlay node `v_i ∈ V`.
///
/// Nodes are dense small integers (`0..n`), which lets every algorithm in
/// this workspace use flat `Vec` indexing instead of hash maps. The newtype
/// prevents accidentally mixing node ids with other integers (sample sizes,
/// neighbor counts, ...).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's position when used as a dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize);
        NodeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Edge/path cost. `f64::INFINITY` encodes "no edge" or "unreachable".
pub type Cost = f64;

/// Returns an iterator over all node ids `0..n`.
pub fn all_nodes(n: usize) -> impl Iterator<Item = NodeId> {
    (0..n as u32).map(NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        for i in [0usize, 1, 7, 4096] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn node_id_ordering_is_dense_index_ordering() {
        assert!(NodeId(3) < NodeId(10));
        assert_eq!(NodeId(5), NodeId::from_index(5));
    }

    #[test]
    fn all_nodes_yields_each_id_once() {
        let v: Vec<NodeId> = all_nodes(4).collect();
        assert_eq!(v, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn display_formats_with_v_prefix() {
        assert_eq!(format!("{}", NodeId(12)), "v12");
        assert_eq!(format!("{:?}", NodeId(12)), "v12");
    }
}
