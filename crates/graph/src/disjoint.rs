//! Edge-disjoint path counting (Fig. 11).
//!
//! §6.2 measures "the number of disjoint paths between the source node and
//! target node when the source establishes k parallel connections". By
//! Menger's theorem the maximum number of edge-disjoint directed paths
//! equals the max-flow with unit edge capacities.

use crate::graph::DiGraph;
use crate::maxflow::FlowNetwork;
use crate::types::NodeId;

/// Number of edge-disjoint directed paths `s → t`.
pub fn edge_disjoint_paths(g: &DiGraph, s: NodeId, t: NodeId) -> usize {
    if s == t {
        return 0;
    }
    let mut unit = DiGraph::new(g.len());
    for (from, to, _) in g.edges() {
        unit.add_edge(from, to, 1.0);
    }
    let f = FlowNetwork::from_graph(&unit).max_flow(s, t);
    f.round() as usize
}

/// Number of vertex-disjoint directed paths `s → t` (node-splitting
/// construction: each node v becomes v_in → v_out with unit capacity).
/// Disjoint overlay paths that avoid shared *relays* matter for the
/// real-time-traffic application where a congested relay hurts all copies.
pub fn vertex_disjoint_paths(g: &DiGraph, s: NodeId, t: NodeId) -> usize {
    if s == t {
        return 0;
    }
    let n = g.len();
    // Node v → indices: v_in = v, v_out = v + n.
    let mut split = DiGraph::new(2 * n);
    for v in 0..n {
        let cap = if v == s.index() || v == t.index() {
            // Endpoints may carry any number of paths.
            1e9
        } else {
            1.0
        };
        split.add_edge(NodeId::from_index(v), NodeId::from_index(v + n), cap);
    }
    for (from, to, _) in g.edges() {
        split.add_edge(
            NodeId::from_index(from.index() + n),
            NodeId::from_index(to.index()),
            1.0,
        );
    }
    let f = FlowNetwork::from_graph(&split).max_flow(
        NodeId::from_index(s.index() + n),
        NodeId::from_index(t.index()),
    );
    f.round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_disjoint_routes() -> DiGraph {
        // 0→1→3 and 0→2→3.
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 9.0);
        g.add_edge(NodeId(1), NodeId(3), 9.0);
        g.add_edge(NodeId(0), NodeId(2), 9.0);
        g.add_edge(NodeId(2), NodeId(3), 9.0);
        g
    }

    #[test]
    fn counts_two_parallel_routes() {
        let g = two_disjoint_routes();
        assert_eq!(edge_disjoint_paths(&g, NodeId(0), NodeId(3)), 2);
        assert_eq!(vertex_disjoint_paths(&g, NodeId(0), NodeId(3)), 2);
    }

    #[test]
    fn shared_relay_reduces_vertex_disjointness() {
        // 0→1→3, 0→2→3 plus both routes forced through relay 4:
        // 0→4 (x2 impossible: one node), 4→3.
        let mut g = DiGraph::new(5);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(4), 1.0);
        g.add_edge(NodeId(0), NodeId(2), 1.0);
        g.add_edge(NodeId(2), NodeId(4), 1.0);
        g.add_edge(NodeId(4), NodeId(3), 1.0);
        // Only one edge into 3, so edge-disjoint is 1 as well here;
        // add a second edge 4→3 alternative via node 1.
        assert_eq!(edge_disjoint_paths(&g, NodeId(0), NodeId(3)), 1);
        assert_eq!(vertex_disjoint_paths(&g, NodeId(0), NodeId(3)), 1);
    }

    #[test]
    fn edge_disjoint_can_exceed_vertex_disjoint() {
        // Two edge-disjoint paths sharing the middle vertex 2:
        // 0→1→2→3→5 and 0→2 ... wait, construct explicitly:
        // 0→1→2→4→5 and 0→3→2→6→5: share vertex 2 only.
        let mut g = DiGraph::new(7);
        for (a, b) in [
            (0, 1),
            (1, 2),
            (2, 4),
            (4, 5),
            (0, 3),
            (3, 2),
            (2, 6),
            (6, 5),
        ] {
            g.add_edge(NodeId(a), NodeId(b), 1.0);
        }
        assert_eq!(edge_disjoint_paths(&g, NodeId(0), NodeId(5)), 2);
        assert_eq!(vertex_disjoint_paths(&g, NodeId(0), NodeId(5)), 1);
    }

    #[test]
    fn no_path_means_zero() {
        let g = DiGraph::new(3);
        assert_eq!(edge_disjoint_paths(&g, NodeId(0), NodeId(2)), 0);
        assert_eq!(vertex_disjoint_paths(&g, NodeId(0), NodeId(2)), 0);
    }

    #[test]
    fn same_node_zero_paths() {
        let g = two_disjoint_routes();
        assert_eq!(edge_disjoint_paths(&g, NodeId(1), NodeId(1)), 0);
    }
}
