//! Directed weighted adjacency-list graph — the overlay wiring `S`.

use crate::matrix::DistanceMatrix;
use crate::types::{Cost, NodeId};

/// One directed overlay edge `e = (v_i, v_j)` with cost `d_ij`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    pub to: NodeId,
    pub cost: Cost,
}

/// A directed weighted graph over dense node ids `0..n`.
///
/// This is the concrete representation of a *global wiring*
/// `S = {s_1, ..., s_n}`: `out_edges(i)` is exactly `s_i`, the set of links
/// node `v_i` established, weighted by the underlying IP-path cost.
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    adj: Vec<Vec<Edge>>,
}

impl DiGraph {
    /// An edgeless graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        DiGraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Total number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Add the directed edge `from → to`. Duplicate edges between the same
    /// pair are replaced (an overlay node maintains at most one link to a
    /// given neighbor).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cost: Cost) {
        debug_assert_ne!(from, to, "self loops are not part of a wiring");
        let list = &mut self.adj[from.index()];
        if let Some(e) = list.iter_mut().find(|e| e.to == to) {
            e.cost = cost;
        } else {
            list.push(Edge { to, cost });
        }
    }

    /// Remove the directed edge `from → to` if present; returns whether an
    /// edge was removed.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        let list = &mut self.adj[from.index()];
        let before = list.len();
        list.retain(|e| e.to != to);
        list.len() != before
    }

    /// Drop all out-edges of `v` (the residual wiring `S_{-i}` operation).
    pub fn clear_out_edges(&mut self, v: NodeId) {
        self.adj[v.index()].clear();
    }

    /// Drop all out-edges *and* in-edges of `v` — what happens to the
    /// overlay when `v` churns OFF.
    pub fn isolate(&mut self, v: NodeId) {
        self.clear_out_edges(v);
        for list in &mut self.adj {
            list.retain(|e| e.to != v);
        }
    }

    /// Out-edges of `v` (the wiring `s_v`).
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[Edge] {
        &self.adj[v.index()]
    }

    /// Out-neighbor ids of `v`.
    pub fn out_neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[v.index()].iter().map(|e| e.to)
    }

    /// Out-degree of `v` (the `k` of the wiring).
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Cost of the direct edge `from → to`, or `None` if absent.
    pub fn edge_cost(&self, from: NodeId, to: NodeId) -> Option<Cost> {
        self.adj[from.index()]
            .iter()
            .find(|e| e.to == to)
            .map(|e| e.cost)
    }

    /// True if the directed edge exists.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.edge_cost(from, to).is_some()
    }

    /// Iterate over every directed edge as `(from, to, cost)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Cost)> + '_ {
        self.adj.iter().enumerate().flat_map(|(i, list)| {
            list.iter()
                .map(move |e| (NodeId::from_index(i), e.to, e.cost))
        })
    }

    /// Build a wiring graph from per-node neighbor lists, taking edge costs
    /// from the distance matrix `d`.
    pub fn from_wiring(d: &DistanceMatrix, wiring: &[Vec<NodeId>]) -> Self {
        let n = d.len();
        assert_eq!(wiring.len(), n, "wiring must cover all nodes");
        let mut g = DiGraph::new(n);
        for (i, neigh) in wiring.iter().enumerate() {
            let vi = NodeId::from_index(i);
            for &j in neigh {
                g.add_edge(vi, j, d.get(vi, j));
            }
        }
        g
    }

    /// The complete overlay (`k = n − 1`): every ordered pair connected with
    /// its direct cost — the full-mesh / RON reference of Fig. 1.
    pub fn full_mesh(d: &DistanceMatrix) -> Self {
        let n = d.len();
        let mut g = DiGraph::new(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    g.add_edge(NodeId::from_index(i), NodeId::from_index(j), d.at(i, j));
                }
            }
        }
        g
    }

    /// Re-read every edge cost from `d` (metric drift between epochs changes
    /// costs without changing topology).
    pub fn refresh_costs(&mut self, d: &DistanceMatrix) {
        for (i, list) in self.adj.iter_mut().enumerate() {
            for e in list {
                e.cost = d.at(i, e.to.index());
            }
        }
    }

    /// The graph with every edge reversed (used for in-reachability tests).
    pub fn reversed(&self) -> DiGraph {
        let mut g = DiGraph::new(self.len());
        for (from, to, cost) in self.edges() {
            g.add_edge(to, from, cost);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DiGraph {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 2.0);
        g.add_edge(NodeId(2), NodeId(0), 3.0);
        g
    }

    #[test]
    fn add_and_query_edges() {
        let g = tiny();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.edge_cost(NodeId(0), NodeId(1)), Some(1.0));
        assert_eq!(g.edge_cost(NodeId(1), NodeId(0)), None);
        assert!(g.has_edge(NodeId(2), NodeId(0)));
    }

    #[test]
    fn duplicate_edge_replaces_cost() {
        let mut g = tiny();
        g.add_edge(NodeId(0), NodeId(1), 9.0);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.edge_cost(NodeId(0), NodeId(1)), Some(9.0));
    }

    #[test]
    fn remove_edge_works() {
        let mut g = tiny();
        assert!(g.remove_edge(NodeId(0), NodeId(1)));
        assert!(!g.remove_edge(NodeId(0), NodeId(1)));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn isolate_removes_both_directions() {
        let mut g = tiny();
        g.isolate(NodeId(0));
        assert_eq!(g.out_degree(NodeId(0)), 0);
        assert!(!g.has_edge(NodeId(2), NodeId(0)));
        assert!(g.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn from_wiring_uses_matrix_costs() {
        let d = DistanceMatrix::from_fn(3, |i, j| (10 * i + j) as f64);
        let wiring = vec![vec![NodeId(1)], vec![NodeId(2)], vec![NodeId(0)]];
        let g = DiGraph::from_wiring(&d, &wiring);
        assert_eq!(g.edge_cost(NodeId(0), NodeId(1)), Some(1.0));
        assert_eq!(g.edge_cost(NodeId(1), NodeId(2)), Some(12.0));
        assert_eq!(g.edge_cost(NodeId(2), NodeId(0)), Some(20.0));
    }

    #[test]
    fn full_mesh_has_n_squared_minus_n_edges() {
        let d = DistanceMatrix::off_diagonal(5, 1.0);
        let g = DiGraph::full_mesh(&d);
        assert_eq!(g.edge_count(), 20);
    }

    #[test]
    fn refresh_costs_rereads_matrix() {
        let d0 = DistanceMatrix::off_diagonal(3, 1.0);
        let mut g = DiGraph::full_mesh(&d0);
        let d1 = DistanceMatrix::off_diagonal(3, 4.0);
        g.refresh_costs(&d1);
        assert_eq!(g.edge_cost(NodeId(0), NodeId(2)), Some(4.0));
    }

    #[test]
    fn reversed_flips_edges() {
        let g = tiny().reversed();
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert_eq!(g.edge_cost(NodeId(0), NodeId(2)), Some(3.0));
    }
}
