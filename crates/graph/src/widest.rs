//! Maximum-bottleneck-bandwidth ("widest") paths.
//!
//! §4.1: the available bandwidth between `v` and `u` is
//! `AvailBW(v,u) = max_{p ∈ P(v,u)} min_{e ∈ p} AvailBW(e)` — a
//! "Maximum Bottleneck Bandwidth" problem solved by a simple modification
//! of Dijkstra's algorithm (max-min instead of min-plus).
//!
//! In this module edge costs are *bandwidths* (bigger is better); a missing
//! edge has bandwidth 0.

use crate::graph::DiGraph;
use crate::types::{Cost, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a single-source widest-path computation.
#[derive(Clone, Debug)]
pub struct WidestPaths {
    pub source: NodeId,
    /// `width[j]` = bottleneck bandwidth of the best path `source → j`
    /// (`0` when unreachable, `f64::INFINITY` for the source itself).
    pub width: Vec<Cost>,
    pub parent: Vec<Option<NodeId>>,
}

impl WidestPaths {
    /// Node sequence of the widest path, or `None` when unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        if self.width[target.index()] <= 0.0 && target != self.source {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        if cur != self.source {
            return None;
        }
        path.reverse();
        Some(path)
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    width: Cost,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on width.
        self.width
            .total_cmp(&other.width)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Widest (maximum-bottleneck) paths from `source`. Edge costs are
/// interpreted as available bandwidths (must be ≥ 0).
pub fn widest_paths(g: &DiGraph, source: NodeId) -> WidestPaths {
    let n = g.len();
    let mut width = vec![0.0; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::with_capacity(n);

    width[source.index()] = f64::INFINITY;
    heap.push(HeapEntry {
        width: f64::INFINITY,
        node: source.0,
    });

    while let Some(HeapEntry { width: w, node }) = heap.pop() {
        let u = node as usize;
        if settled[u] {
            continue;
        }
        settled[u] = true;
        for e in g.out_edges(NodeId(node)) {
            debug_assert!(e.cost >= 0.0 && !e.cost.is_nan());
            let v = e.to.index();
            let nw = w.min(e.cost);
            if nw > width[v] {
                width[v] = nw;
                parent[v] = Some(NodeId(node));
                heap.push(HeapEntry {
                    width: nw,
                    node: e.to.0,
                });
            }
        }
    }

    WidestPaths {
        source,
        width,
        parent,
    }
}

/// Bottleneck bandwidth for a single pair.
pub fn bottleneck(g: &DiGraph, from: NodeId, to: NodeId) -> Cost {
    widest_paths(g, from).width[to.index()]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0→1 (10), 1→2 (4), 0→2 (3): two-hop bottleneck 4 beats direct 3.
    fn diamondish() -> DiGraph {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 10.0);
        g.add_edge(NodeId(1), NodeId(2), 4.0);
        g.add_edge(NodeId(0), NodeId(2), 3.0);
        g
    }

    #[test]
    fn detour_beats_narrow_direct_link() {
        let wp = widest_paths(&diamondish(), NodeId(0));
        assert_eq!(wp.width[2], 4.0);
        assert_eq!(
            wp.path_to(NodeId(2)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn unreachable_width_zero() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 5.0);
        let wp = widest_paths(&g, NodeId(0));
        assert_eq!(wp.width[2], 0.0);
        assert!(wp.path_to(NodeId(2)).is_none());
    }

    #[test]
    fn source_width_infinite() {
        let wp = widest_paths(&diamondish(), NodeId(0));
        assert!(wp.width[0].is_infinite());
    }

    #[test]
    fn single_edge_width_is_edge_bandwidth() {
        let wp = widest_paths(&diamondish(), NodeId(1));
        assert_eq!(wp.width[2], 4.0);
    }

    #[test]
    fn widest_matches_bruteforce_on_small_graph() {
        // Brute force: enumerate all simple paths of a 4-node graph.
        let mut g = DiGraph::new(4);
        let edges = [
            (0, 1, 7.0),
            (0, 2, 5.0),
            (1, 2, 9.0),
            (1, 3, 2.0),
            (2, 3, 6.0),
        ];
        for (a, b, c) in edges {
            g.add_edge(NodeId(a), NodeId(b), c);
        }
        // Paths 0→3: [0,1,3] = min(7,2)=2; [0,2,3] = min(5,6)=5;
        // [0,1,2,3] = min(7,9,6)=6.
        assert_eq!(bottleneck(&g, NodeId(0), NodeId(3)), 6.0);
    }
}
