//! Compressed-sparse-row graph form and allocation-free shortest paths.
//!
//! The epoch simulator runs tens of thousands of SSSP sweeps per
//! simulation: one all-pairs pass per route-state snapshot plus targeted
//! repairs every re-wiring turn. [`DiGraph`]'s nested `Vec<Vec<Edge>>`
//! costs a pointer chase per adjacency list and the textbook
//! [`crate::dijkstra::dijkstra`] allocates four fresh vectors per call.
//! This module provides the hot-path counterparts:
//!
//! * [`CsrGraph`] — the same directed weighted graph flattened into
//!   `offsets / targets / costs` arrays, built once per snapshot;
//! * [`DijkstraWorkspace`] — reusable dist/parent/heap arenas so SSSP and
//!   widest-path sweeps are allocation-free after warmup;
//! * [`apsp_csr`] / [`widest_csr`] — all-pairs passes that fan sources out
//!   over `std::thread::scope` threads, each writing into pre-partitioned
//!   row slices (byte-deterministic regardless of scheduling);
//! * decrease-only repair ([`DijkstraWorkspace::repair_decrease`] /
//!   [`DijkstraWorkspace::repair_increase_widest`]) — the edge-insertion
//!   half of the incremental route-state maintenance;
//! * [`path_from_parents`] / [`successive_disjoint_paths`] — CSR ports
//!   of the path-extraction helpers the data plane uses.
//!
//! Every algorithm here produces bit-identical distances to its
//! `DiGraph` counterpart: distances are minima of per-path rounded sums,
//! which do not depend on visit order, and ties are settled by node id.

use crate::graph::DiGraph;
use crate::types::{Cost, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::OnceLock;

/// Sentinel for "no parent" in packed parent arrays.
pub const NO_PARENT: u32 = u32::MAX;

/// A directed weighted graph in compressed-sparse-row form.
#[derive(Clone, Debug, Default)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    costs: Vec<f64>,
}

impl CsrGraph {
    /// Flatten a [`DiGraph`], preserving per-node edge order.
    pub fn from_digraph(g: &DiGraph) -> Self {
        let n = g.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(g.edge_count());
        let mut costs = Vec::with_capacity(g.edge_count());
        offsets.push(0);
        for i in 0..n {
            for e in g.out_edges(NodeId::from_index(i)) {
                targets.push(e.to.0);
                costs.push(e.cost);
            }
            offsets.push(targets.len() as u32);
        }
        CsrGraph {
            offsets,
            targets,
            costs,
        }
    }

    /// Build from a per-node edge closure: `edges(i)` yields `(to, cost)`
    /// pairs in adjacency order. Avoids materializing a `DiGraph` first.
    pub fn from_fn<I>(n: usize, mut edges: impl FnMut(usize) -> I) -> Self
    where
        I: IntoIterator<Item = (u32, f64)>,
    {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        let mut costs = Vec::new();
        offsets.push(0);
        for i in 0..n {
            for (to, cost) in edges(i) {
                debug_assert_ne!(to as usize, i, "self loop in CSR build");
                targets.push(to);
                costs.push(cost);
            }
            offsets.push(targets.len() as u32);
        }
        CsrGraph {
            offsets,
            targets,
            costs,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// True when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-edges of `u` as parallel `(targets, costs)` slices.
    #[inline]
    pub fn out(&self, u: usize) -> (&[u32], &[f64]) {
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        (&self.targets[lo..hi], &self.costs[lo..hi])
    }

    /// The graph with every edge reversed (for "distances to a target"
    /// queries). Reversal is stable: in-edges appear ordered by source.
    pub fn reversed(&self) -> CsrGraph {
        let mut out = CsrGraph::default();
        self.reverse_into(&mut out);
        out
    }

    /// [`Self::reversed`] into a caller-owned graph, reusing its buffers
    /// — the route-state engine re-derives the reversal after every
    /// committed re-wiring, so the allocation would otherwise recur once
    /// per commit.
    pub fn reverse_into(&self, out: &mut CsrGraph) {
        let n = self.len();
        out.offsets.clear();
        out.offsets.resize(n + 1, 0);
        for &t in &self.targets {
            out.offsets[t as usize + 1] += 1;
        }
        for i in 0..n {
            out.offsets[i + 1] += out.offsets[i];
        }
        let mut cursor = out.offsets.clone();
        out.targets.clear();
        out.targets.resize(self.targets.len(), 0);
        out.costs.clear();
        out.costs.resize(self.costs.len(), 0.0);
        for u in 0..n {
            let (ts, cs) = self.out(u);
            for (&t, &c) in ts.iter().zip(cs) {
                let slot = cursor[t as usize] as usize;
                out.targets[slot] = u as u32;
                out.costs[slot] = c;
                cursor[t as usize] += 1;
            }
        }
    }

    /// Replace node `u`'s out-edge slice with `edges` (adjacency order),
    /// leaving every other node's slice untouched — the single-node
    /// counterpart of rebuilding the whole CSR after a re-wiring.
    ///
    /// Equal-degree rewrites (the common case under a fixed link budget
    /// `k`) overwrite the slice in place; degree changes splice the
    /// backing arrays and shift the downstream offsets. Either way the
    /// result is identical to a from-scratch build of the same adjacency
    /// lists.
    pub fn rewrite_out_edges(&mut self, u: usize, edges: &[(u32, f64)]) {
        debug_assert!(edges.iter().all(|&(t, _)| t as usize != u), "self loop");
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        if edges.len() == hi - lo {
            for (slot, &(t, c)) in edges.iter().enumerate() {
                self.targets[lo + slot] = t;
                self.costs[lo + slot] = c;
            }
            return;
        }
        self.targets.splice(lo..hi, edges.iter().map(|&(t, _)| t));
        self.costs.splice(lo..hi, edges.iter().map(|&(_, c)| c));
        let delta = edges.len() as i64 - (hi - lo) as i64;
        for off in &mut self.offsets[u + 1..] {
            *off = (*off as i64 + delta) as u32;
        }
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    key: Cost,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on key, ties by node id — identical settle order to
        // `crate::dijkstra` (keys are never NaN).
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Max-heap twin for widest-path sweeps.
#[derive(PartialEq)]
struct MaxHeapEntry {
    key: Cost,
    node: u32,
}

impl Eq for MaxHeapEntry {}

impl Ord for MaxHeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key
            .total_cmp(&other.key)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for MaxHeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable arenas for repeated SSSP sweeps: distance and parent arrays
/// live in external row slices, the heap and settled bitmap are reused
/// between calls, so a warmed-up workspace allocates nothing.
#[derive(Default)]
pub struct DijkstraWorkspace {
    settled: Vec<bool>,
    /// Marker for the affected set during removal repairs; cleared
    /// before returning.
    flag: Vec<bool>,
    heap: BinaryHeap<HeapEntry>,
    max_heap: BinaryHeap<MaxHeapEntry>,
}

impl DijkstraWorkspace {
    /// A workspace pre-sized for `n`-node graphs.
    pub fn new(n: usize) -> Self {
        DijkstraWorkspace {
            settled: vec![false; n],
            flag: vec![false; n],
            heap: BinaryHeap::with_capacity(n),
            max_heap: BinaryHeap::with_capacity(n),
        }
    }

    fn reset(&mut self, n: usize) {
        self.settled.clear();
        self.settled.resize(n, false);
        self.heap.clear();
        self.max_heap.clear();
    }

    /// Dijkstra from `source` into caller-provided row slices.
    ///
    /// `mask`: when `Some(v)`, node `v`'s out-edges are skipped — the
    /// residual-graph (`G−i`) sweep without materializing a second graph.
    pub fn sssp_into(
        &mut self,
        g: &CsrGraph,
        source: u32,
        mask: Option<u32>,
        dist: &mut [f64],
        parent: &mut [u32],
    ) {
        self.sssp_impl(g, source, mask, None, dist, parent)
    }

    /// The one Dijkstra loop behind [`Self::sssp_into`] and the
    /// disabled-edge variant — a single implementation so relaxation and
    /// tie-break behavior (which the engine's bit-exactness rests on)
    /// cannot diverge between them. `disabled`, when present, is
    /// parallel to the CSR cost array and flags edges to skip.
    fn sssp_impl(
        &mut self,
        g: &CsrGraph,
        source: u32,
        mask: Option<u32>,
        disabled: Option<&[bool]>,
        dist: &mut [f64],
        parent: &mut [u32],
    ) {
        let n = g.len();
        debug_assert_eq!(dist.len(), n);
        debug_assert_eq!(parent.len(), n);
        self.reset(n);
        dist.fill(f64::INFINITY);
        parent.fill(NO_PARENT);
        dist[source as usize] = 0.0;
        self.heap.push(HeapEntry {
            key: 0.0,
            node: source,
        });
        while let Some(HeapEntry { key, node }) = self.heap.pop() {
            let u = node as usize;
            if self.settled[u] {
                continue;
            }
            self.settled[u] = true;
            if mask == Some(node) {
                continue;
            }
            let (ts, cs) = g.out(u);
            let lo = g.offsets[u] as usize;
            for (off, (&t, &c)) in ts.iter().zip(cs).enumerate() {
                debug_assert!(c >= 0.0 && !c.is_nan());
                if !c.is_finite() || disabled.is_some_and(|d| d[lo + off]) {
                    continue;
                }
                let v = t as usize;
                let nd = key + c;
                if nd < dist[v] {
                    dist[v] = nd;
                    parent[v] = node;
                    self.heap.push(HeapEntry { key: nd, node: t });
                }
            }
        }
    }

    /// Widest (max-bottleneck) paths from `source` into row slices.
    /// Unreachable width is 0; the source itself gets `INFINITY`.
    pub fn widest_into(
        &mut self,
        g: &CsrGraph,
        source: u32,
        mask: Option<u32>,
        width: &mut [f64],
        parent: &mut [u32],
    ) {
        let n = g.len();
        debug_assert_eq!(width.len(), n);
        debug_assert_eq!(parent.len(), n);
        self.reset(n);
        width.fill(0.0);
        parent.fill(NO_PARENT);
        width[source as usize] = f64::INFINITY;
        self.max_heap.push(MaxHeapEntry {
            key: f64::INFINITY,
            node: source,
        });
        while let Some(MaxHeapEntry { key, node }) = self.max_heap.pop() {
            let u = node as usize;
            if self.settled[u] {
                continue;
            }
            self.settled[u] = true;
            if mask == Some(node) {
                continue;
            }
            let (ts, cs) = g.out(u);
            for (&t, &c) in ts.iter().zip(cs) {
                debug_assert!(c >= 0.0 && !c.is_nan());
                let v = t as usize;
                let nw = key.min(c);
                if nw > width[v] {
                    width[v] = nw;
                    parent[v] = node;
                    self.max_heap.push(MaxHeapEntry { key: nw, node: t });
                }
            }
        }
    }

    /// Decrease-only SSSP repair after edge insertions.
    ///
    /// `dist`/`parent` must hold exact shortest paths of the graph
    /// *before* the inserted edges; `seeds` carries one `(node,
    /// candidate_dist, parent)` triple per inserted edge head. Only the
    /// region whose distance actually shrinks is re-explored, and the
    /// repaired rows are bit-identical to a from-scratch sweep.
    pub fn repair_decrease(
        &mut self,
        g: &CsrGraph,
        seeds: &[(u32, f64, u32)],
        dist: &mut [f64],
        parent: &mut [u32],
    ) {
        csr_obs().insertion_repairs.inc();
        self.heap.clear();
        for &(node, cand, par) in seeds {
            let v = node as usize;
            if cand < dist[v] {
                dist[v] = cand;
                parent[v] = par;
                self.heap.push(HeapEntry { key: cand, node });
            }
        }
        while let Some(HeapEntry { key, node }) = self.heap.pop() {
            let u = node as usize;
            if key > dist[u] {
                continue; // stale entry
            }
            let (ts, cs) = g.out(u);
            for (&t, &c) in ts.iter().zip(cs) {
                if !c.is_finite() {
                    continue;
                }
                let v = t as usize;
                let nd = key + c;
                if nd < dist[v] {
                    dist[v] = nd;
                    parent[v] = node;
                    self.heap.push(HeapEntry { key: nd, node: t });
                }
            }
        }
    }

    /// Exact SSSP repair after removing node `mask`'s out-edges, given
    /// the affected set.
    ///
    /// `dist`/`parent` must hold exact shortest paths of the graph
    /// *with* `mask`'s out-edges, and `affected` must contain every
    /// vertex whose shortest-path-tree path routes through `mask` (its
    /// tree descendants). Every other vertex keeps its distance —
    /// removal only lengthens paths and its tree path survives — so the
    /// repair resets only the affected region and re-seeds it from
    /// frontier in-edges (`rev` is `g` reversed). Any path into the
    /// affected set enters it through such an edge, and path sums
    /// accumulate left-to-right exactly as a full masked sweep would, so
    /// repaired rows are bit-identical to [`Self::sssp_into`] with the
    /// same mask.
    #[allow(clippy::too_many_arguments)]
    pub fn repair_removal(
        &mut self,
        g: &CsrGraph,
        rev: &CsrGraph,
        mask: u32,
        affected: &[u32],
        dist: &mut [f64],
        parent: &mut [u32],
    ) {
        csr_obs().removal_repairs.inc();
        let n = g.len();
        self.flag.resize(n, false);
        self.heap.clear();
        for &v in affected {
            self.flag[v as usize] = true;
            dist[v as usize] = f64::INFINITY;
            parent[v as usize] = NO_PARENT;
        }
        // Seed each affected vertex with its best frontier in-edge.
        for &v in affected {
            let (us, cs) = rev.out(v as usize);
            let mut best = f64::INFINITY;
            let mut best_par = NO_PARENT;
            for (&u, &c) in us.iter().zip(cs) {
                if u == mask || self.flag[u as usize] || !c.is_finite() {
                    continue;
                }
                let du = dist[u as usize];
                if !du.is_finite() {
                    continue;
                }
                let nd = du + c;
                if nd < best {
                    best = nd;
                    best_par = u;
                }
            }
            if best < dist[v as usize] {
                dist[v as usize] = best;
                parent[v as usize] = best_par;
                self.heap.push(HeapEntry { key: best, node: v });
            }
        }
        // Propagate inside the affected region (only it can improve).
        while let Some(HeapEntry { key, node }) = self.heap.pop() {
            let u = node as usize;
            if key > dist[u] {
                continue;
            }
            let (ts, cs) = g.out(u);
            for (&t, &c) in ts.iter().zip(cs) {
                if !c.is_finite() {
                    continue;
                }
                let v = t as usize;
                let nd = key + c;
                if nd < dist[v] {
                    dist[v] = nd;
                    parent[v] = node;
                    self.heap.push(HeapEntry { key: nd, node: t });
                }
            }
        }
        for &v in affected {
            self.flag[v as usize] = false;
        }
    }

    /// Widest-path mirror of [`Self::repair_removal`]: affected widths
    /// reset to 0 and regrow from frontier in-edges (`min(width(u), c)`)
    /// with max-min propagation.
    #[allow(clippy::too_many_arguments)]
    pub fn repair_removal_widest(
        &mut self,
        g: &CsrGraph,
        rev: &CsrGraph,
        mask: u32,
        affected: &[u32],
        width: &mut [f64],
        parent: &mut [u32],
    ) {
        csr_obs().removal_repairs.inc();
        let n = g.len();
        self.flag.resize(n, false);
        self.max_heap.clear();
        for &v in affected {
            self.flag[v as usize] = true;
            width[v as usize] = 0.0;
            parent[v as usize] = NO_PARENT;
        }
        for &v in affected {
            let (us, cs) = rev.out(v as usize);
            let mut best = 0.0f64;
            let mut best_par = NO_PARENT;
            for (&u, &c) in us.iter().zip(cs) {
                if u == mask || self.flag[u as usize] {
                    continue;
                }
                let nw = width[u as usize].min(c);
                if nw > best {
                    best = nw;
                    best_par = u;
                }
            }
            if best > width[v as usize] {
                width[v as usize] = best;
                parent[v as usize] = best_par;
                self.max_heap.push(MaxHeapEntry { key: best, node: v });
            }
        }
        while let Some(MaxHeapEntry { key, node }) = self.max_heap.pop() {
            let u = node as usize;
            if key < width[u] {
                continue;
            }
            let (ts, cs) = g.out(u);
            for (&t, &c) in ts.iter().zip(cs) {
                let v = t as usize;
                let nw = key.min(c);
                if nw > width[v] {
                    width[v] = nw;
                    parent[v] = node;
                    self.max_heap.push(MaxHeapEntry { key: nw, node: t });
                }
            }
        }
        for &v in affected {
            self.flag[v as usize] = false;
        }
    }

    /// Increase-only widest-path repair after edge insertions (widths
    /// only grow when edges appear). Mirror of [`Self::repair_decrease`].
    pub fn repair_increase_widest(
        &mut self,
        g: &CsrGraph,
        seeds: &[(u32, f64, u32)],
        width: &mut [f64],
        parent: &mut [u32],
    ) {
        csr_obs().insertion_repairs.inc();
        self.max_heap.clear();
        for &(node, cand, par) in seeds {
            let v = node as usize;
            if cand > width[v] {
                width[v] = cand;
                parent[v] = par;
                self.max_heap.push(MaxHeapEntry { key: cand, node });
            }
        }
        while let Some(MaxHeapEntry { key, node }) = self.max_heap.pop() {
            let u = node as usize;
            if key < width[u] {
                continue;
            }
            let (ts, cs) = g.out(u);
            for (&t, &c) in ts.iter().zip(cs) {
                let v = t as usize;
                let nw = key.min(c);
                if nw > width[v] {
                    width[v] = nw;
                    parent[v] = node;
                    self.max_heap.push(MaxHeapEntry { key: nw, node: t });
                }
            }
        }
    }
}

/// Collect the descendants of `root` in the shortest-path tree encoded
/// by `parent` (excluding `root` itself), using caller-provided scratch
/// (`head`/`next` are per-node child buckets, resized as needed). The
/// result lands in `out`. These are exactly the vertices whose tree
/// path routes through `root` — the affected set of
/// [`DijkstraWorkspace::repair_removal`].
pub fn tree_descendants(
    parent: &[u32],
    root: u32,
    head: &mut Vec<u32>,
    next: &mut Vec<u32>,
    out: &mut Vec<u32>,
) {
    let n = parent.len();
    head.clear();
    head.resize(n, NO_PARENT);
    next.clear();
    next.resize(n, NO_PARENT);
    for (v, &p) in parent.iter().enumerate() {
        if p != NO_PARENT {
            next[v] = head[p as usize];
            head[p as usize] = v as u32;
        }
    }
    out.clear();
    let mut stack_top = out.len(); // DFS frontier lives inside `out`
    let mut child = head[root as usize];
    while child != NO_PARENT {
        out.push(child);
        child = next[child as usize];
    }
    while stack_top < out.len() {
        let v = out[stack_top];
        stack_top += 1;
        let mut c = head[v as usize];
        while c != NO_PARENT {
            out.push(c);
            c = next[c as usize];
        }
    }
}

/// Packed all-pairs result: `dist[s * n + v]` and `parent[s * n + v]`
/// (the predecessor of `v` on the chosen shortest-path tree of source
/// `s`; [`NO_PARENT`] for sources and unreachable nodes).
#[derive(Clone, Debug)]
pub struct CsrApsp {
    pub n: usize,
    pub dist: Vec<f64>,
    pub parent: Vec<u32>,
}

impl CsrApsp {
    /// Distance row of source `s`.
    #[inline]
    pub fn dist_row(&self, s: usize) -> &[f64] {
        &self.dist[s * self.n..(s + 1) * self.n]
    }

    /// Parent row of source `s`.
    #[inline]
    pub fn parent_row(&self, s: usize) -> &[u32] {
        &self.parent[s * self.n..(s + 1) * self.n]
    }

    /// True when source `s`'s shortest-path tree uses any out-edge of
    /// `relay` — i.e. removing `relay`'s out-links could change row `s`.
    pub fn routes_through(&self, s: usize, relay: u32) -> bool {
        self.parent_row(s).contains(&relay)
    }
}

/// How many worker threads an all-pairs fan-out should use for an
/// `n`-source sweep: one per available core, never more than the rows,
/// and none at all for small instances where spawn overhead dominates.
///
/// The core count is probed once and cached: `available_parallelism` is
/// a syscall, and on a single-core host (the common container case) the
/// answer never changes — every all-pairs pass then takes the inline
/// no-spawn path below without re-asking the OS.
fn fanout_threads(n: usize) -> usize {
    if n < 64 {
        return 1;
    }
    static CORES: OnceLock<usize> = OnceLock::new();
    let cores = *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    });
    cores.min(n)
}

/// Run `sweep(source, dist_row, parent_row)` for every source, fanning
/// rows out over scoped threads. Each thread owns a disjoint chunk of the
/// output, so the result is byte-identical to the sequential order.
fn all_pairs_fanout(
    n: usize,
    dist: &mut [f64],
    parent: &mut [u32],
    sweep: impl Fn(&mut DijkstraWorkspace, u32, &mut [f64], &mut [u32]) + Sync,
) {
    let threads = fanout_threads(n);
    if threads <= 1 {
        let mut ws = DijkstraWorkspace::new(n);
        for s in 0..n {
            let lo = s * n;
            sweep(
                &mut ws,
                s as u32,
                &mut dist[lo..lo + n],
                &mut parent[lo..lo + n],
            );
        }
        return;
    }
    let rows_per = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut dist_rest = dist;
        let mut parent_rest = parent;
        for chunk in 0..threads {
            let start = chunk * rows_per;
            if start >= n {
                break;
            }
            let rows = rows_per.min(n - start);
            let (dist_chunk, d_rest) = dist_rest.split_at_mut(rows * n);
            let (parent_chunk, p_rest) = parent_rest.split_at_mut(rows * n);
            dist_rest = d_rest;
            parent_rest = p_rest;
            let sweep = &sweep;
            scope.spawn(move || {
                let mut ws = DijkstraWorkspace::new(n);
                for (r, (d_row, p_row)) in dist_chunk
                    .chunks_mut(n)
                    .zip(parent_chunk.chunks_mut(n))
                    .enumerate()
                {
                    sweep(&mut ws, (start + r) as u32, d_row, p_row);
                }
            });
        }
    });
}

/// Obs handles for the CSR all-pairs machinery, resolved lazily once.
/// Builds get spans (they are the expensive, once-per-epoch-state
/// operation); the per-row repairs are far too hot for timestamps and
/// get plain counters instead.
struct CsrObs {
    apsp_build: egoist_obs::Timer,
    widest_build: egoist_obs::Timer,
    sources: egoist_obs::Counter,
    removal_repairs: egoist_obs::Counter,
    insertion_repairs: egoist_obs::Counter,
}

fn csr_obs() -> &'static CsrObs {
    static OBS: std::sync::OnceLock<CsrObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let r = egoist_obs::registry();
        CsrObs {
            apsp_build: r.timer("graph.apsp.build"),
            widest_build: r.timer("graph.widest.build"),
            sources: r.counter("graph.apsp.sources"),
            removal_repairs: r.counter("graph.repair.removal"),
            insertion_repairs: r.counter("graph.repair.insertion"),
        }
    })
}

/// All-pairs shortest paths over a CSR graph with parent tracking.
/// Distances equal [`crate::apsp::apsp`] bit-for-bit.
pub fn apsp_csr(g: &CsrGraph) -> CsrApsp {
    let obs = csr_obs();
    let _span = obs.apsp_build.start();
    let n = g.len();
    obs.sources.add(n as u64);
    let mut dist = vec![f64::INFINITY; n * n];
    let mut parent = vec![NO_PARENT; n * n];
    all_pairs_fanout(n, &mut dist, &mut parent, |ws, s, d, p| {
        ws.sssp_into(g, s, None, d, p)
    });
    CsrApsp { n, dist, parent }
}

/// All-pairs widest paths with parent tracking. Matches the policy
/// layer's dense widest matrix convention: diagonal `INFINITY`,
/// unreachable 0.
pub fn widest_csr(g: &CsrGraph) -> CsrApsp {
    let obs = csr_obs();
    let _span = obs.widest_build.start();
    let n = g.len();
    obs.sources.add(n as u64);
    let mut width = vec![0.0; n * n];
    let mut parent = vec![NO_PARENT; n * n];
    all_pairs_fanout(n, &mut width, &mut parent, |ws, s, w, p| {
        ws.widest_into(g, s, None, w, p)
    });
    CsrApsp {
        n,
        dist: width,
        parent,
    }
}

/// Shortest-path distances from every node *to* `target`: one workspace
/// sweep on the reversed CSR graph (the CSR port of
/// [`crate::apsp::distances_to`]).
pub fn distances_to_csr(g: &CsrGraph, target: u32) -> Vec<f64> {
    let n = g.len();
    let rev = g.reversed();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![NO_PARENT; n];
    DijkstraWorkspace::new(n).sssp_into(&rev, target, None, &mut dist, &mut parent);
    dist
}

/// Reconstruct the node path `source → target` from a packed parent row.
/// Returns `None` when unreachable.
pub fn path_from_parents(
    parent: &[u32],
    source: u32,
    target: u32,
    reachable: bool,
) -> Option<Vec<NodeId>> {
    if !reachable {
        return None;
    }
    let mut path = vec![NodeId(target)];
    let mut cur = target;
    while cur != source {
        let p = parent[cur as usize];
        if p == NO_PARENT {
            return None;
        }
        path.push(NodeId(p));
        cur = p;
    }
    path.reverse();
    Some(path)
}

/// Up to `want` edge-disjoint paths `source → target`, cheapest first:
/// successive shortest paths with used edges disabled in place (no graph
/// clones). `disabled` must be an all-false scratch of `edge_count()`
/// length; it is restored before returning.
pub fn successive_disjoint_paths(
    g: &CsrGraph,
    source: u32,
    target: u32,
    want: usize,
    ws: &mut DijkstraWorkspace,
    disabled: &mut [bool],
) -> Vec<Vec<NodeId>> {
    debug_assert_eq!(disabled.len(), g.edge_count());
    let n = g.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![NO_PARENT; n];
    let mut used_slots: Vec<usize> = Vec::new();
    let mut paths = Vec::new();
    for _ in 0..want.max(1) {
        sssp_with_disabled(g, source, ws, disabled, &mut dist, &mut parent);
        let Some(path) =
            path_from_parents(&parent, source, target, dist[target as usize].is_finite())
        else {
            break;
        };
        for w in path.windows(2) {
            let (ts, _) = g.out(w[0].index());
            let lo = g.offsets[w[0].index()] as usize;
            // Disable the first still-enabled copy of the edge.
            for (off, &t) in ts.iter().enumerate() {
                if t == w[1].0 && !disabled[lo + off] {
                    disabled[lo + off] = true;
                    used_slots.push(lo + off);
                    break;
                }
            }
        }
        paths.push(path);
    }
    for slot in used_slots {
        disabled[slot] = false;
    }
    paths
}

/// Dijkstra that skips edges flagged in `disabled` (parallel to the CSR
/// cost array) — the inner loop of [`successive_disjoint_paths`].
fn sssp_with_disabled(
    g: &CsrGraph,
    source: u32,
    ws: &mut DijkstraWorkspace,
    disabled: &[bool],
    dist: &mut [f64],
    parent: &mut [u32],
) {
    ws.sssp_impl(g, source, None, Some(disabled), dist, parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apsp::{apsp, distances_to};
    use crate::dijkstra::dijkstra;
    use crate::widest::widest_paths;

    /// Deterministic pseudo-random sparse graph.
    fn scrambled(n: usize, out_degree: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for i in 0..n {
            for o in 0..out_degree {
                let j = (i * 7 + o * 13 + 3) % n;
                if j != i {
                    let cost = ((i * 31 + j * 17 + o) % 97 + 1) as f64 * 0.5;
                    g.add_edge(NodeId::from_index(i), NodeId::from_index(j), cost);
                }
            }
        }
        g
    }

    #[test]
    fn csr_matches_digraph_shape() {
        let g = scrambled(20, 4);
        let c = CsrGraph::from_digraph(&g);
        assert_eq!(c.len(), 20);
        assert_eq!(c.edge_count(), g.edge_count());
        for i in 0..20 {
            let (ts, cs) = c.out(i);
            let edges = g.out_edges(NodeId::from_index(i));
            assert_eq!(ts.len(), edges.len());
            for ((&t, &cost), e) in ts.iter().zip(cs).zip(edges) {
                assert_eq!(t, e.to.0);
                assert_eq!(cost, e.cost);
            }
        }
    }

    #[test]
    fn apsp_csr_bitwise_matches_apsp() {
        for n in [5usize, 17, 40, 80] {
            let g = scrambled(n, 3);
            let dense = apsp(&g);
            let packed = apsp_csr(&CsrGraph::from_digraph(&g));
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(
                        dense.at(i, j).to_bits(),
                        packed.dist_row(i)[j].to_bits(),
                        "({i},{j}) mismatch at n={n}"
                    );
                }
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn masked_sweep_equals_clearing_out_edges() {
        let g = scrambled(24, 4);
        let csr = CsrGraph::from_digraph(&g);
        let mut ws = DijkstraWorkspace::new(24);
        for masked in [0u32, 5, 23] {
            let mut cleared = g.clone();
            cleared.clear_out_edges(NodeId(masked));
            for s in 0..24u32 {
                let oracle = dijkstra(&cleared, NodeId(s));
                let mut dist = vec![0.0; 24];
                let mut parent = vec![0u32; 24];
                ws.sssp_into(&csr, s, Some(masked), &mut dist, &mut parent);
                for j in 0..24 {
                    assert_eq!(oracle.dist[j].to_bits(), dist[j].to_bits());
                }
            }
        }
    }

    #[test]
    fn widest_csr_matches_widest_paths() {
        let g = scrambled(30, 4);
        let packed = widest_csr(&CsrGraph::from_digraph(&g));
        for s in 0..30 {
            let oracle = widest_paths(&g, NodeId::from_index(s));
            for j in 0..30 {
                assert_eq!(oracle.width[j].to_bits(), packed.dist_row(s)[j].to_bits());
            }
        }
    }

    #[test]
    fn reversed_distances_match_distances_to() {
        let g = scrambled(25, 3);
        let csr = CsrGraph::from_digraph(&g);
        for t in [0u32, 7, 24] {
            let oracle = distances_to(&g, NodeId(t));
            let ported = distances_to_csr(&csr, t);
            for j in 0..25 {
                assert_eq!(oracle[j].to_bits(), ported[j].to_bits());
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn repair_decrease_equals_from_scratch() {
        // Remove node 3's out-edges, compute APSP, then re-add them via
        // decrease-repair; every unaffected row must equal the full APSP.
        let g = scrambled(30, 3);
        let mut without = g.clone();
        without.clear_out_edges(NodeId(3));
        let before = apsp_csr(&CsrGraph::from_digraph(&without));
        let full = CsrGraph::from_digraph(&g);
        let truth = apsp_csr(&full);
        let added: Vec<(u32, f64)> = g
            .out_edges(NodeId(3))
            .iter()
            .map(|e| (e.to.0, e.cost))
            .collect();

        let mut ws = DijkstraWorkspace::new(30);
        let mut dist = before.dist.clone();
        let mut parent = before.parent.clone();
        for s in 0..30 {
            let d_i = dist[s * 30 + 3];
            let seeds: Vec<(u32, f64, u32)> = if d_i.is_finite() {
                added.iter().map(|&(w, c)| (w, d_i + c, 3)).collect()
            } else {
                Vec::new()
            };
            let row = &mut dist[s * 30..(s + 1) * 30];
            let prow = &mut parent[s * 30..(s + 1) * 30];
            ws.repair_decrease(&full, &seeds, row, prow);
            for j in 0..30 {
                assert_eq!(
                    truth.dist_row(s)[j].to_bits(),
                    row[j].to_bits(),
                    "repair mismatch source {s} target {j}"
                );
            }
        }
    }

    #[test]
    fn repaired_parents_form_a_valid_tree() {
        let g = scrambled(26, 3);
        let mut without = g.clone();
        without.clear_out_edges(NodeId(5));
        let before = apsp_csr(&CsrGraph::from_digraph(&without));
        let full = CsrGraph::from_digraph(&g);
        let added: Vec<(u32, f64)> = g
            .out_edges(NodeId(5))
            .iter()
            .map(|e| (e.to.0, e.cost))
            .collect();
        let mut ws = DijkstraWorkspace::new(26);
        let mut dist = before.dist.clone();
        let mut parent = before.parent.clone();
        for s in 0..26 {
            let d_i = dist[s * 26 + 5];
            let seeds: Vec<(u32, f64, u32)> = if d_i.is_finite() {
                added.iter().map(|&(w, c)| (w, d_i + c, 5)).collect()
            } else {
                Vec::new()
            };
            ws.repair_decrease(
                &full,
                &seeds,
                &mut dist[s * 26..(s + 1) * 26],
                &mut parent[s * 26..(s + 1) * 26],
            );
        }
        // Every parent edge must exist and be tight: d[p] + c(p,v) = d[v].
        for s in 0..26 {
            for v in 0..26 {
                let p = parent[s * 26 + v];
                if p == NO_PARENT {
                    continue;
                }
                let (ts, cs) = full.out(p as usize);
                let c = ts
                    .iter()
                    .zip(cs)
                    .filter(|(&t, _)| t as usize == v)
                    .map(|(_, &c)| c)
                    .fold(f64::INFINITY, f64::min);
                assert!(c.is_finite(), "parent edge {p}→{v} missing");
                assert_eq!(
                    (dist[s * 26 + p as usize] + c).to_bits(),
                    dist[s * 26 + v].to_bits(),
                    "loose parent edge {p}→{v} for source {s}"
                );
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn repair_increase_widest_equals_from_scratch() {
        let g = scrambled(28, 3);
        let mut without = g.clone();
        without.clear_out_edges(NodeId(2));
        let before = widest_csr(&CsrGraph::from_digraph(&without));
        let full = CsrGraph::from_digraph(&g);
        let truth = widest_csr(&full);
        let added: Vec<(u32, f64)> = g
            .out_edges(NodeId(2))
            .iter()
            .map(|e| (e.to.0, e.cost))
            .collect();
        let mut ws = DijkstraWorkspace::new(28);
        let mut width = before.dist.clone();
        let mut parent = before.parent.clone();
        for s in 0..28 {
            let w_i = width[s * 28 + 2];
            let seeds: Vec<(u32, f64, u32)> = added
                .iter()
                .filter(|_| w_i > 0.0)
                .map(|&(w, c)| (w, w_i.min(c), 2))
                .collect();
            let row = &mut width[s * 28..(s + 1) * 28];
            let prow = &mut parent[s * 28..(s + 1) * 28];
            ws.repair_increase_widest(&full, &seeds, row, prow);
            for j in 0..28 {
                assert_eq!(
                    truth.dist_row(s)[j].to_bits(),
                    row[j].to_bits(),
                    "widest repair mismatch source {s} target {j}"
                );
            }
        }
    }

    #[test]
    fn repair_removal_matches_masked_sweep() {
        let g = scrambled(32, 4);
        let csr = CsrGraph::from_digraph(&g);
        let rev = csr.reversed();
        let full = apsp_csr(&csr);
        let mut ws = DijkstraWorkspace::new(32);
        let (mut head, mut next, mut affected) = (Vec::new(), Vec::new(), Vec::new());
        for masked in [0u32, 9, 31] {
            for s in 0..32usize {
                let mut dist = full.dist_row(s).to_vec();
                let mut parent = full.parent_row(s).to_vec();
                tree_descendants(&parent, masked, &mut head, &mut next, &mut affected);
                ws.repair_removal(&csr, &rev, masked, &affected, &mut dist, &mut parent);
                let mut oracle_d = vec![0.0; 32];
                let mut oracle_p = vec![0u32; 32];
                ws.sssp_into(&csr, s as u32, Some(masked), &mut oracle_d, &mut oracle_p);
                for j in 0..32 {
                    // Row `masked` itself is special-cased by callers.
                    if s == masked as usize {
                        continue;
                    }
                    assert_eq!(
                        oracle_d[j].to_bits(),
                        dist[j].to_bits(),
                        "removal repair mismatch mask={masked} source={s} target={j}"
                    );
                }
            }
        }
    }

    #[test]
    fn repair_removal_widest_matches_masked_sweep() {
        let g = scrambled(28, 4);
        let csr = CsrGraph::from_digraph(&g);
        let rev = csr.reversed();
        let full = widest_csr(&csr);
        let mut ws = DijkstraWorkspace::new(28);
        let (mut head, mut next, mut affected) = (Vec::new(), Vec::new(), Vec::new());
        for masked in [2u32, 15] {
            for s in 0..28usize {
                if s == masked as usize {
                    continue;
                }
                let mut width = full.dist_row(s).to_vec();
                let mut parent = full.parent_row(s).to_vec();
                tree_descendants(&parent, masked, &mut head, &mut next, &mut affected);
                ws.repair_removal_widest(&csr, &rev, masked, &affected, &mut width, &mut parent);
                let mut oracle_w = vec![0.0; 28];
                let mut oracle_p = vec![0u32; 28];
                ws.widest_into(&csr, s as u32, Some(masked), &mut oracle_w, &mut oracle_p);
                for j in 0..28 {
                    assert_eq!(
                        oracle_w[j].to_bits(),
                        width[j].to_bits(),
                        "widest removal repair mismatch mask={masked} source={s} target={j}"
                    );
                }
            }
        }
    }

    #[test]
    fn tree_descendants_collects_subtrees() {
        // parent array for tree rooted at 0: 0→{1,2}, 1→{3,4}, 3→{5}.
        let parent = [NO_PARENT, 0, 0, 1, 1, 3];
        let (mut head, mut next, mut out) = (Vec::new(), Vec::new(), Vec::new());
        tree_descendants(&parent, 1, &mut head, &mut next, &mut out);
        let mut got = out.clone();
        got.sort_unstable();
        assert_eq!(got, vec![3, 4, 5]);
        tree_descendants(&parent, 5, &mut head, &mut next, &mut out);
        assert!(out.is_empty());
        tree_descendants(&parent, 0, &mut head, &mut next, &mut out);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn routes_through_detects_relays() {
        // Line 0→1→2: source 0's tree routes through 1 but not through 2.
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        let a = apsp_csr(&CsrGraph::from_digraph(&g));
        assert!(a.routes_through(0, 1));
        assert!(!a.routes_through(0, 2));
        assert!(!a.routes_through(2, 1));
    }

    #[test]
    fn successive_disjoint_paths_matches_digraph_successive() {
        // Diamond with two disjoint routes.
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(3), 1.0);
        g.add_edge(NodeId(0), NodeId(2), 2.0);
        g.add_edge(NodeId(2), NodeId(3), 2.0);
        let csr = CsrGraph::from_digraph(&g);
        let mut ws = DijkstraWorkspace::new(4);
        let mut disabled = vec![false; csr.edge_count()];
        let paths = successive_disjoint_paths(&csr, 0, 3, 2, &mut ws, &mut disabled);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0], vec![NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(paths[1], vec![NodeId(0), NodeId(2), NodeId(3)]);
        assert!(disabled.iter().all(|&d| !d), "scratch must be restored");
        // And a second call still works (scratch reuse).
        let again = successive_disjoint_paths(&csr, 0, 3, 5, &mut ws, &mut disabled);
        assert_eq!(again.len(), 2);
    }

    #[test]
    fn path_from_parents_matches_dijkstra_path() {
        let g = scrambled(18, 3);
        let csr = CsrGraph::from_digraph(&g);
        let a = apsp_csr(&csr);
        for (s, t) in [(0usize, 9u32), (3, 17), (11, 2)] {
            let oracle = dijkstra(&g, NodeId(s as u32)).path_to(NodeId(t));
            let ported = path_from_parents(
                a.parent_row(s),
                s as u32,
                t,
                a.dist_row(s)[t as usize].is_finite(),
            );
            assert_eq!(oracle, ported);
        }
    }

    #[test]
    fn rewrite_out_edges_matches_full_rebuild() {
        let g = scrambled(18, 3);
        let base = CsrGraph::from_digraph(&g);
        // Equal-degree rewrite, shrink, grow — each must equal a
        // from-scratch build of the same adjacency lists.
        let cases: Vec<(usize, Vec<(u32, f64)>)> = vec![
            (4, vec![(1, 2.5), (9, 0.5), (17, 7.0)]),
            (4, vec![(2, 1.0)]),
            (11, vec![(0, 3.0), (5, 4.0), (6, 5.0), (7, 6.0), (8, 1.5)]),
            (0, vec![]),
        ];
        let mut patched = base.clone();
        let mut lists: Vec<Vec<(u32, f64)>> = (0..18)
            .map(|u| {
                let (ts, cs) = base.out(u);
                ts.iter().copied().zip(cs.iter().copied()).collect()
            })
            .collect();
        for (u, edges) in cases {
            patched.rewrite_out_edges(u, &edges);
            lists[u] = edges;
            let truth = CsrGraph::from_fn(18, |v| lists[v].clone());
            assert_eq!(patched.edge_count(), truth.edge_count());
            for v in 0..18 {
                let (pt, pc) = patched.out(v);
                let (tt, tc) = truth.out(v);
                assert_eq!(pt, tt, "targets diverged at node {v} after {u}");
                assert_eq!(pc, tc, "costs diverged at node {v} after {u}");
            }
        }
    }

    #[test]
    fn reverse_into_matches_reversed_and_reuses_buffers() {
        let a = scrambled(20, 4);
        let b = scrambled(12, 2);
        let ca = CsrGraph::from_digraph(&a);
        let cb = CsrGraph::from_digraph(&b);
        let mut out = CsrGraph::default();
        // Fill with the larger graph's reversal first, then reuse for
        // the smaller one — stale capacity must not leak.
        ca.reverse_into(&mut out);
        cb.reverse_into(&mut out);
        let truth = cb.reversed();
        assert_eq!(out.len(), truth.len());
        assert_eq!(out.edge_count(), truth.edge_count());
        for v in 0..out.len() {
            assert_eq!(out.out(v), truth.out(v), "reversal mismatch at {v}");
        }
    }

    #[test]
    fn reversed_twice_is_identity_shape() {
        let g = scrambled(15, 3);
        let csr = CsrGraph::from_digraph(&g);
        let back = csr.reversed().reversed();
        assert_eq!(back.edge_count(), csr.edge_count());
        for u in 0..15 {
            let (t0, _) = csr.out(u);
            let (t1, _) = back.out(u);
            let mut a = t0.to_vec();
            let mut b = t1.to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }
}
