//! The §6 applications: multipath file transfer and disjoint paths.
//!
//! **Multipath file transfer (§6.1, Fig. 10).** A source `v_i` opens up to
//! `k` parallel sessions, one through each of its first-hop EGOIST
//! neighbors `v_l ∈ s_i`. Each session's throughput is the bottleneck of
//! `v_i → v_l` (capped by the per-session peering-point rate limit) and the
//! best overlay continuation `v_l ⇝ v_j`. A *direct* transfer is one
//! session over the unique IP path, subject to the same per-session cap —
//! which is exactly why parallel sessions through distinct first hops
//! multiply throughput. The "peers allow multipath redirections" bound is
//! the max-flow from `v_i` to `v_j` over the overlay capacity graph.
//!
//! **Disjoint paths (§6.2, Fig. 11).** For real-time traffic the useful
//! quantity is how many edge-disjoint overlay paths connect source to
//! target when the source fans out through its `k` neighbors.

use egoist_graph::disjoint::edge_disjoint_paths;
use egoist_graph::maxflow::max_flow;
use egoist_graph::widest::widest_paths;
use egoist_graph::{DiGraph, NodeId};
use egoist_netsim::BandwidthModel;

/// Per-pair multipath analysis result.
#[derive(Clone, Copy, Debug)]
pub struct MultipathGain {
    /// Throughput of the single direct IP session (Mbps).
    pub direct: f64,
    /// Aggregate throughput of k parallel sessions through the source's
    /// overlay neighbors (Mbps).
    pub parallel: f64,
    /// Max-flow upper bound when every peer redirects (Mbps).
    pub max_flow_bound: f64,
}

impl MultipathGain {
    /// Gain of parallel sessions over the direct path.
    pub fn parallel_gain(&self) -> f64 {
        if self.direct <= 0.0 {
            return f64::NAN;
        }
        self.parallel / self.direct
    }

    /// Gain of the all-peers max-flow bound over the direct path.
    pub fn max_flow_gain(&self) -> f64 {
        if self.direct <= 0.0 {
            return f64::NAN;
        }
        self.max_flow_bound / self.direct
    }
}

/// Analyze one source–target pair on a (bandwidth-)wired overlay.
///
/// `overlay` must carry available bandwidths as edge costs (as built by
/// the bandwidth-metric simulator); `bw` supplies direct-path availability
/// and session caps.
pub fn analyze_pair(
    overlay: &DiGraph,
    bw: &BandwidthModel,
    source: NodeId,
    target: NodeId,
) -> MultipathGain {
    let direct = bw
        .direct_session_bandwidth(source.index(), target.index())
        .max(1e-9);

    // Parallel sessions: one per first-hop neighbor. The continuation
    // v_l ⇝ v_j uses the widest overlay path *without going back through
    // the source* (sessions must diverge at the source's access links).
    let mut residual = overlay.clone();
    residual.clear_out_edges(source);
    let mut parallel = 0.0;
    for e in overlay.out_edges(source) {
        let l = e.to;
        let continuation = if l == target {
            f64::INFINITY
        } else {
            widest_paths(&residual, l).width[target.index()]
        };
        // Session throughput: first hop availability, session cap at the
        // source's peering point, and the overlay continuation.
        let session = bw
            .available(source.index(), l.index())
            .min(bw.session_cap(source.index()))
            .min(continuation);
        if session.is_finite() {
            parallel += session;
        }
    }
    // A source would never do worse than the direct path: it can always
    // fall back to a single direct session.
    parallel = parallel.max(direct);

    let max_flow_bound = max_flow(overlay, source, target).max(parallel);

    MultipathGain {
        direct,
        parallel,
        max_flow_bound,
    }
}

/// Average multipath gains over all ordered pairs of `members`.
pub fn average_gains(
    overlay: &DiGraph,
    bw: &BandwidthModel,
    members: &[NodeId],
) -> (Vec<f64>, Vec<f64>) {
    let mut parallel = Vec::new();
    let mut bound = Vec::new();
    for &s in members {
        for &t in members {
            if s == t {
                continue;
            }
            let g = analyze_pair(overlay, bw, s, t);
            if g.parallel_gain().is_finite() {
                parallel.push(g.parallel_gain());
            }
            if g.max_flow_gain().is_finite() {
                bound.push(g.max_flow_gain());
            }
        }
    }
    (parallel, bound)
}

/// Build a bandwidth-objective overlay: every node wires with the
/// bandwidth best response (§4.1), iterated for `sweeps` rounds so later
/// choices see earlier ones. Edge costs are the model's true available
/// bandwidths.
pub fn bandwidth_overlay(bw: &BandwidthModel, k: usize, sweeps: usize) -> DiGraph {
    use crate::cost::Preferences;
    use crate::policies::bandwidth::{all_pairs_widest, bandwidth_best_response, BwWiringContext};
    use crate::residual::ResidualView;

    let n = bw.len();
    let prefs = Preferences::uniform(n);
    let alive = vec![true; n];
    let truth = bw.available_matrix();
    let mut g = DiGraph::new(n);
    for _ in 0..sweeps.max(1) {
        for i in 0..n {
            let me = NodeId::from_index(i);
            let mut residual = g.clone();
            residual.clear_out_edges(me);
            let residual_bw = all_pairs_widest(&residual);
            let candidates: Vec<NodeId> =
                (0..n).filter(|&j| j != i).map(NodeId::from_index).collect();
            let direct: Vec<f64> = (0..n).map(|j| bw.available(i, j)).collect();
            let ctx = BwWiringContext {
                node: me,
                k,
                candidates: &candidates,
                direct_bw: &direct,
                residual_bw: ResidualView::dense(&residual_bw),
                prefs: &prefs,
                alive: &alive,
            };
            let (wiring, _) = bandwidth_best_response(&ctx);
            g.clear_out_edges(me);
            for w in wiring {
                g.add_edge(me, w, truth.get(me, w));
            }
        }
    }
    g
}

/// Edge-disjoint overlay paths per ordered pair (Fig. 11); the count is
/// naturally bounded by the source's out-degree `k`.
pub fn disjoint_path_counts(overlay: &DiGraph, members: &[NodeId]) -> Vec<f64> {
    let mut counts = Vec::new();
    for &s in members {
        for &t in members {
            if s != t {
                counts.push(edge_disjoint_paths(overlay, s, t) as f64);
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_overlay(bw: &BandwidthModel, k: usize) -> DiGraph {
        // Each node links to the next k ids (a k-regular circulant) with
        // bandwidth edge weights.
        let n = bw.len();
        let mut g = DiGraph::new(n);
        for i in 0..n {
            for o in 1..=k {
                let j = (i + o) % n;
                g.add_edge(
                    NodeId::from_index(i),
                    NodeId::from_index(j),
                    bw.available(i, j),
                );
            }
        }
        g
    }

    #[test]
    fn parallel_at_least_direct() {
        let bw = BandwidthModel::with_defaults(12, 1);
        let g = star_overlay(&bw, 3);
        for s in 0..4 {
            for t in 5..9 {
                let r = analyze_pair(&g, &bw, NodeId(s), NodeId(t));
                assert!(r.parallel >= r.direct - 1e-9);
                assert!(r.max_flow_bound >= r.parallel - 1e-9);
            }
        }
    }

    #[test]
    fn more_neighbors_more_parallel_bandwidth() {
        let bw = BandwidthModel::with_defaults(16, 2);
        let g2 = star_overlay(&bw, 2);
        let g6 = star_overlay(&bw, 6);
        let (p2, _) = average_gains(&g2, &bw, &(0..16).map(NodeId).collect::<Vec<_>>());
        let (p6, _) = average_gains(&g6, &bw, &(0..16).map(NodeId).collect::<Vec<_>>());
        let m2 = crate::stats::mean(&p2);
        let m6 = crate::stats::mean(&p6);
        assert!(
            m6 >= m2 * 0.99,
            "gain should not shrink with k: k=2 {m2:.2} vs k=6 {m6:.2}"
        );
    }

    #[test]
    fn disjoint_paths_bounded_by_k() {
        let bw = BandwidthModel::with_defaults(10, 3);
        for k in [2usize, 4] {
            let g = star_overlay(&bw, k);
            let members: Vec<NodeId> = (0..10).map(NodeId).collect();
            for c in disjoint_path_counts(&g, &members) {
                assert!(c <= k as f64 + 1e-9);
            }
        }
    }

    #[test]
    fn disjoint_paths_grow_with_k() {
        let bw = BandwidthModel::with_defaults(12, 4);
        let members: Vec<NodeId> = (0..12).map(NodeId).collect();
        let mean_k = |k: usize| {
            let g = star_overlay(&bw, k);
            crate::stats::mean(&disjoint_path_counts(&g, &members))
        };
        assert!(mean_k(4) > mean_k(2));
    }

    #[test]
    fn bandwidth_overlay_has_degree_k_and_beats_random_wiring() {
        let bw = BandwidthModel::with_defaults(12, 9);
        let g = bandwidth_overlay(&bw, 3, 2);
        let members: Vec<NodeId> = (0..12).map(NodeId).collect();
        for &m in &members {
            assert_eq!(g.out_degree(m), 3);
        }
        // Aggregate widest-path utility beats the circulant star overlay.
        let util = |g: &DiGraph| -> f64 {
            let mut total = 0.0;
            for &s in &members {
                let wp = egoist_graph::widest::widest_paths(g, s);
                for &t in &members {
                    if s != t {
                        total += wp.width[t.index()];
                    }
                }
            }
            total
        };
        let ring = star_overlay(&bw, 3);
        assert!(util(&g) > util(&ring), "BR overlay must beat circulant");
    }

    #[test]
    fn direct_target_neighbor_counts_fully() {
        // When the target is itself a first-hop neighbor, that session is
        // limited only by first hop and session cap.
        let bw = BandwidthModel::with_defaults(6, 5);
        let g = star_overlay(&bw, 2);
        let r = analyze_pair(&g, &bw, NodeId(0), NodeId(1));
        let expect_session = bw.available(0, 1).min(bw.session_cap(0));
        assert!(r.parallel >= expect_session - 1e-9);
    }
}
