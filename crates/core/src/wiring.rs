//! Wirings `s_i`, global wirings `S`, and residual graphs `G_{−i}`.

use egoist_graph::{DiGraph, DistanceMatrix, NodeId};

/// A global wiring `S = {s_1, …, s_n}`: each node's chosen out-neighbors.
#[derive(Clone, Debug, PartialEq)]
pub struct Wiring {
    neighbors: Vec<Vec<NodeId>>,
}

impl Wiring {
    /// An empty wiring for `n` nodes.
    pub fn empty(n: usize) -> Self {
        Wiring {
            neighbors: vec![Vec::new(); n],
        }
    }

    /// Build from explicit per-node neighbor lists.
    pub fn from_lists(neighbors: Vec<Vec<NodeId>>) -> Self {
        let w = Wiring { neighbors };
        w.debug_validate();
        w
    }

    fn debug_validate(&self) {
        #[cfg(debug_assertions)]
        for (i, list) in self.neighbors.iter().enumerate() {
            for &j in list {
                debug_assert_ne!(j.index(), i, "self-link at node {i}");
                debug_assert!(j.index() < self.neighbors.len(), "dangling neighbor");
            }
            let mut sorted: Vec<NodeId> = list.clone();
            sorted.sort_unstable();
            sorted.dedup();
            debug_assert_eq!(sorted.len(), list.len(), "duplicate neighbor at node {i}");
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// True when there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// Node `i`'s wiring `s_i`.
    pub fn of(&self, i: NodeId) -> &[NodeId] {
        &self.neighbors[i.index()]
    }

    /// Replace node `i`'s wiring (a re-wiring event). Returns `true` when
    /// the new wiring differs from the old one as a *set*.
    pub fn rewire(&mut self, i: NodeId, mut new: Vec<NodeId>) -> bool {
        new.sort_unstable();
        new.dedup();
        let mut old = self.neighbors[i.index()].clone();
        old.sort_unstable();
        let changed = old != new;
        self.neighbors[i.index()] = new;
        self.debug_validate();
        changed
    }

    /// Drop all links of node `i` (it churned OFF). In-links pointing at
    /// `i` are the *other* nodes' business; graph construction filters
    /// them by aliveness.
    pub fn clear(&mut self, i: NodeId) {
        self.neighbors[i.index()].clear();
    }

    /// Materialize the overlay graph: edges of alive nodes toward alive
    /// targets, with costs from `costs`.
    pub fn to_graph(&self, costs: &DistanceMatrix, alive: &[bool]) -> DiGraph {
        let n = self.len();
        let mut g = DiGraph::new(n);
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            let vi = NodeId::from_index(i);
            for &j in &self.neighbors[i] {
                if alive[j.index()] {
                    g.add_edge(vi, j, costs.get(vi, j));
                }
            }
        }
        g
    }

    /// The residual graph `G_{−i}`: the overlay with node `i`'s out-links
    /// removed (Definition 1's `S_{−i}`).
    pub fn residual_graph(&self, i: NodeId, costs: &DistanceMatrix, alive: &[bool]) -> DiGraph {
        let mut g = self.to_graph(costs, alive);
        g.clear_out_edges(i);
        g
    }

    /// Total number of established links.
    pub fn total_links(&self) -> usize {
        self.neighbors.iter().map(Vec::len).sum()
    }

    /// Set-difference size between two wirings of the same node — used for
    /// re-wiring accounting (how many links changed).
    pub fn links_changed(old: &[NodeId], new: &[NodeId]) -> usize {
        let mut o: Vec<NodeId> = old.to_vec();
        let mut n: Vec<NodeId> = new.to_vec();
        o.sort_unstable();
        n.sort_unstable();
        let in_old_not_new = o.iter().filter(|x| n.binary_search(x).is_err()).count();
        let in_new_not_old = n.iter().filter(|x| o.binary_search(x).is_err()).count();
        in_old_not_new.max(in_new_not_old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewire_detects_set_change() {
        let mut w = Wiring::empty(4);
        assert!(w.rewire(NodeId(0), vec![NodeId(1), NodeId(2)]));
        // Same set, different order: no change.
        assert!(!w.rewire(NodeId(0), vec![NodeId(2), NodeId(1)]));
        assert!(w.rewire(NodeId(0), vec![NodeId(2), NodeId(3)]));
    }

    #[test]
    fn to_graph_respects_aliveness() {
        let mut w = Wiring::empty(3);
        w.rewire(NodeId(0), vec![NodeId(1), NodeId(2)]);
        w.rewire(NodeId(1), vec![NodeId(2)]);
        let d = DistanceMatrix::off_diagonal(3, 1.0);
        let alive = vec![true, true, false];
        let g = w.to_graph(&d, &alive);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(0), NodeId(2)), "dead target filtered");
        assert!(!g.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn residual_removes_only_out_links() {
        let mut w = Wiring::empty(3);
        w.rewire(NodeId(0), vec![NodeId(1)]);
        w.rewire(NodeId(1), vec![NodeId(0), NodeId(2)]);
        let d = DistanceMatrix::off_diagonal(3, 1.0);
        let g = w.residual_graph(NodeId(1), &d, &[true, true, true]);
        assert_eq!(g.out_degree(NodeId(1)), 0);
        assert!(g.has_edge(NodeId(0), NodeId(1)), "in-links stay");
    }

    #[test]
    fn links_changed_counts_swaps() {
        let old = [NodeId(1), NodeId(2), NodeId(3)];
        assert_eq!(
            Wiring::links_changed(&old, &[NodeId(1), NodeId(2), NodeId(3)]),
            0
        );
        assert_eq!(
            Wiring::links_changed(&old, &[NodeId(1), NodeId(2), NodeId(4)]),
            1
        );
        assert_eq!(
            Wiring::links_changed(&old, &[NodeId(4), NodeId(5), NodeId(6)]),
            3
        );
        assert_eq!(Wiring::links_changed(&old, &[]), 3);
    }

    #[test]
    fn clear_empties_wiring() {
        let mut w = Wiring::empty(2);
        w.rewire(NodeId(0), vec![NodeId(1)]);
        w.clear(NodeId(0));
        assert!(w.of(NodeId(0)).is_empty());
        assert_eq!(w.total_links(), 0);
    }
}
