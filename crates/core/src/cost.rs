//! The SNS cost model.
//!
//! `C_i(S) = Σ_{j≠i} p_ij · d_S(v_i, v_j)` where `p_ij` is node `i`'s
//! preference for destination `j` and `d_S` the shortest-path distance over
//! the global wiring (Definition 1). Unreachable destinations cost `M ≫ n`
//! — a large *finite* penalty, so best responses are still comparable and
//! "the (infinite) cost of reaching the disconnected nodes will act as an
//! incentive for nodes to choose disconnected nodes as direct neighbors"
//! (§4.4).

use egoist_graph::apsp::apsp;
use egoist_graph::dijkstra::dijkstra;
use egoist_graph::{DiGraph, DistanceMatrix, NodeId};
use rand::Rng;

/// Preference weights `p_ij`. Row `i` holds node `i`'s preference for each
/// destination; the diagonal is ignored. The paper's experiments use
/// uniform preference (which, per §4.2, is *conservative* for BR — skew
/// only helps it).
#[derive(Clone, Debug)]
pub struct Preferences {
    n: usize,
    weights: Vec<f64>,
}

impl Preferences {
    /// Uniform preference over all destinations: `p_ij = 1/(n−1)`.
    pub fn uniform(n: usize) -> Self {
        let w = if n > 1 { 1.0 / (n as f64 - 1.0) } else { 0.0 };
        Preferences {
            n,
            weights: vec![w; n * n],
        }
    }

    /// Zipf-skewed preferences: destination ranks are permuted per source
    /// (deterministically from `rng`), weight ∝ 1/rank^exponent, rows
    /// normalized to 1. Exercises the "BR leverages skew" claim.
    pub fn zipf(n: usize, exponent: f64, rng: &mut impl Rng) -> Self {
        let mut weights = vec![0.0; n * n];
        for i in 0..n {
            // Random permutation of destinations.
            let mut dests: Vec<usize> = (0..n).filter(|&j| j != i).collect();
            for x in (1..dests.len()).rev() {
                let y = rng.random_range(0..=x);
                dests.swap(x, y);
            }
            let mut sum = 0.0;
            for (rank, &j) in dests.iter().enumerate() {
                let w = 1.0 / ((rank + 1) as f64).powf(exponent);
                weights[i * n + j] = w;
                sum += w;
            }
            if sum > 0.0 {
                for &j in &dests {
                    weights[i * n + j] /= sum;
                }
            }
        }
        Preferences { n, weights }
    }

    /// Build from an explicit dense weight matrix (row-major, length
    /// `n·n`). Used by the traffic-aware wiring policy, which blends the
    /// base preferences with an observed demand matrix.
    pub fn from_weights(n: usize, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), n * n, "weights must be dense n×n");
        Preferences { n, weights }
    }

    /// `p_ij`.
    #[inline]
    pub fn get(&self, i: NodeId, j: NodeId) -> f64 {
        self.weights[i.index() * self.n + j.index()]
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.weights[i * self.n..(i + 1) * self.n]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Disconnection penalty: `M` scaled to dominate any real path cost.
/// The paper requires `M ≫ n` under hop-count; for general metrics we use
/// a multiple of the largest finite direct cost times `n`.
pub fn disconnection_penalty(d: &DistanceMatrix) -> f64 {
    let n = d.len().max(2);
    let mut max_c: f64 = 0.0;
    for i in 0..d.len() {
        for j in 0..d.len() {
            let c = d.at(i, j);
            if c.is_finite() {
                max_c = max_c.max(c);
            }
        }
    }
    if max_c <= 0.0 {
        max_c = 1.0;
    }
    max_c * n as f64 * 4.0
}

/// Node `i`'s cost given its shortest-path distance vector `dist` (length
/// n), preferences and penalty for unreachable destinations.
pub fn node_cost_from_dists(
    i: NodeId,
    dist: &[f64],
    prefs: &Preferences,
    alive: &[bool],
    penalty: f64,
) -> f64 {
    let n = dist.len();
    let mut c = 0.0;
    for j in 0..n {
        if j == i.index() || !alive[j] {
            continue;
        }
        let d = dist[j];
        let term = if d.is_finite() { d } else { penalty };
        c += prefs.row(i.index())[j] * term;
    }
    c
}

/// Routing-cost evaluation over an overlay, separating announced from true
/// edge costs.
///
/// Wiring and routing decisions both consume *announced* costs (that is
/// all the link-state protocol gives you); the *realized* cost of a route
/// is the sum of true costs along the announced-shortest path. With honest
/// nodes the two matrices coincide and `realized == announced` distances.
pub struct RoutingCosts {
    /// Shortest-path distances over announced costs.
    pub announced_dist: DistanceMatrix,
    /// Realized (true-cost) distance along each announced-shortest path.
    pub realized_dist: DistanceMatrix,
}

impl RoutingCosts {
    /// Evaluate an overlay graph whose edges carry announced costs;
    /// `true_cost(u, v)` supplies the true cost of each used edge.
    pub fn evaluate(
        announced: &DiGraph,
        mut true_cost: impl FnMut(NodeId, NodeId) -> f64,
    ) -> RoutingCosts {
        let n = announced.len();
        let announced_dist = apsp(announced);
        let mut realized = DistanceMatrix::filled(n, f64::INFINITY);
        for i in 0..n {
            let sp = dijkstra(announced, NodeId::from_index(i));
            for j in 0..n {
                if i == j {
                    realized.set_at(i, j, 0.0);
                    continue;
                }
                if let Some(path) = sp.path_to(NodeId::from_index(j)) {
                    let mut c = 0.0;
                    for w in path.windows(2) {
                        c += true_cost(w[0], w[1]);
                    }
                    realized.set_at(i, j, c);
                }
            }
        }
        RoutingCosts {
            announced_dist,
            realized_dist: realized,
        }
    }

    /// Mean realized individual cost per node over alive destinations.
    pub fn individual_costs(&self, prefs: &Preferences, alive: &[bool], penalty: f64) -> Vec<f64> {
        let n = self.realized_dist.len();
        (0..n)
            .map(|i| {
                let row: Vec<f64> = (0..n).map(|j| self.realized_dist.at(i, j)).collect();
                node_cost_from_dists(NodeId::from_index(i), &row, prefs, alive, penalty)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_rows_sum_to_one() {
        let p = Preferences::uniform(5);
        for i in 0..5 {
            let s: f64 = p
                .row(i)
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, w)| w)
                .sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_rows_sum_to_one_and_are_skewed() {
        let mut rng = egoist_netsim::rng::derive(1, "zipf");
        let p = Preferences::zipf(10, 1.2, &mut rng);
        for i in 0..10 {
            let row = p.row(i);
            let s: f64 = row
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, w)| w)
                .sum();
            assert!((s - 1.0).abs() < 1e-9);
            let max = row.iter().cloned().fold(0.0, f64::max);
            assert!(max > 2.0 / 9.0, "skew should concentrate mass: {max}");
        }
    }

    #[test]
    fn penalty_dominates_any_path() {
        let d = DistanceMatrix::off_diagonal(10, 50.0);
        let m = disconnection_penalty(&d);
        // Any simple path costs < n * max ≤ 500.
        assert!(m > 500.0);
    }

    #[test]
    fn node_cost_uses_penalty_for_unreachable() {
        let prefs = Preferences::uniform(3);
        let alive = vec![true; 3];
        let dist = vec![0.0, 2.0, f64::INFINITY];
        let c = node_cost_from_dists(NodeId(0), &dist, &prefs, &alive, 100.0);
        assert!((c - 0.5 * (2.0 + 100.0)).abs() < 1e-12);
    }

    #[test]
    fn node_cost_skips_dead_nodes() {
        let prefs = Preferences::uniform(3);
        let alive = vec![true, true, false];
        let dist = vec![0.0, 2.0, f64::INFINITY];
        let c = node_cost_from_dists(NodeId(0), &dist, &prefs, &alive, 100.0);
        assert!((c - 0.5 * 2.0).abs() < 1e-12);
    }

    #[test]
    fn realized_equals_announced_for_honest_nodes() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 2.0);
        g.add_edge(NodeId(1), NodeId(2), 3.0);
        let rc = RoutingCosts::evaluate(&g, |u, v| g.edge_cost(u, v).unwrap());
        assert_eq!(rc.announced_dist.at(0, 2), 5.0);
        assert_eq!(rc.realized_dist.at(0, 2), 5.0);
    }

    #[test]
    fn inflated_announcement_diverts_routing() {
        // True costs: 0→1→2 costs 2, direct 0→2 costs 3.
        // Node 1 inflates its out-link 1→2 to 9 → routing goes direct (3),
        // realized cost 3 even though the true best path costs 2.
        let mut announced = DiGraph::new(3);
        announced.add_edge(NodeId(0), NodeId(1), 1.0);
        announced.add_edge(NodeId(1), NodeId(2), 9.0); // true 1.0
        announced.add_edge(NodeId(0), NodeId(2), 3.0);
        let rc = RoutingCosts::evaluate(&announced, |u, v| {
            if (u, v) == (NodeId(1), NodeId(2)) {
                1.0
            } else {
                announced.edge_cost(u, v).unwrap()
            }
        });
        assert_eq!(rc.announced_dist.at(0, 2), 3.0);
        assert_eq!(rc.realized_dist.at(0, 2), 3.0);
        // The honest network would have realized 2.0; the lie costs 0→ 1.0.
    }

    #[test]
    fn individual_costs_vector_shape() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(0), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        g.add_edge(NodeId(2), NodeId(1), 1.0);
        let rc = RoutingCosts::evaluate(&g, |u, v| g.edge_cost(u, v).unwrap());
        let prefs = Preferences::uniform(3);
        let costs = rc.individual_costs(&prefs, &[true, true, true], 1e6);
        assert_eq!(costs.len(), 3);
        // Node 1 is the hub: cheapest.
        assert!(costs[1] < costs[0]);
        assert!(costs[1] < costs[2]);
    }
}
