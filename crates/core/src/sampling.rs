//! Scalability via sampling (§5).
//!
//! Computing a best response over all `n` candidates is expensive at
//! scale, so EGOIST computes BR over a *sample* of `m` candidates:
//!
//! * **Unbiased random sampling** — `m` uniform picks.
//! * **Topology-based biased sampling** — draw `m′ > m` random samples,
//!   rank them by
//!   `b_ij = |F(v_j)| / Σ_{u ∈ F(v_j)} d(v_i, u)`
//!   where `F(v_j)` is `v_j`'s out-neighborhood of radius `r` hops, and
//!   keep the top `m`. "An ideal candidate for `v_i` has a large
//!   neighborhood of nodes, many of which are relatively close to `v_i`."

use egoist_graph::{DiGraph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Draw `m` distinct uniform samples from `candidates`.
pub fn random_sample(candidates: &[NodeId], m: usize, rng: &mut StdRng) -> Vec<NodeId> {
    let mut pool: Vec<NodeId> = candidates.to_vec();
    pool.shuffle(rng);
    pool.truncate(m.min(candidates.len()));
    pool
}

/// Size and members of the radius-`r` out-neighborhood `F(v)` in `g`
/// (excluding `v` itself). Hop-count radius, costs ignored.
pub fn neighborhood(g: &DiGraph, v: NodeId, r: usize) -> Vec<NodeId> {
    let mut dist = vec![usize::MAX; g.len()];
    let mut queue = std::collections::VecDeque::new();
    dist[v.index()] = 0;
    queue.push_back(v);
    let mut out = Vec::new();
    while let Some(u) = queue.pop_front() {
        if dist[u.index()] >= r {
            continue;
        }
        for e in g.out_edges(u) {
            if dist[e.to.index()] == usize::MAX {
                dist[e.to.index()] = dist[u.index()] + 1;
                out.push(e.to);
                queue.push_back(e.to);
            }
        }
    }
    out
}

/// The ranking function `b_ij` for candidate `j` from the perspective of a
/// newcomer whose measured direct distances are `direct` (dense by node
/// index). Returns 0 for an empty neighborhood.
pub fn rank(g: &DiGraph, j: NodeId, r: usize, direct: &[f64]) -> f64 {
    let f = neighborhood(g, j, r);
    if f.is_empty() {
        return 0.0;
    }
    let denom: f64 = f
        .iter()
        .map(|u| direct[u.index()].max(1e-9))
        .filter(|d| d.is_finite())
        .sum();
    if denom <= 0.0 {
        return 0.0;
    }
    f.len() as f64 / denom
}

/// Topology-based biased sampling: draw `m_prime` random candidates, keep
/// the `m` with the highest `b_ij`.
pub fn topology_biased_sample(
    candidates: &[NodeId],
    m: usize,
    m_prime: usize,
    r: usize,
    residual: &DiGraph,
    direct: &[f64],
    rng: &mut StdRng,
) -> Vec<NodeId> {
    let pre = random_sample(candidates, m_prime.max(m), rng);
    let mut ranked: Vec<(f64, NodeId)> = pre
        .into_iter()
        .map(|j| (rank(residual, j, r, direct), j))
        .collect();
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    ranked.truncate(m.min(candidates.len()));
    ranked.into_iter().map(|(_, j)| j).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    /// Star: node 0 reaches everyone in 1 hop; leaves reach nobody.
    fn star(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for j in 1..n {
            g.add_edge(NodeId(0), NodeId::from_index(j), 1.0);
        }
        g
    }

    #[test]
    fn random_sample_is_distinct_and_bounded() {
        let c = ids(20);
        let mut rng = StdRng::seed_from_u64(1);
        let s = random_sample(&c, 8, &mut rng);
        assert_eq!(s.len(), 8);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 8);
        assert_eq!(random_sample(&c, 50, &mut rng).len(), 20);
    }

    #[test]
    fn neighborhood_radius_one_is_out_neighbors() {
        let g = star(6);
        assert_eq!(neighborhood(&g, NodeId(0), 1).len(), 5);
        assert!(neighborhood(&g, NodeId(3), 1).is_empty());
    }

    #[test]
    fn neighborhood_radius_two_expands() {
        // Chain 0→1→2→3.
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        g.add_edge(NodeId(2), NodeId(3), 1.0);
        assert_eq!(neighborhood(&g, NodeId(0), 1).len(), 1);
        assert_eq!(neighborhood(&g, NodeId(0), 2).len(), 2);
        assert_eq!(neighborhood(&g, NodeId(0), 3).len(), 3);
    }

    #[test]
    fn rank_prefers_hubs_near_the_source() {
        let g = star(8);
        let direct = vec![1.0; 8];
        let hub = rank(&g, NodeId(0), 2, &direct);
        let leaf = rank(&g, NodeId(3), 2, &direct);
        assert!(hub > leaf, "hub {hub} must outrank leaf {leaf}");
    }

    #[test]
    fn rank_penalizes_distant_neighborhoods() {
        let g = star(8);
        let near = vec![1.0; 8];
        let far = vec![100.0; 8];
        assert!(rank(&g, NodeId(0), 2, &near) > rank(&g, NodeId(0), 2, &far));
    }

    #[test]
    fn biased_sampling_finds_the_hub() {
        // Two hubs (0 and 1) among 30 nodes; biased sampling with m=2 over
        // m'=20 must pick hubs with overwhelming probability.
        let n = 30;
        let mut g = DiGraph::new(n);
        for j in 2..n {
            g.add_edge(NodeId(0), NodeId::from_index(j), 1.0);
            g.add_edge(NodeId(1), NodeId::from_index(j), 1.0);
        }
        let direct = vec![1.0; n];
        let c = ids(n as u32);
        let mut rng = StdRng::seed_from_u64(7);
        let s = topology_biased_sample(&c, 2, 20, 2, &g, &direct, &mut rng);
        assert!(
            s.contains(&NodeId(0)) || s.contains(&NodeId(1)),
            "expected a hub in {s:?}"
        );
    }

    #[test]
    fn biased_sampling_is_deterministic() {
        let g = star(12);
        let direct = vec![2.0; 12];
        let c = ids(12);
        let a = topology_biased_sample(&c, 4, 8, 2, &g, &direct, &mut StdRng::seed_from_u64(3));
        let b = topology_biased_sample(&c, 4, 8, 2, &g, &direct, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
