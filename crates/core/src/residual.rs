//! Zero-copy views over residual (`G−i`) pairwise state.
//!
//! §3.1 only requires the residual distances to be *consultable* — "run
//! an all-pairs shortest path algorithm on `G−i`" names the quantity, not
//! a storage format. The epoch route-state engine therefore stopped
//! materializing a dense per-turn matrix: a [`ResidualView`] lets the
//! policy layer read residual rows wherever they actually live.
//!
//! Two backings exist:
//!
//! * **Dense** — a borrowed [`DistanceMatrix`], used by the `Recompute`
//!   oracle, the protocol nodes, the sampling experiments and every test
//!   that builds residual state from scratch.
//! * **Copy-on-write** — the epoch engine's form: rows whose
//!   shortest-path tree avoids the turn node borrow the epoch snapshot's
//!   APSP rows directly (removal of `i`'s out-links cannot change them,
//!   so the borrow is bit-exact); only *affected* rows are repaired into
//!   a small side pool of arena buffers, and the turn node's own row is
//!   the fixed "no out-links" pattern. A per-source slot table dispatches
//!   each row read to the right backing in O(1).
//!
//! Exactness of the copy-on-write form: a source's tree that routes
//! around `i` survives the removal of `i`'s out-edges, and removal can
//! only lengthen paths, so every such row's minima are unchanged — and
//! equal path minima are equal `f64`s, hence borrowing is bit-identical
//! to recomputation. The affected rows are produced by the same removal
//! repair the dense path used, on the same inputs. The view as a whole
//! is therefore indistinguishable, bit for bit, from
//! `apsp(residual_graph(i))` — pinned by the proptests in this crate and
//! the golden equivalence suite.

use egoist_graph::DistanceMatrix;
use egoist_graph::NodeId;

/// Sentinel in the slot table: read the row from the snapshot.
pub const NO_SLOT: u32 = u32::MAX;

/// The copy-on-write backing, borrowed from the route-state engine.
#[derive(Clone, Copy)]
pub struct CowResidual<'a> {
    /// Node count (rows are length `n`).
    pub n: usize,
    /// The turn node `i` whose out-links are removed.
    pub node: usize,
    /// The snapshot's packed all-pairs rows (`n × n`, row-major).
    pub snap: &'a [f64],
    /// Per-source dispatch: [`NO_SLOT`] borrows the snapshot row,
    /// anything else indexes a pool row.
    pub slot: &'a [u32],
    /// Repaired rows, packed by slot (`slots × n`, row-major).
    pub pool: &'a [f64],
    /// The turn node's own residual row (no out-links survive).
    pub self_row: &'a [f64],
}

#[derive(Clone, Copy)]
enum Inner<'a> {
    Dense(&'a DistanceMatrix),
    Cow(CowResidual<'a>),
    /// Every row is the same borrowed slice — a placeholder for policies
    /// that never consult residual state (`PolicyKind::needs_residual()`
    /// is false), letting callers skip the O(n²·log n) APSP entirely.
    Broadcast(&'a [f64]),
}

/// A read-only view of pairwise residual state, dense or copy-on-write.
///
/// Policies consume exactly two access patterns — whole candidate rows
/// ([`ResidualView::row`]) and point probes ([`ResidualView::at`]) — and
/// both cost O(1) dispatch over either backing.
#[derive(Clone, Copy)]
pub struct ResidualView<'a> {
    inner: Inner<'a>,
}

impl<'a> ResidualView<'a> {
    /// View over a dense matrix (the from-scratch form).
    pub fn dense(m: &'a DistanceMatrix) -> Self {
        ResidualView {
            inner: Inner::Dense(m),
        }
    }

    /// View where every source reads the same borrowed row. Only valid
    /// as a placeholder for policies that ignore residual state.
    pub fn broadcast(row: &'a [f64]) -> Self {
        ResidualView {
            inner: Inner::Broadcast(row),
        }
    }

    /// View over the epoch engine's copy-on-write backing.
    pub fn cow(parts: CowResidual<'a>) -> Self {
        debug_assert_eq!(parts.slot.len(), parts.n);
        debug_assert_eq!(parts.self_row.len(), parts.n);
        debug_assert_eq!(parts.snap.len(), parts.n * parts.n);
        ResidualView {
            inner: Inner::Cow(parts),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        match self.inner {
            Inner::Dense(m) => m.len(),
            Inner::Cow(p) => p.n,
            Inner::Broadcast(row) => row.len(),
        }
    }

    /// True when the view covers no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row of source `s`: its residual distance (or width) to every node.
    #[inline]
    pub fn row(&self, s: usize) -> &'a [f64] {
        match self.inner {
            Inner::Dense(m) => m.row(s),
            Inner::Broadcast(row) => row,
            Inner::Cow(p) => {
                if s == p.node {
                    p.self_row
                } else {
                    match p.slot[s] {
                        NO_SLOT => &p.snap[s * p.n..(s + 1) * p.n],
                        slot => &p.pool[slot as usize * p.n..(slot as usize + 1) * p.n],
                    }
                }
            }
        }
    }

    /// Point probe by raw indices.
    #[inline]
    pub fn at(&self, s: usize, t: usize) -> f64 {
        self.row(s)[t]
    }

    /// Point probe by node ids.
    #[inline]
    pub fn get(&self, i: NodeId, j: NodeId) -> f64 {
        self.row(i.index())[j.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_view_reads_through() {
        let m = DistanceMatrix::from_fn(4, |i, j| (i * 10 + j) as f64);
        let v = ResidualView::dense(&m);
        assert_eq!(v.len(), 4);
        assert_eq!(v.at(1, 3), 13.0);
        assert_eq!(v.get(NodeId(3), NodeId(1)), 31.0);
        assert_eq!(v.row(2), m.row(2));
    }

    #[test]
    fn cow_view_dispatches_rows() {
        let n = 3;
        // Snapshot rows: row s filled with s; pool slot 0: filled with 9.
        let snap: Vec<f64> = (0..n * n).map(|p| (p / n) as f64).collect();
        let pool = vec![9.0; n];
        let slot = vec![NO_SLOT, 0, NO_SLOT];
        let self_row = vec![f64::INFINITY, f64::INFINITY, 0.0];
        let v = ResidualView::cow(CowResidual {
            n,
            node: 2,
            snap: &snap,
            slot: &slot,
            pool: &pool,
            self_row: &self_row,
        });
        assert_eq!(v.row(0), &[0.0, 0.0, 0.0], "borrowed from snapshot");
        assert_eq!(v.row(1), &[9.0, 9.0, 9.0], "repaired pool row");
        assert_eq!(v.row(2), &self_row[..], "turn node's own row");
        assert_eq!(v.at(1, 2), 9.0);
    }

    #[test]
    fn broadcast_view_repeats_one_row() {
        let row = vec![0.0, 1.0, 2.0];
        let v = ResidualView::broadcast(&row);
        assert_eq!(v.len(), 3);
        assert_eq!(v.row(0), v.row(2));
        assert_eq!(v.at(1, 2), 2.0);
    }
}
