//! The EGOIST epoch simulator — stand-in for the PlanetLab deployment.
//!
//! Reproduces the experimental machinery of §4:
//!
//! * `n` unsynchronized nodes re-wire once per epoch `T`, staggered so a
//!   re-wiring happens every `T/n` seconds on average (§4.2);
//! * the underlay (delays, loads, bandwidths) drifts continuously, so BR
//!   keeps re-wiring even after reaching a near-equilibrium (Fig. 3);
//! * churn traces switch nodes ON/OFF (§4.4); dead nodes lose all links,
//!   returning nodes re-wire immediately on arrival (the bootstrap path);
//! * free riders inflate their announced out-link costs (§4.5);
//! * measurements are taken once per epoch: realized individual routing
//!   costs (true costs along announced-shortest routes), per-node
//!   Efficiency, aggregate bandwidth utility, and re-wiring counts.
//!
//! Decisions always consume *announced/estimated* information (symmetrized
//! ping RTT/2, Vivaldi predictions, EWMA load, noisy bandwidth probes,
//! possibly inflated by cheaters); realized performance always uses the
//! *true* underlay state — keeping the two honest is what lets the
//! free-rider and pyxida experiments mean something.

use crate::cheat::CheatConfig;
use crate::cost::{disconnection_penalty, node_cost_from_dists, Preferences, RoutingCosts};
use crate::policies::bandwidth::{
    all_pairs_widest, bandwidth_best_response, k_widest, BwWiringContext,
};
use crate::policies::hybrid::HybridBr;
use crate::policies::{Policy, PolicyKind, WiringContext};
use crate::residual::ResidualView;
use crate::snapshot::{RouteState, RouteStats, SnapshotKind};
use crate::wiring::Wiring;
use egoist_graph::apsp::apsp;
use egoist_graph::connectivity::strongly_connected;
use egoist_graph::cycles::ring_edges;
use egoist_graph::dijkstra::dijkstra;
use egoist_graph::{DistanceMatrix, NodeId};
use egoist_netsim::churn::ChurnTrace;
use egoist_netsim::rng::derive;
use egoist_netsim::{BandwidthModel, DelayModel, LoadModel};
use rand::rngs::StdRng;
use std::borrow::Cow;

/// Which cost metric drives wiring and evaluation (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// One-way delay estimated from ping RTT/2 (active).
    DelayPing,
    /// Delay estimated from Vivaldi coordinates (passive, noisier).
    DelayVivaldi,
    /// Node CPU load: edge `(u, v)` costs the *target*'s sensed load, so a
    /// path accumulates the load of every node it enters. (The symmetric
    /// "source's load" convention differs only by a per-destination
    /// constant under best response, but would make k-Closest degenerate.)
    Load,
    /// Available bandwidth, maximum-bottleneck objective.
    Bandwidth,
}

/// Which route-state engine drives the wiring turns.
///
/// Both engines simulate the *same* process and produce byte-identical
/// outputs for identical seeds (pinned by the golden equivalence suite);
/// they differ only in how much work they repeat.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineMode {
    /// The epoch route-state engine: one shared snapshot (announced
    /// matrix + full-wiring CSR APSP) per epoch state, residual distances
    /// derived by incremental repair. The production default.
    #[default]
    Epoch,
    /// Straightforward per-turn recomputation — the reference oracle the
    /// equivalence tests and the perf baseline compare against.
    Recompute,
}

/// Simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    pub n: usize,
    pub k: usize,
    pub policy: PolicyKind,
    pub metric: Metric,
    /// Wiring epoch `T` in seconds (paper: 60).
    pub epoch_secs: f64,
    /// Number of epochs to simulate.
    pub epochs: usize,
    /// Epochs to drop from steady-state statistics.
    pub warmup_epochs: usize,
    pub seed: u64,
    /// Churn trace; `None` = no churn.
    pub churn: Option<ChurnTrace>,
    pub cheat: CheatConfig,
    /// Route-state engine (see [`EngineMode`]).
    pub engine: EngineMode,
}

impl SimConfig {
    /// The paper's baseline setting at a reduced horizon: 50 nodes,
    /// `T = 60 s`.
    pub fn baseline(k: usize, policy: PolicyKind, metric: Metric, seed: u64) -> Self {
        SimConfig {
            n: 50,
            k,
            policy,
            metric,
            epoch_secs: 60.0,
            epochs: 40,
            warmup_epochs: 15,
            seed,
            churn: None,
            cheat: CheatConfig::honest(),
            engine: EngineMode::default(),
        }
    }
}

/// Per-epoch measurement.
#[derive(Clone, Debug)]
pub struct EpochSample {
    pub epoch: usize,
    /// Realized individual routing cost per node (NaN when dead or N/A).
    pub individual_cost: Vec<f64>,
    /// Per-node Efficiency (delay metrics; NaN when dead).
    pub efficiency: Vec<f64>,
    /// Per-node aggregate bottleneck bandwidth (bandwidth metric only).
    pub bandwidth_utility: Vec<f64>,
    /// Number of nodes that changed wiring this epoch.
    pub rewirings: usize,
    /// Alive population size at measurement time.
    pub alive: usize,
}

/// Complete simulation output.
#[derive(Clone, Debug)]
pub struct SimResult {
    pub config_label: String,
    pub samples: Vec<EpochSample>,
}

impl SimResult {
    fn steady(&self, warmup: usize) -> impl Iterator<Item = &EpochSample> {
        self.samples.iter().filter(move |s| s.epoch >= warmup)
    }

    /// Steady-state mean individual cost per node (NaN-safe), averaged
    /// over epochs then nodes.
    pub fn mean_individual_cost(&self, warmup: usize) -> f64 {
        let per_epoch: Vec<f64> = self
            .steady(warmup)
            .map(|s| crate::stats::mean(&s.individual_cost))
            .collect();
        crate::stats::mean(&per_epoch)
    }

    /// Steady-state per-node mean costs (vector over nodes).
    pub fn per_node_mean_cost(&self, warmup: usize) -> Vec<f64> {
        let n = self
            .samples
            .first()
            .map(|s| s.individual_cost.len())
            .unwrap_or(0);
        (0..n)
            .map(|i| {
                let xs: Vec<f64> = self.steady(warmup).map(|s| s.individual_cost[i]).collect();
                crate::stats::mean(&xs)
            })
            .collect()
    }

    /// Steady-state mean Efficiency.
    pub fn mean_efficiency(&self, warmup: usize) -> f64 {
        let per_epoch: Vec<f64> = self
            .steady(warmup)
            .map(|s| crate::stats::mean(&s.efficiency))
            .collect();
        crate::stats::mean(&per_epoch)
    }

    /// Steady-state mean bandwidth utility.
    pub fn mean_bandwidth_utility(&self, warmup: usize) -> f64 {
        let per_epoch: Vec<f64> = self
            .steady(warmup)
            .map(|s| crate::stats::mean(&s.bandwidth_utility))
            .collect();
        crate::stats::mean(&per_epoch)
    }

    /// Re-wirings per epoch, full horizon (Fig. 3 left).
    pub fn rewirings_series(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.rewirings).collect()
    }

    /// Steady-state mean re-wirings per epoch.
    pub fn mean_rewirings(&self, warmup: usize) -> f64 {
        let xs: Vec<f64> = self.steady(warmup).map(|s| s.rewirings as f64).collect();
        crate::stats::mean(&xs)
    }
}

/// The running simulator state.
pub struct Simulator {
    cfg: SimConfig,
    delays: DelayModel,
    loads: LoadModel,
    bandwidths: BandwidthModel,
    vivaldi: Option<egoist_coord::CoordinateSystem>,
    wiring: Wiring,
    alive: Vec<bool>,
    prefs: Preferences,
    /// Demand-blended preferences (traffic-aware wiring only). `None`
    /// until [`Simulator::set_observed_demand`] is fed a matrix; re-wire
    /// paths fall back to `prefs`, and `measure()` always uses the base
    /// `prefs` so reported costs stay comparable across policies.
    demand_prefs: Option<Preferences>,
    policy: Box<dyn Policy + Send + Sync>,
    policy_rng: StdRng,
    underlay_rng: StdRng,
    now: f64,
    churn_cursor: usize,
    /// Per-node flag: needs immediate re-wire (just churned ON).
    pending_join: Vec<bool>,
    /// The epoch route-state engine (snapshot + incremental repair).
    route_state: RouteState,
    /// Obs handles (spans + counters), resolved once per simulator.
    obs: SimObs,
}

/// Simulator-level obs handles. Span hierarchy (by dotted name):
/// `core.epoch` → `core.epoch.turn` → `core.epoch.turn.solver` (plus
/// the `residual`/`absorb` siblings recorded by [`RouteState`]), with
/// `core.measure` beside the epoch loop.
struct SimObs {
    epoch: egoist_obs::Timer,
    turn: egoist_obs::Timer,
    solver: egoist_obs::Timer,
    measure: egoist_obs::Timer,
    rewirings: egoist_obs::Counter,
    turns: egoist_obs::Counter,
}

impl SimObs {
    fn resolve() -> Self {
        let r = egoist_obs::registry();
        SimObs {
            epoch: r.timer("core.epoch"),
            turn: r.timer("core.epoch.turn"),
            solver: r.timer("core.epoch.turn.solver"),
            measure: r.timer("core.measure"),
            rewirings: r.counter("core.rewirings"),
            turns: r.counter("core.turns"),
        }
    }
}

impl Simulator {
    /// Build the simulator; all nodes start alive and unwired.
    pub fn new(cfg: SimConfig) -> Self {
        let n = cfg.n;
        let delays = if n == 50 {
            DelayModel::planetlab_50(cfg.seed)
        } else {
            DelayModel::from_spec(
                &egoist_netsim::PlanetLabSpec::uniform(egoist_netsim::Region::NorthAmerica, n),
                &egoist_netsim::delay::DelayConfig::default(),
                cfg.seed,
            )
        };
        let vivaldi = if cfg.metric == Metric::DelayVivaldi {
            let mut cs = egoist_coord::CoordinateSystem::new(n, cfg.seed);
            // Pre-converge a little: nodes typically join an overlay whose
            // coordinate system is already warm.
            cs.converge(delays.base(), 8);
            Some(cs)
        } else {
            None
        };
        Simulator {
            loads: LoadModel::with_defaults(n, cfg.seed),
            bandwidths: BandwidthModel::with_defaults(n, cfg.seed),
            vivaldi,
            wiring: Wiring::empty(n),
            alive: vec![true; n],
            prefs: Preferences::uniform(n),
            demand_prefs: None,
            policy: match cfg.engine {
                EngineMode::Epoch => cfg.policy.instantiate(),
                EngineMode::Recompute => cfg.policy.instantiate_reference(),
            },
            policy_rng: derive(cfg.seed, "sim-policy"),
            underlay_rng: derive(cfg.seed, "sim-underlay"),
            now: 0.0,
            churn_cursor: 0,
            pending_join: vec![false; n],
            route_state: RouteState::new(),
            obs: SimObs::resolve(),
            delays,
            cfg,
        }
    }

    fn alive_ids(&self) -> Vec<NodeId> {
        (0..self.cfg.n)
            .filter(|&i| self.alive[i])
            .map(NodeId::from_index)
            .collect()
    }

    /// True (instantaneous) additive edge-cost matrix for the current
    /// metric. For `Load`, edge `(u, v)` costs `v`'s instantaneous load.
    fn true_cost_matrix(&self) -> DistanceMatrix {
        match self.cfg.metric {
            Metric::DelayPing | Metric::DelayVivaldi => self.delays.current(),
            Metric::Load => {
                let inst: Vec<f64> = (0..self.cfg.n)
                    .map(|i| self.loads.instantaneous(i))
                    .collect();
                DistanceMatrix::from_fn(self.cfg.n, |_, j| inst[j])
            }
            Metric::Bandwidth => self.bandwidths.available_matrix(),
        }
    }

    /// Announced additive edge-cost matrix: measured (symmetrized ping /
    /// EWMA load), then distorted by the cheaters.
    fn announced_cost_matrix(&self) -> DistanceMatrix {
        let base = match self.cfg.metric {
            Metric::DelayPing | Metric::DelayVivaldi => {
                // Established links are measured by use: ping RTT/2.
                let n = self.cfg.n;
                DistanceMatrix::from_fn(n, |i, j| 0.5 * self.delays.rtt(i, j))
            }
            Metric::Load => {
                let sensed = self.loads.sensed_all();
                DistanceMatrix::from_fn(self.cfg.n, |_, j| sensed[j])
            }
            Metric::Bandwidth => self.bandwidths.available_matrix(),
        };
        self.cfg.cheat.announced_matrix(&base)
    }

    /// Announced matrix, borrowed from the live route snapshot when one
    /// exists instead of being rebuilt dense. The borrow is bit-exact:
    /// the snapshot is invalidated whenever anything that feeds the
    /// announcement (underlay state, membership, external feedback)
    /// changes, so a live snapshot's copy equals what
    /// [`Self::announced_cost_matrix`] would recompute.
    fn announced_cow(&self) -> Cow<'_, DistanceMatrix> {
        match self.route_state.snapshot() {
            Some(s) => Cow::Borrowed(&s.announced),
            None => Cow::Owned(self.announced_cost_matrix()),
        }
    }

    /// Direct candidate-link cost estimates for node `i` (what the
    /// newcomer measures before wiring, §3.1): length-n vector.
    fn candidate_costs(&self, i: NodeId) -> Vec<f64> {
        match self.cfg.metric {
            Metric::DelayPing => (0..self.cfg.n)
                .map(|j| 0.5 * self.delays.rtt(i.index(), j))
                .collect(),
            Metric::DelayVivaldi => self
                .vivaldi
                .as_ref()
                .expect("vivaldi system present in DelayVivaldi mode")
                .query_all(i.index()),
            Metric::Load => self.loads.sensed_all(),
            Metric::Bandwidth => (0..self.cfg.n)
                .map(|j| {
                    self.bandwidths.probe(
                        i.index(),
                        j,
                        self.cfg.seed,
                        (self.now as u64) << 8 | j as u64,
                    )
                })
                .collect(),
        }
    }

    /// Apply churn events up to time `t`, indexing into the trace in
    /// place (the trace can be tens of thousands of events; cloning it
    /// on every staggered turn dominated churn-heavy runs).
    fn apply_churn(&mut self, t: f64) {
        if self.cfg.churn.is_none() {
            return;
        }
        let mut membership_changed = false;
        loop {
            let e = {
                let trace = self.cfg.churn.as_ref().expect("churn checked above");
                match trace.events.get(self.churn_cursor) {
                    Some(e) if e.at <= t => *e,
                    _ => break,
                }
            };
            self.churn_cursor += 1;
            let idx = e.node.index();
            if idx >= self.cfg.n {
                continue;
            }
            if e.up && !self.alive[idx] {
                self.alive[idx] = true;
                self.pending_join[idx] = true;
                membership_changed = true;
            } else if !e.up && self.alive[idx] {
                self.alive[idx] = false;
                self.wiring.clear(e.node);
                self.pending_join[idx] = false;
                membership_changed = true;
            }
        }
        if membership_changed {
            self.route_state.invalidate();
        }
        // HybridBR repairs its donated backbone aggressively on any
        // membership change (§3.3: "donated links are monitored
        // aggressively").
        if let PolicyKind::HybridBestResponse { k2 } = self.cfg.policy {
            self.repair_backbone(k2);
        }
    }

    fn repair_backbone(&mut self, k2: usize) {
        let alive_ids = self.alive_ids();
        let hybrid = HybridBr::new(k2);
        let mut changed = false;
        for &i in &alive_ids {
            let donated = hybrid.donated_links(i, &alive_ids);
            let mut links: Vec<NodeId> = donated.clone();
            for &w in self.wiring.of(i) {
                if links.len() >= self.cfg.k {
                    break;
                }
                if self.alive[w.index()] && !links.contains(&w) {
                    links.push(w);
                }
            }
            changed |= self.wiring.rewire(i, links);
        }
        if changed {
            self.route_state.invalidate();
        }
    }

    /// Advance the underlay processes to absolute time `t`.
    fn advance_underlay(&mut self, t: f64) {
        let dt = t - self.now;
        if dt <= 0.0 {
            return;
        }
        self.delays.advance(dt, &mut self.underlay_rng);
        self.loads.advance(dt, &mut self.underlay_rng);
        self.bandwidths.advance(dt, &mut self.underlay_rng);
        self.now = t;
        self.route_state.invalidate();
    }

    /// Make sure a route-state snapshot of `kind` is live for the
    /// current announced costs, wiring and membership.
    fn ensure_snapshot(&mut self, kind: SnapshotKind) {
        if self.route_state.valid(kind) {
            return;
        }
        let announced = self.announced_cost_matrix();
        let penalty = match kind {
            SnapshotKind::Additive => disconnection_penalty(&announced),
            SnapshotKind::Widest => 0.0,
        };
        let overlay = self.wiring.to_graph(&announced, &self.alive);
        self.route_state
            .rebuild(kind, announced, penalty, self.alive.clone(), &overlay);
    }

    /// Give node `i` its wiring turn. Returns whether the wiring changed.
    fn rewire(&mut self, i: NodeId) -> bool {
        if !self.alive[i.index()] {
            return false;
        }
        self.pending_join[i.index()] = false;
        let candidates: Vec<NodeId> = (0..self.cfg.n)
            .filter(|&j| j != i.index() && self.alive[j])
            .map(NodeId::from_index)
            .collect();
        if candidates.is_empty() {
            return false;
        }

        if self.cfg.metric == Metric::Bandwidth {
            return self.rewire_bandwidth(i, &candidates);
        }

        let direct = self.candidate_costs(i);
        let current = self.wiring.of(i).to_vec();

        if self.cfg.engine == EngineMode::Recompute {
            // Reference oracle: rebuild everything from scratch.
            let announced = self.announced_cost_matrix();
            let residual_graph = self.wiring.residual_graph(i, &announced, &self.alive);
            let residual = apsp(&residual_graph);
            let penalty = disconnection_penalty(&announced);
            let ctx = WiringContext {
                node: i,
                k: self.cfg.k,
                candidates: &candidates,
                direct: &direct,
                residual: ResidualView::dense(&residual),
                prefs: self.demand_prefs.as_ref().unwrap_or(&self.prefs),
                alive: &self.alive,
                penalty,
                current: &current,
            };
            let new = self.policy.wire(&ctx, &mut self.policy_rng);
            return self.wiring.rewire(i, new);
        }

        // Epoch engine: shared snapshot + zero-copy residual view.
        self.ensure_snapshot(SnapshotKind::Additive);
        let penalty = self
            .route_state
            .snapshot()
            .expect("snapshot just ensured")
            .penalty;
        let residual = self.route_state.residual(i.index());
        let ctx = WiringContext {
            node: i,
            k: self.cfg.k,
            candidates: &candidates,
            direct: &direct,
            residual,
            prefs: self.demand_prefs.as_ref().unwrap_or(&self.prefs),
            alive: &self.alive,
            penalty,
            current: &current,
        };
        let span = self.obs.solver.start();
        let new = self.policy.wire(&ctx, &mut self.policy_rng);
        drop(span);
        let changed = self.wiring.rewire(i, new);
        if changed {
            self.route_state
                .note_rewire(i, &current, &self.wiring, &self.alive);
        }
        changed
    }

    /// Bandwidth-metric turn: BR uses the widest-path objective; the
    /// heuristics use their natural bandwidth analogues.
    fn rewire_bandwidth(&mut self, i: NodeId, candidates: &[NodeId]) -> bool {
        let direct = self.candidate_costs(i);
        let new = match self.cfg.policy {
            PolicyKind::BestResponse
            | PolicyKind::ExactBestResponse
            | PolicyKind::EpsilonBestResponse { .. }
            | PolicyKind::HybridBestResponse { .. }
            | PolicyKind::TrafficAware { .. } => {
                if self.cfg.engine == EngineMode::Recompute {
                    let announced = self.announced_cost_matrix(); // probe estimates
                    let residual_graph = self.wiring.residual_graph(i, &announced, &self.alive);
                    let residual_bw = all_pairs_widest(&residual_graph);
                    let ctx = BwWiringContext {
                        node: i,
                        k: self.cfg.k,
                        candidates,
                        direct_bw: &direct,
                        residual_bw: ResidualView::dense(&residual_bw),
                        prefs: self.demand_prefs.as_ref().unwrap_or(&self.prefs),
                        alive: &self.alive,
                    };
                    bandwidth_best_response(&ctx).0
                } else {
                    self.ensure_snapshot(SnapshotKind::Widest);
                    let residual_bw = self.route_state.residual(i.index());
                    let ctx = BwWiringContext {
                        node: i,
                        k: self.cfg.k,
                        candidates,
                        direct_bw: &direct,
                        residual_bw,
                        prefs: self.demand_prefs.as_ref().unwrap_or(&self.prefs),
                        alive: &self.alive,
                    };
                    let span = self.obs.solver.start();
                    let picked = bandwidth_best_response(&ctx).0;
                    drop(span);
                    picked
                }
            }
            PolicyKind::Closest => {
                // k-Closest under bandwidth = maximum direct bandwidth.
                let residual_bw = DistanceMatrix::filled(self.cfg.n, 0.0);
                let ctx = BwWiringContext {
                    node: i,
                    k: self.cfg.k,
                    candidates,
                    direct_bw: &direct,
                    residual_bw: ResidualView::dense(&residual_bw),
                    prefs: self.demand_prefs.as_ref().unwrap_or(&self.prefs),
                    alive: &self.alive,
                };
                k_widest(&ctx)
            }
            PolicyKind::Random | PolicyKind::Regular => {
                // Metric-oblivious policies reuse the additive-path code.
                let residual = DistanceMatrix::filled(self.cfg.n, 0.0);
                let current = self.wiring.of(i).to_vec();
                let ctx = WiringContext {
                    node: i,
                    k: self.cfg.k,
                    candidates,
                    direct: &direct,
                    residual: ResidualView::dense(&residual),
                    prefs: self.demand_prefs.as_ref().unwrap_or(&self.prefs),
                    alive: &self.alive,
                    penalty: 1.0,
                    current: &current,
                };
                self.cfg
                    .policy
                    .instantiate()
                    .wire(&ctx, &mut self.policy_rng)
            }
        };
        let current = self.wiring.of(i).to_vec();
        let changed = self.wiring.rewire(i, new);
        if changed {
            self.route_state
                .note_rewire(i, &current, &self.wiring, &self.alive);
        }
        changed
    }

    /// Enforce the §3.2 connectivity cycle for k-Random / k-Closest: when
    /// the alive overlay is not strongly connected, each node swaps its
    /// last link for its ring successor (the ring stays within the degree
    /// cap, as a selfish node would insist).
    fn enforce_cycle_if_needed(&mut self) {
        if !matches!(self.cfg.policy, PolicyKind::Random | PolicyKind::Closest) {
            return;
        }
        let announced = self.announced_cow();
        let alive_ids = self.alive_ids();
        if alive_ids.len() < 2 {
            return;
        }
        let g = self.wiring.to_graph(&announced, &self.alive);
        if strongly_connected(&g, &alive_ids) {
            return;
        }
        let mut changed = false;
        for (a, b) in ring_edges(&alive_ids) {
            let mut links = self.wiring.of(a).to_vec();
            if links.contains(&b) {
                continue;
            }
            if links.len() >= self.cfg.k && !links.is_empty() {
                links.pop();
            }
            links.push(b);
            changed |= self.wiring.rewire(a, links);
        }
        if changed {
            self.route_state.invalidate();
        }
    }

    /// Feed the simulator an observed demand matrix (dense row-major
    /// `n·n`, Mbps). Under [`PolicyKind::TrafficAware`] the next
    /// re-wiring turns run best response over preferences blended with
    /// this matrix ([`crate::policies::traffic_aware`]); under every
    /// other policy the call is a no-op, so closed-loop engines can feed
    /// demand unconditionally without perturbing the pinned baselines.
    /// `measure()` always scores against the base preferences either
    /// way, keeping reported costs comparable across policies.
    pub fn set_observed_demand(&mut self, demand: &[f64]) {
        let PolicyKind::TrafficAware { bias } = self.cfg.policy else {
            return;
        };
        self.demand_prefs = Some(crate::policies::traffic_aware::demand_weighted_prefs(
            &self.prefs,
            demand,
            bias,
            self.cfg.n,
        ));
    }

    /// Take the per-epoch measurement.
    pub fn measure(&self, epoch: usize, rewirings: usize) -> EpochSample {
        let _span = self.obs.measure.start();
        let n = self.cfg.n;
        let alive_ids = self.alive_ids();
        let announced = self.announced_cow();
        let truth = self.true_cost_matrix();

        let mut individual_cost = vec![f64::NAN; n];
        let mut efficiency = vec![f64::NAN; n];
        let mut bandwidth_utility = vec![f64::NAN; n];

        match self.cfg.metric {
            Metric::Bandwidth => {
                // Realized aggregate bottleneck bandwidth over true
                // bandwidths on the chosen topology.
                let g_true = self.wiring.to_graph(&truth, &self.alive);
                for &i in &alive_ids {
                    let wp = egoist_graph::widest::widest_paths(&g_true, i);
                    let mut total = 0.0;
                    for &j in &alive_ids {
                        if j != i {
                            total += self.prefs.get(i, j) * wp.width[j.index()];
                        }
                    }
                    bandwidth_utility[i.index()] = total;
                }
            }
            _ => {
                // Routing on announced costs; realized cost true.
                let g_announced = self.wiring.to_graph(&announced, &self.alive);
                let rc = RoutingCosts::evaluate(&g_announced, |u, v| truth.get(u, v));
                let penalty = disconnection_penalty(&truth);
                for &i in &alive_ids {
                    let row: Vec<f64> = (0..n).map(|j| rc.realized_dist.at(i.index(), j)).collect();
                    individual_cost[i.index()] =
                        node_cost_from_dists(i, &row, &self.prefs, &self.alive, penalty);
                    // Efficiency over realized distances.
                    let g_for_eff = &g_announced;
                    efficiency[i.index()] = {
                        let sp = dijkstra(g_for_eff, i);
                        let others: Vec<NodeId> =
                            alive_ids.iter().copied().filter(|&t| t != i).collect();
                        if others.is_empty() {
                            0.0
                        } else {
                            let mut s = 0.0;
                            for &j in &others {
                                let d = sp.dist[j.index()];
                                if d.is_finite() && d > 0.0 {
                                    s += 1.0 / d;
                                }
                            }
                            s / others.len() as f64
                        }
                    };
                }
            }
        }

        EpochSample {
            epoch,
            individual_cost,
            efficiency,
            bandwidth_utility,
            rewirings,
            alive: alive_ids.len(),
        }
    }

    /// Advance one full wiring epoch: staggered re-wiring turns, churn
    /// and underlay drift, and the connectivity fix-up — everything
    /// except the measurement. Returns the number of re-wirings.
    ///
    /// Epoch-stepping is the hook the closed-loop traffic engine
    /// (`egoist-traffic`) uses: after each epoch it routes flows over
    /// the current overlay, charges carried traffic into the underlay
    /// models via [`Simulator::loads_mut`] / [`Simulator::bandwidths_mut`],
    /// and only then calls [`Simulator::measure`] — so realized costs see
    /// the congestion the overlay itself induced, and the next epoch's
    /// announcements (EWMA load, probes) react to it.
    pub fn run_epoch(&mut self, epoch: usize) -> usize {
        // Clone the handles so the span guards borrow locals, not
        // `self` (the loop body calls `&mut self` methods).
        let epoch_timer = self.obs.epoch.clone();
        let turn_timer = self.obs.turn.clone();
        let _epoch_span = epoch_timer.start();
        let n = self.cfg.n;
        let t_epoch = self.cfg.epoch_secs;
        let mut rewirings = 0usize;
        let mut turns = 0u64;
        for turn in 0..n {
            let t = epoch as f64 * t_epoch + (turn as f64 / n as f64) * t_epoch;
            self.apply_churn(t);
            if turn == 0 {
                // The underlay drifts continuously but the simulator
                // samples it at epoch granularity: one exact OU
                // transition per epoch (the same schedule the full-mesh
                // reference always used). Announced costs are therefore
                // constant between epoch boundaries — the invariant the
                // epoch route-state engine's snapshot reuse rests on.
                self.advance_underlay(t);
                // Vivaldi gossips continuously; one spread-out
                // round/epoch.
                if let Some(cs) = self.vivaldi.as_mut() {
                    let delays = &self.delays;
                    cs.gossip_round(|a, b| delays.delay(a, b));
                }
            }
            let i = NodeId::from_index(turn);
            // Nodes that churned ON re-wire immediately at their first
            // turn; others follow the delayed (epochal) schedule.
            if self.alive[turn] {
                let turn_span = turn_timer.start();
                if self.rewire(i) {
                    rewirings += 1;
                    egoist_obs::event(
                        "core.rewire",
                        &[
                            ("epoch", (epoch as u64).into()),
                            ("node", (turn as u64).into()),
                        ],
                    );
                }
                drop(turn_span);
                turns += 1;
            }
        }
        self.enforce_cycle_if_needed();
        self.obs.turns.add(turns);
        self.obs.rewirings.add(rewirings as u64);
        rewirings
    }

    /// Label describing this configuration in reports.
    pub fn config_label(&self) -> String {
        format!(
            "{} k={} metric={:?} n={}",
            self.cfg.policy.label(),
            self.cfg.k,
            self.cfg.metric,
            self.cfg.n
        )
    }

    /// Run the full simulation.
    pub fn run(mut self) -> SimResult {
        let mut samples = Vec::with_capacity(self.cfg.epochs);
        for epoch in 0..self.cfg.epochs {
            let rewirings = self.run_epoch(epoch);
            samples.push(self.measure(epoch, rewirings));
        }
        SimResult {
            config_label: self.config_label(),
            samples,
        }
    }

    // --- state accessors for the data-plane / closed-loop coupling ---

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The current global wiring `S`.
    pub fn wiring(&self) -> &Wiring {
        &self.wiring
    }

    /// Per-node aliveness.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// The delay underlay (true link propagation delays).
    pub fn delays(&self) -> &DelayModel {
        &self.delays
    }

    /// The node-load underlay.
    pub fn loads(&self) -> &LoadModel {
        &self.loads
    }

    /// Mutable node-load underlay — the traffic engine charges forwarding
    /// load here. External mutation changes announced costs, so the
    /// route-state snapshot is dropped.
    pub fn loads_mut(&mut self) -> &mut LoadModel {
        self.route_state.invalidate();
        &mut self.loads
    }

    /// The bandwidth underlay.
    pub fn bandwidths(&self) -> &BandwidthModel {
        &self.bandwidths
    }

    /// Mutable bandwidth underlay — the traffic engine charges carried
    /// traffic here. External mutation changes announced costs, so the
    /// route-state snapshot is dropped.
    pub fn bandwidths_mut(&mut self) -> &mut BandwidthModel {
        self.route_state.invalidate();
        &mut self.bandwidths
    }

    /// Preference weights.
    pub fn prefs(&self) -> &Preferences {
        &self.prefs
    }

    /// Snapshot of the announced edge-cost matrix (what routing and
    /// wiring decisions consume).
    pub fn announced_matrix(&self) -> DistanceMatrix {
        self.announced_cost_matrix()
    }

    /// The announced edge-cost matrix without the dense rebuild when a
    /// route snapshot is live — the zero-copy read path the data plane
    /// (traffic engine) uses once per epoch. Falls back to computing
    /// (owned) when no snapshot exists; contents are bit-identical
    /// either way.
    pub fn announced_view(&self) -> Cow<'_, DistanceMatrix> {
        self.announced_cow()
    }

    /// Snapshot of the true edge-cost matrix for the active metric.
    pub fn true_matrix(&self) -> DistanceMatrix {
        self.true_cost_matrix()
    }

    /// Work counters of the epoch route-state engine (all zero in
    /// [`EngineMode::Recompute`]).
    pub fn route_stats(&self) -> RouteStats {
        self.route_state.stats
    }
}

/// Convenience: run one config.
pub fn run(cfg: SimConfig) -> SimResult {
    Simulator::new(cfg).run()
}

/// Mean full-mesh individual cost on the same underlay (the RON reference
/// of Fig. 1), averaged over the same measurement epochs.
pub fn full_mesh_reference(cfg: &SimConfig) -> f64 {
    // A full mesh never re-wires; replay the underlay and measure.
    let mut sim = Simulator::new(SimConfig {
        policy: PolicyKind::Random,
        ..cfg.clone()
    });
    // Wire the mesh once.
    let all: Vec<NodeId> = (0..cfg.n).map(NodeId::from_index).collect();
    for &i in &all {
        let neigh: Vec<NodeId> = all.iter().copied().filter(|&j| j != i).collect();
        sim.wiring.rewire(i, neigh);
    }
    let mut costs = Vec::new();
    for epoch in 0..cfg.epochs {
        let t = (epoch + 1) as f64 * cfg.epoch_secs;
        sim.advance_underlay(t);
        if epoch >= cfg.warmup_epochs {
            let s = sim.measure(epoch, 0);
            costs.push(crate::stats::mean(&s.individual_cost));
        }
    }
    crate::stats::mean(&costs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(k: usize, policy: PolicyKind, metric: Metric) -> SimConfig {
        SimConfig {
            n: 20,
            k,
            policy,
            metric,
            epoch_secs: 60.0,
            epochs: 8,
            warmup_epochs: 3,
            seed: 11,
            churn: None,
            cheat: CheatConfig::honest(),
            engine: EngineMode::default(),
        }
    }

    #[test]
    fn br_beats_random_on_delay() {
        let br = run(quick(3, PolicyKind::BestResponse, Metric::DelayPing));
        let rnd = run(quick(3, PolicyKind::Random, Metric::DelayPing));
        let (cb, cr) = (br.mean_individual_cost(3), rnd.mean_individual_cost(3));
        assert!(cb < cr, "BR {cb:.2} should beat k-Random {cr:.2}");
    }

    #[test]
    fn br_beats_regular_on_delay() {
        let br = run(quick(3, PolicyKind::BestResponse, Metric::DelayPing));
        let reg = run(quick(3, PolicyKind::Regular, Metric::DelayPing));
        assert!(br.mean_individual_cost(3) < reg.mean_individual_cost(3));
    }

    #[test]
    fn full_mesh_lower_bounds_br() {
        let cfg = quick(3, PolicyKind::BestResponse, Metric::DelayPing);
        let br = run(cfg.clone());
        let mesh = full_mesh_reference(&cfg);
        let cbr = br.mean_individual_cost(3);
        assert!(
            mesh <= cbr * 1.02,
            "mesh {mesh:.2} must lower-bound BR {cbr:.2}"
        );
    }

    #[test]
    fn bandwidth_br_beats_random() {
        let br = run(quick(3, PolicyKind::BestResponse, Metric::Bandwidth));
        let rnd = run(quick(3, PolicyKind::Random, Metric::Bandwidth));
        let (ub, ur) = (br.mean_bandwidth_utility(3), rnd.mean_bandwidth_utility(3));
        assert!(ub > ur, "BR bw {ub:.2} should beat random {ur:.2}");
    }

    #[test]
    fn load_metric_runs_and_br_wins() {
        let br = run(quick(3, PolicyKind::BestResponse, Metric::Load));
        let cls = run(quick(3, PolicyKind::Closest, Metric::Load));
        assert!(br.mean_individual_cost(3) <= cls.mean_individual_cost(3) * 1.05);
    }

    #[test]
    fn vivaldi_mode_close_to_ping_mode() {
        let ping = run(quick(4, PolicyKind::BestResponse, Metric::DelayPing));
        let vival = run(quick(4, PolicyKind::BestResponse, Metric::DelayVivaldi));
        let (cp, cv) = (ping.mean_individual_cost(3), vival.mean_individual_cost(3));
        // Vivaldi estimates are noisier, so BR-with-vivaldi is worse, but
        // not catastrophically (the paper still sees BR win under pyxida).
        assert!(
            cv >= cp * 0.9,
            "vivaldi can't beat ping by much: {cv} vs {cp}"
        );
        assert!(cv <= cp * 2.0, "vivaldi should remain usable: {cv} vs {cp}");
    }

    #[test]
    fn churn_kills_and_revives_nodes() {
        use egoist_netsim::churn::{ChurnEvent, ChurnTrace};
        let mut cfg = quick(3, PolicyKind::BestResponse, Metric::DelayPing);
        cfg.churn = Some(ChurnTrace {
            n: 20,
            horizon: 8.0 * 60.0,
            events: vec![
                ChurnEvent {
                    at: 70.0,
                    node: NodeId(5),
                    up: false,
                },
                ChurnEvent {
                    at: 200.0,
                    node: NodeId(5),
                    up: true,
                },
            ],
        });
        let res = run(cfg);
        // Epoch 1 (t ∈ [60, 120)): node 5 dead at measurement (t=120⁻).
        assert!(res.samples[1].individual_cost[5].is_nan());
        assert_eq!(res.samples[1].alive, 19);
        // After rejoin, it's alive again and wired.
        assert_eq!(res.samples[5].alive, 20);
        assert!(res.samples[5].individual_cost[5].is_finite());
    }

    #[test]
    fn free_riders_affect_costs_mildly() {
        let honest = run(quick(2, PolicyKind::BestResponse, Metric::DelayPing));
        let mut cheat_cfg = quick(2, PolicyKind::BestResponse, Metric::DelayPing);
        cheat_cfg.cheat = CheatConfig::single(NodeId(0));
        let cheating = run(cheat_cfg);
        let (ch, cc) = (
            honest.mean_individual_cost(3),
            cheating.mean_individual_cost(3),
        );
        // Fig. 4: impact within ~±20%.
        assert!(
            (cc / ch - 1.0).abs() < 0.35,
            "free rider impact too large: honest {ch:.2} vs cheating {cc:.2}"
        );
    }

    #[test]
    fn rewiring_rate_decays_for_br() {
        let res = run(SimConfig {
            epochs: 12,
            ..quick(3, PolicyKind::BestResponse, Metric::DelayPing)
        });
        let series = res.rewirings_series();
        let early: f64 = series[..3].iter().sum::<usize>() as f64 / 3.0;
        let late: f64 = series[series.len() - 3..].iter().sum::<usize>() as f64 / 3.0;
        assert!(
            late <= early,
            "re-wiring should not grow: early {early}, late {late}"
        );
    }

    #[test]
    fn epsilon_br_rewires_less_than_br() {
        let br = run(quick(4, PolicyKind::BestResponse, Metric::DelayPing));
        let eps = run(quick(
            4,
            PolicyKind::EpsilonBestResponse { epsilon: 0.10 },
            Metric::DelayPing,
        ));
        let (rb, re) = (br.mean_rewirings(2), eps.mean_rewirings(2));
        assert!(
            re <= rb,
            "BR(0.1) must re-wire no more than BR: {re} vs {rb}"
        );
    }

    #[test]
    fn hybrid_maintains_connectivity_under_churn() {
        use egoist_netsim::ChurnModel;
        let mut model = ChurnModel::planetlab_like(20, 3);
        model.timescale_divisor = 400.0;
        let trace = model.generate(8.0 * 60.0);
        let mut cfg = quick(
            5,
            PolicyKind::HybridBestResponse { k2: 2 },
            Metric::DelayPing,
        );
        cfg.churn = Some(trace);
        let res = run(cfg);
        // Efficiency should stay meaningfully positive under heavy churn.
        let eff = res.mean_efficiency(3);
        assert!(eff > 0.0, "HybridBR efficiency collapsed: {eff}");
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let a = run(quick(3, PolicyKind::BestResponse, Metric::DelayPing));
        let b = run(quick(3, PolicyKind::BestResponse, Metric::DelayPing));
        assert_eq!(
            a.mean_individual_cost(3).to_bits(),
            b.mean_individual_cost(3).to_bits()
        );
    }
}
