//! Summary statistics for experiment reporting.
//!
//! The paper reports "the mean of all n = 50 individual costs, as well as
//! the 95th-percentile confidence interval" (§4.2). NaN entries (dead
//! nodes) are skipped throughout.

/// Mean of finite values; NaN when none.
pub fn mean(xs: &[f64]) -> f64 {
    let v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Sample standard deviation of finite values.
pub fn stddev(xs: &[f64]) -> f64 {
    let v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if v.len() < 2 {
        return 0.0;
    }
    let m = mean(&v);
    let var = v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (v.len() - 1) as f64;
    var.sqrt()
}

/// Half-width of the 95% confidence interval of the mean
/// (normal approximation, `1.96 · s/√n`).
pub fn ci95_half_width(xs: &[f64]) -> f64 {
    let v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if v.len() < 2 {
        return 0.0;
    }
    1.96 * stddev(&v) / (v.len() as f64).sqrt()
}

/// Mean together with its 95% CI half-width.
pub fn mean_ci(xs: &[f64]) -> (f64, f64) {
    (mean(xs), ci95_half_width(xs))
}

/// `q`-th percentile (0..=100) of finite values, linear interpolation.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(f64::total_cmp);
    let pos = (q / 100.0) * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Ratio of two means (`a/b`), NaN-safe — the "normalized cost" the
/// figures plot.
pub fn normalized(a: &[f64], b: &[f64]) -> f64 {
    let mb = mean(b);
    if mb == 0.0 {
        return f64::NAN;
    }
    mean(a) / mb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_skips_nan() {
        assert_eq!(mean(&[1.0, f64::NAN, 3.0]), 2.0);
        assert!(mean(&[f64::NAN]).is_nan());
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        assert_eq!(stddev(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn stddev_known_value() {
        // Sample std of [2, 4, 4, 4, 5, 5, 7, 9] = ~2.138.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((stddev(&xs) - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let small = [1.0, 2.0, 3.0, 4.0];
        let big: Vec<f64> = (0..64).map(|i| 1.0 + (i % 4) as f64).collect();
        assert!(ci95_half_width(&big) < ci95_half_width(&small));
    }

    #[test]
    fn percentile_endpoints_and_median() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 25.0), 2.0);
    }

    #[test]
    fn normalized_ratio() {
        assert!((normalized(&[2.0, 4.0], &[1.0, 3.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mean_ci_tuple() {
        let (m, ci) = mean_ci(&[1.0, 2.0, 3.0]);
        assert_eq!(m, 2.0);
        assert!(ci > 0.0);
    }
}
