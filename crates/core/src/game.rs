//! The SNS game engine: iterated best-response dynamics.
//!
//! Nodes take turns re-wiring under a chosen policy. The engine tracks
//! whether each turn actually changed the wiring (re-wiring counts, Fig. 3),
//! detects convergence (a full sweep with no changes — a pure Nash
//! equilibrium when every node plays exact BR), and reports individual and
//! social costs.

use crate::cost::{disconnection_penalty, node_cost_from_dists, Preferences};
use crate::policies::{Policy, PolicyKind, WiringContext};
use crate::residual::ResidualView;
use crate::wiring::Wiring;
use egoist_graph::apsp::apsp;
use egoist_graph::dijkstra::dijkstra;
use egoist_graph::{DistanceMatrix, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An overlay population playing the SNS game on a fixed cost matrix.
pub struct Game {
    /// Announced direct-link costs `d_ij`.
    pub costs: DistanceMatrix,
    pub prefs: Preferences,
    pub k: usize,
    pub wiring: Wiring,
    pub alive: Vec<bool>,
    pub penalty: f64,
    policy: Box<dyn Policy + Send + Sync>,
    rng: StdRng,
}

/// Result of running dynamics to convergence.
#[derive(Clone, Debug)]
pub struct ConvergenceReport {
    /// Whether a full no-change sweep was reached.
    pub converged: bool,
    /// Sweeps executed.
    pub sweeps: usize,
    /// Re-wirings per sweep.
    pub rewirings: Vec<usize>,
}

impl Game {
    /// New game; every node starts unwired.
    pub fn new(costs: DistanceMatrix, k: usize, kind: PolicyKind, seed: u64) -> Self {
        let n = costs.len();
        let penalty = disconnection_penalty(&costs);
        Game {
            prefs: Preferences::uniform(n),
            k,
            wiring: Wiring::empty(n),
            alive: vec![true; n],
            penalty,
            policy: kind.instantiate(),
            rng: StdRng::seed_from_u64(seed ^ 0x6A3E),
            costs,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// True when there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Alive node ids.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        (0..self.len())
            .filter(|&i| self.alive[i])
            .map(NodeId::from_index)
            .collect()
    }

    /// Give node `i` a turn: compute its wiring under the policy and
    /// install it. Returns `true` when the wiring changed.
    pub fn rewire_node(&mut self, i: NodeId) -> bool {
        if !self.alive[i.index()] {
            return false;
        }
        let residual_graph = self.wiring.residual_graph(i, &self.costs, &self.alive);
        let residual = apsp(&residual_graph);
        let candidates: Vec<NodeId> = (0..self.len())
            .filter(|&j| j != i.index() && self.alive[j])
            .map(NodeId::from_index)
            .collect();
        let current = self.wiring.of(i).to_vec();
        let ctx = WiringContext {
            node: i,
            k: self.k,
            candidates: &candidates,
            direct: self.costs.row(i.index()),
            residual: ResidualView::dense(&residual),
            prefs: &self.prefs,
            alive: &self.alive,
            penalty: self.penalty,
            current: &current,
        };
        let new = self.policy.wire(&ctx, &mut self.rng);
        self.wiring.rewire(i, new)
    }

    /// One round-robin sweep over all alive nodes; returns the number of
    /// nodes that changed their wiring.
    pub fn sweep(&mut self) -> usize {
        let mut changed = 0;
        for i in self.alive_nodes() {
            if self.rewire_node(i) {
                changed += 1;
            }
        }
        changed
    }

    /// Run sweeps until a full sweep makes no change, or `max_sweeps`.
    pub fn run_to_convergence(&mut self, max_sweeps: usize) -> ConvergenceReport {
        let mut rewirings = Vec::new();
        for _ in 0..max_sweeps {
            let c = self.sweep();
            rewirings.push(c);
            if c == 0 {
                return ConvergenceReport {
                    converged: true,
                    sweeps: rewirings.len(),
                    rewirings,
                };
            }
        }
        ConvergenceReport {
            converged: false,
            sweeps: rewirings.len(),
            rewirings,
        }
    }

    /// Build the overlay incrementally: nodes join in id order, each
    /// wiring once on arrival (the §5 simulation's construction), then the
    /// population settles with `settle_sweeps` rounds of re-wiring — a
    /// node that joined early *must* get later turns, or it would never
    /// gain links toward later arrivals and the overlay would be a
    /// backwards DAG. Nodes beyond `upto` stay out (dead).
    pub fn incremental_build(&mut self, upto: usize) {
        self.incremental_build_with_settle(upto, 2)
    }

    /// [`Game::incremental_build`] with an explicit settle phase length.
    pub fn incremental_build_with_settle(&mut self, upto: usize, settle_sweeps: usize) {
        for i in 0..self.len() {
            self.alive[i] = i < upto;
        }
        // Nothing to join onto for node 0; start from node 1.
        for i in 0..upto.min(self.len()) {
            // Temporarily mark later nodes dead so candidates only include
            // already-joined nodes.
            for j in 0..self.len() {
                self.alive[j] = j <= i;
            }
            self.rewire_node(NodeId::from_index(i));
        }
        for i in 0..self.len() {
            self.alive[i] = i < upto;
        }
        for _ in 0..settle_sweeps {
            if self.sweep() == 0 {
                break;
            }
        }
    }

    /// The overlay graph as currently wired.
    pub fn graph(&self) -> egoist_graph::DiGraph {
        self.wiring.to_graph(&self.costs, &self.alive)
    }

    /// Individual cost `C_i(S)` of every alive node (dead nodes get NaN).
    pub fn individual_costs(&self) -> Vec<f64> {
        let g = self.graph();
        (0..self.len())
            .map(|i| {
                if !self.alive[i] {
                    return f64::NAN;
                }
                let sp = dijkstra(&g, NodeId::from_index(i));
                node_cost_from_dists(
                    NodeId::from_index(i),
                    &sp.dist,
                    &self.prefs,
                    &self.alive,
                    self.penalty,
                )
            })
            .collect()
    }

    /// Cost of one node only.
    pub fn individual_cost(&self, i: NodeId) -> f64 {
        let g = self.graph();
        let sp = dijkstra(&g, i);
        node_cost_from_dists(i, &sp.dist, &self.prefs, &self.alive, self.penalty)
    }

    /// Social cost: sum of individual costs over alive nodes.
    pub fn social_cost(&self) -> f64 {
        self.individual_costs()
            .into_iter()
            .filter(|c| c.is_finite())
            .sum()
    }

    /// Mean individual cost of the full-mesh overlay on the same costs —
    /// the RON-style lower bound of Fig. 1.
    pub fn full_mesh_mean_cost(&self) -> f64 {
        let g = egoist_graph::DiGraph::full_mesh(&self.costs);
        let d = apsp(&g);
        let alive: Vec<usize> = (0..self.len()).filter(|&i| self.alive[i]).collect();
        let mut total = 0.0;
        for &i in &alive {
            let row: Vec<f64> = (0..self.len()).map(|j| d.at(i, j)).collect();
            total += node_cost_from_dists(
                NodeId::from_index(i),
                &row,
                &self.prefs,
                &self.alive,
                self.penalty,
            );
        }
        total / alive.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egoist_netsim::DelayModel;

    fn delay_matrix(n_seed: u64) -> DistanceMatrix {
        DelayModel::planetlab_50(n_seed).base().clone()
    }

    #[test]
    fn exact_br_converges_where_theory_promises() {
        // [20] guarantees pure Nash equilibria for uniform preferences;
        // on small instances round-robin exact BR finds them.
        let d = DistanceMatrix::from_fn(12, |i, j| ((i * 7 + j * 13) % 23 + 1) as f64);
        let mut g = Game::new(d, 2, PolicyKind::ExactBestResponse, 1);
        let report = g.run_to_convergence(60);
        assert!(report.converged, "exact BR must converge: {report:?}");
        assert_eq!(g.sweep(), 0, "equilibrium must be stable");
    }

    #[test]
    fn br_dynamics_reach_cost_steady_state() {
        // Real-valued delay instances "may have no equilibria at all"
        // (§2.1), so vanilla BR keeps re-wiring — but the *cost* settles
        // into a narrow band (the paper's "steady state", §4.3).
        let d = delay_matrix(1);
        let mut g = Game::new(d, 3, PolicyKind::BestResponse, 1);
        let mut socials = Vec::new();
        for _ in 0..20 {
            g.sweep();
            socials.push(g.social_cost());
        }
        let min = socials.iter().cloned().fold(f64::MAX, f64::min);
        for s in &socials[10..] {
            assert!(
                *s < 1.15 * min,
                "social cost should stay within 15% of its floor: {s} vs {min}"
            );
        }
        // And it improves substantially over the first sweep.
        assert!(socials[19] < 0.95 * socials[0]);
    }

    #[test]
    fn epsilon_br_converges_on_static_costs() {
        // The ε dead band restores convergence at a small social cost —
        // the Fig. 3 center/right trade-off.
        let d = delay_matrix(1);
        let mut damped = Game::new(
            d.clone(),
            3,
            PolicyKind::EpsilonBestResponse { epsilon: 0.05 },
            1,
        );
        let report = damped.run_to_convergence(30);
        assert!(report.converged, "BR(0.05) should converge: {report:?}");
        let mut vanilla = Game::new(d, 3, PolicyKind::BestResponse, 1);
        for _ in 0..report.sweeps {
            vanilla.sweep();
        }
        // Cost penalty of damping stays modest.
        assert!(damped.social_cost() < 1.2 * vanilla.social_cost());
    }

    #[test]
    fn br_beats_random_and_regular_on_social_cost() {
        let d = delay_matrix(2);
        let mut br = Game::new(d.clone(), 3, PolicyKind::BestResponse, 2);
        br.run_to_convergence(50);
        let mut rnd = Game::new(d.clone(), 3, PolicyKind::Random, 2);
        rnd.sweep();
        let mut reg = Game::new(d, 3, PolicyKind::Regular, 2);
        reg.sweep();
        assert!(br.social_cost() < rnd.social_cost());
        assert!(br.social_cost() < reg.social_cost());
    }

    #[test]
    fn full_mesh_lower_bounds_br() {
        let d = delay_matrix(3);
        let mut br = Game::new(d, 4, PolicyKind::BestResponse, 3);
        br.run_to_convergence(50);
        let costs = br.individual_costs();
        let mean = costs.iter().sum::<f64>() / costs.len() as f64;
        let mesh = br.full_mesh_mean_cost();
        assert!(
            mesh <= mean + 1e-9,
            "full mesh {mesh} must lower-bound BR {mean}"
        );
        // And BR with k=4 should already be close (within ~2x).
        assert!(mean < 2.0 * mesh, "BR too far from mesh: {mean} vs {mesh}");
    }

    #[test]
    fn dead_nodes_take_no_turns_and_receive_no_links() {
        let d = delay_matrix(4);
        let mut g = Game::new(d, 3, PolicyKind::BestResponse, 4);
        g.alive[7] = false;
        g.run_to_convergence(30);
        assert!(g.wiring.of(NodeId(7)).is_empty());
        for i in g.alive_nodes() {
            assert!(!g.wiring.of(i).contains(&NodeId(7)));
        }
    }

    #[test]
    fn incremental_build_wires_in_join_order() {
        let d = delay_matrix(5);
        let mut g = Game::new(d, 2, PolicyKind::BestResponse, 5);
        g.incremental_build_with_settle(10, 0);
        // Without settling: first joiner has no candidates; later ones
        // have k links pointing strictly backwards.
        assert!(g.wiring.of(NodeId(0)).is_empty());
        assert_eq!(g.wiring.of(NodeId(9)).len(), 2);
        for i in 10..50 {
            assert!(!g.alive[i]);
        }
    }

    #[test]
    fn incremental_build_settling_connects_the_overlay() {
        use egoist_graph::connectivity::strongly_connected;
        let d = delay_matrix(8);
        let mut g = Game::new(d, 2, PolicyKind::BestResponse, 8);
        g.incremental_build(12);
        let members: Vec<NodeId> = (0..12).map(NodeId::from_index).collect();
        assert!(
            strongly_connected(&g.graph(), &members),
            "settled incremental BR overlay must be strongly connected"
        );
        assert_eq!(g.wiring.of(NodeId(0)).len(), 2, "early joiners re-wire");
    }

    #[test]
    fn rewire_counts_stabilize_to_zero_at_equilibrium() {
        let d = delay_matrix(6);
        let mut g = Game::new(d, 2, PolicyKind::EpsilonBestResponse { epsilon: 0.05 }, 6);
        let report = g.run_to_convergence(60);
        assert!(report.converged, "{report:?}");
        assert_eq!(*report.rewirings.last().unwrap(), 0);
        // One more sweep stays at equilibrium.
        assert_eq!(g.sweep(), 0);
    }

    #[test]
    fn closest_policy_picks_nearby_nodes() {
        let d = delay_matrix(7);
        let mut g = Game::new(d.clone(), 3, PolicyKind::Closest, 7);
        g.sweep();
        for i in 0..50 {
            let vi = NodeId::from_index(i);
            let chosen = g.wiring.of(vi);
            let max_chosen = chosen
                .iter()
                .map(|j| d.get(vi, *j))
                .fold(f64::MIN, f64::max);
            // No non-chosen candidate is strictly closer than every chosen.
            let closer_than_all = (0..50)
                .filter(|&j| j != i && !chosen.contains(&NodeId::from_index(j)))
                .filter(|&j| d.at(i, j) < max_chosen - 1e-12)
                .count();
            assert!(
                closer_than_all <= 2,
                "k-Closest at node {i} skipped nearer nodes"
            );
        }
    }
}
