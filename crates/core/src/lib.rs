//! # egoist-core — Selfish Neighbor Selection for overlay routing
//!
//! The primary contribution of the EGOIST paper, as a library:
//!
//! * [`cost`] — the SNS cost model: preference-weighted sums of
//!   shortest-path distances (Definition 1 / `C_i(S)`), the `M ≫ n`
//!   disconnection penalty, and routing-cost evaluation that separates
//!   *announced* costs (what the link-state protocol disseminates and
//!   routing/wiring decisions use) from *true* costs (what traffic
//!   actually experiences) — the distinction that makes the free-rider
//!   study (§4.5) expressible.
//! * [`wiring`] — wirings `s_i`, global wirings `S`, residual graphs
//!   `G_{−i}`.
//! * [`residual`] — zero-copy [`ResidualView`]s over `G_{−i}` pairwise
//!   state: dense for the from-scratch oracle, copy-on-write for the
//!   epoch route-state engine.
//! * [`policies`] — every neighbor-selection policy of §3.2/§3.3: exact
//!   Best-Response, local-search BR, BR(ε), k-Random, k-Closest,
//!   k-Regular, HybridBR, and the bandwidth-objective BR of §4.1.
//! * [`sampling`] — §5's scalability mechanisms: unbiased random sampling
//!   and topology-based biased sampling with the `b_ij` ranking function.
//! * [`game`] — iterated best-response dynamics over an overlay: staggered
//!   re-wiring, convergence detection, re-wiring counts, social cost.
//! * [`sim`] — the epoch simulator that stands in for the PlanetLab
//!   deployment; regenerates every figure of §4 (see `crates/bench`).
//! * [`cheat`] — free riders (cost inflation) and the audit countermeasure
//!   sketched in §3.4.
//! * [`multipath`] — the §6 applications: multipath transfer gain and
//!   disjoint-path counting.
//! * [`stats`] — means, 95% confidence intervals, percentiles for
//!   reporting (the paper reports mean ± 95% CI across nodes).

pub mod cheat;
pub mod cost;
pub mod game;
pub mod multipath;
pub mod policies;
pub mod residual;
pub mod sampling;
pub mod sim;
pub mod snapshot;
pub mod stats;
pub mod wiring;

pub use cost::{Preferences, RoutingCosts};
pub use game::Game;
pub use policies::{Policy, PolicyKind, WiringContext};
pub use residual::ResidualView;
pub use wiring::Wiring;

#[cfg(test)]
mod proptests;
