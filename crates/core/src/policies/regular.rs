//! k-Regular: "all nodes follow the same wiring pattern dictated by a
//! common offset vector o = {o_1, …, o_k} … node i connects to nodes
//! i + o_j mod n, j = 1, …, k. In our system, we set
//! o_j = 1 + (j−1)·(n−1)/(k+1)." (§3.2)
//!
//! Visualized on a DHT-style id ring, the offsets spread each node's `k`
//! links evenly around the periphery. The formula assumes `n − 1` is a
//! multiple of `k + 1`; we round to the nearest integer otherwise, then
//! deduplicate. Dead targets are simply skipped (k-Regular has no repair
//! story — which is exactly why its efficiency collapses under churn in
//! Fig. 2).

use super::{Policy, WiringContext};
use egoist_graph::NodeId;
use rand::rngs::StdRng;

/// The k-Regular policy.
pub struct KRegular;

/// The paper's offset vector for population size `n` and degree `k`.
pub fn offsets(n: usize, k: usize) -> Vec<usize> {
    let mut o = Vec::with_capacity(k);
    for j in 1..=k {
        let raw = 1.0 + (j as f64 - 1.0) * (n as f64 - 1.0) / (k as f64 + 1.0);
        let off = (raw.round() as usize).clamp(1, n.saturating_sub(1).max(1));
        o.push(off);
    }
    o.dedup();
    o
}

impl Policy for KRegular {
    fn wire(&mut self, ctx: &WiringContext<'_>, _rng: &mut StdRng) -> Vec<NodeId> {
        let n = ctx.alive.len();
        let k = ctx.effective_k();
        let mut out = Vec::with_capacity(k);
        for off in offsets(n, k) {
            let target = NodeId::from_index((ctx.node.index() + off) % n);
            if target != ctx.node && ctx.alive[target.index()] && !out.contains(&target) {
                out.push(target);
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "k-Regular"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::testutil::CtxParts;
    use crate::wiring::Wiring;
    use egoist_graph::DistanceMatrix;
    use rand::SeedableRng;

    #[test]
    fn offsets_match_paper_formula_when_divisible() {
        // n = 50, k = 6: n−1 = 49 = 7 · (k+1) → o_j = 1 + (j−1)·7.
        assert_eq!(offsets(50, 6), vec![1, 8, 15, 22, 29, 36]);
    }

    #[test]
    fn offsets_rounded_otherwise() {
        let o = offsets(50, 4);
        assert_eq!(o.len(), 4);
        assert_eq!(o[0], 1);
        assert!(o.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn all_nodes_follow_same_pattern() {
        let d = DistanceMatrix::off_diagonal(10, 1.0);
        let w = Wiring::empty(10);
        let mut rng = StdRng::seed_from_u64(0);
        let p0 = CtxParts::build(&d, &w, NodeId(0), 3);
        let p4 = CtxParts::build(&d, &w, NodeId(4), 3);
        let n0 = KRegular.wire(&p0.ctx(), &mut rng);
        let n4 = KRegular.wire(&p4.ctx(), &mut rng);
        // Same offsets, shifted by 4 (mod 10).
        let shifted: Vec<NodeId> = n0
            .iter()
            .map(|v| NodeId::from_index((v.index() + 4) % 10))
            .collect();
        assert_eq!(n4, shifted);
    }

    #[test]
    fn union_over_all_nodes_is_a_connected_circulant() {
        use egoist_graph::connectivity::strongly_connected;
        use egoist_graph::DiGraph;
        let n = 12;
        let d = DistanceMatrix::off_diagonal(n, 1.0);
        let w = Wiring::empty(n);
        let mut g = DiGraph::new(n);
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..n {
            let p = CtxParts::build(&d, &w, NodeId::from_index(i), 2);
            for t in KRegular.wire(&p.ctx(), &mut rng) {
                g.add_edge(NodeId::from_index(i), t, 1.0);
            }
        }
        let members: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
        assert!(strongly_connected(&g, &members));
    }

    #[test]
    fn skips_dead_targets_without_replacement() {
        let d = DistanceMatrix::off_diagonal(10, 1.0);
        let w = Wiring::empty(10);
        let mut parts = CtxParts::build(&d, &w, NodeId(0), 3);
        // Kill node 1 (offset 1 target of node 0).
        parts.alive[1] = false;
        parts.candidates.retain(|&c| c != NodeId(1));
        let n = KRegular.wire(&parts.ctx(), &mut StdRng::seed_from_u64(0));
        assert!(!n.contains(&NodeId(1)));
        assert!(n.len() < 3, "no replacement for dead targets");
    }
}
