//! HybridBR: selfish wiring plus donated connectivity links (§3.3).
//!
//! "Each node uses k1 of its k links to selfishly optimize its performance
//! using BR, and 'donates' the remaining k2 = k − k1 links to the system to
//! be used for assuring basic connectivity under churn" — built as `k2/2`
//! bidirectional id-offset cycles rather than k-MSTs.
//!
//! Computing BR conditioned on the donated links is the paper's ILP trick
//! of fixing `Y_i := 1` for backbone targets; in our local-search solver
//! the donated candidates are simply *forced* members of the subset.

use super::best_response::{BrArena, BrInstance};
use super::{Policy, WiringContext};
use egoist_graph::cycles::backbone_edges;
use egoist_graph::NodeId;
use rand::rngs::StdRng;

/// The HybridBR policy.
pub struct HybridBr {
    /// Number of donated links (must be even; `k2/2` cycles).
    pub k2: usize,
    /// Local-search rounds for the selfish part.
    pub max_rounds: usize,
    /// Recycled solver storage.
    arena: BrArena,
}

impl HybridBr {
    /// HybridBR donating `k2` links.
    pub fn new(k2: usize) -> Self {
        HybridBr {
            k2,
            max_rounds: 64,
            arena: BrArena::default(),
        }
    }

    /// The donated out-links of `node` given the current alive set.
    pub fn donated_links(&self, node: NodeId, alive_nodes: &[NodeId]) -> Vec<NodeId> {
        backbone_edges(alive_nodes, self.k2)
            .into_iter()
            .filter(|&(a, _)| a == node)
            .map(|(_, b)| b)
            .collect()
    }
}

impl Policy for HybridBr {
    fn wire(&mut self, ctx: &WiringContext<'_>, _rng: &mut StdRng) -> Vec<NodeId> {
        let mut alive_nodes: Vec<NodeId> = ctx.candidates.to_vec();
        alive_nodes.push(ctx.node);
        alive_nodes.sort_unstable();

        let donated = self.donated_links(ctx.node, &alive_nodes);
        let k = ctx.effective_k();
        if donated.len() >= k {
            // Degenerate: the whole budget is donated.
            return donated.into_iter().take(k).collect();
        }

        let inst = BrInstance::build_in(ctx, &mut self.arena);
        let forced: Vec<usize> = donated
            .iter()
            .filter_map(|d| inst.cand.iter().position(|&c| c == *d))
            .collect();
        let init = inst.greedy(k, &forced);
        let (subset, _) = inst.local_search(k, init, &forced, self.max_rounds);
        let nodes = inst.to_nodes(&subset);
        inst.recycle(&mut self.arena);
        nodes
    }

    fn name(&self) -> &'static str {
        "HybridBR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::testutil::CtxParts;
    use crate::wiring::Wiring;
    use egoist_graph::connectivity::strongly_connected;
    use egoist_graph::{DiGraph, DistanceMatrix};
    use rand::SeedableRng;

    fn metric(n: usize) -> DistanceMatrix {
        DistanceMatrix::from_fn(n, |i, j| ((i * 7 + j * 11) % 17 + 1) as f64)
    }

    #[test]
    fn donated_links_follow_the_backbone() {
        let h = HybridBr::new(2);
        let alive: Vec<NodeId> = (0..8).map(NodeId).collect();
        let d = h.donated_links(NodeId(3), &alive);
        // Unit bidirectional cycle: 3 → 4 and 3 → 2.
        assert!(d.contains(&NodeId(4)));
        assert!(d.contains(&NodeId(2)));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn wiring_includes_all_donated_links() {
        let n = 10;
        let d = metric(n);
        let w = Wiring::empty(n);
        let parts = CtxParts::build(&d, &w, NodeId(5), 5);
        let mut h = HybridBr::new(2);
        let wired = h.wire(&parts.ctx(), &mut StdRng::seed_from_u64(0));
        assert_eq!(wired.len(), 5);
        assert!(wired.contains(&NodeId(6)));
        assert!(wired.contains(&NodeId(4)));
    }

    #[test]
    fn overlay_of_hybrid_nodes_is_strongly_connected_even_without_br() {
        // Even if every selfish link were useless, the backbone connects.
        let n = 9;
        let d = metric(n);
        let w = Wiring::empty(n);
        let mut h = HybridBr::new(2);
        let mut g = DiGraph::new(n);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..n {
            let parts = CtxParts::build(&d, &w, NodeId::from_index(i), 4);
            for t in h.wire(&parts.ctx(), &mut rng) {
                g.add_edge(NodeId::from_index(i), t, 1.0);
            }
        }
        let members: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        assert!(strongly_connected(&g, &members));
    }

    #[test]
    fn degenerate_all_donated() {
        let n = 8;
        let d = metric(n);
        let w = Wiring::empty(n);
        let parts = CtxParts::build(&d, &w, NodeId(0), 2);
        let mut h = HybridBr::new(4); // k2 > k
        let wired = h.wire(&parts.ctx(), &mut StdRng::seed_from_u64(0));
        assert_eq!(wired.len(), 2);
    }

    #[test]
    fn selfish_links_improve_on_backbone_alone() {
        use crate::policies::best_response::BrInstance;
        let n = 12;
        let d = metric(n);
        let w = Wiring::empty(n);
        let parts = CtxParts::build(&d, &w, NodeId(0), 6);
        let ctx = parts.ctx();
        let mut h = HybridBr::new(2);
        let wired = h.wire(&ctx, &mut StdRng::seed_from_u64(0));
        let inst = BrInstance::build(&ctx);
        let full: Vec<usize> = wired
            .iter()
            .filter_map(|x| inst.cand.iter().position(|c| c == x))
            .collect();
        let alive: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let donated_only: Vec<usize> = h
            .donated_links(NodeId(0), &alive)
            .iter()
            .filter_map(|x| inst.cand.iter().position(|c| c == x))
            .collect();
        assert!(inst.eval(&full) < inst.eval(&donated_only));
    }

    #[test]
    fn backbone_adapts_to_alive_set() {
        let h = HybridBr::new(2);
        let alive: Vec<NodeId> = vec![NodeId(0), NodeId(3), NodeId(7)];
        let d = h.donated_links(NodeId(3), &alive);
        // Ring over {0, 3, 7}: 3 → 7 (forward), 3 → 0 (backward).
        assert!(d.contains(&NodeId(7)));
        assert!(d.contains(&NodeId(0)));
    }
}
