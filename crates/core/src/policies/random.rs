//! k-Random: "each node selects k neighbors randomly. If the resulting
//! graph is not connected, we enforce a cycle." (§3.2)
//!
//! The cycle enforcement is a *global* fix-up applied by the overlay
//! simulator after all nodes wire (see `crate::sim`); the per-node policy
//! here is the random choice itself.

use super::{Policy, WiringContext};
use egoist_graph::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// The k-Random policy.
pub struct KRandom;

impl Policy for KRandom {
    fn wire(&mut self, ctx: &WiringContext<'_>, rng: &mut StdRng) -> Vec<NodeId> {
        let k = ctx.effective_k();
        let mut pool: Vec<NodeId> = ctx.candidates.to_vec();
        pool.shuffle(rng);
        pool.truncate(k);
        pool
    }

    fn name(&self) -> &'static str {
        "k-Random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::testutil::CtxParts;
    use crate::wiring::Wiring;
    use egoist_graph::DistanceMatrix;
    use rand::SeedableRng;

    fn parts(k: usize) -> CtxParts {
        let d = DistanceMatrix::off_diagonal(10, 1.0);
        let w = Wiring::empty(10);
        CtxParts::build(&d, &w, NodeId(0), k)
    }

    #[test]
    fn returns_k_distinct_candidates() {
        let p = parts(4);
        let mut rng = StdRng::seed_from_u64(1);
        let n = KRandom.wire(&p.ctx(), &mut rng);
        assert_eq!(n.len(), 4);
        let mut s = n.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 4);
        assert!(!n.contains(&NodeId(0)));
    }

    #[test]
    fn is_seed_deterministic() {
        let p = parts(3);
        let a = KRandom.wire(&p.ctx(), &mut StdRng::seed_from_u64(7));
        let b = KRandom.wire(&p.ctx(), &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let p = parts(3);
        let a = KRandom.wire(&p.ctx(), &mut StdRng::seed_from_u64(1));
        let b = KRandom.wire(&p.ctx(), &mut StdRng::seed_from_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn clamps_to_population() {
        let p = parts(100);
        let n = KRandom.wire(&p.ctx(), &mut StdRng::seed_from_u64(3));
        assert_eq!(n.len(), 9);
    }
}
