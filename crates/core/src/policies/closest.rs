//! k-Closest: "each node selects its k neighbors to be the nodes with the
//! minimum link cost (e.g., minimum delay from it, maximum bandwidth,
//! etc.)." (§3.2)
//!
//! The policy is myopic: it looks only at the first hop. That is exactly
//! why it wins at tiny `k` on delay (nearby nodes are usually fine first
//! hops) but "fails to predict anything beyond the immediate neighbor" for
//! the load metric (§4.2) — and the shape our reproduction must preserve.
//!
//! For bandwidth metrics the caller supplies `direct` as a cost to
//! *minimize* (e.g. negated bandwidth), per the convention documented on
//! [`WiringContext`].

use super::{Policy, WiringContext};
use egoist_graph::NodeId;
use rand::rngs::StdRng;

/// The k-Closest policy.
pub struct KClosest;

impl Policy for KClosest {
    fn wire(&mut self, ctx: &WiringContext<'_>, _rng: &mut StdRng) -> Vec<NodeId> {
        let k = ctx.effective_k();
        let mut pool: Vec<NodeId> = ctx.candidates.to_vec();
        // Sort by direct cost, tie-break on id for determinism.
        pool.sort_by(|a, b| {
            ctx.direct[a.index()]
                .total_cmp(&ctx.direct[b.index()])
                .then(a.cmp(b))
        });
        pool.truncate(k);
        pool
    }

    fn name(&self) -> &'static str {
        "k-Closest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::testutil::CtxParts;
    use crate::wiring::Wiring;
    use egoist_graph::DistanceMatrix;
    use rand::SeedableRng;

    #[test]
    fn picks_minimum_direct_costs() {
        let d = DistanceMatrix::from_fn(6, |i, j| if i == 0 { (j * 10) as f64 } else { 1.0 });
        let w = Wiring::empty(6);
        let p = CtxParts::build(&d, &w, NodeId(0), 3);
        let n = KClosest.wire(&p.ctx(), &mut StdRng::seed_from_u64(0));
        assert_eq!(n, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn ignores_everything_beyond_first_hop() {
        // Node 1 is nearest but a dead end; k-Closest picks it anyway.
        let mut d = DistanceMatrix::off_diagonal(4, 10.0);
        d.set(NodeId(0), NodeId(1), 1.0);
        let w = Wiring::empty(4);
        let p = CtxParts::build(&d, &w, NodeId(0), 1);
        let n = KClosest.wire(&p.ctx(), &mut StdRng::seed_from_u64(0));
        assert_eq!(n, vec![NodeId(1)]);
    }

    #[test]
    fn deterministic_without_rng() {
        let d = DistanceMatrix::from_fn(8, |i, j| ((i * 5 + j * 7) % 11 + 1) as f64);
        let w = Wiring::empty(8);
        let p = CtxParts::build(&d, &w, NodeId(2), 4);
        let a = KClosest.wire(&p.ctx(), &mut StdRng::seed_from_u64(1));
        let b = KClosest.wire(&p.ctx(), &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
    }

    #[test]
    fn tie_break_is_by_id() {
        let d = DistanceMatrix::off_diagonal(5, 3.0);
        let w = Wiring::empty(5);
        let p = CtxParts::build(&d, &w, NodeId(4), 2);
        let n = KClosest.wire(&p.ctx(), &mut StdRng::seed_from_u64(0));
        assert_eq!(n, vec![NodeId(0), NodeId(1)]);
    }
}
