//! BR(ε): threshold re-wiring (§4.3).
//!
//! "The re-wiring rate can significantly be decreased (with marginal
//! impact on routing cost) by requiring that re-wiring be performed only
//! if connecting to the 'new' set of neighbors would improve the local
//! cost to the node by more than a given threshold ε."
//!
//! The policy computes a full best response, then compares the cost of
//! the proposed wiring against the cost of *keeping the current wiring*;
//! only a relative improvement beyond ε triggers the change.

use super::best_response::{BestResponse, BrArena, BrInstance};
use super::{Policy, WiringContext};
use egoist_graph::NodeId;
use rand::rngs::StdRng;

/// The BR(ε) policy.
pub struct EpsilonBr {
    /// Relative improvement threshold (0.1 = 10%).
    pub epsilon: f64,
    inner: BestResponse,
    /// Recycled storage for the keep-current evaluation.
    arena: BrArena,
}

impl EpsilonBr {
    /// BR(ε) with local-search inner solver.
    pub fn new(epsilon: f64) -> Self {
        EpsilonBr {
            epsilon,
            inner: BestResponse::local_search(),
            arena: BrArena::default(),
        }
    }

    /// BR(ε) whose inner solver runs the pre-optimization reference
    /// loops (the `Recompute` oracle's timing-faithful mode).
    pub fn reference(epsilon: f64) -> Self {
        EpsilonBr {
            epsilon,
            inner: BestResponse::local_search().with_reference(true),
            arena: BrArena::default(),
        }
    }

    /// Cost of keeping the current wiring, under announced information.
    pub fn current_cost(ctx: &WiringContext<'_>) -> f64 {
        Self::current_cost_in(ctx, &mut BrArena::default())
    }

    /// [`Self::current_cost`] into recycled storage.
    fn current_cost_in(ctx: &WiringContext<'_>, arena: &mut BrArena) -> f64 {
        let inst = BrInstance::build_in(ctx, arena);
        let idx: Vec<usize> = ctx
            .current
            .iter()
            .filter_map(|w| inst.cand.iter().position(|&c| c == *w))
            .collect();
        let cost = inst.eval(&idx);
        inst.recycle(arena);
        cost
    }
}

impl Policy for EpsilonBr {
    fn wire(&mut self, ctx: &WiringContext<'_>, _rng: &mut StdRng) -> Vec<NodeId> {
        let (proposed, new_cost) = self.inner.solve(ctx);
        if ctx.current.is_empty() {
            return proposed; // first join: wire unconditionally
        }
        // Re-evaluate the old wiring against *current* announced costs.
        let old_cost = Self::current_cost_in(ctx, &mut self.arena);
        if old_cost.is_finite() && new_cost < old_cost * (1.0 - self.epsilon) {
            proposed
        } else {
            // Keep the old wiring, dropping dead neighbors.
            ctx.current
                .iter()
                .copied()
                .filter(|w| ctx.alive[w.index()])
                .collect()
        }
    }

    fn name(&self) -> &'static str {
        "BR(eps)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::testutil::CtxParts;
    use crate::wiring::Wiring;
    use egoist_graph::DistanceMatrix;
    use rand::SeedableRng;

    fn base_matrix() -> DistanceMatrix {
        DistanceMatrix::from_fn(8, |i, j| ((i * 5 + j * 3) % 13 + 1) as f64)
    }

    fn converged_wiring(d: &DistanceMatrix, k: usize) -> Wiring {
        // One pass of BR for each node, from a ring start.
        let n = d.len();
        let mut w = Wiring::empty(n);
        for i in 0..n {
            w.rewire(NodeId::from_index(i), vec![NodeId::from_index((i + 1) % n)]);
        }
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..n {
            let parts = CtxParts::build(d, &w, NodeId::from_index(i), k);
            let neigh = BestResponse::local_search().wire(&parts.ctx(), &mut rng);
            w.rewire(NodeId::from_index(i), neigh);
        }
        w
    }

    #[test]
    fn first_join_wires_unconditionally() {
        let d = base_matrix();
        let w = Wiring::empty(8);
        let parts = CtxParts::build(&d, &w, NodeId(0), 2);
        let n = EpsilonBr::new(0.5).wire(&parts.ctx(), &mut StdRng::seed_from_u64(0));
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn small_gains_do_not_trigger_rewiring() {
        let d = base_matrix();
        let w = converged_wiring(&d, 2);
        // After convergence the BR gain is ~0, so any ε > 0 keeps wiring.
        let parts = CtxParts::build(&d, &w, NodeId(3), 2);
        let kept = EpsilonBr::new(0.10).wire(&parts.ctx(), &mut StdRng::seed_from_u64(0));
        let mut cur = parts.current.clone();
        let mut got = kept.clone();
        cur.sort_unstable();
        got.sort_unstable();
        assert_eq!(cur, got, "ε should suppress marginal re-wiring");
    }

    #[test]
    fn big_gains_do_trigger_rewiring() {
        // Current wiring is terrible (farthest node); BR improvement is
        // large, so even ε = 0.10 re-wires.
        let mut d = DistanceMatrix::off_diagonal(6, 2.0);
        d.set(NodeId(0), NodeId(5), 500.0);
        let mut w = Wiring::empty(6);
        for i in 1..6 {
            w.rewire(
                NodeId::from_index(i),
                vec![NodeId::from_index(if i == 5 { 1 } else { i + 1 })],
            );
        }
        w.rewire(NodeId(0), vec![NodeId(5)]);
        let parts = CtxParts::build(&d, &w, NodeId(0), 1);
        let n = EpsilonBr::new(0.10).wire(&parts.ctx(), &mut StdRng::seed_from_u64(0));
        assert_ne!(n, vec![NodeId(5)], "must abandon the 500-cost link");
    }

    #[test]
    fn epsilon_zero_behaves_like_br() {
        let d = base_matrix();
        let w = converged_wiring(&d, 3);
        let parts = CtxParts::build(&d, &w, NodeId(1), 3);
        let mut rng = StdRng::seed_from_u64(0);
        let br = BestResponse::local_search().wire(&parts.ctx(), &mut rng);
        let eps = EpsilonBr::new(0.0).wire(&parts.ctx(), &mut rng);
        let mut a = br;
        let mut b = eps;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn dead_neighbors_are_dropped_when_keeping() {
        let d = base_matrix();
        let w = converged_wiring(&d, 2);
        let mut parts = CtxParts::build(&d, &w, NodeId(3), 2);
        let victim = parts.current[0];
        parts.alive[victim.index()] = false;
        parts.candidates.retain(|&c| c != victim);
        let kept = EpsilonBr::new(10.0) // absurd ε: never re-wire
            .wire(&parts.ctx(), &mut StdRng::seed_from_u64(0));
        assert!(!kept.contains(&victim));
    }
}
