//! Bandwidth-objective best response (§4.1, Appendix A).
//!
//! The wiring `s_i` maximizes the aggregate bottleneck bandwidth
//!
//! ```text
//! Σ_{j ∈ V−i}  max_{w ∈ s_i}  min( AvailBW(i → w), AvailBW(w ⇝ j) )
//! ```
//!
//! where `AvailBW(w ⇝ j)` is the max-bottleneck (widest-path) bandwidth
//! over the residual overlay. Appendix A proves maximizing this is
//! NP-hard (reduction from MAX-UNIQUES/SET-COVER), so as in the deployed
//! system we use a greedy + local-search heuristic; the test suite checks
//! it lands within a few percent of the exhaustive optimum on small
//! instances, mirroring the paper's "within 5% of optimal" claim.

use crate::cost::Preferences;
use crate::residual::ResidualView;
use egoist_graph::widest::widest_paths;
use egoist_graph::{DiGraph, DistanceMatrix, NodeId};

/// Context for a bandwidth-objective wiring decision.
pub struct BwWiringContext<'a> {
    pub node: NodeId,
    pub k: usize,
    /// Alive candidates (≠ node).
    pub candidates: &'a [NodeId],
    /// Direct available bandwidth `i → j` (dense row, length n).
    pub direct_bw: &'a [f64],
    /// Widest-path bandwidth over the residual overlay — a zero-copy
    /// [`ResidualView`], dense or copy-on-write.
    pub residual_bw: ResidualView<'a>,
    pub prefs: &'a Preferences,
    pub alive: &'a [bool],
}

/// Dense all-pairs widest-path matrix for a bandwidth-weighted overlay.
pub fn all_pairs_widest(g: &DiGraph) -> DistanceMatrix {
    let n = g.len();
    let mut m = DistanceMatrix::filled(n, 0.0);
    for i in 0..n {
        let wp = widest_paths(g, NodeId::from_index(i));
        for j in 0..n {
            m.set_at(i, j, if i == j { f64::INFINITY } else { wp.width[j] });
        }
    }
    m
}

/// Assignment-utility instance (the max-min mirror of `BrInstance`).
pub struct BwInstance {
    pub cand: Vec<NodeId>,
    pub dests: Vec<NodeId>,
    pub weight: Vec<f64>,
    /// `util[c * dests + t] = min(direct_bw(i,c), residual_bw(c, j_t))`.
    util: Vec<f64>,
}

impl BwInstance {
    /// Build from a context.
    pub fn build(ctx: &BwWiringContext<'_>) -> BwInstance {
        let cand: Vec<NodeId> = ctx.candidates.to_vec();
        let dests: Vec<NodeId> = ctx
            .candidates
            .iter()
            .copied()
            .filter(|j| ctx.alive[j.index()])
            .collect();
        let weight: Vec<f64> = dests.iter().map(|&j| ctx.prefs.get(ctx.node, j)).collect();
        let nd = dests.len();
        let mut util = vec![0.0; cand.len() * nd];
        for (c, &w) in cand.iter().enumerate() {
            let first_hop = ctx.direct_bw[w.index()];
            let via_w = ctx.residual_bw.row(w.index());
            for (t, &j) in dests.iter().enumerate() {
                let tail = if w == j {
                    f64::INFINITY
                } else {
                    via_w[j.index()]
                };
                util[c * nd + t] = first_hop.min(tail);
            }
        }
        BwInstance {
            cand,
            dests,
            weight,
            util,
        }
    }

    #[inline]
    fn u(&self, c: usize, t: usize) -> f64 {
        self.util[c * self.dests.len() + t]
    }

    /// Aggregate utility of a candidate subset (bigger is better).
    pub fn eval(&self, subset: &[usize]) -> f64 {
        let nd = self.dests.len();
        let mut total = 0.0;
        for t in 0..nd {
            let mut best = 0.0f64;
            for &c in subset {
                best = best.max(self.u(c, t));
            }
            total += self.weight[t] * best;
        }
        total
    }

    /// Greedy max-marginal-gain seeding. Membership is a boolean mask,
    /// not `Vec::contains` — same rationale as `BrInstance::greedy`.
    pub fn greedy(&self, k: usize) -> Vec<usize> {
        let nd = self.dests.len();
        let mut chosen: Vec<usize> = Vec::new();
        let mut in_chosen = vec![false; self.cand.len()];
        let mut best_per_dest = vec![0.0f64; nd];
        while chosen.len() < k.min(self.cand.len()) {
            let mut pick = None;
            let mut pick_util = -1.0;
            for (c, _) in in_chosen.iter().enumerate().filter(|(_, &taken)| !taken) {
                let mut utility = 0.0;
                for (t, (&w, &best)) in self.weight.iter().zip(best_per_dest.iter()).enumerate() {
                    utility += w * best.max(self.u(c, t));
                }
                if utility > pick_util {
                    pick_util = utility;
                    pick = Some(c);
                }
            }
            let Some(c) = pick else { break };
            chosen.push(c);
            in_chosen[c] = true;
            for (t, b) in best_per_dest.iter_mut().enumerate() {
                *b = b.max(self.u(c, t));
            }
        }
        chosen
    }

    /// Best-improvement single-swap local search.
    pub fn local_search(&self, k: usize, init: Vec<usize>, max_rounds: usize) -> (Vec<usize>, f64) {
        let nd = self.dests.len();
        let mut subset = init;
        subset.sort_unstable();
        subset.dedup();
        if subset.len() < k.min(self.cand.len()) {
            subset = self.greedy(k);
        }
        let mut in_subset = vec![false; self.cand.len()];
        for &c in &subset {
            in_subset[c] = true;
        }
        let mut utility = self.eval(&subset);
        for _ in 0..max_rounds {
            // best1/best2 per destination (max version).
            let mut b1 = vec![(0.0f64, usize::MAX); nd];
            let mut b2 = vec![0.0f64; nd];
            for &c in &subset {
                for t in 0..nd {
                    let v = self.u(c, t);
                    if v > b1[t].0 {
                        b2[t] = b1[t].0;
                        b1[t] = (v, c);
                    } else if v > b2[t] {
                        b2[t] = v;
                    }
                }
            }
            let mut best_swap: Option<(usize, usize, f64)> = None;
            for &out in &subset {
                for (inn, _) in in_subset.iter().enumerate().filter(|(_, &taken)| !taken) {
                    let mut new_u = 0.0;
                    for t in 0..nd {
                        let surviving = if b1[t].1 == out { b2[t] } else { b1[t].0 };
                        new_u += self.weight[t] * surviving.max(self.u(inn, t));
                    }
                    if new_u > utility + 1e-12
                        && best_swap.map(|(_, _, u)| new_u > u).unwrap_or(true)
                    {
                        best_swap = Some((out, inn, new_u));
                    }
                }
            }
            match best_swap {
                Some((out, inn, new_u)) => {
                    subset.retain(|&c| c != out);
                    subset.push(inn);
                    in_subset[out] = false;
                    in_subset[inn] = true;
                    utility = new_u;
                }
                None => break,
            }
        }
        (subset, utility)
    }

    /// Exhaustive optimum (test oracle; small instances only).
    pub fn exhaustive(&self, k: usize) -> (Vec<usize>, f64) {
        let k = k.min(self.cand.len());
        let mut best: Option<(Vec<usize>, f64)> = None;
        let mut subset = Vec::new();
        self.enumerate(k, 0, &mut subset, &mut best);
        best.unwrap_or((Vec::new(), 0.0))
    }

    fn enumerate(
        &self,
        remaining: usize,
        start: usize,
        subset: &mut Vec<usize>,
        best: &mut Option<(Vec<usize>, f64)>,
    ) {
        if remaining == 0 {
            let u = self.eval(subset);
            if best.as_ref().map(|(_, bu)| u > *bu).unwrap_or(true) {
                *best = Some((subset.clone(), u));
            }
            return;
        }
        for idx in start..self.cand.len() {
            if self.cand.len() - idx < remaining {
                break;
            }
            subset.push(idx);
            self.enumerate(remaining - 1, idx + 1, subset, best);
            subset.pop();
        }
    }

    /// Map candidate indices to node ids.
    pub fn to_nodes(&self, subset: &[usize]) -> Vec<NodeId> {
        subset.iter().map(|&c| self.cand[c]).collect()
    }
}

/// Bandwidth best response: greedy + local search.
pub fn bandwidth_best_response(ctx: &BwWiringContext<'_>) -> (Vec<NodeId>, f64) {
    let inst = BwInstance::build(ctx);
    let k = ctx.k.min(ctx.candidates.len());
    let init = inst.greedy(k);
    let (subset, utility) = inst.local_search(k, init, 64);
    (inst.to_nodes(&subset), utility)
}

/// k-Widest: the bandwidth analogue of k-Closest (maximum direct
/// available bandwidth first).
pub fn k_widest(ctx: &BwWiringContext<'_>) -> Vec<NodeId> {
    let mut pool: Vec<NodeId> = ctx.candidates.to_vec();
    pool.sort_by(|a, b| {
        ctx.direct_bw[b.index()]
            .total_cmp(&ctx.direct_bw[a.index()])
            .then(a.cmp(b))
    });
    pool.truncate(ctx.k.min(pool.len()));
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use egoist_netsim::BandwidthModel;

    struct Parts {
        candidates: Vec<NodeId>,
        direct: Vec<f64>,
        residual: DistanceMatrix,
        prefs: Preferences,
        alive: Vec<bool>,
    }

    /// Residual overlay = ring wiring over a bandwidth model.
    fn make_parts(n: usize, seed: u64) -> Parts {
        let bw = BandwidthModel::with_defaults(n, seed);
        let mut g = DiGraph::new(n);
        for i in 0..n {
            let j = (i + 1) % n;
            let j2 = (i + 3) % n;
            if i != j {
                g.add_edge(
                    NodeId::from_index(i),
                    NodeId::from_index(j),
                    bw.available(i, j),
                );
            }
            if i != j2 {
                g.add_edge(
                    NodeId::from_index(i),
                    NodeId::from_index(j2),
                    bw.available(i, j2),
                );
            }
        }
        g.clear_out_edges(NodeId(0));
        let residual = all_pairs_widest(&g);
        let direct: Vec<f64> = (0..n).map(|j| bw.available(0, j)).collect();
        Parts {
            candidates: (1..n).map(NodeId::from_index).collect(),
            direct,
            residual,
            prefs: Preferences::uniform(n),
            alive: vec![true; n],
        }
    }

    fn ctx(parts: &Parts, k: usize) -> BwWiringContext<'_> {
        BwWiringContext {
            node: NodeId(0),
            k,
            candidates: &parts.candidates,
            direct_bw: &parts.direct,
            residual_bw: ResidualView::dense(&parts.residual),
            prefs: &parts.prefs,
            alive: &parts.alive,
        }
    }

    #[test]
    fn heuristic_close_to_exhaustive_optimum() {
        for seed in [1, 2, 3] {
            let parts = make_parts(12, seed);
            for k in 1..4 {
                let c = ctx(&parts, k);
                let inst = BwInstance::build(&c);
                let (_, u_opt) = inst.exhaustive(k);
                let (_, u_heur) = bandwidth_best_response(&c);
                assert!(
                    u_heur >= 0.95 * u_opt - 1e-9,
                    "seed {seed}, k={k}: heuristic {u_heur} < 95% of optimum {u_opt}"
                );
            }
        }
    }

    #[test]
    fn utility_monotone_in_k() {
        let parts = make_parts(14, 4);
        let mut prev = 0.0;
        for k in 1..6 {
            let (_, u) = bandwidth_best_response(&ctx(&parts, k));
            assert!(u >= prev - 1e-9, "utility dropped at k={k}");
            prev = u;
        }
    }

    #[test]
    fn bw_br_beats_k_widest() {
        // Aggregate-bandwidth BR must be at least as good as the myopic
        // k-Widest heuristic under its own objective.
        let parts = make_parts(16, 5);
        let c = ctx(&parts, 3);
        let inst = BwInstance::build(&c);
        let (_, u_br) = bandwidth_best_response(&c);
        let widest = k_widest(&c);
        let idx: Vec<usize> = widest
            .iter()
            .filter_map(|w| inst.cand.iter().position(|x| x == w))
            .collect();
        assert!(u_br >= inst.eval(&idx) - 1e-9);
    }

    #[test]
    fn k_widest_orders_by_direct_bandwidth() {
        let parts = make_parts(10, 6);
        let c = ctx(&parts, 3);
        let w = k_widest(&c);
        assert_eq!(w.len(), 3);
        for pair in w.windows(2) {
            assert!(c.direct_bw[pair[0].index()] >= c.direct_bw[pair[1].index()]);
        }
    }

    #[test]
    fn first_hop_limits_utility() {
        // A candidate with a tiny first hop cannot contribute more than it.
        let n = 6;
        let mut parts = make_parts(n, 7);
        for j in 0..n {
            parts.direct[j] = 0.001;
        }
        let c = ctx(&parts, 2);
        let (_, u) = bandwidth_best_response(&c);
        // Σ weights = 1, so utility ≤ 0.001.
        assert!(u <= 0.001 + 1e-12);
    }
}
